"""Incremental voxel-hash global map with per-voxel point fusion.

The global map is a hash from integer voxel coordinates to a fused
point: the running centroid of every inserted point that fell in the
voxel, plus an occupancy count.  Contributions are tracked **per
keyframe within each voxel** — a voxel entry is a small map from
source id to that source's exact point-sum and count — so when
pose-graph optimization moves keyframes, :meth:`VoxelMap.re_anchor`
subtracts each moved keyframe's old contribution and re-inserts it at
the corrected pose, leaving untouched keyframes' work bit-for-bit in
place.  Removing a contribution deletes the source's entry rather than
subtracting floats from a shared accumulator, so repeated
subtract/re-add cycles cannot drift surviving voxel sums, and removing
mass a source never contributed raises instead of silently emptying
the voxel.  Spatial queries (nearest / radius) walk only the voxel-key
neighborhood that can contain hits, the map-level analogue of the
pipeline's leaf-scan search backends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ragged
from repro.geometry import se3
from repro.io.pointcloud import PointCloud

__all__ = ["VoxelMapConfig", "VoxelMap"]


@dataclass(frozen=True)
class VoxelMapConfig:
    """Map resolution and re-anchoring sensitivity.

    ``voxel_size`` is the fusion cell edge in meters.  Keyframes whose
    optimized pose moved less than ``reanchor_translation_tol`` meters
    and ``reanchor_rotation_tol_deg`` degrees keep their existing map
    contribution on :meth:`VoxelMap.re_anchor` — re-binning points that
    moved microns buys nothing.
    """

    voxel_size: float = 0.25
    reanchor_translation_tol: float = 1e-6
    reanchor_rotation_tol_deg: float = 1e-4

    def __post_init__(self):
        if self.voxel_size <= 0:
            raise ValueError("voxel_size must be positive")


class VoxelMap:
    """A fused global point map, keyed by voxel hash, re-anchorable."""

    def __init__(self, config: VoxelMapConfig | None = None):
        self.config = config or VoxelMapConfig()
        # voxel key -> {source id: [sum_of_points (3,), count]}
        self._voxels: dict[tuple[int, int, int], dict[int, list]] = {}
        # keyframe id -> (local points (N, 3), pose used at insertion)
        self._sources: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._n_points = 0

    # ------------------------------------------------------------------
    # Occupancy accounting.
    # ------------------------------------------------------------------

    @property
    def n_voxels(self) -> int:
        return len(self._voxels)

    @property
    def n_points(self) -> int:
        """Total fused points (occupancy mass) across all voxels."""
        return self._n_points

    def count(self, key: tuple[int, int, int]) -> int:
        """Occupancy count of one voxel (0 when empty)."""
        contributions = self._voxels.get(key)
        if contributions is None:
            return 0
        return int(sum(entry[1] for entry in contributions.values()))

    def keys(self, points: np.ndarray) -> np.ndarray:
        """Integer voxel coordinates for an (N, 3) array of points."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return np.floor(points / self.config.voxel_size).astype(np.int64)

    # ------------------------------------------------------------------
    # Insertion and re-anchoring.
    # ------------------------------------------------------------------

    def insert(self, source_id: int, local_points: np.ndarray, pose: np.ndarray) -> None:
        """Fuse a keyframe's sensor-frame points into the map at ``pose``.

        ``source_id`` identifies the contribution for later
        re-anchoring; inserting an id twice replaces its previous
        contribution (the degenerate form of re-anchoring).
        """
        local_points = np.atleast_2d(np.asarray(local_points, dtype=np.float64))
        if local_points.shape[1] != 3:
            raise ValueError(f"points must be (N, 3), got {local_points.shape}")
        if source_id in self._sources:
            self._remove(source_id)
        pose = np.array(pose, dtype=np.float64)
        self._sources[source_id] = (local_points, pose)
        self._add(source_id, local_points, pose)

    def re_anchor(self, poses: dict[int, np.ndarray]) -> int:
        """Move contributions to optimized poses; returns how many moved.

        Only keyframes whose pose changed beyond the configured
        tolerances are re-binned; the rest of the map is untouched —
        the "incremental" half of the contract.  Because contributions
        are stored per source, the subtract/re-add cycle rebuilds the
        moved keyframe's voxel sums exactly and cannot perturb the
        sums of keyframes that stayed put.
        """
        moved = 0
        for source_id, new_pose in poses.items():
            if source_id not in self._sources:
                continue
            local_points, old_pose = self._sources[source_id]
            rotation, translation = se3.transform_distance(old_pose, new_pose)
            if (
                translation < self.config.reanchor_translation_tol
                and np.degrees(rotation) < self.config.reanchor_rotation_tol_deg
            ):
                continue
            self._subtract(source_id, local_points, old_pose)
            new_pose = np.array(new_pose, dtype=np.float64)
            self._sources[source_id] = (local_points, new_pose)
            self._add(source_id, local_points, new_pose)
            moved += 1
        return moved

    def _remove(self, source_id: int) -> None:
        local_points, pose = self._sources.pop(source_id)
        self._subtract(source_id, local_points, pose)

    def _grouped(self, local_points: np.ndarray, pose: np.ndarray):
        """Yield ``(voxel key, point sum, count)`` per touched voxel.

        Per-voxel sums and counts come from one ``reduceat`` pass over
        the lexsorted world-frame points (the ragged-kernel form of the
        binning).  Deterministic: the same points and pose always
        produce the same groups, which is what lets removal re-derive
        exactly the voxels an insertion touched.
        """
        world = se3.apply_transform(pose, local_points)
        if len(world) == 0:
            return
        order, sorted_keys, starts, counts = ragged.lexsort_voxel_groups(
            self.keys(world)
        )
        sorted_points = world[order]
        group_sums = np.add.reduceat(sorted_points, starts, axis=0)
        yield from zip(
            map(tuple, sorted_keys[starts].tolist()), group_sums, counts.tolist()
        )

    def _add(self, source_id: int, local_points: np.ndarray, pose: np.ndarray) -> None:
        for key, group_sum, count in self._grouped(local_points, pose):
            self._voxels.setdefault(key, {})[source_id] = [group_sum, int(count)]
            self._n_points += int(count)

    def _subtract(self, source_id: int, local_points: np.ndarray, pose: np.ndarray) -> None:
        """Delete one source's per-voxel entries (exact, no float math).

        Raises ``KeyError`` if the source has no contribution in a
        voxel it claims to have touched — the accounting error the old
        aggregate representation silently swallowed by deleting voxels
        whose count went negative.
        """
        for key, _, count in self._grouped(local_points, pose):
            contributions = self._voxels.get(key)
            if contributions is None or source_id not in contributions:
                raise KeyError(
                    f"source {source_id} has no contribution in voxel {key}"
                )
            entry = contributions.pop(source_id)
            if entry[1] != int(count):
                raise ValueError(
                    f"voxel {key}: source {source_id} removing {int(count)} "
                    f"points but contributed {entry[1]}"
                )
            self._n_points -= entry[1]
            if not contributions:
                del self._voxels[key]

    # ------------------------------------------------------------------
    # Fused views and spatial queries.
    # ------------------------------------------------------------------

    @staticmethod
    def _fused(contributions: dict[int, list]) -> np.ndarray:
        """One voxel's fused centroid from its per-source entries."""
        entries = iter(contributions.values())
        first = next(entries)
        point_sum = first[0]
        count = first[1]
        for entry in entries:
            point_sum = point_sum + entry[0]
            count += entry[1]
        return point_sum / count

    def fused_points(self) -> np.ndarray:
        """Per-voxel fused centroids, (V, 3), in hash order."""
        if not self._voxels:
            return np.empty((0, 3))
        return np.array(
            [self._fused(contributions) for contributions in self._voxels.values()]
        )

    def to_cloud(self) -> PointCloud:
        """The fused map as a ``PointCloud`` with a ``count`` channel."""
        counts = np.array(
            [
                sum(entry[1] for entry in contributions.values())
                for contributions in self._voxels.values()
            ],
            dtype=np.int64,
        )
        return PointCloud(self.fused_points().reshape(-1, 3), count=counts)

    def radius(self, query: np.ndarray, r: float) -> tuple[np.ndarray, np.ndarray]:
        """Fused points within ``r`` of ``query``: (points (K, 3), dists).

        Visits only voxel keys whose cell can intersect the ball, so
        cost scales with the neighborhood, not the map.  Results are
        ordered by ascending distance.
        """
        if r < 0:
            raise ValueError("radius must be non-negative")
        query = np.asarray(query, dtype=np.float64).reshape(3)
        size = self.config.voxel_size
        lo = np.floor((query - r) / size).astype(np.int64)
        hi = np.floor((query + r) / size).astype(np.int64)
        hits: list[np.ndarray] = []
        dists: list[float] = []
        for kx in range(int(lo[0]), int(hi[0]) + 1):
            for ky in range(int(lo[1]), int(hi[1]) + 1):
                for kz in range(int(lo[2]), int(hi[2]) + 1):
                    contributions = self._voxels.get((kx, ky, kz))
                    if contributions is None:
                        continue
                    fused = self._fused(contributions)
                    dist = float(np.linalg.norm(fused - query))
                    if dist <= r:
                        hits.append(fused)
                        dists.append(dist)
        if not hits:
            return np.empty((0, 3)), np.empty(0)
        order = np.argsort(dists, kind="stable")
        return np.array(hits)[order], np.asarray(dists)[order]

    def nearest(self, query: np.ndarray) -> tuple[np.ndarray, float]:
        """The fused point nearest ``query``: (point (3,), distance).

        Expands the search radius geometrically from one voxel edge, so
        near queries stay cheap; raises on an empty map.
        """
        if not self._voxels:
            raise ValueError("cannot query an empty map")
        query = np.asarray(query, dtype=np.float64).reshape(3)
        r = self.config.voxel_size
        while True:
            points, dists = self.radius(query, r)
            # A hit is conclusive only once the ball provably contains
            # it: a fused point can sit in a voxel outside a smaller r.
            if len(points) > 0:
                return points[0], float(dists[0])
            r *= 2.0
            if r > self._span() + 2.0 * self.config.voxel_size:
                # One final exhaustive pass (query far outside the map).
                fused = self.fused_points()
                all_dists = np.linalg.norm(fused - query, axis=1)
                best = int(np.argmin(all_dists))
                return fused[best], float(all_dists[best])

    def _span(self) -> float:
        """Diagonal of the occupied-voxel bounding box, in meters."""
        keys = np.array(list(self._voxels.keys()), dtype=np.float64)
        return float(
            np.linalg.norm((keys.max(axis=0) - keys.min(axis=0) + 1.0))
            * self.config.voxel_size
        )
