"""Incremental voxel-hash global map with per-voxel point fusion.

The global map is a hash from integer voxel coordinates to a fused
point: the running centroid of every inserted point that fell in the
voxel, plus an occupancy count.  Contributions are tracked **per
keyframe within each voxel** — a voxel entry is a small map from
source id to that source's exact point-sum and count — so when
pose-graph optimization moves keyframes, :meth:`VoxelMap.re_anchor`
subtracts each moved keyframe's old contribution and re-inserts it at
the corrected pose, leaving untouched keyframes' work bit-for-bit in
place.  Removing a contribution deletes the source's entry rather than
subtracting floats from a shared accumulator, so repeated
subtract/re-add cycles cannot drift surviving voxel sums, and removing
mass a source never contributed raises instead of silently emptying
the voxel.  Spatial queries (nearest / radius) walk only the voxel-key
neighborhood that can contain hits, the map-level analogue of the
pipeline's leaf-scan search backends.

Internally voxel coordinates are packed into one signed-21-bit-per-axis
``int64`` hash key: scalar ints hash faster than coordinate tuples and
a grouped array of them round-trips to Python lists in one flat
``tolist``, which is what lets :meth:`VoxelMap.re_anchor` batch all
moved keyframes through a single vectorized grouping pass.  Each
source's entire contribution lives in **one shared table**
``[sums (G, 3), counts (G,), rowmap {key: row}, keys (G,)]`` that every
voxel the source touches references; a voxel entry is just a pointer
to its source's table, and the packed voxel key indexes the row.  The
payoff is in :meth:`VoxelMap.re_anchor`: moving a source mutates its
table in place — one array swap plus one C-level ``dict(zip(...))``
rebuild — so the per-voxel Python work shrinks to the *symmetric
difference* of the old and new voxel-key sets instead of every touched
voxel (re-binning hundreds of thousands of per-voxel entries was the
old hot spot).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import se3
from repro.io.pointcloud import PointCloud

__all__ = ["VoxelMapConfig", "VoxelMap"]

# Packed voxel-key layout: three biased 21-bit fields in one int64,
# most-significant x — packing is monotone in (kx, ky, kz), so sorting
# packed keys reproduces the lexicographic voxel order exactly.
_KEY_BITS = 21
_KEY_BIAS = 1 << (_KEY_BITS - 1)
_KEY_MASK = (1 << _KEY_BITS) - 1


def _pack_keys(keys: np.ndarray) -> np.ndarray:
    """Pack (N, 3) integer voxel coordinates into (N,) int64 hash keys."""
    if len(keys) and (
        int(keys.min()) < -_KEY_BIAS or int(keys.max()) >= _KEY_BIAS
    ):
        raise ValueError(
            f"voxel coordinates exceed the packed +-{_KEY_BIAS} range"
        )
    biased = keys + _KEY_BIAS
    return (
        (biased[:, 0] << (2 * _KEY_BITS))
        | (biased[:, 1] << _KEY_BITS)
        | biased[:, 2]
    )


def _pack_key(kx: int, ky: int, kz: int) -> int:
    """Scalar form of :func:`_pack_keys` (Python ints, no range check)."""
    return (
        ((kx + _KEY_BIAS) << (2 * _KEY_BITS))
        | ((ky + _KEY_BIAS) << _KEY_BITS)
        | (kz + _KEY_BIAS)
    )


def _unpack_key(packed: int) -> tuple[int, int, int]:
    """Inverse of :func:`_pack_key`, for error messages and key dumps."""
    return (
        int((packed >> (2 * _KEY_BITS)) - _KEY_BIAS),
        int(((packed >> _KEY_BITS) & _KEY_MASK) - _KEY_BIAS),
        int((packed & _KEY_MASK) - _KEY_BIAS),
    )


@dataclass(frozen=True)
class VoxelMapConfig:
    """Map resolution and re-anchoring sensitivity.

    ``voxel_size`` is the fusion cell edge in meters.  Keyframes whose
    optimized pose moved less than ``reanchor_translation_tol`` meters
    and ``reanchor_rotation_tol_deg`` degrees keep their existing map
    contribution on :meth:`VoxelMap.re_anchor` — re-binning points that
    moved microns buys nothing.
    """

    voxel_size: float = 0.25
    reanchor_translation_tol: float = 1e-6
    reanchor_rotation_tol_deg: float = 1e-4

    def __post_init__(self):
        if self.voxel_size <= 0:
            raise ValueError("voxel_size must be positive")


class VoxelMap:
    """A fused global point map, keyed by voxel hash, re-anchorable."""

    def __init__(self, config: VoxelMapConfig | None = None):
        self.config = config or VoxelMapConfig()
        # packed voxel key -> {source id: that source's shared table}
        self._voxels: dict[int, dict[int, list]] = {}
        # source id -> [sums (G, 3), counts (G,), rowmap {key: row},
        # keys (G,)]: the source's whole grouped contribution, one
        # object shared by every voxel entry that references it.
        self._tables: dict[int, list] = {}
        # keyframe id -> (local points (N, 3), pose used at insertion)
        self._sources: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._n_points = 0

    # ------------------------------------------------------------------
    # Occupancy accounting.
    # ------------------------------------------------------------------

    @property
    def n_voxels(self) -> int:
        return len(self._voxels)

    @property
    def n_points(self) -> int:
        """Total fused points (occupancy mass) across all voxels."""
        return self._n_points

    def count(self, key: tuple[int, int, int]) -> int:
        """Occupancy count of one voxel (0 when empty)."""
        packed = _pack_key(*key)
        contributions = self._voxels.get(packed)
        if contributions is None:
            return 0
        return int(
            sum(table[1][table[2][packed]] for table in contributions.values())
        )

    def keys(self, points: np.ndarray) -> np.ndarray:
        """Integer voxel coordinates for an (N, 3) array of points."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return np.floor(points / self.config.voxel_size).astype(np.int64)

    # ------------------------------------------------------------------
    # Insertion and re-anchoring.
    # ------------------------------------------------------------------

    def insert(self, source_id: int, local_points: np.ndarray, pose: np.ndarray) -> None:
        """Fuse a keyframe's sensor-frame points into the map at ``pose``.

        ``source_id`` identifies the contribution for later
        re-anchoring; inserting an id twice replaces its previous
        contribution (the degenerate form of re-anchoring).
        """
        local_points = np.atleast_2d(np.asarray(local_points, dtype=np.float64))
        if local_points.shape[1] != 3:
            raise ValueError(f"points must be (N, 3), got {local_points.shape}")
        if source_id in self._sources:
            self._remove(source_id)
        pose = np.array(pose, dtype=np.float64)
        self._sources[source_id] = (local_points, pose)
        self._add(source_id, local_points, pose)

    def re_anchor(self, poses: dict[int, np.ndarray]) -> int:
        """Move contributions to optimized poses; returns how many moved.

        Only keyframes whose pose changed beyond the configured
        tolerances are re-binned; the rest of the map is untouched —
        the "incremental" half of the contract.  Because contributions
        are stored per source, the subtract/re-add cycle rebuilds the
        moved keyframe's voxel sums exactly and cannot perturb the
        sums of keyframes that stayed put.

        All moved keyframes are re-binned in **one** grouped
        subtract/re-add cycle (:meth:`_apply`): their old-pose and
        new-pose voxel groups come from two batched sort passes, each
        source's shared table is swapped to the new grouping in place
        (which retargets every voxel that references it at once), and
        per-voxel dict updates run only over the symmetric difference
        of the old and new key sets.  Sums are bit-identical to the
        per-source cycle because every group is a contiguous
        stably-sorted run of one source's points.
        """
        moves = []
        for source_id, new_pose in poses.items():
            if source_id not in self._sources:
                continue
            local_points, old_pose = self._sources[source_id]
            rotation, translation = se3.transform_distance(old_pose, new_pose)
            if (
                translation < self.config.reanchor_translation_tol
                and np.degrees(rotation) < self.config.reanchor_rotation_tol_deg
            ):
                continue
            moves.append(
                (source_id, local_points, old_pose, np.array(new_pose, dtype=np.float64))
            )
        if not moves:
            return 0
        self._apply(moves)
        for source_id, local_points, _, new_pose in moves:
            self._sources[source_id] = (local_points, new_pose)
        return len(moves)

    def _remove(self, source_id: int) -> None:
        local_points, pose = self._sources.pop(source_id)
        self._subtract(source_id, local_points, pose)

    def _grouped(self, local_points: np.ndarray, pose: np.ndarray):
        """Voxel groups of one contribution: ``(keys, sums, counts)``.

        ``keys`` is the (G,) int64 array of packed voxel keys (one per
        touched voxel, ascending), ``sums`` the matching ``(G, 3)``
        per-voxel point sums from one ``reduceat`` pass over the stably
        sorted world-frame points, ``counts`` the (G,) int64 occupancy
        counts.  Deterministic: the same points and pose always produce
        the same groups, which is what lets removal re-derive exactly
        the voxels an insertion touched.
        """
        world = se3.apply_transform(pose, local_points)
        if len(world) == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, 3)),
                np.empty(0, dtype=np.int64),
            )
        packed = _pack_keys(self.keys(world))
        order = np.argsort(packed, kind="stable")
        sorted_keys = packed[order]
        boundary = np.empty(len(order), dtype=bool)
        boundary[0] = True
        boundary[1:] = np.diff(sorted_keys) != 0
        starts = np.nonzero(boundary)[0]
        counts = np.diff(np.append(starts, len(order)))
        sums = np.add.reduceat(world[order], starts, axis=0)
        return sorted_keys[starts], sums, counts

    @staticmethod
    def _make_table(keys: np.ndarray, sums: np.ndarray, counts: np.ndarray) -> list:
        """A source's shared contribution table for one grouping."""
        return [sums, counts, dict(zip(keys.tolist(), range(len(keys)))), keys]

    def _add(self, source_id: int, local_points: np.ndarray, pose: np.ndarray) -> None:
        keys, sums, counts = self._grouped(local_points, pose)
        table = self._make_table(keys, sums, counts)
        self._tables[source_id] = table
        voxels = self._voxels
        for key in keys.tolist():
            contributions = voxels.get(key)
            if contributions is None:
                voxels[key] = {source_id: table}
            else:
                contributions[source_id] = table
        self._n_points += int(counts.sum())

    def _validate_grouping(self, source_id: int, keys: np.ndarray, counts: np.ndarray):
        """Check a recomputed grouping against the source's stored table.

        The recorded ``(points, pose)`` must reproduce the stored
        grouping exactly (grouping is deterministic), so any mismatch
        is an accounting error: ``KeyError`` when the source claims a
        voxel its table never touched (or vice versa), ``ValueError``
        when a shared voxel's count disagrees — the errors the old
        aggregate representation silently swallowed by deleting voxels
        whose count went negative.
        """
        table = self._tables.get(source_id)
        if table is None:
            raise KeyError(f"source {source_id} has no contribution table")
        if not np.array_equal(keys, table[3]):
            rowmap = table[2]
            for key in keys.tolist():
                if key not in rowmap:
                    raise KeyError(
                        f"source {source_id} has no contribution in voxel "
                        f"{_unpack_key(key)}"
                    )
            raise KeyError(
                f"source {source_id}: recorded points touch fewer voxels "
                "than its contribution table"
            )
        if not np.array_equal(counts, table[1]):
            row = int(np.nonzero(counts != table[1])[0][0])
            raise ValueError(
                f"voxel {_unpack_key(int(keys[row]))}: source {source_id} "
                f"removing {int(counts[row])} points but contributed "
                f"{int(table[1][row])}"
            )
        return table

    def _subtract(self, source_id: int, local_points: np.ndarray, pose: np.ndarray) -> None:
        """Delete one source's voxel entries and table (exact, no float math)."""
        keys, _, counts = self._grouped(local_points, pose)
        self._validate_grouping(source_id, keys, counts)
        voxels = self._voxels
        for key in keys.tolist():
            contributions = voxels.get(key)
            if contributions is None or source_id not in contributions:
                raise KeyError(
                    f"source {source_id} has no contribution in voxel "
                    f"{_unpack_key(key)}"
                )
            del contributions[source_id]
            if not contributions:
                del voxels[key]
        del self._tables[source_id]
        self._n_points -= int(counts.sum())

    def _grouped_moves(self, moves: list, side: int, with_sums: bool = True):
        """Voxel groups of every move's old (0) or new (1) pose, batched.

        Returns ``(slots, keys, sums, counts)`` — one row per touched
        ``(move slot, voxel)`` pair, sorted by (slot, packed key).  One
        lexsort and one ``reduceat`` cover all moved sources; each
        group is a contiguous run of a single source's points in their
        stable per-source order, so its sum is bit-identical to the
        per-source :meth:`_grouped` pass.  ``with_sums=False`` skips
        the ``reduceat`` for the old side, where only keys and counts
        feed validation.
        """
        key_parts, point_parts, slot_parts = [], [], []
        for slot, (_, local_points, old_pose, new_pose) in enumerate(moves):
            world = se3.apply_transform(
                old_pose if side == 0 else new_pose, local_points
            )
            if len(world) == 0:
                continue
            key_parts.append(_pack_keys(self.keys(world)))
            point_parts.append(world)
            slot_parts.append(np.full(len(world), slot, dtype=np.int64))
        if not key_parts:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty((0, 3)),
                np.empty(0, dtype=np.int64),
            )
        keys = np.concatenate(key_parts)
        slots = np.concatenate(slot_parts)
        order = np.lexsort((keys, slots))
        sorted_keys = keys[order]
        sorted_slots = slots[order]
        boundary = np.empty(len(order), dtype=bool)
        boundary[0] = True
        boundary[1:] = (np.diff(sorted_slots) != 0) | (np.diff(sorted_keys) != 0)
        starts = np.nonzero(boundary)[0]
        counts = np.diff(np.append(starts, len(order)))
        if with_sums:
            points = np.concatenate(point_parts)
            sums = np.add.reduceat(points[order], starts, axis=0)
        else:
            sums = np.empty((0, 3))
        return sorted_slots[starts], sorted_keys[starts], sums, counts

    def _apply(self, moves: list) -> None:
        """One grouped subtract/re-add cycle over all moved keyframes.

        The old-pose and new-pose voxel groups come from two batched
        sort passes.  Per moved source, the recomputed old grouping is
        validated against its stored table
        (:meth:`_validate_grouping`), the table is swapped to the new
        grouping **in place** — every voxel referencing it sees the
        move at once, no per-voxel visits — and only the symmetric
        difference of the old and new key sets pays per-voxel dict
        updates (pops on vacated voxels, inserts on newly occupied
        ones).
        """
        old_slots, old_keys, _, old_counts = self._grouped_moves(
            moves, 0, with_sums=False
        )
        new_slots, new_keys, new_sums, new_counts = self._grouped_moves(moves, 1)

        voxels = self._voxels
        delta = 0
        for slot, (source_id, _, _, _) in enumerate(moves):
            old_lo, old_hi = np.searchsorted(old_slots, [slot, slot + 1])
            new_lo, new_hi = np.searchsorted(new_slots, [slot, slot + 1])
            keys_before = old_keys[old_lo:old_hi]
            keys_after = new_keys[new_lo:new_hi]
            table = self._validate_grouping(
                source_id, keys_before, old_counts[old_lo:old_hi]
            )
            delta += int(new_counts[new_lo:new_hi].sum()) - int(table[1].sum())

            vacated = keys_before[
                ~np.isin(keys_before, keys_after, assume_unique=True)
            ]
            occupied = keys_after[
                ~np.isin(keys_after, keys_before, assume_unique=True)
            ]
            # Swap the shared table to the new grouping: rows reindex
            # into this move's slice, and the rowmap rebuild is one
            # C-level dict(zip(...)) instead of a per-voxel loop.
            table[0] = new_sums[new_lo:new_hi]
            table[1] = new_counts[new_lo:new_hi]
            table[2] = dict(zip(keys_after.tolist(), range(len(keys_after))))
            table[3] = keys_after

            for key in vacated.tolist():
                contributions = voxels.get(key)
                if contributions is None or source_id not in contributions:
                    raise KeyError(
                        f"source {source_id} has no contribution in voxel "
                        f"{_unpack_key(key)}"
                    )
                del contributions[source_id]
                if not contributions:
                    del voxels[key]

            for key in occupied.tolist():
                contributions = voxels.get(key)
                if contributions is None:
                    voxels[key] = {source_id: table}
                else:
                    contributions[source_id] = table

        self._n_points += delta

    # ------------------------------------------------------------------
    # Fused views and spatial queries.
    # ------------------------------------------------------------------

    @staticmethod
    def _fused(key: int, contributions: dict[int, list]) -> np.ndarray:
        """One voxel's fused centroid from its sources' shared tables."""
        tables = iter(contributions.values())
        first = next(tables)
        row = first[2][key]
        point_sum = first[0][row]
        count = first[1][row]
        for table in tables:
            row = table[2][key]
            point_sum = point_sum + table[0][row]
            count = count + table[1][row]
        return point_sum / count

    def fused_points(self) -> np.ndarray:
        """Per-voxel fused centroids, (V, 3), in hash order."""
        if not self._voxels:
            return np.empty((0, 3))
        return np.array(
            [
                self._fused(key, contributions)
                for key, contributions in self._voxels.items()
            ]
        )

    def to_cloud(self) -> PointCloud:
        """The fused map as a ``PointCloud`` with a ``count`` channel."""
        counts = np.array(
            [
                sum(table[1][table[2][key]] for table in contributions.values())
                for key, contributions in self._voxels.items()
            ],
            dtype=np.int64,
        )
        return PointCloud(self.fused_points().reshape(-1, 3), count=counts)

    def radius(self, query: np.ndarray, r: float) -> tuple[np.ndarray, np.ndarray]:
        """Fused points within ``r`` of ``query``: (points (K, 3), dists).

        Visits only voxel keys whose cell can intersect the ball, so
        cost scales with the neighborhood, not the map.  Results are
        ordered by ascending distance.
        """
        if r < 0:
            raise ValueError("radius must be non-negative")
        query = np.asarray(query, dtype=np.float64).reshape(3)
        size = self.config.voxel_size
        # Clamp to the packable key range: no voxel exists outside it,
        # and packing out-of-range cells could alias in-range keys.
        lo = np.clip(
            np.floor((query - r) / size), -_KEY_BIAS, _KEY_BIAS - 1
        ).astype(np.int64)
        hi = np.clip(
            np.floor((query + r) / size), -_KEY_BIAS, _KEY_BIAS - 1
        ).astype(np.int64)
        hits: list[np.ndarray] = []
        dists: list[float] = []
        for kx in range(int(lo[0]), int(hi[0]) + 1):
            for ky in range(int(lo[1]), int(hi[1]) + 1):
                for kz in range(int(lo[2]), int(hi[2]) + 1):
                    packed = _pack_key(kx, ky, kz)
                    contributions = self._voxels.get(packed)
                    if contributions is None:
                        continue
                    fused = self._fused(packed, contributions)
                    dist = float(np.linalg.norm(fused - query))
                    if dist <= r:
                        hits.append(fused)
                        dists.append(dist)
        if not hits:
            return np.empty((0, 3)), np.empty(0)
        order = np.argsort(dists, kind="stable")
        return np.array(hits)[order], np.asarray(dists)[order]

    def nearest(self, query: np.ndarray) -> tuple[np.ndarray, float]:
        """The fused point nearest ``query``: (point (3,), distance).

        Expands the search radius geometrically from one voxel edge, so
        near queries stay cheap; raises on an empty map.
        """
        if not self._voxels:
            raise ValueError("cannot query an empty map")
        query = np.asarray(query, dtype=np.float64).reshape(3)
        r = self.config.voxel_size
        while True:
            points, dists = self.radius(query, r)
            # A hit is conclusive only once the ball provably contains
            # it: a fused point can sit in a voxel outside a smaller r.
            if len(points) > 0:
                return points[0], float(dists[0])
            r *= 2.0
            if r > self._span() + 2.0 * self.config.voxel_size:
                # One final exhaustive pass (query far outside the map).
                fused = self.fused_points()
                all_dists = np.linalg.norm(fused - query, axis=1)
                best = int(np.argmin(all_dists))
                return fused[best], float(all_dists[best])

    def _span(self) -> float:
        """Diagonal of the occupied-voxel bounding box, in meters."""
        packed = np.fromiter(
            self._voxels, dtype=np.int64, count=len(self._voxels)
        )
        keys = np.empty((len(packed), 3))
        keys[:, 0] = (packed >> (2 * _KEY_BITS)) - _KEY_BIAS
        keys[:, 1] = ((packed >> _KEY_BITS) & _KEY_MASK) - _KEY_BIAS
        keys[:, 2] = (packed & _KEY_MASK) - _KEY_BIAS
        return float(
            np.linalg.norm((keys.max(axis=0) - keys.min(axis=0) + 1.0))
            * self.config.voxel_size
        )
