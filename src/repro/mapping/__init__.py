"""The streaming SLAM subsystem: keyframes, loop closure, pose graph, map.

The paper motivates registration as the engine of 3D reconstruction and
SLAM (Sec. 2.2: frames "aligned against one another and merged
together").  This package supplies everything *around* the registration
pipeline that turns open-loop odometry into a drift-corrected map:

* :mod:`~repro.mapping.keyframes` — which frames to retain, keeping
  their already-preprocessed ``FrameState`` artifacts;
* :mod:`~repro.mapping.loop_closure` — revisit detection by pose
  proximity, verified through the existing ``Pipeline.match`` path;
* :mod:`~repro.mapping.pose_graph` — SE(3) graph optimization that
  redistributes loop-closure corrections over the trajectory;
* :mod:`~repro.mapping.voxel_map` — an incremental, re-anchorable
  voxel-hash global map with fused points and occupancy counts;
* :mod:`~repro.mapping.mapper` — :class:`StreamingMapper`, the engine
  that streams frames through all of the above.
"""

from repro.mapping.keyframes import Keyframe, KeyframeConfig, KeyframePolicy
from repro.mapping.loop_closure import LoopCloser, LoopClosure, LoopClosureConfig
from repro.mapping.mapper import MapperConfig, MappingStats, StreamingMapper
from repro.mapping.pose_graph import (
    PoseGraph,
    PoseGraphConfig,
    PoseGraphEdge,
    PoseGraphResult,
)
from repro.mapping.presets import urban_loop_mapper_config, urban_loop_pipeline
from repro.mapping.voxel_map import VoxelMap, VoxelMapConfig

__all__ = [
    "KeyframeConfig",
    "Keyframe",
    "KeyframePolicy",
    "LoopClosureConfig",
    "LoopClosure",
    "LoopCloser",
    "PoseGraphConfig",
    "PoseGraphEdge",
    "PoseGraphResult",
    "PoseGraph",
    "VoxelMapConfig",
    "VoxelMap",
    "MapperConfig",
    "MappingStats",
    "StreamingMapper",
    "urban_loop_pipeline",
    "urban_loop_mapper_config",
]
