"""SE(3) pose-graph optimization (the SLAM back end).

Nodes are absolute keyframe poses; edges are relative-pose measurements
— consecutive odometry constraints plus the loop closures that make the
graph over-determined.  Optimization distributes the loop-closure
correction over the whole trajectory by minimizing

    sum_e  w_e * || log( Z_e^-1 * T_i^-1 * T_j ) ||^2

with damped Gauss-Newton over right-multiplicative se(3) perturbations
``T <- T exp(delta)`` (see :func:`repro.geometry.se3.exp`/``log``).
Jacobians are built by central differences on the perturbation — exact
to O(h^2), free of the small-residual approximations hand-derived
SE(3) Jacobians usually make, and cheap at keyframe-graph scale (tens
of nodes).  Node 0 is held fixed as the gauge unless told otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import se3

__all__ = [
    "PoseGraphConfig",
    "PoseGraphEdge",
    "PoseGraphResult",
    "PoseGraph",
]


@dataclass(frozen=True)
class PoseGraphConfig:
    """Gauss-Newton controls.

    ``damping`` is a constant Levenberg-style diagonal added to the
    normal equations — enough to keep the (gauge-fixed, loop-closed)
    systems here well-conditioned without a full trust-region schedule.
    Iteration stops when the update norm drops below ``tolerance`` or
    the total error stops improving by more than a ``tolerance``
    fraction (the update norm bottoms out at the numerical-Jacobian
    noise floor, well above machine epsilon).
    """

    max_iterations: int = 25
    tolerance: float = 1e-8
    damping: float = 1e-8
    numerical_step: float = 1e-6


@dataclass(frozen=True)
class PoseGraphEdge:
    """A relative-pose constraint between nodes ``i`` and ``j``.

    ``measurement`` maps node-``j`` coordinates into node-``i``'s frame
    — i.e. the ideal poses satisfy ``T_i^-1 @ T_j == measurement``.
    That matches registration convention: matching source frame ``j``
    against target frame ``i`` returns exactly this matrix.
    """

    i: int
    j: int
    measurement: np.ndarray
    weight: float = 1.0
    kind: str = "odometry"


@dataclass
class PoseGraphResult:
    """What one :meth:`PoseGraph.optimize` call did."""

    poses: list[np.ndarray]
    iterations: int
    initial_error: float
    final_error: float
    converged: bool


class PoseGraph:
    """A mutable SE(3) pose graph with damped Gauss-Newton optimization."""

    def __init__(self):
        self.nodes: list[np.ndarray] = []
        self.edges: list[PoseGraphEdge] = []

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def n_loop_edges(self) -> int:
        return sum(1 for edge in self.edges if edge.kind == "loop")

    def add_node(self, pose: np.ndarray) -> int:
        """Append a node with the given initial pose; returns its id."""
        pose = np.array(pose, dtype=np.float64)
        if pose.shape != (4, 4):
            raise ValueError(f"pose must be 4x4, got {pose.shape}")
        self.nodes.append(pose)
        return len(self.nodes) - 1

    def add_edge(
        self,
        i: int,
        j: int,
        measurement: np.ndarray,
        weight: float = 1.0,
        kind: str = "odometry",
    ) -> PoseGraphEdge:
        """Add the constraint ``T_i^-1 @ T_j == measurement``."""
        n = len(self.nodes)
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"edge ({i}, {j}) references missing nodes")
        if i == j:
            raise ValueError("self-edges are meaningless")
        if weight <= 0:
            raise ValueError("edge weight must be positive")
        edge = PoseGraphEdge(
            i, j, np.array(measurement, dtype=np.float64), weight, kind
        )
        self.edges.append(edge)
        return edge

    # ------------------------------------------------------------------
    # Error and optimization.
    # ------------------------------------------------------------------

    def _residual(self, edge: PoseGraphEdge, poses: list[np.ndarray]) -> np.ndarray:
        return se3.log(
            se3.compose(
                se3.invert(edge.measurement),
                se3.invert(poses[edge.i]),
                poses[edge.j],
            )
        )

    def error(self, poses: list[np.ndarray] | None = None) -> float:
        """Total weighted squared residual over all edges."""
        poses = self.nodes if poses is None else poses
        total = 0.0
        for edge in self.edges:
            residual = self._residual(edge, poses)
            total += edge.weight * float(residual @ residual)
        return total

    def optimize(
        self,
        config: PoseGraphConfig | None = None,
        fixed: set[int] = frozenset({0}),
    ) -> PoseGraphResult:
        """Run damped Gauss-Newton; updates ``self.nodes`` in place.

        ``fixed`` nodes keep their poses (the gauge freedom of a pose
        graph: without at least one anchor the whole trajectory can
        drift rigidly at zero cost).
        """
        config = config or PoseGraphConfig()
        free = [n for n in range(len(self.nodes)) if n not in fixed]
        if not free or not self.edges:
            return PoseGraphResult(
                list(self.nodes), 0, self.error(), self.error(), True
            )
        column = {node: 6 * slot for slot, node in enumerate(free)}
        size = 6 * len(free)
        initial_error = self.error()
        h = config.numerical_step

        iterations = 0
        converged = False
        previous_error = initial_error
        for iterations in range(1, config.max_iterations + 1):
            hessian = np.zeros((size, size))
            gradient = np.zeros(size)
            for edge in self.edges:
                residual = self._residual(edge, self.nodes)
                blocks: list[tuple[int, np.ndarray]] = []
                for node in (edge.i, edge.j):
                    if node not in column:
                        continue
                    jacobian = np.empty((6, 6))
                    base = self.nodes[node]
                    for axis in range(6):
                        twist = np.zeros(6)
                        twist[axis] = h
                        self.nodes[node] = se3.compose(base, se3.exp(twist))
                        plus = self._residual(edge, self.nodes)
                        twist[axis] = -h
                        self.nodes[node] = se3.compose(base, se3.exp(twist))
                        minus = self._residual(edge, self.nodes)
                        jacobian[:, axis] = (plus - minus) / (2.0 * h)
                    self.nodes[node] = base
                    blocks.append((column[node], jacobian))
                for col_a, jac_a in blocks:
                    gradient[col_a : col_a + 6] += edge.weight * (jac_a.T @ residual)
                    for col_b, jac_b in blocks:
                        hessian[col_a : col_a + 6, col_b : col_b + 6] += (
                            edge.weight * (jac_a.T @ jac_b)
                        )

            hessian[np.diag_indices_from(hessian)] += config.damping
            try:
                delta = np.linalg.solve(hessian, -gradient)
            except np.linalg.LinAlgError:
                break
            for node, col in column.items():
                self.nodes[node] = se3.compose(
                    self.nodes[node], se3.exp(delta[col : col + 6])
                )
                # Re-orthonormalize occasionally-accumulating drift so
                # long optimizations keep returning valid rigid poses.
                self.nodes[node][:3, :3] = se3.orthonormalize_rotation(
                    self.nodes[node][:3, :3]
                )
            current_error = self.error()
            plateaued = (
                abs(previous_error - current_error)
                <= config.tolerance * (1.0 + current_error)
            )
            previous_error = current_error
            if float(np.linalg.norm(delta)) < config.tolerance or plateaued:
                converged = True
                break

        return PoseGraphResult(
            list(self.nodes),
            iterations,
            initial_error,
            self.error(),
            converged,
        )
