"""Sparse incremental SE(3) pose-graph optimization (the SLAM back end).

Nodes are absolute keyframe poses; edges are relative-pose measurements
— consecutive odometry constraints plus the loop closures that make the
graph over-determined.  Optimization distributes the loop-closure
correction over the whole trajectory by minimizing

    sum_e  w_e * || log( Z_e^-1 * T_i^-1 * T_j ) ||^2

with damped Gauss-Newton over right-multiplicative se(3) perturbations
``T <- T exp(delta)`` (see :func:`repro.geometry.se3.exp`/``log``).

Three things distinguish this back end from a textbook dense solver:

**Analytic Jacobians.**  The residual's derivatives with respect to
right perturbations of either endpoint are closed-form (adjoint /
inverse-left-Jacobian products, :func:`linearize_edge`), replacing the
seed implementation's central differences — 24 se(3) exp/log round
trips per edge per iteration collapse to one ``log`` and a couple of
6x6 products.  Parity with the numeric Jacobians is pinned to 1e-6 by
``tests/mapping/test_pose_graph.py``.

**Sparse normal equations.**  Per-edge 6x6 blocks are assembled as
COO triplets and factored with :mod:`scipy.sparse` (``splu``) instead
of a dense ``(6F, 6F)`` Gauss-Newton matrix, so the solve cost follows
the graph's chain-plus-closures sparsity rather than F^3.

**Incremental updates.**  ``optimize(new_edges=...)`` re-linearizes
only the nodes within ``hop_radius`` graph hops of the newly added
edges, holding the rest of the trajectory fixed and reusing their
cached residual errors — edges entirely inside the untouched region
are never even re-evaluated.  A full batch relinearization runs as a
fallback, either periodically (``relinearize_interval``) or when the
local solve leaves the active neighborhood's per-edge error well above
the level the last batch achieved (``escalation_factor``) — the
signature of a correction that must be redistributed globally, e.g.
the first closure of a large drift loop.

Every accepted Gauss-Newton step must reduce the (weighted) total
error; steps that would increase it are rejected, Levenberg-style
damping is escalated, and the solve retries or stops — so
``PoseGraphResult.final_error <= initial_error`` always holds, and
``converged=True`` is never reported at a worse error than the call
started from.  Node 0 is held fixed as the gauge unless told otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sparse
from scipy.sparse.linalg import splu

from repro.geometry import se3

__all__ = [
    "PoseGraphConfig",
    "PoseGraphEdge",
    "PoseGraphResult",
    "PoseGraph",
    "linearize_edge",
]


@dataclass(frozen=True)
class PoseGraphConfig:
    """Solver controls.

    ``damping`` seeds the Levenberg-style diagonal; step rejection
    multiplies it by 10 (up to ``max_damping``) until a step reduces
    the error, and acceptance decays it back toward the floor.
    Iteration stops when the update norm drops below ``tolerance``,
    the total error plateaus to within a ``tolerance`` fraction, or no
    damping level can improve the error.

    The incremental knobs: ``hop_radius`` bounds how far from a new
    edge's endpoints the local relinearization reaches;
    ``relinearize_interval`` forces a periodic full batch solve every
    that many incremental calls; ``escalation_factor`` triggers an
    immediate batch solve when the local neighborhood's per-edge error
    after the local pass exceeds that multiple of the last batch's
    graph-wide per-edge error.

    The robustness knobs (all off by default — the defaults reproduce
    the quadratic solver bit-for-bit): ``robust_kernel`` selects an
    M-estimator (``"huber"`` or ``"cauchy"``) applied per edge via IRLS
    reweighting inside the GN loop, with scale ``robust_delta`` (the
    residual-norm level, in the edge's own chi units, beyond which the
    kernel bends the quadratic).  ``loop_switch_phi`` enables
    closed-form switchable-constraint down-weighting (Dynamic
    Covariance Scaling, Agarwal et al. 2013) for *loop* edges only: a
    loop edge whose chi-squared exceeds ``phi`` is scaled by
    ``s^2, s = 2*phi / (phi + chi2) < 1`` — a wrong closure's influence
    is bounded instead of quadratic, while consistent closures
    (``chi2 <= phi``) pass through exactly unchanged.  Huber and DCS
    are exact at the quadratic limit, so enabling them on a
    well-registered graph changes nothing; Cauchy reweights every
    nonzero residual and is therefore not bit-transparent.
    """

    max_iterations: int = 25
    tolerance: float = 1e-8
    damping: float = 1e-8
    max_damping: float = 1e6
    hop_radius: int = 5
    relinearize_interval: int = 8
    escalation_factor: float = 1.5
    robust_kernel: str | None = None
    robust_delta: float = 1.0
    loop_switch_phi: float | None = None

    def __post_init__(self):
        if self.robust_kernel not in (None, "huber", "cauchy"):
            raise ValueError("robust_kernel must be None, 'huber' or 'cauchy'")
        if self.robust_delta <= 0:
            raise ValueError("robust_delta must be positive")
        if self.loop_switch_phi is not None and self.loop_switch_phi <= 0:
            raise ValueError("loop_switch_phi must be positive")


@dataclass(frozen=True)
class PoseGraphEdge:
    """A relative-pose constraint between nodes ``i`` and ``j``.

    ``measurement`` maps node-``j`` coordinates into node-``i``'s frame
    — i.e. the ideal poses satisfy ``T_i^-1 @ T_j == measurement``.
    That matches registration convention: matching source frame ``j``
    against target frame ``i`` returns exactly this matrix.
    """

    i: int
    j: int
    measurement: np.ndarray
    weight: float = 1.0
    kind: str = "odometry"


@dataclass
class PoseGraphResult:
    """What one :meth:`PoseGraph.optimize` call did.

    ``poses`` are copies — mutating them cannot corrupt the graph.
    ``mode`` records which path ran: ``"batch"``, ``"incremental"``,
    or ``"incremental+batch"`` when a local solve escalated to a full
    relinearization.  ``final_error <= initial_error`` by construction.

    When any robustness knob is active, ``edge_chi2`` holds every
    edge's raw chi-squared (``weight * ||r||^2``) at the final poses
    and ``edge_robust_weights`` the IRLS multiplier the kernel/DCS
    applied on top of the edge's own weight (1.0 = untouched), in edge
    order — so a down-weighted (suspect) loop closure is directly
    inspectable.  ``n_downweighted_loops`` counts loop edges whose
    multiplier ended below 1.  All three stay empty/zero on a purely
    quadratic solve (no O(E) recompute on the incremental fast path).
    """

    poses: list[np.ndarray]
    iterations: int
    initial_error: float
    final_error: float
    converged: bool
    mode: str = "batch"
    n_active_nodes: int = 0
    edge_chi2: list[float] = field(default_factory=list)
    edge_robust_weights: list[float] = field(default_factory=list)
    n_downweighted_loops: int = 0


def linearize_edge(
    measurement: np.ndarray, pose_i: np.ndarray, pose_j: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Residual and analytic Jacobians of one relative-pose constraint.

    For ``r = log(Z^-1 T_i^-1 T_j)`` and right perturbations
    ``T <- T exp(delta)`` of either endpoint:

    - perturbing ``T_j`` multiplies the error transform on the right by
      ``exp(delta)``, so ``J_j = J_r^-1(r) = J_l^-1(-r)`` (the inverse
      right Jacobian of SE(3) at the residual);
    - perturbing ``T_i`` injects ``exp(-delta)`` between ``Z^-1`` and
      ``T_i^-1 T_j``; conjugating it to the right end of the product
      gives ``J_i = -J_r^-1(r) @ Ad(T_j^-1 T_i)``.

    Returns ``(residual, J_i, J_j)``; each Jacobian is 6x6.  Exact to
    first order for any residual with rotation angle below pi —
    central-difference parity is pinned to 1e-6 by the test suite.
    """
    residual = se3.log(
        se3.compose(se3.invert(measurement), se3.invert(pose_i), pose_j)
    )
    jac_j = se3.left_jacobian_inv(-residual)
    jac_i = -jac_j @ se3.adjoint(se3.compose(se3.invert(pose_j), pose_i))
    return residual, jac_i, jac_j


# Flattened intra-block offsets of one 6x6 block in triplet form.
_BLOCK_ROWS = np.repeat(np.arange(6), 6)
_BLOCK_COLS = np.tile(np.arange(6), 6)


class PoseGraph:
    """A mutable SE(3) pose graph with a sparse incremental solver.

    Node poses are owned by the graph: read them freely, but apply
    updates through :meth:`optimize` (the incremental solver caches
    per-edge residual errors keyed to the current poses).
    """

    def __init__(self):
        self.nodes: list[np.ndarray] = []
        self.edges: list[PoseGraphEdge] = []
        # node -> set of neighbor nodes (for hop-radius expansion).
        self._adjacency: dict[int, set[int]] = {}
        # id(edge) -> index, to resolve `new_edges=` arguments.
        self._edge_index: dict[int, int] = {}
        # edge index -> weighted squared residual at the current poses;
        # entries are dropped when an endpoint moves and recomputed
        # lazily, so incremental calls never touch the frozen region.
        self._error_cache: dict[int, float] = {}
        # Graph-wide per-edge error level of the last batch solve (the
        # escalation reference) and calls since that batch.
        self._batch_edge_error: float | None = None
        self._calls_since_batch = 0
        # The active robustification (kernel, delta, loop phi) — set
        # from the config at each optimize() entry; the error cache and
        # the batch reference are only valid for the params they were
        # computed under, so a change invalidates both.
        self._robust: tuple[str | None, float, float | None] = (None, 1.0, None)

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def n_loop_edges(self) -> int:
        return sum(1 for edge in self.edges if edge.kind == "loop")

    def add_node(self, pose: np.ndarray) -> int:
        """Append a node with the given initial pose; returns its id."""
        pose = np.array(pose, dtype=np.float64)
        if pose.shape != (4, 4):
            raise ValueError(f"pose must be 4x4, got {pose.shape}")
        self.nodes.append(pose)
        return len(self.nodes) - 1

    def add_edge(
        self,
        i: int,
        j: int,
        measurement: np.ndarray,
        weight: float = 1.0,
        kind: str = "odometry",
    ) -> PoseGraphEdge:
        """Add the constraint ``T_i^-1 @ T_j == measurement``."""
        n = len(self.nodes)
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"edge ({i}, {j}) references missing nodes")
        if i == j:
            raise ValueError("self-edges are meaningless")
        if weight <= 0:
            raise ValueError("edge weight must be positive")
        edge = PoseGraphEdge(
            i, j, np.array(measurement, dtype=np.float64), weight, kind
        )
        self._edge_index[id(edge)] = len(self.edges)
        self.edges.append(edge)
        self._adjacency.setdefault(i, set()).add(j)
        self._adjacency.setdefault(j, set()).add(i)
        return edge

    # ------------------------------------------------------------------
    # Error bookkeeping.
    # ------------------------------------------------------------------

    def _residual(self, edge: PoseGraphEdge, poses: list[np.ndarray]) -> np.ndarray:
        return se3.log(
            se3.compose(
                se3.invert(edge.measurement),
                se3.invert(poses[edge.i]),
                poses[edge.j],
            )
        )

    def _robust_terms(
        self, edge: PoseGraphEdge, chi2: float
    ) -> tuple[float, float]:
        """(IRLS weight multiplier, robust cost) of one edge at ``chi2``.

        ``chi2 = weight * ||r||^2`` is the edge's quadratic cost.  Loop
        edges under DCS get the closed-form optimal switch variable
        ``s = min(1, 2*phi / (phi + chi2))``: multiplier ``s^2``, cost
        ``s^2 * chi2 + phi * (s - 1)^2``.  Otherwise the configured
        M-estimator applies — Huber (quadratic to ``delta``, linear
        beyond) or Cauchy (``delta^2 * log1p(chi2 / delta^2)``).  With
        everything off this is exactly ``(1.0, chi2)``, and Huber/DCS
        also return exactly that inside their quadratic regions, which
        is what keeps clean-scene solves bit-identical.
        """
        kernel, delta, phi = self._robust
        if phi is not None and edge.kind == "loop":
            if chi2 <= phi:
                return 1.0, chi2
            s = 2.0 * phi / (phi + chi2)
            return s * s, s * s * chi2 + phi * (s - 1.0) ** 2
        if kernel == "huber":
            if chi2 <= delta * delta:
                return 1.0, chi2
            chi = float(np.sqrt(chi2))
            return delta / chi, delta * (2.0 * chi - delta)
        if kernel == "cauchy":
            scaled = chi2 / (delta * delta)
            return 1.0 / (1.0 + scaled), delta * delta * float(np.log1p(scaled))
        return 1.0, chi2

    def _edge_error(self, edge: PoseGraphEdge) -> float:
        residual = self._residual(edge, self.nodes)
        chi2 = edge.weight * float(residual @ residual)
        return self._robust_terms(edge, chi2)[1]

    def error(self, poses: list[np.ndarray] | None = None) -> float:
        """Total (robustified) weighted squared residual over all edges.

        With no robustness knobs active this is the plain weighted
        quadratic cost; otherwise each edge contributes its robust cost
        — the quantity the solver's monotonicity guarantee is stated
        over.
        """
        poses = self.nodes if poses is None else poses
        total = 0.0
        for edge in self.edges:
            residual = self._residual(edge, poses)
            chi2 = edge.weight * float(residual @ residual)
            total += self._robust_terms(edge, chi2)[1]
        return total

    def _cached_total(self) -> float:
        """Total error, recomputing only edges whose endpoints moved."""
        for index, edge in enumerate(self.edges):
            if index not in self._error_cache:
                self._error_cache[index] = self._edge_error(edge)
        return sum(self._error_cache.values())

    def _invalidate(self, edge_indices: Iterable[int]) -> None:
        for index in edge_indices:
            self._error_cache.pop(index, None)

    # ------------------------------------------------------------------
    # Incremental machinery.
    # ------------------------------------------------------------------

    def _resolve_edges(
        self, new_edges: Sequence[PoseGraphEdge | int]
    ) -> list[int]:
        indices = []
        for item in new_edges:
            if isinstance(item, PoseGraphEdge):
                index = self._edge_index.get(id(item))
                if index is None:
                    raise ValueError("new_edges contains an unknown edge")
            else:
                index = int(item)
                if not 0 <= index < len(self.edges):
                    raise ValueError(f"edge index {index} out of range")
            indices.append(index)
        return indices

    def _hop_neighborhood(self, seeds: set[int], hops: int) -> set[int]:
        """Nodes within ``hops`` graph hops of any seed (seeds included)."""
        seen = set(seeds)
        frontier = set(seeds)
        for _ in range(hops):
            grown: set[int] = set()
            for node in frontier:
                grown |= self._adjacency.get(node, set())
            frontier = grown - seen
            if not frontier:
                break
            seen |= frontier
        return seen

    # ------------------------------------------------------------------
    # The Gauss-Newton core.
    # ------------------------------------------------------------------

    def _assemble(
        self,
        edges: list[tuple[int, PoseGraphEdge]],
        column: dict[int, int],
        size: int,
    ) -> tuple[sparse.csc_matrix, np.ndarray]:
        """Normal equations over the free columns as block triplets."""
        gradient = np.zeros(size)
        row_bases: list[int] = []
        col_bases: list[int] = []
        blocks: list[np.ndarray] = []
        for _, edge in edges:
            col_i = column.get(edge.i)
            col_j = column.get(edge.j)
            if col_i is None and col_j is None:
                continue
            residual, jac_i, jac_j = linearize_edge(
                edge.measurement, self.nodes[edge.i], self.nodes[edge.j]
            )
            # IRLS: the robust kernel enters the normal equations as a
            # per-edge weight multiplier evaluated at the current
            # linearization point (1.0 everywhere when robustness is
            # off, or inside Huber/DCS quadratic regions).
            chi2 = edge.weight * float(residual @ residual)
            scale = edge.weight * self._robust_terms(edge, chi2)[0]
            jacobians = []
            if col_i is not None:
                jacobians.append((col_i, jac_i))
            if col_j is not None:
                jacobians.append((col_j, jac_j))
            for col_a, jac_a in jacobians:
                gradient[col_a : col_a + 6] += scale * (jac_a.T @ residual)
                for col_b, jac_b in jacobians:
                    row_bases.append(col_a)
                    col_bases.append(col_b)
                    blocks.append(scale * (jac_a.T @ jac_b))
        rows = (np.asarray(row_bases)[:, None] + _BLOCK_ROWS[None, :]).ravel()
        cols = (np.asarray(col_bases)[:, None] + _BLOCK_COLS[None, :]).ravel()
        data = np.asarray(blocks).reshape(-1)
        hessian = sparse.coo_matrix(
            (data, (rows, cols)), shape=(size, size)
        ).tocsc()
        return hessian, gradient

    def _gauss_newton(
        self,
        config: PoseGraphConfig,
        free: list[int],
        edges: list[tuple[int, PoseGraphEdge]],
    ) -> tuple[int, bool, float, float]:
        """Damped GN with step rejection over ``free`` nodes and ``edges``.

        Mutates ``self.nodes`` (only the free ones, only via accepted
        steps) and returns ``(iterations, converged, initial_local,
        final_local)`` where the local errors sum over ``edges`` only.
        Accepted steps never increase the local error, hence never the
        total error (edges outside ``edges`` touch no free node).
        """
        column = {node: 6 * slot for slot, node in enumerate(free)}
        size = 6 * len(free)
        identity = sparse.identity(size, format="csc")

        def local_error() -> float:
            return sum(self._edge_error(edge) for _, edge in edges)

        initial_local = local_error()
        previous_error = initial_local
        damping = config.damping
        iterations = 0
        converged = False
        for iterations in range(1, config.max_iterations + 1):
            hessian, gradient = self._assemble(edges, column, size)
            accepted = False
            while True:
                try:
                    delta = splu(hessian + damping * identity).solve(-gradient)
                except RuntimeError:
                    delta = None
                if delta is not None and bool(np.all(np.isfinite(delta))):
                    saved = {node: self.nodes[node] for node in free}
                    for node, col in column.items():
                        step = delta[col : col + 6]
                        if not step.any():
                            continue
                        moved = se3.compose(self.nodes[node], se3.exp(step))
                        # Re-orthonormalize occasionally-accumulating
                        # drift so long optimizations keep returning
                        # valid rigid poses.
                        moved[:3, :3] = se3.orthonormalize_rotation(
                            moved[:3, :3]
                        )
                        self.nodes[node] = moved
                    trial_error = local_error()
                    if trial_error <= previous_error:
                        accepted = True
                        damping = max(config.damping, damping * 0.1)
                        break
                    # The step made things worse: revert and re-solve
                    # the same linearization with heavier damping.
                    for node, pose in saved.items():
                        self.nodes[node] = pose
                damping *= 10.0
                if damping > config.max_damping:
                    break
            if not accepted:
                # No damping level improves the error from here; the
                # poses are untouched since the last accepted step.
                break
            plateaued = (
                abs(previous_error - trial_error)
                <= config.tolerance * (1.0 + trial_error)
            )
            previous_error = trial_error
            if float(np.linalg.norm(delta)) < config.tolerance or plateaued:
                converged = True
                break
        return iterations, converged, initial_local, previous_error

    # ------------------------------------------------------------------
    # The public solve.
    # ------------------------------------------------------------------

    def optimize(
        self,
        config: PoseGraphConfig | None = None,
        fixed: set[int] = frozenset({0}),
        new_edges: Sequence[PoseGraphEdge | int] | None = None,
    ) -> PoseGraphResult:
        """Optimize the graph; updates ``self.nodes`` in place.

        ``fixed`` nodes keep their poses (the gauge freedom of a pose
        graph: without at least one anchor the whole trajectory can
        drift rigidly at zero cost).

        ``new_edges`` — the edges added since the previous call —
        selects the incremental path: only nodes within
        ``config.hop_radius`` hops of the new edges' endpoints are
        re-linearized and solved; the rest of the trajectory is frozen
        and its cached residuals are reused untouched.  A full batch
        relinearization runs instead (or afterwards) on the first call,
        every ``config.relinearize_interval`` incremental calls, or
        when the local solve cannot pull the active neighborhood's
        per-edge error back near the last batch level.  Both paths
        reject error-increasing steps, so ``final_error <=
        initial_error`` in the result, always.
        """
        config = config or PoseGraphConfig()
        robust = (
            config.robust_kernel, config.robust_delta, config.loop_switch_phi
        )
        if robust != self._robust:
            # Cached errors and the batch escalation reference were
            # computed under the previous robustification — both are
            # stale the moment the cost function changes.
            self._robust = robust
            self._error_cache.clear()
            self._batch_edge_error = None
        free = [n for n in range(len(self.nodes)) if n not in fixed]
        if not free or not self.edges:
            total = self.error()
            return PoseGraphResult(
                [pose.copy() for pose in self.nodes], 0, total, total, True
            )

        initial_error = self._cached_total()
        iterations = 0
        converged = True
        mode = "batch"
        n_active = len(free)
        final_error = initial_error

        run_batch = True
        if new_edges is not None and self._batch_edge_error is not None:
            if self._calls_since_batch < config.relinearize_interval:
                seeds: set[int] = set()
                for index in self._resolve_edges(new_edges):
                    seeds.add(self.edges[index].i)
                    seeds.add(self.edges[index].j)
                active = self._hop_neighborhood(seeds, config.hop_radius)
                active -= set(fixed)
                if len(active) < len(free):
                    active_nodes = sorted(active)
                    active_edges = [
                        (index, edge)
                        for index, edge in enumerate(self.edges)
                        if edge.i in active or edge.j in active
                    ]
                    mode = "incremental"
                    n_active = len(active_nodes)
                    self._calls_since_batch += 1
                    run_batch = False
                    if active_nodes:
                        its, converged, local_initial, local_final = (
                            self._gauss_newton(
                                config, active_nodes, active_edges
                            )
                        )
                        iterations += its
                        self._invalidate(index for index, _ in active_edges)
                        final_error = initial_error - (
                            local_initial - local_final
                        )
                        # Escalate when the neighborhood stays strained
                        # well past the level the last batch achieved:
                        # the correction must spread globally.
                        per_edge = local_final / max(len(active_edges), 1)
                        threshold = (
                            config.escalation_factor * self._batch_edge_error
                            + config.tolerance
                        )
                        if per_edge > threshold:
                            run_batch = True
                            mode = "incremental+batch"

        if run_batch:
            indexed = list(enumerate(self.edges))
            its, converged, _, final_error = self._gauss_newton(
                config, free, indexed
            )
            iterations += its
            self._error_cache.clear()
            self._batch_edge_error = final_error / len(self.edges)
            self._calls_since_batch = 0
            if mode == "batch":
                n_active = len(free)

        edge_chi2: list[float] = []
        edge_robust_weights: list[float] = []
        n_downweighted_loops = 0
        if config.robust_kernel is not None or config.loop_switch_phi is not None:
            # One O(E) diagnostic pass at the final poses: which edges
            # did the robustification actually bend?  Skipped entirely
            # on quadratic solves so the incremental path stays cheap.
            for edge in self.edges:
                residual = self._residual(edge, self.nodes)
                chi2 = edge.weight * float(residual @ residual)
                multiplier = self._robust_terms(edge, chi2)[0]
                edge_chi2.append(chi2)
                edge_robust_weights.append(multiplier)
                if edge.kind == "loop" and multiplier < 1.0:
                    n_downweighted_loops += 1

        return PoseGraphResult(
            [pose.copy() for pose in self.nodes],
            iterations,
            initial_error,
            final_error,
            converged,
            mode,
            n_active,
            edge_chi2,
            edge_robust_weights,
            n_downweighted_loops,
        )
