"""The reference urban_loop mapping configuration.

One registration pipeline and one mapper configuration are shared by
everything that tells the loop-closure story — ``examples/mapping.py``,
``benchmarks/bench_mapping.py``, the golden
``mapping_urban_loop`` regression scenario, and the acceptance tests in
``tests/mapping/`` — so the numbers they produce (and the README's
drift table) stay mutually comparable by construction rather than by
four hand-synchronized copies.  Mirrors the role
:mod:`repro.registration.design_points` plays for the paper's DP1-DP8
configurations.
"""

from __future__ import annotations

from repro.mapping.keyframes import KeyframeConfig
from repro.mapping.mapper import MapperConfig
from repro.registration.correspondence import RPCEConfig
from repro.registration.icp import ICPConfig
from repro.registration.keypoints import KeypointConfig
from repro.registration.pipeline import Pipeline, PipelineConfig

__all__ = ["urban_loop_pipeline", "urban_loop_mapper_config"]


def urban_loop_pipeline() -> Pipeline:
    """The registration pipeline of the urban_loop mapping scenario.

    Uniform keypoints over a coarse voxel grid, point-to-plane ICP with
    a modest per-pair iteration budget (loop verification raises its
    own cap via ``LoopClosureConfig.icp_max_iterations``), and a 0.8 m
    voxel downsample to keep full-circuit runs in test-suite time.
    """
    return Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(
                method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
            ),
            icp=ICPConfig(
                rpce=RPCEConfig(max_distance=2.0),
                error_metric="point_to_plane",
                max_iterations=15,
            ),
            voxel_downsample=0.8,
        )
    )


def urban_loop_mapper_config(**overrides) -> MapperConfig:
    """The mapper configuration of the urban_loop mapping scenario.

    Keyframes every ~1.5 m / 20 deg — roughly every other frame of the
    48-frame two-lap circuit — with the stock loop-closure, pose-graph,
    and voxel-map defaults.  The stock
    :class:`~repro.mapping.pose_graph.PoseGraphConfig` defaults
    (``hop_radius=5``, ``escalation_factor=1.5``) are tuned so the
    sparse incremental back end reproduces this scenario's batch-solver
    trajectory exactly — the ``mapping_urban_loop`` golden holds with
    the incremental path enabled.  ``overrides`` pass through to
    :class:`~repro.mapping.mapper.MapperConfig` (e.g.
    ``enable_loop_closure=False`` for the open-loop comparison legs).
    """
    return MapperConfig(
        keyframes=KeyframeConfig(
            translation_threshold=1.5, rotation_threshold_deg=20.0
        ),
        **overrides,
    )
