"""The streaming SLAM engine: odometry front end + graph back end + map.

:class:`StreamingMapper` wraps the PR-2
:class:`~repro.registration.odometry.StreamingOdometry` engine — every
frame is still preprocessed exactly once, registered against its
predecessor, and handed forward as the next pair's target — and layers
the mapping subsystem on top: keyframe selection
(:mod:`repro.mapping.keyframes`), pose-proximity loop closure reusing
the keyframes' cached artifacts (:mod:`repro.mapping.loop_closure`),
SE(3) pose-graph optimization (:mod:`repro.mapping.pose_graph`), and an
incremental re-anchorable voxel map (:mod:`repro.mapping.voxel_map`).

With loop closure disabled (or none detected) the mapper is a strict
superset of streaming odometry: :meth:`StreamingMapper.trajectory`
returns the *bit-identical* open-loop trajectory, because no
optimization has touched it.  Once a loop closes, the pose graph
redistributes the accumulated drift over the keyframes, every frame is
re-expressed relative to its reference keyframe, and the voxel map is
re-anchored — the first place in the codebase where drift is actually
corrected rather than measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import se3
from repro.io.pointcloud import PointCloud
from repro.mapping.keyframes import Keyframe, KeyframeConfig, KeyframePolicy
from repro.mapping.loop_closure import LoopCloser, LoopClosure, LoopClosureConfig
from repro.mapping.pose_graph import PoseGraph, PoseGraphConfig
from repro.mapping.voxel_map import VoxelMap, VoxelMapConfig
from repro.profiling.timer import StageProfiler
from repro.registration.health import HealthConfig, assess_registration
from repro.registration.odometry import RecoveryConfig, StreamingOdometry
from repro.registration.pipeline import Pipeline, RegistrationResult
from repro.telemetry import NULL_TRACER

__all__ = ["MapperConfig", "MappingStats", "StreamingMapper"]


@dataclass(frozen=True)
class MapperConfig:
    """Every knob of the SLAM subsystem, grouped by component.

    The failure-aware knobs (both ``None`` by default — clean behavior
    is bit-identical to the health-unaware mapper): ``recovery``
    enables the odometry front end's health assessment + recovery
    ladder, and frames whose pair ended unhealthy/bridged produce
    *quarantined* keyframes that never anchor loop closures.
    ``closure_health`` adds a health gate on top of the loop closer's
    own verification thresholds: a verified closure whose registration
    is degenerate (corridor geometry) or otherwise unhealthy is
    rejected — and counted — instead of entering the pose graph.
    Robust kernels / switchable loop constraints are configured on
    ``pose_graph`` (see
    :class:`~repro.mapping.pose_graph.PoseGraphConfig`).
    """

    keyframes: KeyframeConfig = field(default_factory=KeyframeConfig)
    loop_closure: LoopClosureConfig = field(default_factory=LoopClosureConfig)
    pose_graph: PoseGraphConfig = field(default_factory=PoseGraphConfig)
    voxel_map: VoxelMapConfig = field(default_factory=VoxelMapConfig)
    enable_loop_closure: bool = True
    loop_edge_weight: float = 1.0
    recovery: RecoveryConfig | None = None
    closure_health: HealthConfig | None = None


@dataclass
class MappingStats:
    """Work counters for one mapping run.

    ``n_preprocess`` counts per-frame preprocessing passes through the
    pipeline — by construction exactly one per ingested frame, loop
    verification included (the acceptance invariant of the subsystem).
    """

    n_frames: int = 0
    n_keyframes: int = 0
    n_preprocess: int = 0
    n_feature_extensions: int = 0
    n_loop_candidates: int = 0
    n_loop_verifications: int = 0
    n_loop_closures: int = 0
    n_optimizations: int = 0
    optimization_iterations: int = 0
    n_map_points: int = 0
    n_map_voxels: int = 0
    n_reanchored: int = 0
    n_quarantined_keyframes: int = 0
    n_rejected_closures: int = 0
    loop_seconds: float = 0.0
    optimize_seconds: float = 0.0
    reanchor_seconds: float = 0.0

    def summary(self) -> str:
        health = ""
        if self.n_quarantined_keyframes or self.n_rejected_closures:
            health = (
                f" ({self.n_quarantined_keyframes} quarantined keyframe(s), "
                f"{self.n_rejected_closures} health-rejected closure(s))"
            )
        return (
            f"{self.n_frames} frames -> {self.n_keyframes} keyframes, "
            f"{self.n_loop_closures} loop closure(s) from "
            f"{self.n_loop_candidates} candidate(s){health}, "
            f"{self.n_optimizations} optimization(s) "
            f"({self.optimization_iterations} GN iterations, "
            f"{self.optimize_seconds:.2f}s solve / "
            f"{self.reanchor_seconds:.2f}s re-anchor), "
            f"map {self.n_map_voxels} voxels / {self.n_map_points} points"
        )


class StreamingMapper:
    """Streaming SLAM: ingest frames one at a time, keep a global map.

    Usage::

        mapper = StreamingMapper(pipeline)
        for frame in frames:
            mapper.push(frame)
        poses = mapper.trajectory()     # loop-corrected absolute poses
        cloud = mapper.global_map()     # fused voxel map as a PointCloud
        print(mapper.stats.summary())
    """

    def __init__(
        self,
        pipeline: Pipeline,
        config: MapperConfig | None = None,
        seed_with_previous: bool = True,
        tracer=None,
    ):
        self.pipeline = pipeline
        self.config = config or MapperConfig()
        # Optional repro.telemetry.Tracer.  Threads through the odometry
        # engine (per-pair spans) and the loop-closure profiler (stage
        # spans under verify), and adds the mapper's own structural
        # spans: frame -> keyframe -> loop_closure/verify ->
        # pose_graph.optimize/re_anchor.
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.odometry = StreamingOdometry(
            pipeline,
            seed_with_previous=seed_with_previous,
            tracer=tracer,
            recovery=self.config.recovery,
        )
        self.policy = KeyframePolicy(self.config.keyframes)
        self.closer = LoopCloser(pipeline, self.config.loop_closure)
        self.graph = PoseGraph()
        self.map = VoxelMap(self.config.voxel_map)
        self.keyframes: list[Keyframe] = []
        self.loop_closures: list[LoopClosure] = []
        self.stats = MappingStats()
        self.loop_profiler = StageProfiler(tracer=tracer)
        # Open-loop chained odometry poses, one per frame; element k is
        # built exactly like metrics.trajectory_from_relative does, so
        # the unoptimized trajectory stays bit-identical to the
        # streaming-odometry driver's.
        self._odom_poses: list[np.ndarray] = []
        # Current best keyframe pose estimates (pose-graph nodes).
        self._kf_poses: list[np.ndarray] = []
        # Per frame: (reference keyframe id, relative transform from the
        # keyframe to the frame; None for the keyframe itself).
        self._anchors: list[tuple[int, np.ndarray | None]] = []
        self._optimized = False
        # Edges already seen by the optimizer; everything past this
        # index is handed to the next optimize() call as `new_edges`
        # so the back end can run its incremental path.
        self._n_optimized_edges = 0

    # ------------------------------------------------------------------
    # Ingestion.
    # ------------------------------------------------------------------

    @property
    def n_frames(self) -> int:
        return len(self._odom_poses)

    def push(self, frame: PointCloud) -> RegistrationResult | None:
        """Feed the next frame through odometry, keyframing, and closure.

        Returns the frame-to-frame :class:`RegistrationResult` (``None``
        for the very first frame), exactly like the odometry engine.
        """
        with self.tracer.span("frame", index=self.n_frames):
            result = self.odometry.push(frame)
            self.stats.n_frames += 1
            self.stats.n_preprocess += 1

            if result is None:
                self._odom_poses.append(se3.identity())
            else:
                self._odom_poses.append(
                    se3.compose(self._odom_poses[-1], result.transformation)
                )
            odom_pose = self._odom_poses[-1]
            frame_index = len(self._odom_poses) - 1

            # With the recovery ladder active, a frame whose pair ended
            # unhealthy (bridged by the motion model or simply beyond
            # saving) taints any keyframe built on it.
            degraded = False
            if result is not None and self.config.recovery is not None:
                health = self.odometry.stats.pair_health[-1]
                degraded = health is not None and not health.healthy

            last = self.keyframes[-1] if self.keyframes else None
            if self.policy.is_keyframe(
                None if last is None else last.odometry_pose, odom_pose
            ):
                self._add_keyframe(frame_index, odom_pose, quarantined=degraded)
            else:
                relative = se3.compose(
                    se3.invert(last.odometry_pose), odom_pose
                )
                self._anchors.append((last.index, relative))
            return result

    def _add_keyframe(
        self, frame_index: int, odom_pose: np.ndarray, quarantined: bool = False
    ) -> None:
        state = self.odometry.target_state
        keyframe = Keyframe(
            index=len(self.keyframes),
            frame_index=frame_index,
            odometry_pose=odom_pose,
            state=state,
            quarantined=quarantined,
        )
        self.tracer.annotate(keyframe=keyframe.index)
        self.tracer.count("keyframes")
        if quarantined:
            self.stats.n_quarantined_keyframes += 1
            self.tracer.count("quarantined_keyframes")
        self.keyframes.append(keyframe)
        self.stats.n_keyframes += 1
        self._anchors.append((keyframe.index, None))

        if keyframe.index == 0:
            estimate = odom_pose
            self.graph.add_node(estimate)
        else:
            # The odometry edge is measured in the drift frame (pure
            # chained odometry); the node's initial estimate rides the
            # previous keyframe's *optimized* pose instead, so closing
            # a second loop starts from the best trajectory so far.
            previous = self.keyframes[-2]
            odometry_edge = se3.compose(
                se3.invert(previous.odometry_pose), odom_pose
            )
            estimate = se3.compose(self._kf_poses[previous.index], odometry_edge)
            self.graph.add_node(estimate)
            self.graph.add_edge(
                previous.index, keyframe.index, odometry_edge, kind="odometry"
            )
        self._kf_poses.append(estimate)
        self.map.insert(keyframe.index, state.cloud.points, estimate)

        # A quarantined keyframe never anchors closures — not even as
        # the closing side (its own pose estimate is the suspect part).
        if self.config.enable_loop_closure and not keyframe.quarantined:
            self._close_loops(keyframe)
        self._refresh_map_stats()

    def _close_loops(self, keyframe: Keyframe) -> None:
        tracer = self.tracer
        start = time.perf_counter()
        closed = False
        with tracer.span("loop_closure", keyframe=keyframe.index):
            candidates = self.closer.candidates(
                self.keyframes, self._kf_poses, keyframe.index
            )
            tracer.annotate(n_candidates=len(candidates))
            tracer.count("loop_candidates", len(candidates))
            self.stats.n_loop_candidates += len(candidates)
            for candidate in candidates:
                target = self.keyframes[candidate]
                estimated_relative = se3.compose(
                    se3.invert(self._kf_poses[target.index]),
                    self._kf_poses[keyframe.index],
                )
                self.stats.n_loop_verifications += 1
                tracer.count("loop_verifications")
                with tracer.span("verify", target=target.index):
                    closure = self.closer.verify(
                        keyframe,
                        target,
                        estimated_relative,
                        profiler=self.loop_profiler,
                    )
                    tracer.annotate(accepted=closure is not None)
                if closure is None:
                    continue
                if self.config.closure_health is not None:
                    closure_health = assess_registration(
                        closure.result,
                        self.config.closure_health,
                        prior=estimated_relative,
                    )
                    if not closure_health.healthy:
                        self.stats.n_rejected_closures += 1
                        tracer.count("loop_rejected")
                        tracer.annotate(
                            rejected=",".join(closure_health.reasons)
                        )
                        continue
                self.loop_closures.append(closure)
                self.stats.n_loop_closures += 1
                tracer.count("loop_closures")
                self.graph.add_edge(
                    closure.target_index,
                    closure.source_index,
                    closure.relative,
                    weight=self.config.loop_edge_weight,
                    kind="loop",
                )
                closed = True
            self.stats.n_feature_extensions = self.closer.n_feature_extensions
        self.stats.loop_seconds += time.perf_counter() - start
        if closed:
            self._optimize()

    def _optimize(self) -> None:
        tracer = self.tracer
        start = time.perf_counter()
        new_edges = list(
            range(self._n_optimized_edges, len(self.graph.edges))
        )
        with tracer.span(
            "pose_graph.optimize",
            n_nodes=len(self.graph.nodes),
            n_edges=len(self.graph.edges),
            n_new_edges=len(new_edges),
        ):
            result = self.graph.optimize(
                self.config.pose_graph, new_edges=new_edges
            )
            tracer.annotate(
                mode=result.mode,
                n_active_nodes=result.n_active_nodes,
                iterations=result.iterations,
                converged=result.converged,
            )
            tracer.count("optimizations")
            tracer.count("gn_iterations", result.iterations)
        self._n_optimized_edges = len(self.graph.edges)
        self._kf_poses = [np.array(pose) for pose in result.poses]
        self.stats.n_optimizations += 1
        self.stats.optimization_iterations += result.iterations
        self.stats.optimize_seconds += time.perf_counter() - start
        # Map maintenance is not solver time: account it separately so
        # back-end speedups are attributed honestly.
        start = time.perf_counter()
        with tracer.span("re_anchor"):
            n_reanchored = self.map.re_anchor(dict(enumerate(self._kf_poses)))
            tracer.annotate(n_reanchored=n_reanchored)
            tracer.count("reanchored_voxels", n_reanchored)
        self.stats.n_reanchored += n_reanchored
        self.stats.reanchor_seconds += time.perf_counter() - start
        self._optimized = True

    def _refresh_map_stats(self) -> None:
        self.stats.n_map_points = self.map.n_points
        self.stats.n_map_voxels = self.map.n_voxels

    # ------------------------------------------------------------------
    # Outputs.
    # ------------------------------------------------------------------

    def keyframe_poses(self) -> list[np.ndarray]:
        """Current best absolute pose per keyframe."""
        return [pose.copy() for pose in self._kf_poses]

    def trajectory(self) -> list[np.ndarray]:
        """Current best absolute pose per ingested frame.

        Until a loop closure triggers optimization this is the chained
        open-loop odometry, bit-identical to
        :func:`~repro.registration.odometry.run_streaming_odometry`'s
        trajectory over the same frames.  Afterwards every frame rides
        its reference keyframe's optimized pose.
        """
        if not self._optimized:
            return [pose.copy() for pose in self._odom_poses]
        poses = []
        for keyframe_id, relative in self._anchors:
            anchor = self._kf_poses[keyframe_id]
            if relative is None:
                poses.append(anchor.copy())
            else:
                poses.append(se3.compose(anchor, relative))
        return poses

    def global_map(self) -> PointCloud:
        """The fused global voxel map as a point cloud (with counts)."""
        return self.map.to_cloud()
