"""Keyframe selection for the streaming SLAM subsystem.

A SLAM back end cannot afford to carry every frame: the pose graph,
loop-closure search, and global map all scale with the number of nodes.
The standard answer is *keyframes* — frames retained only when the
sensor has moved far enough (translation or rotation) from the last
retained one.  Each keyframe keeps the
:class:`~repro.registration.pipeline.FrameState` the streaming odometry
front end already produced for it, so later loop-closure verification
replays **zero** preprocessing: the downsampled cloud, normals, search
index, and (lazily) keypoints/descriptors are all reused.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import se3
from repro.registration.pipeline import FrameState

__all__ = ["KeyframeConfig", "Keyframe", "KeyframePolicy"]


@dataclass(frozen=True)
class KeyframeConfig:
    """Motion thresholds that promote a frame to keyframe.

    A frame becomes a keyframe when its estimated motion since the last
    keyframe exceeds ``translation_threshold`` meters **or**
    ``rotation_threshold_deg`` degrees.  The defaults suit the synthetic
    sequences (~1-2 m, ~10-25 deg per frame); real outdoor LiDAR rigs
    typically use a few meters.  Thresholds of zero retain every frame.
    """

    translation_threshold: float = 1.0
    rotation_threshold_deg: float = 10.0

    def __post_init__(self):
        if self.translation_threshold < 0 or self.rotation_threshold_deg < 0:
            raise ValueError("keyframe thresholds must be non-negative")


@dataclass
class Keyframe:
    """One retained frame: identity, pose bookkeeping, reusable artifacts.

    ``index`` is the keyframe's id (dense, 0-based — also its pose-graph
    node id); ``frame_index`` locates it in the ingested stream.
    ``odometry_pose`` is the *open-loop* chained pose at creation time
    and never changes afterwards — odometry edges are derived from it.
    ``state`` is the front end's preprocessed ``FrameState``; the loop
    closer may swap in a feature-extended copy (``ensure_features``
    never mutates, so the original odometry artifacts stay intact).
    ``quarantined`` marks a keyframe whose pose rests on an unhealthy
    or motion-model-bridged registration: it still chains through the
    pose graph (the trajectory needs the node) but never anchors a
    loop closure — neither as the closing keyframe nor as a candidate
    — because a closure measured against a misplaced anchor would
    inject exactly the kind of false constraint the robust back end
    exists to contain.
    """

    index: int
    frame_index: int
    odometry_pose: np.ndarray
    state: FrameState
    quarantined: bool = False


class KeyframePolicy:
    """Decides which frames are retained, by motion thresholds."""

    def __init__(self, config: KeyframeConfig | None = None):
        self.config = config or KeyframeConfig()

    def is_keyframe(
        self, last_keyframe_pose: np.ndarray | None, pose: np.ndarray
    ) -> bool:
        """Whether ``pose`` has moved beyond threshold since the last keyframe.

        The very first frame (``last_keyframe_pose is None``) is always
        a keyframe — something must anchor the graph and the map.
        """
        if last_keyframe_pose is None:
            return True
        rotation, translation = se3.transform_distance(last_keyframe_pose, pose)
        return (
            translation >= self.config.translation_threshold
            or np.degrees(rotation) >= self.config.rotation_threshold_deg
        )
