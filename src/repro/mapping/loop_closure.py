"""Loop-closure detection and verification.

Candidates are found by **pose proximity**: keyframes whose estimated
position lies within a search radius of the current keyframe, excluding
the most recent ones (the previous few keyframes are always nearby —
that is odometry, not a loop).  Each candidate is then verified by
registering the two keyframes' cached
:class:`~repro.registration.pipeline.FrameState` artifacts through the
existing :meth:`~repro.registration.pipeline.Pipeline.match` path, so
verification pays zero re-preprocessing.  By default the estimated
relative pose (which candidate detection just proved is small) seeds
ICP directly; setting ``seed_with_estimate=False`` runs the pipeline's
initial-estimation phase instead — KPCE over keypoint descriptors,
then rejection — the prior-free path for relocalization-style use,
extending the cached states with features at most once per keyframe.

A verified closure yields the measured relative transform between two
far-apart trajectory points; the pose graph turns that single
measurement into a correction of the whole drift-contaminated interior.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.geometry import se3
from repro.mapping.keyframes import Keyframe
from repro.profiling.timer import StageProfiler
from repro.registration.pipeline import Pipeline, RegistrationResult

__all__ = ["LoopClosureConfig", "LoopClosure", "LoopCloser"]


@dataclass(frozen=True)
class LoopClosureConfig:
    """Candidate gating and verification thresholds.

    ``min_keyframe_gap`` keyframes must separate the pair (excluding
    recency); candidates must lie within ``max_distance`` meters of the
    current pose estimate, nearest first, at most ``max_candidates``
    verified per keyframe.  A verification passes when ICP succeeds
    with at least ``min_correspondences`` matches and RMSE at most
    ``max_rmse``, and the measured transform disagrees with the
    pose-graph estimate by no more than ``max_correction_translation``
    meters / ``max_correction_rotation_deg`` degrees (drift is the
    signal, but a wild disagreement is a false positive).

    ``seed_with_estimate=True`` (the default) seeds ICP with the
    estimated relative pose — candidate detection already established
    it is within the search radius, which is strictly more informative
    than starting from identity; ``False`` runs the pipeline's
    KPCE/descriptor initial-estimation phase instead (the prior-free
    path).  ``icp_max_iterations``, when set, raises the fine-tuning
    iteration cap for verification only: a loop pair starts a whole
    drift further from alignment than an odometry pair, so the
    pipeline's per-pair budget is often one convergence notch too low.
    """

    min_keyframe_gap: int = 4
    max_distance: float = 4.0
    max_candidates: int = 2
    min_correspondences: int = 25
    max_rmse: float = 1.0
    max_correction_translation: float = 3.0
    max_correction_rotation_deg: float = 30.0
    seed_with_estimate: bool = True
    icp_max_iterations: int | None = 50


@dataclass
class LoopClosure:
    """One verified loop: edge endpoints, measurement, and evidence.

    ``relative`` maps the *newer* keyframe's coordinates into the
    *older* keyframe's frame — i.e. the pose-graph measurement for the
    edge ``(older, newer)``.
    """

    source_index: int
    target_index: int
    relative: np.ndarray
    result: RegistrationResult


class LoopCloser:
    """Finds and verifies loop closures over a keyframe history."""

    def __init__(self, pipeline: Pipeline, config: LoopClosureConfig | None = None):
        self.pipeline = pipeline
        self.config = config or LoopClosureConfig()
        self.n_feature_extensions = 0
        self._verification_pipeline: Pipeline | None = None

    def _matcher(self) -> Pipeline:
        """The pipeline verification matches through.

        Identical to the odometry pipeline except for the optional
        ICP iteration-cap raise; front-end configuration is untouched,
        so the cached ``FrameState`` artifacts remain exactly valid.
        """
        if self.config.icp_max_iterations is None:
            return self.pipeline
        if self._verification_pipeline is None:
            base = self.pipeline.config
            self._verification_pipeline = Pipeline(
                replace(
                    base,
                    icp=replace(
                        base.icp, max_iterations=self.config.icp_max_iterations
                    ),
                )
            )
        return self._verification_pipeline

    def candidates(
        self,
        keyframes: list[Keyframe],
        poses: list[np.ndarray],
        current: int,
    ) -> list[int]:
        """Older keyframe indices worth verifying against ``current``.

        ``poses`` are the current best pose estimates per keyframe.
        Candidates are sorted nearest-first and truncated to
        ``max_candidates``.
        """
        position = se3.translation_part(poses[current])
        scored: list[tuple[float, int]] = []
        for keyframe in keyframes:
            if keyframe.quarantined:
                # A quarantined keyframe's pose is a bridge/unhealthy
                # estimate; a closure measured against it would anchor
                # the graph to a position nobody verified.
                continue
            if keyframe.index >= current - self.config.min_keyframe_gap:
                continue
            distance = float(
                np.linalg.norm(
                    se3.translation_part(poses[keyframe.index]) - position
                )
            )
            if distance <= self.config.max_distance:
                scored.append((distance, keyframe.index))
        scored.sort()
        return [index for _, index in scored[: self.config.max_candidates]]

    def verify(
        self,
        source: Keyframe,
        target: Keyframe,
        estimated_relative: np.ndarray,
        profiler: StageProfiler | None = None,
    ) -> LoopClosure | None:
        """Register ``source`` (newer) against ``target`` (older).

        Reuses both keyframes' cached ``FrameState``; when the feature
        path is active, states are extended with keypoints/descriptors
        at most once per keyframe (the extended state is cached back on
        the ``Keyframe``).  Returns the verified closure or ``None``.
        """
        config = self.config
        seed = config.seed_with_estimate
        if not seed:
            for keyframe in (source, target):
                if not keyframe.state.has_features:
                    keyframe.state = self.pipeline.ensure_features(
                        keyframe.state, profiler=profiler
                    )
                    self.n_feature_extensions += 1
        result = self._matcher().match(
            source.state,
            target.state,
            initial=np.array(estimated_relative, dtype=np.float64) if seed else None,
            profiler=profiler,
        )

        if not (result.success and result.icp.converged):
            return None
        if result.icp.n_correspondences < config.min_correspondences:
            return None
        if result.icp.rmse > config.max_rmse:
            return None
        rotation, translation = se3.transform_distance(
            estimated_relative, result.transformation
        )
        if (
            translation > config.max_correction_translation
            or np.degrees(rotation) > config.max_correction_rotation_deg
        ):
            return None
        return LoopClosure(
            source_index=source.index,
            target_index=target.index,
            relative=result.transformation,
            result=result,
        )
