"""Design-space exploration harness (paper Sec. 3.2, Fig. 3/4)."""

from repro.dse.explorer import (
    ExplorationReport,
    FrameStateCache,
    evaluate_config,
    explore,
)
from repro.dse.grid import (
    SweepSpec,
    default_sweep,
    fingerprint_groups,
    parameter_grid,
)
from repro.dse.pareto import (
    DesignPointResult,
    aggregate_across_scenes,
    is_dominated,
    pareto_frontier,
)

__all__ = [
    "DesignPointResult",
    "pareto_frontier",
    "is_dominated",
    "aggregate_across_scenes",
    "evaluate_config",
    "explore",
    "ExplorationReport",
    "FrameStateCache",
    "SweepSpec",
    "parameter_grid",
    "default_sweep",
    "fingerprint_groups",
]
