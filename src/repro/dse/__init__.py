"""Design-space exploration harness (paper Sec. 3.2, Fig. 3/4)."""

from repro.dse.explorer import ExplorationReport, evaluate_config, explore
from repro.dse.grid import SweepSpec, default_sweep, parameter_grid
from repro.dse.pareto import DesignPointResult, is_dominated, pareto_frontier

__all__ = [
    "DesignPointResult",
    "pareto_frontier",
    "is_dominated",
    "evaluate_config",
    "explore",
    "ExplorationReport",
    "SweepSpec",
    "parameter_grid",
    "default_sweep",
]
