"""Parametric design-space grids (paper Sec. 3.2).

The paper's DSE sweeps both *algorithmic* choices (which detector,
which descriptor, ...) and *parametric* choices within an algorithm
(search radii, thresholds, iteration budgets — Table 1's "Key
Parameters" row).  :func:`parameter_grid` expands a compact sweep
specification into named pipeline configurations ready for
:func:`repro.dse.explore`, so a Fig. 3-style scatter can be produced
over any slice of the space.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.core.gridhash import GridHashConfig
from repro.registration.correspondence import KPCEConfig, RPCEConfig
from repro.registration.descriptors import DescriptorConfig
from repro.registration.icp import ICPConfig
from repro.registration.keypoints import KeypointConfig
from repro.registration.normals import NormalEstimationConfig
from repro.registration.pipeline import PipelineConfig
from repro.registration.rejection import RejectionConfig
from repro.registration.search import SearchConfig

__all__ = [
    "SweepSpec",
    "parameter_grid",
    "default_sweep",
    "fingerprint_groups",
]

# The knobs a sweep specification may set, mapped to builders.  Each
# value list entry is substituted into the base config.
_KNOWN_KNOBS = (
    "normal_method",
    "normal_radius",
    "keypoint_method",
    "descriptor_method",
    "descriptor_radius",
    "kpce_reciprocal",
    "rejection_method",
    "icp_metric",
    "icp_solver",
    "icp_max_iterations",
    "icp_max_distance",
    "search_backend",
    "search_leaf_size",
    "search_gridhash_cell",
    "search_gridhash_max_candidates",
)


class SweepSpec(dict):
    """A mapping of knob name -> list of values to sweep.

    Unknown knob names are rejected eagerly so typos do not silently
    produce an unswept axis.
    """

    def __init__(self, **knobs):
        for name in knobs:
            if name not in _KNOWN_KNOBS:
                raise ValueError(
                    f"unknown sweep knob {name!r}; known: {_KNOWN_KNOBS}"
                )
            if not knobs[name]:
                raise ValueError(f"knob {name!r} has no values")
        super().__init__(**knobs)


def _build_config(assignment: dict) -> PipelineConfig:
    """Materialize one grid point into a PipelineConfig."""
    normals = NormalEstimationConfig(
        method=assignment.get("normal_method", "plane_svd"),
        radius=assignment.get("normal_radius", 0.5),
    )
    keypoints_method = assignment.get("keypoint_method", "uniform")
    keypoint_params = {
        "uniform": {"voxel_size": 3.0},
        "harris": {"radius": 1.0, "threshold": 1e-5},
        "narf": {"support_size": 2.0},
        "sift": {"min_scale": 0.4, "n_octaves": 2, "scales_per_octave": 2},
    }[keypoints_method]
    descriptor = DescriptorConfig(
        method=assignment.get("descriptor_method", "fpfh"),
        radius=assignment.get("descriptor_radius", 1.0),
    )
    kpce = KPCEConfig(reciprocal=assignment.get("kpce_reciprocal", True))
    rejection = RejectionConfig(
        method=assignment.get("rejection_method", "ransac"),
        ransac_threshold=0.6,
        ransac_iterations=150,
    )
    icp = ICPConfig(
        rpce=RPCEConfig(
            max_distance=assignment.get("icp_max_distance", 2.0)
        ),
        error_metric=assignment.get("icp_metric", "point_to_point"),
        solver=assignment.get("icp_solver", "svd"),
        max_iterations=assignment.get("icp_max_iterations", 20),
    )
    search = SearchConfig(
        backend=assignment.get("search_backend", "twostage"),
        leaf_size=assignment.get("search_leaf_size", 64),
        gridhash=GridHashConfig(
            cell_size=assignment.get("search_gridhash_cell", 1.0),
            max_candidates=assignment.get("search_gridhash_max_candidates"),
        ),
    )
    return PipelineConfig(
        normals=normals,
        keypoints=KeypointConfig(method=keypoints_method, params=keypoint_params),
        descriptor=descriptor,
        kpce=kpce,
        rejection=rejection,
        icp=icp,
        search=search,
    )


def parameter_grid(spec: SweepSpec) -> Iterator[tuple[str, PipelineConfig]]:
    """Yield (name, config) for the cartesian product of the sweep.

    Names encode the assignment (``nr=0.3|im=10``-style) so DSE results
    remain traceable to their knob values.
    """
    knob_names = sorted(spec)
    value_lists = [spec[name] for name in knob_names]
    short = {
        "normal_method": "nm",
        "normal_radius": "nr",
        "keypoint_method": "kp",
        "descriptor_method": "dm",
        "descriptor_radius": "dr",
        "kpce_reciprocal": "rc",
        "rejection_method": "rj",
        "icp_metric": "em",
        "icp_solver": "sv",
        "icp_max_iterations": "im",
        "icp_max_distance": "md",
        "search_backend": "sb",
        "search_leaf_size": "ls",
        "search_gridhash_cell": "gc",
        "search_gridhash_max_candidates": "gm",
    }
    for values in itertools.product(*value_lists):
        assignment = dict(zip(knob_names, values))
        name = "|".join(
            f"{short[k]}={assignment[k]}" for k in knob_names
        )
        yield name, _build_config(assignment)


def fingerprint_groups(
    configs: dict[str, PipelineConfig],
) -> dict[tuple, dict[str, PipelineConfig]]:
    """Group named configurations by front-end fingerprint.

    Grid points that differ only in pairwise knobs (KPCE, rejection,
    ICP) share the per-frame preprocessing — tree build, normals,
    keypoints, descriptors — so the explorer evaluates each group with
    one shared set of :class:`~repro.registration.pipeline.FrameState`
    artifacts.  Insertion order is preserved within and across groups,
    keeping reports deterministic.
    """
    groups: dict[tuple, dict[str, PipelineConfig]] = {}
    for name, config in configs.items():
        groups.setdefault(config.frontend_fingerprint(), {})[name] = config
    return groups


def default_sweep() -> SweepSpec:
    """A compact 2x2x2 slice of Table 1 used by tests and examples."""
    return SweepSpec(
        normal_radius=[0.3, 0.6],
        icp_metric=["point_to_point", "point_to_plane"],
        icp_max_iterations=[8, 20],
    )
