"""Design-space exploration driver (paper Sec. 3.2).

Evaluates pipeline configurations over a synthetic sequence, measuring
registration accuracy (KITTI-style errors against ground truth) and
execution time, and produces the raw material for Fig. 3 (the
accuracy/performance scatter + Pareto frontier) and Fig. 4 (the
per-stage and KD-tree time distributions of the frontier points).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dse.pareto import DesignPointResult, pareto_frontier
from repro.geometry import metrics
from repro.io.dataset import SyntheticSequence
from repro.profiling.timer import StageProfiler
from repro.registration.pipeline import Pipeline, PipelineConfig

__all__ = ["evaluate_config", "explore", "ExplorationReport"]


@dataclass
class ExplorationReport:
    """All evaluated points plus both Pareto frontiers (Fig. 3a/3b)."""

    results: list[DesignPointResult]
    translational_frontier: list[DesignPointResult] = field(default_factory=list)
    rotational_frontier: list[DesignPointResult] = field(default_factory=list)

    def __post_init__(self):
        if not self.translational_frontier:
            self.translational_frontier = pareto_frontier(
                self.results, "translational_error"
            )
        if not self.rotational_frontier:
            self.rotational_frontier = pareto_frontier(
                self.results, "rotational_error"
            )

    def summary(self) -> str:
        lines = [
            f"{'name':<16}{'time(s)':>9}{'trans err (%)':>15}{'rot err (deg/m)':>17}"
        ]
        for r in sorted(self.results, key=lambda r: r.time):
            tag = ""
            if r in self.translational_frontier:
                tag += " T"
            if r in self.rotational_frontier:
                tag += " R"
            lines.append(
                f"{r.name:<16}{r.time:>9.3f}{100 * r.translational_error:>15.3f}"
                f"{r.rotational_error:>17.4f}{tag}"
            )
        return "\n".join(lines)


def evaluate_config(
    name: str,
    config: PipelineConfig,
    sequence: SyntheticSequence,
    max_pairs: int | None = None,
) -> DesignPointResult:
    """Run a configuration over consecutive pairs of a sequence.

    Time is the mean wall-clock registration time per pair; errors are
    the KITTI sequence errors of the chained estimated trajectory
    against ground truth.  Per-pair stage profiles are merged and
    attached in ``detail`` for the Fig. 4 analyses.
    """
    pipeline = Pipeline(config)
    merged_profiler = StageProfiler()
    relative_estimates: list[np.ndarray] = []
    times: list[float] = []

    pairs = list(sequence.pairs())
    if max_pairs is not None:
        pairs = pairs[:max_pairs]
    if not pairs:
        raise ValueError("sequence has fewer than two frames")

    for source, target, _ in pairs:
        profiler = StageProfiler()
        result = pipeline.register(source, target, profiler=profiler)
        relative_estimates.append(result.transformation)
        times.append(profiler.total)
        merged_profiler.merge(profiler)

    n_poses = len(pairs) + 1
    estimated = metrics.trajectory_from_relative(relative_estimates)
    ground_truth = sequence.poses[:n_poses]
    errors = metrics.kitti_sequence_errors(estimated, ground_truth)

    return DesignPointResult(
        name=name,
        time=float(np.mean(times)),
        translational_error=errors.translational,
        rotational_error=errors.rotational,
        detail={
            "profiler": merged_profiler,
            "stage_fractions": merged_profiler.stage_fractions(),
            "kdtree_fractions": merged_profiler.kdtree_fractions(),
            "errors": errors,
        },
    )


def explore(
    configs: dict[str, PipelineConfig],
    sequence: SyntheticSequence,
    max_pairs: int | None = None,
) -> ExplorationReport:
    """Evaluate every named configuration and extract the frontiers."""
    results = [
        evaluate_config(name, config, sequence, max_pairs=max_pairs)
        for name, config in configs.items()
    ]
    return ExplorationReport(results=results)
