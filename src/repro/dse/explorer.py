"""Design-space exploration driver (paper Sec. 3.2).

Evaluates pipeline configurations over synthetic scenes, measuring
registration accuracy (KITTI-style errors against ground truth) and
execution time, and produces the raw material for Fig. 3 (the
accuracy/performance scatter + Pareto frontier) and Fig. 4 (the
per-stage and KD-tree time distributions of the frontier points).

Shared-artifact evaluation
--------------------------
A grid point's *pairwise* knobs (KPCE, rejection, ICP) do not affect
per-frame preprocessing, so grid points sharing a front-end fingerprint
(:meth:`~repro.registration.pipeline.PipelineConfig.frontend_fingerprint`)
share bit-identical :class:`~repro.registration.pipeline.FrameState`
artifacts.  :func:`explore` exploits this: it groups configurations by
fingerprint (:func:`repro.dse.grid.fingerprint_groups`), preprocesses
each ``(fingerprint, scene, frame)`` exactly once into a keyed
:class:`FrameStateCache`, and evaluates every configuration's pair
chain through the streaming ``Pipeline.match`` path — so a grid of N
configs costs ~(unique front-ends x frames) preprocesses instead of
(N x pairs x 2).  Results are bit-identical to the sequential seed
path (:func:`evaluate_config`): errors, transforms, and search/stage
stats never change, only wall-clock does (enforced by
``tests/dse/test_parity.py``).

``workers > 1`` shards ``(scene, fingerprint-group)`` tasks across a
``ProcessPoolExecutor`` — preprocess sharing stays within each group's
process, and results are deterministic regardless of worker count.
``workers=1`` (the default) runs in-process for debuggability.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.dse.grid import fingerprint_groups
from repro.dse.pareto import (
    DesignPointResult,
    aggregate_across_scenes,
    pareto_frontier,
)
from repro.geometry import metrics
from repro.io.dataset import SceneSuite, SyntheticSequence
from repro.profiling.timer import StageProfiler
from repro.registration.pipeline import (
    _FEATURE_STAGES,
    _FRAME_STAGES,
    Pipeline,
    PipelineConfig,
)
from repro.telemetry import NULL_TRACER, Tracer

__all__ = [
    "evaluate_config",
    "explore",
    "ExplorationReport",
    "FrameStateCache",
]


class FrameStateCache:
    """Keyed cache of preprocessed frames + their preprocess profilers.

    Keys are ``(fingerprint, scene, frame_index)``; values pair the
    immutable :class:`~repro.registration.pipeline.FrameState` with the
    :class:`~repro.profiling.StageProfiler` that timed its single real
    preprocess, so every consumer attributes the same measured cost.
    ``hits``/``misses`` make reuse observable to tests and benches.
    """

    def __init__(self):
        self._entries: dict[tuple, tuple] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple, build):
        """The cached ``(state, profiler)`` for ``key``, building on miss."""
        if key in self._entries:
            self.hits += 1
        else:
            self.misses += 1
            self._entries[key] = build()
        return self._entries[key]


@dataclass
class ExplorationReport:
    """All evaluated points plus both Pareto frontiers (Fig. 3a/3b).

    Single-scene explorations fill ``results`` with the per-scene
    points directly.  Multi-scene explorations put per-scene points in
    ``scene_results`` and cross-scene mean aggregates in ``results``;
    per-scene frontiers live in ``scene_frontiers`` (keyed by scene,
    then ``"translational"``/``"rotational"``).  Frontier membership is
    always by object identity — ``detail`` carries profilers and
    ndarrays, so dataclass equality is not meaningful.
    """

    results: list[DesignPointResult]
    translational_frontier: list[DesignPointResult] = field(default_factory=list)
    rotational_frontier: list[DesignPointResult] = field(default_factory=list)
    scene_results: dict[str, list[DesignPointResult]] = field(default_factory=dict)
    scene_frontiers: dict[str, dict[str, list[DesignPointResult]]] = field(
        default_factory=dict
    )

    def __post_init__(self):
        if not self.translational_frontier:
            self.translational_frontier = pareto_frontier(
                self.results, "translational_error"
            )
        if not self.rotational_frontier:
            self.rotational_frontier = pareto_frontier(
                self.results, "rotational_error"
            )
        if not self.scene_frontiers:
            self.scene_frontiers = {
                scene: {
                    "translational": pareto_frontier(
                        results, "translational_error"
                    ),
                    "rotational": pareto_frontier(results, "rotational_error"),
                }
                for scene, results in self.scene_results.items()
            }

    @property
    def scenes(self) -> tuple[str, ...]:
        return tuple(self.scene_results)

    def _tags(self, result: DesignPointResult) -> str:
        tag = ""
        if any(r is result for r in self.translational_frontier):
            tag += " T"
        if any(r is result for r in self.rotational_frontier):
            tag += " R"
        return tag

    def summary(self) -> str:
        lines = [
            f"{'name':<16}{'time(s)':>9}{'trans err (%)':>15}{'rot err (deg/m)':>17}"
        ]
        for r in sorted(self.results, key=lambda r: r.time):
            lines.append(
                f"{r.name:<16}{r.time:>9.3f}{100 * r.translational_error:>15.3f}"
                f"{r.rotational_error:>17.4f}{self._tags(r)}"
            )
        return "\n".join(lines)

    def scene_summary(self) -> str:
        """Cross-scene table: per-scene time/error cells plus the mean.

        Each cell reads ``time s / trans err %`` with ``T``/``R``
        marking membership of that scene's translational/rotational
        Pareto frontier; the aggregate column is tagged against the
        cross-scene frontiers.
        """
        if not self.scene_results:
            return self.summary()
        scenes = list(self.scene_results)
        width = max(20, *(len(s) + 2 for s in scenes))
        lines = [
            f"{'name':<16}"
            + "".join(f"{scene:>{width}}" for scene in scenes)
            + f"{'aggregate':>{width}}"
        ]
        per_scene_by_name = {
            scene: {r.name: r for r in results}
            for scene, results in self.scene_results.items()
        }
        for aggregate in sorted(self.results, key=lambda r: r.time):
            row = f"{aggregate.name:<16}"
            for scene in scenes:
                r = per_scene_by_name[scene][aggregate.name]
                tag = ""
                if any(
                    f is r for f in self.scene_frontiers[scene]["translational"]
                ):
                    tag += "T"
                if any(
                    f is r for f in self.scene_frontiers[scene]["rotational"]
                ):
                    tag += "R"
                cell = f"{r.time:.2f}s/{100 * r.translational_error:.1f}%{tag:<2}"
                row += f"{cell:>{width}}"
            agg_cell = (
                f"{aggregate.time:.2f}s/"
                f"{100 * aggregate.translational_error:.1f}%"
                f"{self._tags(aggregate).replace(' ', ''):<2}"
            )
            row += f"{agg_cell:>{width}}"
            lines.append(row)
        return "\n".join(lines)


def evaluate_config(
    name: str,
    config: PipelineConfig,
    sequence: SyntheticSequence,
    max_pairs: int | None = None,
    scene: str | None = None,
) -> DesignPointResult:
    """Run a configuration over consecutive pairs of a sequence.

    This is the sequential seed path — each pair is registered through
    the monolithic ``Pipeline.register``, re-preprocessing both frames
    every time.  It is kept as the reference the shared-artifact path
    in :func:`explore` must match bit-for-bit, and as the simplest way
    to evaluate one configuration in isolation.

    Time is the mean wall-clock registration time per pair; errors are
    the KITTI sequence errors of the chained estimated trajectory
    against ground truth.  Per-pair stage profiles are merged and
    attached in ``detail`` for the Fig. 4 analyses, alongside the
    per-pair transforms and search stats the parity suite pins.
    """
    pipeline = Pipeline(config)
    pairs = _select_pairs(sequence, max_pairs)

    merged_profiler = StageProfiler()
    relative_estimates: list[np.ndarray] = []
    times: list[float] = []
    pair_stats: list[dict] = []
    icp_iterations: list[int] = []

    for source, target, _ in pairs:
        profiler = StageProfiler()
        result = pipeline.register(source, target, profiler=profiler)
        relative_estimates.append(result.transformation)
        times.append(profiler.total)
        merged_profiler.merge(profiler)
        pair_stats.append(result.stage_stats)
        icp_iterations.append(result.icp.iterations)

    return _design_point(
        name,
        sequence,
        len(pairs),
        times,
        relative_estimates,
        merged_profiler,
        pair_stats,
        icp_iterations,
        scene,
    )


def _select_pairs(sequence: SyntheticSequence, max_pairs: int | None) -> list:
    pairs = list(sequence.pairs())
    if max_pairs is not None:
        pairs = pairs[:max_pairs]
    if not pairs:
        raise ValueError("sequence has fewer than two frames")
    return pairs


def _design_point(
    name: str,
    sequence: SyntheticSequence,
    n_pairs: int,
    times: list[float],
    relatives: list[np.ndarray],
    profiler: StageProfiler,
    pair_stats: list[dict],
    icp_iterations: list[int],
    scene: str | None,
) -> DesignPointResult:
    """Score a chained pair run and package it for the Pareto analysis."""
    estimated = metrics.trajectory_from_relative(relatives)
    ground_truth = sequence.poses[: n_pairs + 1]
    errors = metrics.kitti_sequence_errors(estimated, ground_truth)
    return DesignPointResult(
        name=name,
        time=float(np.mean(times)),
        translational_error=errors.translational,
        rotational_error=errors.rotational,
        detail={
            "profiler": profiler,
            "stage_fractions": profiler.stage_fractions(),
            "kdtree_fractions": profiler.kdtree_fractions(),
            "errors": errors,
            "relatives": relatives,
            "pair_stats": pair_stats,
            "icp_iterations": icp_iterations,
        },
        scene=scene,
    )


def _evaluate_group(
    named_configs: dict[str, PipelineConfig],
    sequence: SyntheticSequence,
    scene: str | None,
    max_pairs: int | None,
    cache: FrameStateCache,
    tracer=None,
) -> list[DesignPointResult]:
    """Evaluate one fingerprint group with shared per-frame artifacts.

    Preprocessing reads only front-end knobs, identical across the
    group by construction, so any member configuration can build the
    shared states.  Features are computed iff some member runs initial
    estimation; members that skip it ignore them (``match`` neither
    reads nor accounts feature stages then), keeping every result
    bit-identical to its sequential seed evaluation.

    A :class:`~repro.telemetry.Tracer` (optional) records the shared
    preprocesses and, per configuration, a ``config`` span wrapping its
    pair chain — with every pipeline stage span nested inside.
    """
    trace = NULL_TRACER if tracer is None else tracer
    configs = list(named_configs.values())
    representative = Pipeline(configs[0])
    fingerprint = configs[0].frontend_fingerprint()
    with_features = any(not c.skip_initial_estimation for c in configs)
    pairs = _select_pairs(sequence, max_pairs)
    n_frames = len(pairs) + 1

    def preprocess(index: int):
        def build():
            profiler = StageProfiler(tracer=tracer)
            state = representative.preprocess(
                sequence.frames[index],
                profiler=profiler,
                with_features=with_features,
            )
            return state, profiler

        return cache.get((fingerprint, scene, index), build)

    frames = [preprocess(index) for index in range(n_frames)]

    results = []
    for name, config in named_configs.items():
        pipeline = Pipeline(config)
        consumed = _FRAME_STAGES + (
            _FEATURE_STAGES if pipeline.runs_initial() else ()
        )
        merged_profiler = StageProfiler()
        relatives: list[np.ndarray] = []
        times: list[float] = []
        pair_stats: list[dict] = []
        icp_iterations: list[int] = []

        with trace.span("config", config=name, n_pairs=len(pairs)):
            for index in range(len(pairs)):
                source_state, source_profiler = frames[index + 1]
                target_state, target_profiler = frames[index]
                pair_profiler = StageProfiler(tracer=tracer)
                with trace.span("pair", index=index):
                    result = pipeline.match(
                        source_state, target_state, profiler=pair_profiler
                    )
                # Attribute the (shared, once-measured) preprocess cost
                # of the stages this config consumed to this pair,
                # mirroring what a standalone ``register`` would have
                # spent.  A config that skips initial estimation never
                # consumed the feature stages, so they stay out of its
                # profile and time.
                pair_profiler.merge(source_profiler, stages=consumed)
                pair_profiler.merge(target_profiler, stages=consumed)
                times.append(pair_profiler.total)
                merged_profiler.merge(pair_profiler)
                relatives.append(result.transformation)
                pair_stats.append(result.stage_stats)
                icp_iterations.append(result.icp.iterations)

        results.append(
            _design_point(
                name,
                sequence,
                len(pairs),
                times,
                relatives,
                merged_profiler,
                pair_stats,
                icp_iterations,
                scene,
            )
        )
    return results


def _scene_group_task(
    scene: str | None,
    named_configs: dict[str, PipelineConfig],
    sequence: SyntheticSequence,
    max_pairs: int | None,
    cached: bool,
    with_trace: bool = False,
) -> tuple[list[DesignPointResult], dict | None]:
    """One shard of work: a fingerprint group evaluated over one scene.

    Module-level so a ``ProcessPoolExecutor`` can pickle it; also the
    unit of in-process execution, so both paths run the same code.

    With ``with_trace`` a local :class:`~repro.telemetry.Tracer`
    records the shard's span tree (one ``group`` root) and the frozen
    payload rides back with the results — across the process boundary
    when sharded — for :func:`explore` to adopt into the parent trace.
    """
    tracer = Tracer() if with_trace else None
    trace = NULL_TRACER if tracer is None else tracer
    with trace.span(
        "group",
        scene=scene,
        configs=list(named_configs),
        cached=cached,
    ):
        if cached:
            results = _evaluate_group(
                named_configs,
                sequence,
                scene,
                max_pairs,
                FrameStateCache(),
                tracer=tracer,
            )
        else:
            results = [
                evaluate_config(
                    name, config, sequence, max_pairs=max_pairs, scene=scene
                )
                for name, config in named_configs.items()
            ]
    payload = tracer.freeze() if tracer is not None else None
    return results, payload


def _normalize_scenes(
    scenes: SyntheticSequence | SceneSuite | dict[str, SyntheticSequence],
) -> dict[str, SyntheticSequence]:
    if isinstance(scenes, SyntheticSequence):
        return {"scene": scenes}
    if isinstance(scenes, SceneSuite):
        return dict(scenes.items())
    if not scenes:
        raise ValueError("need at least one scene to explore")
    return dict(scenes)


def explore(
    configs: dict[str, PipelineConfig],
    scenes: SyntheticSequence | SceneSuite | dict[str, SyntheticSequence],
    max_pairs: int | None = None,
    workers: int = 1,
    cached: bool = True,
    tracer=None,
) -> ExplorationReport:
    """Evaluate every configuration over every scene, extract frontiers.

    ``scenes`` may be a single :class:`SyntheticSequence` (classic
    single-scene exploration — ``report.results`` are its points
    directly), a :class:`~repro.io.dataset.SceneSuite`, or a mapping of
    scene name to sequence.  With several scenes, ``report.results``
    holds cross-scene mean aggregates and per-scene points land in
    ``report.scene_results``.

    ``cached=True`` (default) shares front-end preprocessing within
    fingerprint groups; ``cached=False`` forces the sequential seed
    path (the parity reference).  ``workers > 1`` distributes
    ``(scene, fingerprint group)`` shards over a process pool; results
    are identical for any worker count.

    A :class:`~repro.telemetry.Tracer` (optional) records one
    ``explore`` span with every shard's ``group`` subtree underneath.
    Shards evaluated in worker processes build a local tracer, freeze
    it, and ship the payload back with their results; :func:`explore`
    adopts each payload into the parent tracer (worker subtrees land on
    their own per-pid tracks), so a sharded exploration still exports
    as one merged trace.
    """
    trace = NULL_TRACER if tracer is None else tracer
    scene_map = _normalize_scenes(scenes)
    if cached:
        groups = fingerprint_groups(configs)
    else:
        groups = {
            index: {name: config}
            for index, (name, config) in enumerate(configs.items())
        }
    single = len(scene_map) == 1

    tasks = [
        (scene, named, sequence, max_pairs, cached, tracer is not None)
        for scene, sequence in scene_map.items()
        for named in groups.values()
    ]

    with trace.span(
        "explore",
        n_configs=len(configs),
        n_groups=len(groups),
        n_scenes=len(scene_map),
        workers=workers,
        cached=cached,
    ):
        if workers > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_scene_group_task, *task) for task in tasks
                ]
                outcomes = [future.result() for future in futures]
        else:
            outcomes = [_scene_group_task(*task) for task in tasks]
        shards = []
        for results, payload in outcomes:
            if payload is not None:
                trace.adopt(payload)
            shards.append(results)

    # Reassemble per scene in the caller's configuration order.
    scene_results: dict[str, list[DesignPointResult]] = {}
    for (scene, *_), shard in zip(tasks, shards):
        scene_results.setdefault(scene, []).extend(shard)
    order = {name: index for index, name in enumerate(configs)}
    for scene in scene_results:
        scene_results[scene].sort(key=lambda r: order[r.name])

    if single:
        results = next(iter(scene_results.values()))
    else:
        results = aggregate_across_scenes(scene_results)
    return ExplorationReport(results=results, scene_results=scene_results)
