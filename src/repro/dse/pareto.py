"""Pareto-frontier extraction for the design-space exploration.

The paper's Fig. 3 plots every explored design point in the
(error, time) plane and annotates the Pareto-optimal frontier — the
points not dominated by any other (lower error *and* lower time).  The
bottleneck analysis (Fig. 4) then focuses on those frontier points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DesignPointResult", "pareto_frontier", "is_dominated"]


@dataclass
class DesignPointResult:
    """One evaluated pipeline configuration.

    ``time`` is the metric being traded against ``translational_error``
    and ``rotational_error`` (seconds here; the paper normalizes to
    1500 ms).  ``detail`` carries arbitrary extra measurements (stage
    breakdowns, search stats) for downstream analysis.
    """

    name: str
    time: float
    translational_error: float
    rotational_error: float
    detail: dict = field(default_factory=dict)


def is_dominated(
    candidate: DesignPointResult,
    others: list[DesignPointResult],
    error_attr: str = "translational_error",
) -> bool:
    """True if some other point is no worse on both axes and better on one."""
    c_err = getattr(candidate, error_attr)
    for other in others:
        if other is candidate:
            continue
        o_err = getattr(other, error_attr)
        if (
            o_err <= c_err
            and other.time <= candidate.time
            and (o_err < c_err or other.time < candidate.time)
        ):
            return True
    return False


def pareto_frontier(
    results: list[DesignPointResult],
    error_attr: str = "translational_error",
) -> list[DesignPointResult]:
    """The non-dominated subset, sorted by ascending time.

    ``error_attr`` selects the accuracy axis — ``"translational_error"``
    for Fig. 3a, ``"rotational_error"`` for Fig. 3b; the two frontiers
    generally differ, as the paper's distinct DP sets in the two panels
    show.
    """
    if not results:
        return []
    for result in results:
        if not np.isfinite(result.time) or result.time < 0:
            raise ValueError(f"invalid time for {result.name!r}: {result.time}")
    frontier = [r for r in results if not is_dominated(r, results, error_attr)]
    return sorted(frontier, key=lambda r: r.time)
