"""Pareto-frontier extraction for the design-space exploration.

The paper's Fig. 3 plots every explored design point in the
(error, time) plane and annotates the Pareto-optimal frontier — the
points not dominated by any other (lower error *and* lower time).  The
bottleneck analysis (Fig. 4) then focuses on those frontier points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DesignPointResult",
    "pareto_frontier",
    "is_dominated",
    "aggregate_across_scenes",
]


@dataclass
class DesignPointResult:
    """One evaluated pipeline configuration.

    ``time`` is the metric being traded against ``translational_error``
    and ``rotational_error`` (seconds here; the paper normalizes to
    1500 ms).  ``detail`` carries arbitrary extra measurements (stage
    breakdowns, search stats, per-pair transforms) for downstream
    analysis — never compare results through ``==`` (ndarray-laden
    details make dataclass equality unreliable); use identity or
    ``name``.  ``scene`` names the workload the point was measured on;
    cross-scene aggregates leave it ``None``.
    """

    name: str
    time: float
    translational_error: float
    rotational_error: float
    detail: dict = field(default_factory=dict)
    scene: str | None = None


def is_dominated(
    candidate: DesignPointResult,
    others: list[DesignPointResult],
    error_attr: str = "translational_error",
) -> bool:
    """True if some other point is no worse on both axes and better on one."""
    c_err = getattr(candidate, error_attr)
    for other in others:
        if other is candidate:
            continue
        o_err = getattr(other, error_attr)
        if (
            o_err <= c_err
            and other.time <= candidate.time
            and (o_err < c_err or other.time < candidate.time)
        ):
            return True
    return False


def pareto_frontier(
    results: list[DesignPointResult],
    error_attr: str = "translational_error",
) -> list[DesignPointResult]:
    """The non-dominated subset, sorted by ascending time.

    ``error_attr`` selects the accuracy axis — ``"translational_error"``
    for Fig. 3a, ``"rotational_error"`` for Fig. 3b; the two frontiers
    generally differ, as the paper's distinct DP sets in the two panels
    show.
    """
    if not results:
        return []
    for result in results:
        if not np.isfinite(result.time) or result.time < 0:
            raise ValueError(f"invalid time for {result.name!r}: {result.time}")
    frontier = [r for r in results if not is_dominated(r, results, error_attr)]
    return sorted(frontier, key=lambda r: r.time)


def aggregate_across_scenes(
    scene_results: dict[str, list[DesignPointResult]],
) -> list[DesignPointResult]:
    """Mean-aggregate per-scene results into one point per configuration.

    Every scene must have evaluated the same configuration names (the
    explorer guarantees this).  ``time`` and both errors become the
    arithmetic mean over scenes — the multi-scene analogue of the
    paper averaging KITTI errors over all sequences — and the
    per-scene points remain reachable via ``detail["per_scene"]``.
    Aggregation order follows the first scene's result order.
    """
    if not scene_results:
        return []
    per_scene = list(scene_results.items())
    reference = per_scene[0][1]
    by_scene_name = {
        scene: {r.name: r for r in results} for scene, results in per_scene
    }
    for scene, named in by_scene_name.items():
        if set(named) != {r.name for r in reference}:
            raise ValueError(
                f"scene {scene!r} evaluated a different configuration set"
            )
    aggregates = []
    for point in reference:
        members = {
            scene: by_scene_name[scene][point.name] for scene in by_scene_name
        }
        aggregates.append(
            DesignPointResult(
                name=point.name,
                time=float(np.mean([m.time for m in members.values()])),
                translational_error=float(
                    np.mean([m.translational_error for m in members.values()])
                ),
                rotational_error=float(
                    np.mean([m.rotational_error for m in members.values()])
                ),
                detail={"per_scene": members},
            )
        )
    return aggregates
