"""Axis-aligned bounding boxes in k dimensions.

KD-tree pruning (paper Sec. 4.1) relies on the distance between a query
hypersphere and the bounding box of a subtree: if the box does not
intersect the sphere around the query with the current best distance, the
entire subtree is skipped.  ``AABB`` provides exactly that primitive, plus
the split operation used during tree construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AABB"]


@dataclass(frozen=True)
class AABB:
    """An axis-aligned bounding box defined by ``lo`` and ``hi`` corners."""

    lo: np.ndarray
    hi: np.ndarray

    @staticmethod
    def of_points(points: np.ndarray) -> "AABB":
        """Tight bounding box of an (N, k) point array."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError("need a non-empty (N, k) array")
        return AABB(points.min(axis=0), points.max(axis=0))

    @staticmethod
    def infinite(ndim: int) -> "AABB":
        """The whole space; the root node's region before any splits."""
        return AABB(
            np.full(ndim, -np.inf, dtype=np.float64),
            np.full(ndim, np.inf, dtype=np.float64),
        )

    @property
    def ndim(self) -> int:
        return len(self.lo)

    def contains(self, point: np.ndarray) -> bool:
        """Whether ``point`` lies inside the box (inclusive)."""
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(point >= self.lo) and np.all(point <= self.hi))

    def split(self, dim: int, value: float) -> tuple["AABB", "AABB"]:
        """Split along ``dim`` at ``value`` into (left/below, right/above)."""
        left_hi = self.hi.copy()
        left_hi[dim] = value
        right_lo = self.lo.copy()
        right_lo[dim] = value
        return AABB(self.lo.copy(), left_hi), AABB(right_lo, self.hi.copy())

    def sq_distance_to(self, point: np.ndarray) -> float:
        """Squared distance from ``point`` to the nearest point of the box.

        Zero when the point is inside.  This is the pruning test: a subtree
        whose box satisfies ``sq_distance_to(q) > best_dist**2`` cannot
        contain a closer neighbor than the current best.
        """
        point = np.asarray(point, dtype=np.float64)
        below = np.clip(self.lo - point, 0.0, None)
        above = np.clip(point - self.hi, 0.0, None)
        # Infinite bounds clip to 0 only when finite; guard the inf - inf case.
        below = np.where(np.isfinite(below), below, 0.0)
        above = np.where(np.isfinite(above), above, 0.0)
        return float(np.sum(below**2) + np.sum(above**2))

    def intersects_sphere(self, center: np.ndarray, radius: float) -> bool:
        """Whether a hypersphere intersects the box."""
        return self.sq_distance_to(center) <= radius * radius
