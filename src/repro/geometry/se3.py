"""Rigid-body transformations in SE(3).

Point cloud registration estimates a 4x4 homogeneous transformation matrix
``M = [[R, t], [0, 1]]`` (paper Eq. 1) consisting of a 3x3 rotation ``R``
and a 3x1 translation ``t``, covering all six degrees of freedom.  This
module provides the construction, composition, inversion, and application
utilities the registration pipeline builds on, plus conversions between
rotation parameterizations (matrix, axis-angle, Euler, quaternion) used by
the solvers and by the synthetic trajectory generator.

It also implements the matrix Lie-group maps :func:`exp` and :func:`log`
between SE(3) and its tangent space se(3).  Twists are 6-vectors
``[rho, phi]`` — translation part first, rotation part last — which is
the minimal parameterization the pose-graph optimizer in
:mod:`repro.mapping.pose_graph` perturbs and the right representation
for interpolating or averaging rigid transforms.  Both maps switch to
Taylor expansions near the identity so tiny updates round-trip stably.

All functions accept and return ``numpy`` arrays with ``float64`` dtype and
never mutate their inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "identity",
    "make_transform",
    "rotation_part",
    "translation_part",
    "apply_transform",
    "compose",
    "invert",
    "is_valid_rotation",
    "is_valid_transform",
    "orthonormalize_rotation",
    "rot_x",
    "rot_y",
    "rot_z",
    "euler_to_rotation",
    "rotation_to_euler",
    "axis_angle_to_rotation",
    "rotation_to_axis_angle",
    "rotation_angle",
    "skew",
    "exp",
    "log",
    "adjoint",
    "left_jacobian",
    "left_jacobian_inv",
    "quaternion_to_rotation",
    "rotation_to_quaternion",
    "random_rotation",
    "random_transform",
    "small_transform",
    "transform_distance",
]


def identity() -> np.ndarray:
    """Return the 4x4 identity transformation."""
    return np.eye(4, dtype=np.float64)


def make_transform(rotation: np.ndarray, translation: np.ndarray) -> np.ndarray:
    """Assemble a 4x4 homogeneous transform from ``R`` (3x3) and ``t`` (3,).

    This is the matrix ``M`` of paper Eq. 1: ``X' = M @ X`` for homogeneous
    points ``X``.
    """
    rotation = np.asarray(rotation, dtype=np.float64)
    translation = np.asarray(translation, dtype=np.float64).reshape(3)
    if rotation.shape != (3, 3):
        raise ValueError(f"rotation must be 3x3, got {rotation.shape}")
    transform = np.eye(4, dtype=np.float64)
    transform[:3, :3] = rotation
    transform[:3, 3] = translation
    return transform


def rotation_part(transform: np.ndarray) -> np.ndarray:
    """Extract the 3x3 rotation block of a 4x4 transform."""
    return np.asarray(transform, dtype=np.float64)[:3, :3].copy()


def translation_part(transform: np.ndarray) -> np.ndarray:
    """Extract the translation vector of a 4x4 transform."""
    return np.asarray(transform, dtype=np.float64)[:3, 3].copy()


def apply_transform(transform: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a 4x4 transform to an (N, 3) array of points.

    Implements ``X' = R X + t`` for every point, i.e. paper Eq. 1 without
    materializing homogeneous coordinates.
    """
    transform = np.asarray(transform, dtype=np.float64)
    points = np.asarray(points, dtype=np.float64)
    single = points.ndim == 1
    points_2d = np.atleast_2d(points)
    if points_2d.shape[1] != 3:
        raise ValueError(f"points must be (N, 3), got {points.shape}")
    transformed = points_2d @ transform[:3, :3].T + transform[:3, 3]
    return transformed[0] if single else transformed


def compose(*transforms: np.ndarray) -> np.ndarray:
    """Compose transforms left-to-right: ``compose(A, B)`` applies B first.

    ``apply(compose(A, B), x) == apply(A, apply(B, x))``.
    """
    if not transforms:
        return identity()
    result = np.asarray(transforms[0], dtype=np.float64)
    for transform in transforms[1:]:
        result = result @ np.asarray(transform, dtype=np.float64)
    return result


def invert(transform: np.ndarray) -> np.ndarray:
    """Invert a rigid transform analytically: ``inv = [R.T, -R.T t]``."""
    rotation = rotation_part(transform)
    translation = translation_part(transform)
    return make_transform(rotation.T, -rotation.T @ translation)


def is_valid_rotation(rotation: np.ndarray, atol: float = 1e-6) -> bool:
    """Check that a 3x3 matrix is a proper rotation (orthogonal, det +1)."""
    rotation = np.asarray(rotation, dtype=np.float64)
    if rotation.shape != (3, 3):
        return False
    if not np.allclose(rotation @ rotation.T, np.eye(3), atol=atol):
        return False
    return bool(np.isclose(np.linalg.det(rotation), 1.0, atol=atol))


def is_valid_transform(transform: np.ndarray, atol: float = 1e-6) -> bool:
    """Check that a 4x4 matrix is a rigid transform."""
    transform = np.asarray(transform, dtype=np.float64)
    if transform.shape != (4, 4):
        return False
    if not np.allclose(transform[3], [0.0, 0.0, 0.0, 1.0], atol=atol):
        return False
    return is_valid_rotation(transform[:3, :3], atol=atol)


def orthonormalize_rotation(rotation: np.ndarray) -> np.ndarray:
    """Project a near-rotation matrix onto SO(3) via SVD.

    Used to clean up accumulated floating-point drift when chaining many
    incremental ICP updates.
    """
    u, _, vt = np.linalg.svd(np.asarray(rotation, dtype=np.float64))
    rotation_clean = u @ vt
    if np.linalg.det(rotation_clean) < 0:
        u[:, -1] = -u[:, -1]
        rotation_clean = u @ vt
    return rotation_clean


def rot_x(angle: float) -> np.ndarray:
    """Rotation about the x axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[1, 0, 0], [0, c, -s], [0, s, c]], dtype=np.float64)


def rot_y(angle: float) -> np.ndarray:
    """Rotation about the y axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, 0, s], [0, 1, 0], [-s, 0, c]], dtype=np.float64)


def rot_z(angle: float) -> np.ndarray:
    """Rotation about the z axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, -s, 0], [s, c, 0], [0, 0, 1]], dtype=np.float64)


def euler_to_rotation(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """Build a rotation from ZYX (yaw-pitch-roll) Euler angles in radians."""
    return rot_z(yaw) @ rot_y(pitch) @ rot_x(roll)


def rotation_to_euler(rotation: np.ndarray) -> tuple[float, float, float]:
    """Recover (roll, pitch, yaw) from a ZYX Euler rotation matrix.

    Falls back to ``yaw = 0`` in the gimbal-lock case (|pitch| = pi/2).
    """
    rotation = np.asarray(rotation, dtype=np.float64)
    pitch = np.arcsin(np.clip(-rotation[2, 0], -1.0, 1.0))
    if np.isclose(np.abs(rotation[2, 0]), 1.0, atol=1e-9):
        yaw = 0.0
        roll = np.arctan2(-rotation[0, 1], rotation[1, 1])
    else:
        roll = np.arctan2(rotation[2, 1], rotation[2, 2])
        yaw = np.arctan2(rotation[1, 0], rotation[0, 0])
    return float(roll), float(pitch), float(yaw)


def axis_angle_to_rotation(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rodrigues' formula: rotation by ``angle`` radians about ``axis``."""
    axis = np.asarray(axis, dtype=np.float64).reshape(3)
    norm = np.linalg.norm(axis)
    if norm < 1e-12:
        return np.eye(3, dtype=np.float64)
    axis = axis / norm
    k = np.array(
        [
            [0.0, -axis[2], axis[1]],
            [axis[2], 0.0, -axis[0]],
            [-axis[1], axis[0], 0.0],
        ],
        dtype=np.float64,
    )
    return np.eye(3) + np.sin(angle) * k + (1.0 - np.cos(angle)) * (k @ k)


def rotation_to_axis_angle(rotation: np.ndarray) -> tuple[np.ndarray, float]:
    """Recover (unit axis, angle in [0, pi]) from a rotation matrix."""
    rotation = np.asarray(rotation, dtype=np.float64)
    angle = rotation_angle(rotation)
    if angle < 1e-12:
        return np.array([1.0, 0.0, 0.0]), 0.0
    if np.isclose(angle, np.pi, atol=1e-7):
        # Near pi the off-diagonal extraction is ill-conditioned; take the
        # dominant column of (R + I) / 2, whose columns are axis * axis_i.
        m = (rotation + np.eye(3)) / 2.0
        axis = np.sqrt(np.clip(np.diag(m), 0.0, None))
        major = int(np.argmax(axis))
        if axis[major] > 1e-12:
            axis = m[:, major] / axis[major]
        norm = np.linalg.norm(axis)
        return (axis / norm if norm > 0 else np.array([1.0, 0.0, 0.0])), float(angle)
    vec = np.array(
        [
            rotation[2, 1] - rotation[1, 2],
            rotation[0, 2] - rotation[2, 0],
            rotation[1, 0] - rotation[0, 1],
        ]
    )
    return vec / (2.0 * np.sin(angle)), float(angle)


def rotation_angle(rotation: np.ndarray) -> float:
    """Geodesic angle of a rotation matrix, in radians, in [0, pi].

    This is the rotational-error measure used by the KITTI odometry
    benchmark (and hence the paper's rotational error metric).
    """
    rotation = np.asarray(rotation, dtype=np.float64)
    trace = np.clip((np.trace(rotation) - 1.0) / 2.0, -1.0, 1.0)
    return float(np.arccos(trace))


def skew(vector: np.ndarray) -> np.ndarray:
    """The 3x3 skew-symmetric (cross-product) matrix of a 3-vector.

    ``skew(a) @ b == np.cross(a, b)``; the Lie-algebra generator matrix
    underlying both :func:`exp` and :func:`axis_angle_to_rotation`.
    """
    v = np.asarray(vector, dtype=np.float64).reshape(3)
    return np.array(
        [
            [0.0, -v[2], v[1]],
            [v[2], 0.0, -v[0]],
            [-v[1], v[0], 0.0],
        ],
        dtype=np.float64,
    )


# Below this rotation angle the closed-form exp/log coefficients lose
# precision to cancellation; both maps switch to their Taylor series.
_SMALL_ANGLE = 1e-6


def _so3_left_jacobian(phi: np.ndarray) -> np.ndarray:
    """The SO(3) left Jacobian V(phi): translation coupling of exp."""
    theta = float(np.linalg.norm(phi))
    k = skew(phi)
    if theta < _SMALL_ANGLE:
        # V = I + K/2 + K^2/6 - ... truncated; exact to O(theta^3).
        return np.eye(3) + 0.5 * k + (k @ k) / 6.0
    a = (1.0 - np.cos(theta)) / theta**2
    b = (theta - np.sin(theta)) / theta**3
    return np.eye(3) + a * k + b * (k @ k)


def _so3_left_jacobian_inv(phi: np.ndarray) -> np.ndarray:
    """Inverse left Jacobian V^-1(phi), used by :func:`log`."""
    theta = float(np.linalg.norm(phi))
    k = skew(phi)
    if theta < _SMALL_ANGLE:
        return np.eye(3) - 0.5 * k + (k @ k) / 12.0
    # The (theta/2) cot(theta/2) form stays finite all the way to pi
    # (where sin(theta) alone would vanish).
    coefficient = (1.0 - 0.5 * theta / np.tan(0.5 * theta)) / theta**2
    return np.eye(3) - 0.5 * k + coefficient * (k @ k)


def exp(twist: np.ndarray) -> np.ndarray:
    """Exponential map se(3) -> SE(3).

    ``twist`` is ``[rho, phi]`` (translation part first): the rotation
    block is ``exp(skew(phi))`` via Rodrigues and the translation is
    ``V(phi) @ rho`` with the SO(3) left Jacobian ``V``.  Inverse of
    :func:`log` for rotation angles below pi; stable down to zero
    rotation (series coefficients, no axis normalization).
    """
    twist = np.asarray(twist, dtype=np.float64).reshape(6)
    rho, phi = twist[:3], twist[3:]
    theta = float(np.linalg.norm(phi))
    k = skew(phi)
    if theta < _SMALL_ANGLE:
        # sin(t)/t and (1-cos(t))/t^2 as truncated series.
        a = 1.0 - theta**2 / 6.0
        b = 0.5 - theta**2 / 24.0
    else:
        a = np.sin(theta) / theta
        b = (1.0 - np.cos(theta)) / theta**2
    rotation = np.eye(3) + a * k + b * (k @ k)
    return make_transform(rotation, _so3_left_jacobian(phi) @ rho)


def log(transform: np.ndarray) -> np.ndarray:
    """Logarithm map SE(3) -> se(3), returning the ``[rho, phi]`` twist.

    The rotation part is the principal rotation vector (angle in
    ``[0, pi]``); the translation part un-couples the rotation with the
    inverse left Jacobian.  ``exp(log(T))`` recovers ``T`` up to
    floating point for any rigid transform with rotation angle < pi.
    The angle comes from ``atan2`` of the skew-symmetric part — stable
    where the trace-based arccos collapses (tiny rotations) — with the
    axis-angle decomposition taking over near pi where the
    skew-symmetric part vanishes instead.
    """
    transform = np.asarray(transform, dtype=np.float64)
    rotation = transform[:3, :3]
    # vee((R - R^T) / 2) == sin(angle) * axis.
    sin_axis = 0.5 * np.array(
        [
            rotation[2, 1] - rotation[1, 2],
            rotation[0, 2] - rotation[2, 0],
            rotation[1, 0] - rotation[0, 1],
        ]
    )
    sine = float(np.linalg.norm(sin_axis))
    cosine = float(np.clip((np.trace(rotation) - 1.0) / 2.0, -1.0, 1.0))
    theta = float(np.arctan2(sine, cosine))
    if theta < _SMALL_ANGLE:
        # theta/sin(theta) -> 1 + theta^2/6; sin_axis is already ~phi.
        phi = sin_axis * (1.0 + theta**2 / 6.0)
    elif sine > 1e-8:
        # Exact rescaling sin(t)*axis -> t*axis; the relative error of
        # sin_axis stays ~eps/sine, fine until within ~1e-8 of pi.
        phi = sin_axis * (theta / sine)
    else:
        # Within ~1e-8 of pi the skew-symmetric part has vanished; the
        # diagonal-dominant extraction's O(sine) axis error is now
        # below floating-point significance.
        axis, angle = rotation_to_axis_angle(rotation)
        phi = axis * angle
    rho = _so3_left_jacobian_inv(phi) @ transform[:3, 3]
    return np.concatenate([rho, phi])


def adjoint(transform: np.ndarray) -> np.ndarray:
    """The 6x6 adjoint of a rigid transform, for ``[rho, phi]`` twists.

    ``Ad(T)`` carries a twist across a frame change:
    ``T exp(xi) T^-1 == exp(Ad(T) xi)`` exactly.  With the translation
    part first it is the block matrix ``[[R, skew(t) R], [0, R]]``.
    The pose-graph linearization uses it to refer a perturbation of one
    edge endpoint to the other endpoint's frame.
    """
    transform = np.asarray(transform, dtype=np.float64)
    rotation = transform[:3, :3]
    result = np.zeros((6, 6), dtype=np.float64)
    result[:3, :3] = rotation
    result[3:, 3:] = rotation
    result[:3, 3:] = skew(transform[:3, 3]) @ rotation
    return result


def _se3_q_matrix(rho: np.ndarray, phi: np.ndarray) -> np.ndarray:
    """Barfoot's Q(rho, phi): the translation-rotation coupling block of
    the SE(3) left Jacobian (State Estimation for Robotics, eq. 7.86).

    Exact closed form for all rotation angles below 2*pi; the
    coefficients switch to truncated series near zero where their
    closed forms lose precision to cancellation.
    """
    rx = skew(rho)
    px = skew(phi)
    theta = float(np.linalg.norm(phi))
    if theta < _SMALL_ANGLE:
        c1 = 1.0 / 6.0 - theta**2 / 120.0
        c2 = 1.0 / 24.0 - theta**2 / 720.0
        # (theta - sin - theta^3/6)/theta^5 -> -1/120 as theta -> 0.
        c3 = -0.5 * (1.0 / 24.0 + 3.0 / 120.0)
    else:
        c1 = (theta - np.sin(theta)) / theta**3
        c2 = (1.0 - theta**2 / 2.0 - np.cos(theta)) / theta**4
        c3 = -0.5 * (
            c2 - 3.0 * (theta - np.sin(theta) - theta**3 / 6.0) / theta**5
        )
    px_rx = px @ rx
    rx_px = rx @ px
    px_rx_px = px_rx @ px
    return (
        0.5 * rx
        + c1 * (px_rx + rx_px + px_rx_px)
        - c2 * (px @ px_rx + rx_px @ px - 3.0 * px_rx_px)
        + c3 * (px_rx_px @ px + px @ px_rx_px)
    )


def left_jacobian(twist: np.ndarray) -> np.ndarray:
    """The 6x6 SE(3) left Jacobian J_l of a ``[rho, phi]`` twist.

    Defining property (to first order in ``delta``):
    ``exp(twist + delta) == exp(J_l(twist) @ delta) @ exp(twist)``.
    Block upper-triangular: SO(3) left Jacobians on the diagonal and
    Barfoot's Q matrix coupling translation to rotation.
    """
    twist = np.asarray(twist, dtype=np.float64).reshape(6)
    rho, phi = twist[:3], twist[3:]
    j = _so3_left_jacobian(phi)
    result = np.zeros((6, 6), dtype=np.float64)
    result[:3, :3] = j
    result[3:, 3:] = j
    result[:3, 3:] = _se3_q_matrix(rho, phi)
    return result


def left_jacobian_inv(twist: np.ndarray) -> np.ndarray:
    """The inverse 6x6 SE(3) left Jacobian of a ``[rho, phi]`` twist.

    Satisfies ``log(exp(delta) @ exp(twist)) == twist +
    J_l^-1(twist) @ delta`` to first order — the relation the
    pose-graph edge linearization is built on.  The right-Jacobian
    variants follow from ``J_r(xi) == J_l(-xi)``.  Computed in closed
    block form (not by inverting :func:`left_jacobian`): the inverse of
    an upper block-triangular matrix with equal diagonal blocks is
    ``[[J^-1, -J^-1 Q J^-1], [0, J^-1]]``.
    """
    twist = np.asarray(twist, dtype=np.float64).reshape(6)
    rho, phi = twist[:3], twist[3:]
    j_inv = _so3_left_jacobian_inv(phi)
    result = np.zeros((6, 6), dtype=np.float64)
    result[:3, :3] = j_inv
    result[3:, 3:] = j_inv
    result[:3, 3:] = -j_inv @ _se3_q_matrix(rho, phi) @ j_inv
    return result


def quaternion_to_rotation(quaternion: np.ndarray) -> np.ndarray:
    """Convert a (w, x, y, z) quaternion to a rotation matrix."""
    q = np.asarray(quaternion, dtype=np.float64).reshape(4)
    norm = np.linalg.norm(q)
    if norm < 1e-12:
        raise ValueError("zero-norm quaternion")
    w, x, y, z = q / norm
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ],
        dtype=np.float64,
    )


def rotation_to_quaternion(rotation: np.ndarray) -> np.ndarray:
    """Convert a rotation matrix to a unit (w, x, y, z) quaternion, w >= 0."""
    rotation = np.asarray(rotation, dtype=np.float64)
    trace = np.trace(rotation)
    if trace > 0:
        s = np.sqrt(trace + 1.0) * 2.0
        quaternion = np.array(
            [
                0.25 * s,
                (rotation[2, 1] - rotation[1, 2]) / s,
                (rotation[0, 2] - rotation[2, 0]) / s,
                (rotation[1, 0] - rotation[0, 1]) / s,
            ]
        )
    else:
        i = int(np.argmax(np.diag(rotation)))
        j, k = (i + 1) % 3, (i + 2) % 3
        s = np.sqrt(max(rotation[i, i] - rotation[j, j] - rotation[k, k] + 1.0, 0.0)) * 2.0
        quaternion = np.empty(4)
        quaternion[0] = (rotation[k, j] - rotation[j, k]) / s
        quaternion[1 + i] = 0.25 * s
        quaternion[1 + j] = (rotation[j, i] + rotation[i, j]) / s
        quaternion[1 + k] = (rotation[k, i] + rotation[i, k]) / s
    quaternion = quaternion / np.linalg.norm(quaternion)
    if quaternion[0] < 0:
        quaternion = -quaternion
    return quaternion


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Draw a rotation uniformly from SO(3) (via a random unit quaternion)."""
    quaternion = rng.normal(size=4)
    return quaternion_to_rotation(quaternion)


def random_transform(
    rng: np.random.Generator, max_translation: float = 1.0
) -> np.ndarray:
    """Draw a random rigid transform with bounded translation magnitude."""
    translation = rng.uniform(-max_translation, max_translation, size=3)
    return make_transform(random_rotation(rng), translation)


def small_transform(
    rng: np.random.Generator,
    max_angle: float = 0.05,
    max_translation: float = 0.1,
) -> np.ndarray:
    """Draw a small perturbation transform, useful as an ICP initial guess."""
    axis = rng.normal(size=3)
    angle = rng.uniform(-max_angle, max_angle)
    translation = rng.uniform(-max_translation, max_translation, size=3)
    return make_transform(axis_angle_to_rotation(axis, angle), translation)


def transform_distance(a: np.ndarray, b: np.ndarray) -> tuple[float, float]:
    """Return (rotation angle in radians, translation distance) between two
    transforms, i.e. the magnitude of ``a^-1 @ b``."""
    delta = compose(invert(a), b)
    return rotation_angle(rotation_part(delta)), float(
        np.linalg.norm(translation_part(delta))
    )
