"""Geometric substrate: SE(3) transforms, error metrics, bounding boxes."""

from repro.geometry import metrics, se3
from repro.geometry.boundingbox import AABB

__all__ = ["se3", "metrics", "AABB"]
