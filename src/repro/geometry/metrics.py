"""Registration accuracy metrics.

The paper reports accuracy with the standard KITTI odometry benchmark
metrics (Geiger et al., CVPR 2012): **translational error** in percent of
distance travelled and **rotational error** in degrees per meter, averaged
over subsequences of fixed path lengths.  This module implements those
metrics over pose sequences, plus simpler per-pair errors used by the unit
tests and the error-injection study (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry import se3

__all__ = [
    "pair_errors",
    "trajectory_from_relative",
    "relative_from_trajectory",
    "trajectory_distances",
    "SequenceErrors",
    "kitti_sequence_errors",
    "absolute_trajectory_error",
    "rmse",
    "fitness",
]

# Subsequence lengths (meters) prescribed by the KITTI odometry devkit.
KITTI_LENGTHS = (100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0)


def pair_errors(
    estimated: np.ndarray, ground_truth: np.ndarray
) -> tuple[float, float]:
    """Per-pair error: (rotation error in degrees, translation error in m).

    The error transform is ``gt^-1 @ est``; its rotation angle and
    translation norm quantify how far the estimate is from the truth.
    """
    rot_err, trans_err = se3.transform_distance(ground_truth, estimated)
    return float(np.degrees(rot_err)), trans_err


def trajectory_from_relative(relative_poses: list[np.ndarray]) -> list[np.ndarray]:
    """Chain frame-to-frame relative transforms into absolute poses.

    ``relative_poses[i]`` maps frame ``i+1`` coordinates into frame ``i``.
    The returned trajectory starts at the identity (frame 0 pose).
    """
    trajectory = [se3.identity()]
    for relative in relative_poses:
        trajectory.append(se3.compose(trajectory[-1], relative))
    return trajectory


def relative_from_trajectory(trajectory: list[np.ndarray]) -> list[np.ndarray]:
    """Invert :func:`trajectory_from_relative`."""
    return [
        se3.compose(se3.invert(trajectory[i]), trajectory[i + 1])
        for i in range(len(trajectory) - 1)
    ]


def trajectory_distances(trajectory: list[np.ndarray]) -> np.ndarray:
    """Cumulative path length at each pose of a trajectory."""
    distances = np.zeros(len(trajectory))
    for i in range(1, len(trajectory)):
        step = se3.translation_part(trajectory[i]) - se3.translation_part(
            trajectory[i - 1]
        )
        distances[i] = distances[i - 1] + np.linalg.norm(step)
    return distances


@dataclass
class SequenceErrors:
    """KITTI-style sequence error summary.

    ``translational`` is a fraction (multiply by 100 for the paper's
    percent axis); ``rotational`` is in degrees per meter.  ``samples``
    holds the per-subsequence raw values for computing error bars, as the
    paper does in Fig. 7.
    """

    translational: float
    rotational: float
    samples: list[tuple[float, float]] = field(default_factory=list)

    @property
    def translational_percent(self) -> float:
        return 100.0 * self.translational

    def translational_std_percent(self) -> float:
        """Standard deviation of the per-subsequence translational error."""
        if not self.samples:
            return 0.0
        return 100.0 * float(np.std([t for t, _ in self.samples]))


def kitti_sequence_errors(
    estimated_trajectory: list[np.ndarray],
    ground_truth_trajectory: list[np.ndarray],
    lengths: tuple[float, ...] = KITTI_LENGTHS,
    step: int = 1,
) -> SequenceErrors:
    """Compute KITTI odometry errors between two pose trajectories.

    For every starting frame (subsampled by ``step``) and every subsequence
    length, find the frame that ends the subsequence, compute the relative
    pose error between ground truth and estimate over that span, and
    normalize by span length.  Returns averages over all (start, length)
    samples.  If the trajectory is shorter than the smallest KITTI length,
    the lengths are scaled down so short synthetic sequences still produce
    a meaningful, comparable score.
    """
    if len(estimated_trajectory) != len(ground_truth_trajectory):
        raise ValueError("trajectory lengths differ")
    if len(estimated_trajectory) < 2:
        raise ValueError("need at least two poses")

    distances = trajectory_distances(ground_truth_trajectory)
    total = distances[-1]
    usable = [length for length in lengths if length <= total]
    if not usable:
        # Scale the ladder to the available path so short sequences work.
        usable = [total * f for f in (0.25, 0.5, 0.75, 1.0) if total * f > 0]
    if not usable:
        raise ValueError("degenerate trajectory with zero path length")

    samples: list[tuple[float, float]] = []
    for start in range(0, len(ground_truth_trajectory), step):
        for length in usable:
            end = _frame_at_distance(distances, start, length)
            if end < 0:
                continue
            gt_rel = se3.compose(
                se3.invert(ground_truth_trajectory[start]),
                ground_truth_trajectory[end],
            )
            est_rel = se3.compose(
                se3.invert(estimated_trajectory[start]), estimated_trajectory[end]
            )
            error = se3.compose(se3.invert(est_rel), gt_rel)
            span = distances[end] - distances[start]
            if span <= 0:
                continue
            trans_err = float(np.linalg.norm(se3.translation_part(error))) / span
            rot_err = float(
                np.degrees(se3.rotation_angle(se3.rotation_part(error)))
            ) / span
            samples.append((trans_err, rot_err))

    if not samples:
        raise ValueError("no valid subsequences found")
    translational = float(np.mean([t for t, _ in samples]))
    rotational = float(np.mean([r for _, r in samples]))
    return SequenceErrors(translational, rotational, samples)


def absolute_trajectory_error(
    estimated_trajectory: list[np.ndarray],
    ground_truth_trajectory: list[np.ndarray],
) -> float:
    """Absolute trajectory error (ATE): RMSE of per-pose translation gaps.

    Both trajectories are first re-expressed relative to their own
    initial pose, so the comparison is origin-aligned (estimates
    conventionally start at identity while ground truth starts at the
    sensor's world pose).  Unlike the KITTI relative metrics this is a
    *global* measure: open-loop drift accumulates into it, which makes
    it the standard score for loop-closing SLAM (Sturm et al., 2012).
    """
    if len(estimated_trajectory) != len(ground_truth_trajectory):
        raise ValueError("trajectory lengths differ")
    if not estimated_trajectory:
        raise ValueError("need at least one pose")
    est_origin = se3.invert(estimated_trajectory[0])
    gt_origin = se3.invert(ground_truth_trajectory[0])
    gaps = [
        se3.translation_part(se3.compose(est_origin, estimate))
        - se3.translation_part(se3.compose(gt_origin, truth))
        for estimate, truth in zip(estimated_trajectory, ground_truth_trajectory)
    ]
    return float(np.sqrt(np.mean(np.sum(np.square(gaps), axis=1))))


def _frame_at_distance(distances: np.ndarray, start: int, length: float) -> int:
    """First frame index whose distance from ``start`` is >= ``length``."""
    target = distances[start] + length
    idx = int(np.searchsorted(distances, target))
    return idx if idx < len(distances) else -1


def rmse(source: np.ndarray, target: np.ndarray) -> float:
    """Root-mean-square distance between matched point arrays."""
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if source.shape != target.shape:
        raise ValueError("matched arrays must have equal shapes")
    if source.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(np.sum((source - target) ** 2, axis=1))))


def fitness(
    source: np.ndarray, target: np.ndarray, inlier_threshold: float
) -> float:
    """Fraction of matched pairs closer than ``inlier_threshold``."""
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if source.shape != target.shape:
        raise ValueError("matched arrays must have equal shapes")
    if len(source) == 0:
        return 0.0
    dists = np.linalg.norm(source - target, axis=1)
    return float(np.mean(dists < inlier_threshold))
