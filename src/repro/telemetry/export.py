"""Trace exporters: Chrome trace-event JSON and flat JSONL run records.

Two serializations of the same span tree, for two audiences:

* :func:`write_chrome_trace` emits the Chrome trace-event format
  (``{"traceEvents": [...]}`` with balanced ``B``/``E`` duration
  events), loadable in Perfetto / ``chrome://tracing``.  Adopted
  worker subtrees (DSE child processes) are laid out on their own
  named tracks via their recorded pid.  The file may embed the run's
  ``profilerTotals`` (stage name -> seconds from the StageProfiler
  shim) so ``tools/check_trace.py`` can cross-check the span tree
  against the legacy table.
* :func:`write_jsonl` emits one self-describing record per line — a
  versioned header, one flat ``span`` record per tree node (with its
  materialized path), and a final ``counters`` record with the
  registry totals.  This is the machine-readable run record the bench
  scripts attach next to their ``BENCH_*.json`` summaries (see
  ``benchmarks/record.py`` and ``benchmarks/README.md`` for the schema
  contract).

:func:`write_trace` dispatches on the output path's extension
(``.jsonl`` -> JSONL, anything else -> Chrome trace), which is what the
``--trace out.json`` flags on the examples and benches call.
"""

from __future__ import annotations

import json

__all__ = [
    "JSONL_SCHEMA",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]

# Bump on any backwards-incompatible change to the JSONL record shape;
# documented in benchmarks/README.md.
JSONL_SCHEMA = "repro.telemetry.run/1"

_MAIN_TRACK = 0


def _span_args(span) -> dict:
    """Flatten a span's annotations, counters, and charges for export."""
    args = dict(span.args)
    args.update(span.counters)
    for name, seconds in span.charges.items():
        args[f"{name}_s"] = round(seconds, 6)
    return args


def chrome_trace_events(tracer) -> list[dict]:
    """The trace as a flat list of Chrome ``B``/``E`` + metadata events.

    Events are emitted in tree order per track, so every ``B`` has its
    matching ``E`` and nesting is well-formed by construction —
    ``tools/check_trace.py`` verifies exactly that invariant.
    Timestamps are microseconds relative to the earliest span so the
    viewer timeline starts at zero.
    """
    starts = [
        span.start for root in tracer.roots for span in root.walk()
    ]
    t0 = min(starts) if starts else 0.0
    pid = tracer.pid
    events: list[dict] = []
    tracks: set[int] = set()

    def emit(span, inherited_track):
        track = span.track if span.track is not None else inherited_track
        tracks.add(track)
        begin = {
            "name": span.name,
            "ph": "B",
            "ts": round((span.start - t0) * 1e6, 3),
            "pid": pid,
            "tid": track,
        }
        if span.category:
            begin["cat"] = span.category
        args = _span_args(span)
        if args:
            begin["args"] = args
        events.append(begin)
        for child in span.children:
            emit(child, track)
        end = span.end if span.end is not None else span.start
        events.append(
            {
                "name": span.name,
                "ph": "E",
                "ts": round((end - t0) * 1e6, 3),
                "pid": pid,
                "tid": track,
            }
        )

    for root in tracer.roots:
        emit(root, _MAIN_TRACK)

    for track in sorted(tracks):
        name = "main" if track == _MAIN_TRACK else f"worker-{track}"
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": track,
                "args": {"name": name},
            }
        )
    return events


def _jsonable(value):
    """JSON ``default=`` hook for numpy scalars and stray objects."""
    if hasattr(value, "item"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


def write_chrome_trace(
    tracer, path: str, profiler_totals: dict | None = None, meta: dict | None = None
) -> None:
    """Write the tracer's spans as a Chrome trace-event JSON file.

    ``profiler_totals`` (stage name -> seconds) embeds the run's
    StageProfiler view for the ``tools/check_trace.py`` cross-check;
    ``meta`` lands under ``otherData`` for human context.
    """
    payload: dict = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    if meta:
        payload["otherData"] = meta
    if profiler_totals is not None:
        payload["profilerTotals"] = {
            name: round(seconds, 6) for name, seconds in profiler_totals.items()
        }
    payload["counterTotals"] = tracer.counters.totals()
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, default=_jsonable)
        f.write("\n")


def _jsonl_records(tracer, meta: dict | None) -> list[dict]:
    header: dict = {
        "record": "header",
        "schema": JSONL_SCHEMA,
        "pid": tracer.pid,
        "epoch_unix": round(tracer.epoch, 6),
    }
    if meta:
        header["meta"] = meta
    records = [header]

    def emit(span, path, depth):
        span_path = f"{path}/{span.name}" if path else span.name
        record: dict = {
            "record": "span",
            "name": span.name,
            "path": span_path,
            "depth": depth,
            "start_s": round(span.start, 6),
            "dur_s": round(span.duration, 6),
        }
        if span.category:
            record["category"] = span.category
        if span.track is not None:
            record["track"] = span.track
        if span.args:
            record["args"] = span.args
        if span.counters:
            record["counters"] = span.counters
        if span.charges:
            record["charges"] = {
                name: round(seconds, 6)
                for name, seconds in span.charges.items()
            }
        records.append(record)
        for child in span.children:
            emit(child, span_path, depth + 1)

    for root in tracer.roots:
        emit(root, "", 0)
    records.append({"record": "counters", "totals": tracer.counters.totals()})
    return records


def write_jsonl(tracer, path: str, meta: dict | None = None) -> None:
    """Write the flat JSONL run record (one record per line)."""
    with open(path, "w", encoding="utf-8") as f:
        for record in _jsonl_records(tracer, meta):
            f.write(json.dumps(record, default=_jsonable))
            f.write("\n")


def write_trace(
    tracer, path: str, profiler_totals: dict | None = None, meta: dict | None = None
) -> None:
    """Dispatch on extension: ``.jsonl`` -> run record, else Chrome trace."""
    if path.endswith(".jsonl"):
        write_jsonl(tracer, path, meta=meta)
    else:
        write_chrome_trace(tracer, path, profiler_totals=profiler_totals, meta=meta)
