"""Hierarchical span tracer.

The paper's whole argument is an observability argument: Fig. 4's stage
breakdown, Fig. 6's search-work counts, and the Sec. 6 accelerator
evaluation all start from *measuring what the workload actually did*.
This module is the substrate for that measurement across every layer of
the repro: a :class:`Tracer` records a tree of timed :class:`Span`
objects (``mapper -> pair -> match -> RPCE``), each span carrying

* wall-clock duration on one monotonic clock (``time.perf_counter``)
  plus the tracer's wall-clock epoch so traces from different processes
  share a timebase when merged;
* free-form ``args`` annotations (ICP iterations, pose-graph mode,
  active-set size, ...);
* integer/float ``counters`` — typically the
  :class:`~repro.kdtree.stats.SearchStats` fields of the stage that ran
  inside the span, attached via :meth:`Tracer.count_stats`;
* cross-cutting time ``charges`` (KD-tree search / construction
  seconds), attributed to the innermost open span exactly like
  :meth:`~repro.profiling.StageProfiler.charge_search` attributes them
  to the open stage.

Counters roll up: :meth:`Span.total_counters` and
:meth:`Span.total_charges` aggregate a span's own values with all of
its descendants', and the tracer-wide :class:`CounterRegistry` keeps
run totals independent of the tree.

Tracing must cost nothing when off.  Call sites never branch on a
flag; they call the same methods on :data:`NULL_TRACER`, a
:class:`NullTracer` whose every method is a constant-time no-op (its
``span()`` returns one preallocated context manager).  The overhead of
the disabled path is a few attribute lookups per *stage*, not per
query — unmeasurable next to the stages themselves (see
``benchmarks/bench_stream_odometry.py``'s telemetry record).

Crossing process boundaries (the DSE ``ProcessPoolExecutor``):
:meth:`Tracer.freeze` serializes a tracer's span tree to plain dicts
with absolute (epoch-based) timestamps, and :meth:`Tracer.adopt`
grafts such a payload into another tracer — re-based onto the
adopter's clock and tagged with the originating process id so
exporters can lay worker subtrees out on their own tracks.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import fields, is_dataclass

from repro.telemetry.counters import CounterRegistry

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "tracer_of"]

# Span categories: "stage" marks spans opened by the StageProfiler shim
# (the Fig. 4 stage names); everything else is a structural span.
STAGE_CATEGORY = "stage"


def _plain(value):
    """Coerce annotation values to JSON-serializable Python scalars."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return str(value)


class Span:
    """One timed node of the trace tree.

    ``start``/``end`` are seconds on the owning tracer's monotonic
    clock (``perf_counter``); absolute wall-clock times are recovered
    by adding the tracer's ``epoch``.  ``track`` is ``None`` for spans
    recorded in-process and the originating pid for adopted subtrees.
    """

    __slots__ = (
        "name",
        "category",
        "start",
        "end",
        "args",
        "counters",
        "charges",
        "children",
        "track",
    )

    def __init__(self, name: str, start: float, category: str | None = None):
        self.name = name
        self.category = category
        self.start = start
        self.end: float | None = None
        self.args: dict = {}
        self.counters: dict = {}
        self.charges: dict = {}
        self.children: list[Span] = []
        self.track: int | None = None

    @property
    def duration(self) -> float:
        """Span wall time in seconds (0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def total_counters(self) -> dict:
        """This span's counters plus every descendant's, summed."""
        totals = dict(self.counters)
        for child in self.children:
            for name, value in child.total_counters().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def total_charges(self) -> dict:
        """This span's time charges plus every descendant's, summed."""
        totals = dict(self.charges)
        for child in self.children:
            for name, value in child.total_charges().items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def walk(self):
        """Yield this span and all descendants, depth-first pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self, epoch: float) -> dict:
        """Serialize with absolute (epoch-based) timestamps."""
        return {
            "name": self.name,
            "category": self.category,
            "start": epoch + self.start,
            "end": None if self.end is None else epoch + self.end,
            "args": self.args,
            "counters": self.counters,
            "charges": self.charges,
            "children": [c.to_dict(epoch) for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict, epoch: float, track: int | None) -> "Span":
        """Rebuild from :meth:`to_dict` output onto a new clock."""
        span = cls(data["name"], data["start"] - epoch, data.get("category"))
        end = data.get("end")
        span.end = None if end is None else end - epoch
        span.args = dict(data.get("args", {}))
        span.counters = dict(data.get("counters", {}))
        span.charges = dict(data.get("charges", {}))
        span.track = track
        span.children = [
            cls.from_dict(child, epoch, track)
            for child in data.get("children", [])
        ]
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration:.4f}s, "
            f"{len(self.children)} children)"
        )


FREEZE_SCHEMA = "repro.telemetry.trace/1"


class Tracer:
    """Records a forest of nested spans plus run-total counters."""

    enabled = True

    def __init__(self):
        # Wall-clock origin of this tracer's monotonic timestamps:
        # absolute time = epoch + span.start.  Captured once so merged
        # cross-process traces agree to clock-sync precision.
        self.epoch = time.time() - time.perf_counter()
        self.pid = os.getpid()
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.counters = CounterRegistry()

    # ------------------------------------------------------------------
    # Span lifecycle.
    # ------------------------------------------------------------------

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def begin(self, name: str, category: str | None = None, **args) -> Span:
        """Open a span under the innermost open span (or as a root)."""
        span = Span(name, time.perf_counter(), category)
        if args:
            span.args.update({k: _plain(v) for k, v in args.items()})
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, duration: float | None = None) -> None:
        """Close ``span``; must be the innermost open span.

        ``duration`` overrides the measured wall time — the
        StageProfiler shim passes its own measured elapsed time so the
        span tree and the stage table agree *exactly*, not just to
        clock precision.
        """
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order "
                f"(innermost is {self._stack[-1].name if self._stack else None!r})"
            )
        self._stack.pop()
        if duration is not None:
            span.end = span.start + duration
        else:
            span.end = time.perf_counter()

    @contextmanager
    def span(self, name: str, category: str | None = None, **args):
        """``with tracer.span("mapper"): ...`` — spans nest arbitrarily."""
        opened = self.begin(name, category, **args)
        try:
            yield opened
        finally:
            self.end(opened)

    # ------------------------------------------------------------------
    # Annotations, counters, and cross-cutting charges.
    # ------------------------------------------------------------------

    def annotate(self, **kwargs) -> None:
        """Attach key/value annotations to the innermost open span."""
        if self._stack:
            self._stack[-1].args.update(
                {k: _plain(v) for k, v in kwargs.items()}
            )

    def count(self, name: str, value=1) -> None:
        """Add to a named counter on the innermost span and the registry."""
        value = _plain(value)
        self.counters.add(name, value)
        if self._stack:
            counters = self._stack[-1].counters
            counters[name] = counters.get(name, 0) + value

    def count_stats(self, stats) -> None:
        """Attach every field of a stats dataclass as counter deltas.

        Typically called with the just-finished stage's
        :class:`~repro.kdtree.stats.SearchStats`; zero fields are
        skipped so spans stay compact.  Works for any flat dataclass of
        numeric fields (mapper/pose-graph counters included).
        """
        if not is_dataclass(stats):
            raise TypeError(f"expected a dataclass, got {type(stats).__name__}")
        for field_ in fields(stats):
            value = getattr(stats, field_.name)
            if value:
                self.count(field_.name, value)

    def charge(self, name: str, seconds: float) -> None:
        """Attribute cross-cutting seconds to the innermost open span."""
        if self._stack:
            charges = self._stack[-1].charges
            charges[name] = charges.get(name, 0.0) + seconds

    # Aliases matching the StageProfiler vocabulary, so the searcher's
    # charge keys and the shim's forwarding read the same.
    def charge_search(self, seconds: float) -> None:
        self.charge("kdtree_search", seconds)

    def charge_construction(self, seconds: float) -> None:
        self.charge("kdtree_construction", seconds)

    # ------------------------------------------------------------------
    # Process-boundary serialization.
    # ------------------------------------------------------------------

    def freeze(self) -> dict:
        """Serialize the whole trace to plain picklable/JSON-able dicts.

        Timestamps become absolute (epoch-based) so the payload can be
        re-based onto any other tracer's clock by :meth:`adopt`.
        """
        return {
            "schema": FREEZE_SCHEMA,
            "pid": self.pid,
            "spans": [span.to_dict(self.epoch) for span in self.roots],
            "counters": self.counters.totals(),
        }

    def adopt(self, payload: dict) -> list[Span]:
        """Graft a frozen trace under the innermost open span.

        Spans are re-based onto this tracer's clock and tagged with the
        originating pid (``Span.track``); the payload's counter totals
        fold into this tracer's registry.  Returns the adopted roots.
        """
        if payload.get("schema") != FREEZE_SCHEMA:
            raise ValueError(
                f"cannot adopt trace payload with schema "
                f"{payload.get('schema')!r} (expected {FREEZE_SCHEMA!r})"
            )
        track = payload.get("pid")
        if track == self.pid:
            # Same-process payload (workers=1 path): keep it on the
            # adopter's main track instead of a synthetic worker track.
            track = None
        adopted = [
            Span.from_dict(span, self.epoch, track)
            for span in payload.get("spans", [])
        ]
        parent = self.current
        if parent is not None:
            parent.children.extend(adopted)
        else:
            self.roots.extend(adopted)
        self.counters.merge(payload.get("counters", {}))
        return adopted

    # ------------------------------------------------------------------
    # Aggregations.
    # ------------------------------------------------------------------

    def stage_rollup(self) -> dict:
        """Per-stage totals recovered purely from the span tree.

        Sums duration and KD-tree charges over every ``category ==
        "stage"`` span, keyed by stage name — the quantity that must
        match the StageProfiler shim's table exactly (pinned by
        ``tests/telemetry/test_shim_equivalence.py``).
        """
        rollup: dict[str, dict] = {}
        for root in self.roots:
            for span in root.walk():
                if span.category != STAGE_CATEGORY:
                    continue
                entry = rollup.setdefault(
                    span.name,
                    {
                        "total": 0.0,
                        "kdtree_search": 0.0,
                        "kdtree_construction": 0.0,
                        "calls": 0,
                    },
                )
                entry["total"] += span.duration
                entry["kdtree_search"] += span.charges.get("kdtree_search", 0.0)
                entry["kdtree_construction"] += span.charges.get(
                    "kdtree_construction", 0.0
                )
                entry["calls"] += 1
        return rollup


class _NullSpan:
    """Inert span handed out by the null tracer's context manager."""

    __slots__ = ()
    name = None
    duration = 0.0

    def total_counters(self):
        return {}

    def total_charges(self):
        return {}


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """Do-nothing tracer: the always-safe default for every call site.

    Every method is a constant-time no-op; ``span()`` returns one
    preallocated context manager, so the disabled-tracing hot path
    allocates nothing.
    """

    enabled = False
    current = None
    roots = ()

    def span(self, name, category=None, **args):
        return _NULL_CONTEXT

    def begin(self, name, category=None, **args):
        return _NULL_SPAN

    def end(self, span, duration=None):
        pass

    def annotate(self, **kwargs):
        pass

    def count(self, name, value=1):
        pass

    def count_stats(self, stats):
        pass

    def charge(self, name, seconds):
        pass

    def charge_search(self, seconds):
        pass

    def charge_construction(self, seconds):
        pass

    def stage_rollup(self):
        return {}


NULL_TRACER = NullTracer()


def tracer_of(profiler) -> "Tracer | NullTracer":
    """The tracer backing a StageProfiler, or the null tracer.

    The profiler argument is how a tracer travels through the pipeline
    layers (every entry point already threads one); instrumentation
    points call ``tracer_of(profiler)`` and never branch on enablement.
    """
    tracer = getattr(profiler, "tracer", None)
    return NULL_TRACER if tracer is None else tracer
