"""Unified telemetry: hierarchical spans, counters, trace exporters.

The observability layer behind the paper's measurement story (Fig. 4
stage breakdown, Fig. 6 search-work counts): a :class:`Tracer` records
nested :class:`Span` trees with attached counter deltas and
cross-cutting KD-tree time charges, a :class:`CounterRegistry` keeps
run totals, and :mod:`repro.telemetry.export` serializes the result as
Chrome trace-event JSON (Perfetto-loadable) or a flat JSONL run
record.

The legacy :class:`~repro.profiling.StageProfiler` is a thin
compatibility shim over this layer: attach a tracer to a profiler and
every ``profiler.stage(...)`` opens a span (category ``"stage"``)
whose duration and KD-tree charges match the stage table exactly,
while the surrounding layers (pipeline, streaming odometry, SLAM
mapper, DSE explorer) contribute the structural spans above and below.
With no tracer attached — the default everywhere — every
instrumentation point hits :data:`NULL_TRACER` no-ops and costs
nothing measurable.
"""

from repro.telemetry.counters import CounterRegistry
from repro.telemetry.export import (
    JSONL_SCHEMA,
    chrome_trace_events,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    tracer_of,
)

__all__ = [
    "CounterRegistry",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "tracer_of",
    "JSONL_SCHEMA",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
