"""Run-total counter registry.

Spans carry per-span counter *deltas* (see
:class:`~repro.telemetry.tracer.Span`); the registry keeps the run-wide
totals so a consumer that only wants "how many node visits did this run
perform" never has to walk the span tree.  Counters are created on
first :meth:`add` — there is no declaration step, the namespace is
whatever the instrumented layers charge (the
:class:`~repro.kdtree.stats.SearchStats` field names, mapper counters
like ``keyframes``/``loop_closures``, pose-graph counters like
``relinearized_edges``).
"""

from __future__ import annotations

__all__ = ["CounterRegistry"]


class CounterRegistry:
    """Named numeric accumulators, created on first use."""

    def __init__(self):
        self._counters: dict[str, int | float] = {}

    def add(self, name: str, value=1) -> None:
        """Accumulate ``value`` into the named counter."""
        self._counters[name] = self._counters.get(name, 0) + value

    def get(self, name: str):
        """Current total for ``name`` (0 if never charged)."""
        return self._counters.get(name, 0)

    def totals(self) -> dict:
        """A snapshot dict of every counter's total."""
        return dict(self._counters)

    def merge(self, totals: dict) -> None:
        """Fold another registry's :meth:`totals` snapshot into this one."""
        for name, value in totals.items():
            self.add(name, value)

    def __len__(self) -> int:
        return len(self._counters)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value}" for name, value in sorted(self._counters.items())
        )
        return f"CounterRegistry({inner})"
