"""Profiling utilities for the bottleneck analysis (paper Fig. 4)."""

from repro.profiling.plot import bar_chart, line_plot, scatter_plot
from repro.profiling.timer import StageProfiler, StageTiming

__all__ = [
    "StageProfiler",
    "StageTiming",
    "scatter_plot",
    "line_plot",
    "bar_chart",
]
