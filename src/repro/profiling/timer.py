"""Hierarchical stage profiler.

The bottleneck analysis of paper Sec. 3.2 (Fig. 4) needs two views of
the same run: wall time per pipeline *stage* (Normal Estimation, KPCE,
RPCE, ...) and, cutting across stages, time spent in KD-tree *search*
versus KD-tree *construction* versus everything else.  ``StageProfiler``
supports both: stages are timed with context managers, and the neighbor
search wrapper charges its own time to dedicated cross-cutting buckets.

``StageProfiler`` is also the compatibility shim over the unified
telemetry layer (:mod:`repro.telemetry`).  Attach a
:class:`~repro.telemetry.Tracer` (the ``tracer`` field) and every
stage additionally opens a span (category ``"stage"``) in the
tracer's span tree — nested under whatever structural span the caller
holds open — with *exactly* the duration and KD-tree charges the
stage table records (the shim closes the span with its own measured
elapsed time, so ``stage_fractions()`` and the span-tree rollup agree
bit-for-bit; pinned by ``tests/telemetry/test_shim_equivalence.py``).
With no tracer attached — the default — behavior and cost are
unchanged from the pre-telemetry profiler.  Stages themselves still
may not nest (the pipeline is sequential); arbitrary nesting lives in
the tracer's structural spans, not in the stage table.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["StageProfiler", "StageTiming"]


@dataclass
class StageTiming:
    """Accumulated timing for one named stage."""

    total: float = 0.0
    kdtree_search: float = 0.0
    kdtree_construction: float = 0.0
    calls: int = 0

    @property
    def other(self) -> float:
        """Time not attributable to KD-tree work."""
        return max(0.0, self.total - self.kdtree_search - self.kdtree_construction)


@dataclass
class StageProfiler:
    """Collects per-stage and cross-cutting KD-tree timings.

    Stages may not overlap (the pipeline is sequential); the currently
    open stage receives any KD-tree charges reported while it is active.
    """

    stages: dict[str, StageTiming] = field(default_factory=dict)
    _active: str | None = None
    # Optional repro.telemetry.Tracer backing this profiler.  When set,
    # stages mirror into the tracer's span tree and KD-tree charges
    # land on the innermost open span as well as the stage buckets.
    tracer: object | None = None

    @contextmanager
    def stage(self, name: str):
        """Time a pipeline stage: ``with profiler.stage("RPCE"): ...``."""
        if self._active is not None:
            raise RuntimeError(
                f"stage {name!r} opened while {self._active!r} is active"
            )
        timing = self.stages.setdefault(name, StageTiming())
        self._active = name
        tracer = self.tracer
        span = tracer.begin(name, category="stage") if tracer is not None else None
        start = time.perf_counter()
        try:
            yield timing
        finally:
            elapsed = time.perf_counter() - start
            timing.total += elapsed
            timing.calls += 1
            self._active = None
            if span is not None:
                # Close with the measured elapsed time so the span tree
                # and the stage table agree exactly.
                tracer.end(span, duration=elapsed)

    def charge_search(self, elapsed: float) -> None:
        """Attribute ``elapsed`` seconds of KD-tree search to the open stage."""
        if self._active is not None:
            self.stages[self._active].kdtree_search += elapsed
        if self.tracer is not None:
            self.tracer.charge_search(elapsed)

    def charge_construction(self, elapsed: float) -> None:
        """Attribute KD-tree build time to the open stage."""
        if self._active is not None:
            self.stages[self._active].kdtree_construction += elapsed
        if self.tracer is not None:
            self.tracer.charge_construction(elapsed)

    # ------------------------------------------------------------------
    # Aggregations used by the Fig. 4 benches
    # ------------------------------------------------------------------

    @property
    def total(self) -> float:
        return sum(t.total for t in self.stages.values())

    @property
    def total_kdtree_search(self) -> float:
        return sum(t.kdtree_search for t in self.stages.values())

    @property
    def total_kdtree_construction(self) -> float:
        return sum(t.kdtree_construction for t in self.stages.values())

    def stage_totals(self) -> dict[str, float]:
        """Stage name -> accumulated seconds (the trace cross-check view).

        This is what ``--trace`` flags embed as ``profilerTotals`` in
        the Chrome trace so ``tools/check_trace.py`` can verify the
        span tree against the legacy table.
        """
        return {name: timing.total for name, timing in self.stages.items()}

    def stage_fractions(self) -> dict[str, float]:
        """Fraction of total time per stage (Fig. 4a rows)."""
        total = self.total
        if total == 0:
            return {name: 0.0 for name in self.stages}
        return {name: t.total / total for name, t in self.stages.items()}

    def kdtree_fractions(self) -> dict[str, float]:
        """Fractions for Fig. 4b: search / construction / other."""
        total = self.total
        if total == 0:
            return {"search": 0.0, "construction": 0.0, "other": 0.0}
        search = self.total_kdtree_search
        construction = self.total_kdtree_construction
        return {
            "search": search / total,
            "construction": construction / total,
            "other": max(0.0, total - search - construction) / total,
        }

    def merge(self, other: "StageProfiler", stages: tuple | None = None) -> None:
        """Fold another profiler's stages into this one.

        ``stages`` restricts the fold to the named stages — used when a
        consumer only accounts part of a shared profile (e.g. the DSE
        explorer attributing cached preprocess work to configurations
        that skipped the feature stages).
        """
        for name, timing in other.stages.items():
            if stages is not None and name not in stages:
                continue
            mine = self.stages.setdefault(name, StageTiming())
            mine.total += timing.total
            mine.kdtree_search += timing.kdtree_search
            mine.kdtree_construction += timing.kdtree_construction
            mine.calls += timing.calls

    def report(
        self, extended: bool = False, search_stats=None, odometry_stats=None
    ) -> str:
        """Human-readable table of stage timings.

        With ``extended``, adds the non-KD-tree remainder (``other`` —
        the stage's aggregation kernels) and each stage's share of the
        total, the view ``examples/quickstart.py --profile`` prints.
        Passing a :class:`~repro.kdtree.stats.SearchStats` as
        ``search_stats`` (extended mode only) appends a counters line
        showing how the run's radius queries were delivered:
        CSR-natively (``csr``), from the nested-radius reuse cache
        (``reused``/``cache hits``), or total.  Passing an
        :class:`~repro.registration.odometry.OdometryStats` as
        ``odometry_stats`` (extended mode only) appends the run's
        health line — non-converged ICP pairs and any recovery-ladder
        activity, previously invisible in this view.
        """
        header = f"{'stage':<28}{'total(s)':>10}{'kd-search':>11}{'kd-build':>10}"
        if extended:
            header += f"{'other':>10}{'share':>8}"
        lines = [header]
        total = self.total
        for name, timing in sorted(
            self.stages.items(), key=lambda kv: -kv[1].total
        ):
            row = (
                f"{name:<28}{timing.total:>10.4f}"
                f"{timing.kdtree_search:>11.4f}{timing.kdtree_construction:>10.4f}"
            )
            if extended:
                share = timing.total / total if total > 0 else 0.0
                row += f"{timing.other:>10.4f}{100 * share:>7.1f}%"
            lines.append(row)
        footer = (
            f"{'TOTAL':<28}{self.total:>10.4f}"
            f"{self.total_kdtree_search:>11.4f}{self.total_kdtree_construction:>10.4f}"
        )
        if extended:
            other = max(
                0.0,
                total - self.total_kdtree_search - self.total_kdtree_construction,
            )
            footer += f"{other:>10.4f}{(100.0 if total > 0 else 0.0):>7.1f}%"
        lines.append(footer)
        if extended and search_stats is not None:
            lines.append(
                f"queries: {search_stats.queries} "
                f"(csr {search_stats.csr_results}, "
                f"reused {search_stats.reused_queries}, "
                f"cache hits {search_stats.cache_hits})"
            )
        if extended and odometry_stats is not None:
            lines.append(f"health: {odometry_stats.summary()}")
        return "\n".join(lines)
