"""Terminal plotting for benchmark reports.

The benchmark harness reproduces the paper's *figures*; these helpers
render them as ASCII so the ``benchmarks/results/*.txt`` files carry the
visual shape (scatter for Fig. 3/14a, curves for Fig. 15) without any
plotting dependency.
"""

from __future__ import annotations

import math

__all__ = ["scatter_plot", "line_plot", "bar_chart"]


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(position * (cells - 1) + 0.5)))


def scatter_plot(
    points: list[tuple[float, float, str]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot labelled (x, y) points; each point renders as its label's
    first character, with a legend mapping characters to labels."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    legend: dict[str, str] = {}
    for x, y, label in points:
        column = _scale(x, x_lo, x_hi, width)
        row = height - 1 - _scale(y, y_lo, y_hi, height)
        marker = label[0] if label else "*"
        if grid[row][column] not in (" ", marker):
            marker = "+"  # collision
        grid[row][column] = marker
        legend.setdefault(label[0] if label else "*", label)

    lines = [f"{y_label} ({y_lo:.3g} .. {y_hi:.3g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_lo:.3g} .. {x_hi:.3g})")
    lines.append(
        " legend: "
        + ", ".join(f"{marker}={label}" for marker, label in sorted(legend.items()))
    )
    return "\n".join(lines)


def line_plot(
    xs: list[float],
    ys: list[float],
    width: int = 60,
    height: int = 14,
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
) -> str:
    """Plot one series as a curve of ``*`` markers."""
    if not xs or len(xs) != len(ys):
        return "(no data)"
    values = [math.log10(y) if log_y else y for y in ys]
    y_lo, y_hi = min(values), max(values)
    x_lo, x_hi = min(xs), max(xs)
    grid = [[" "] * width for _ in range(height)]
    for x, value in zip(xs, values):
        column = _scale(x, x_lo, x_hi, width)
        row = height - 1 - _scale(value, y_lo, y_hi, height)
        grid[row][column] = "*"
    label = f"log10({y_label})" if log_y else y_label
    lines = [f"{label} ({min(ys):.3g} .. {max(ys):.3g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_lo:.3g} .. {x_hi:.3g})")
    return "\n".join(lines)


def bar_chart(
    items: dict[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bars, scaled to the maximum value."""
    if not items:
        return "(no data)"
    peak = max(items.values())
    label_width = max(len(name) for name in items)
    lines = []
    for name, value in items.items():
        bar = "#" * _scale(value, 0.0, peak, width) if peak > 0 else ""
        lines.append(f"{name:<{label_width}} |{bar} {value:.3g}{unit}")
    return "\n".join(lines)
