"""Brute-force neighbor search.

The exhaustive reference against which every tree search is validated,
and the primitive the two-stage KD-tree's back-end performs on leaf sets
(paper Sec. 4.1: "the two-stage KD-tree enables exhaustive searches in
certain sub-trees").  All functions are fully vectorized.
"""

from __future__ import annotations

import numpy as np

__all__ = ["nn", "knn", "radius", "nn_batch", "pairwise_sq_distances"]


def _as_2d(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"expected (N, k) array, got shape {points.shape}")
    return points


def pairwise_sq_distances(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Squared distances, shape (n_queries, n_points)."""
    queries = _as_2d(np.atleast_2d(queries))
    points = _as_2d(points)
    diff = queries[:, None, :] - points[None, :, :]
    return np.sum(diff * diff, axis=2)


def nn(points: np.ndarray, query: np.ndarray) -> tuple[int, float]:
    """Index and distance of the nearest point to ``query``."""
    points = _as_2d(points)
    if len(points) == 0:
        raise ValueError("cannot search an empty point set")
    diff = points - np.asarray(query, dtype=np.float64)
    sq = np.sum(diff * diff, axis=1)
    best = int(np.argmin(sq))
    return best, float(np.sqrt(sq[best]))


def knn(points: np.ndarray, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Indices and distances of the ``k`` nearest points, sorted ascending."""
    points = _as_2d(points)
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, len(points))
    if k == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    diff = points - np.asarray(query, dtype=np.float64)
    sq = np.sum(diff * diff, axis=1)
    if k < len(points):
        candidates = np.argpartition(sq, k - 1)[:k]
    else:
        candidates = np.arange(len(points))
    order = candidates[np.argsort(sq[candidates], kind="stable")]
    return order.astype(np.int64), np.sqrt(sq[order])


def radius(
    points: np.ndarray, query: np.ndarray, r: float, sort: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Indices and distances of all points within ``r`` of ``query``."""
    points = _as_2d(points)
    if r < 0:
        raise ValueError("radius must be non-negative")
    diff = points - np.asarray(query, dtype=np.float64)
    sq = np.sum(diff * diff, axis=1)
    mask = sq <= r * r
    indices = np.nonzero(mask)[0].astype(np.int64)
    dists = np.sqrt(sq[mask])
    if sort:
        order = np.argsort(dists, kind="stable")
        return indices[order], dists[order]
    return indices, dists


def nn_batch(points: np.ndarray, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized nearest neighbor for every row of ``queries``.

    Processes queries in chunks to bound the (chunk x n_points) distance
    matrix memory.
    """
    points = _as_2d(points)
    queries = _as_2d(np.atleast_2d(queries))
    if len(points) == 0:
        raise ValueError("cannot search an empty point set")
    indices = np.empty(len(queries), dtype=np.int64)
    dists = np.empty(len(queries))
    chunk = max(1, int(4e6 // max(len(points), 1)))
    for start in range(0, len(queries), chunk):
        stop = min(start + chunk, len(queries))
        sq = pairwise_sq_distances(queries[start:stop], points)
        best = np.argmin(sq, axis=1)
        indices[start:stop] = best
        dists[start:stop] = np.sqrt(sq[np.arange(stop - start), best])
    return indices, dists
