"""Brute-force neighbor search.

The exhaustive reference against which every tree search is validated,
and the primitive the two-stage KD-tree's back-end performs on leaf sets
(paper Sec. 4.1: "the two-stage KD-tree enables exhaustive searches in
certain sub-trees").  All functions are fully vectorized.

Batch queries
-------------
:func:`sq_distances` is the shared squared-distance kernel behind the
batched entry points (:func:`nn_batch`, :func:`knn_batch`,
:func:`radius_batch`).  It accumulates one coordinate at a time with
elementwise ufuncs, so every output element is produced by the same
sequence of IEEE operations no matter how many queries share the batch —
the property that makes batched results *bit-identical* to per-query
results.  Batches are processed in cache-sized query chunks
(:func:`query_chunk`) with caller-provided scratch so the hot loop never
allocates large fresh buffers.

Tie-breaking is deterministic throughout: k-nearest membership is the
``k`` smallest by ``(distance, index)`` and radius results come back in
ascending index order.
"""

from __future__ import annotations

import numpy as np

from repro.core.ragged import RaggedNeighborhoods, segment_sort_order

__all__ = [
    "nn",
    "knn",
    "radius",
    "nn_batch",
    "knn_batch",
    "radius_batch",
    "radius_batch_csr",
    "pairwise_sq_distances",
    "sq_distances",
    "query_chunk",
]


def _as_2d(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"expected (N, k) array, got shape {points.shape}")
    return points


def pairwise_sq_distances(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Squared distances, shape (n_queries, n_points)."""
    queries = _as_2d(np.atleast_2d(queries))
    points = _as_2d(points)
    diff = queries[:, None, :] - points[None, :, :]
    return np.sum(diff * diff, axis=2)


def nn(points: np.ndarray, query: np.ndarray) -> tuple[int, float]:
    """Index and distance of the nearest point to ``query``."""
    points = _as_2d(points)
    if len(points) == 0:
        raise ValueError("cannot search an empty point set")
    diff = points - np.asarray(query, dtype=np.float64)
    sq = np.sum(diff * diff, axis=1)
    best = int(np.argmin(sq))
    return best, float(np.sqrt(sq[best]))


def knn(points: np.ndarray, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Indices and distances of the ``k`` nearest points, sorted ascending.

    Ties resolve by the shared (distance, index) rule, so this scalar
    reference agrees with :func:`knn_batch` on duplicate distances.
    """
    points = _as_2d(points)
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, len(points))
    if k == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    diff = points - np.asarray(query, dtype=np.float64)
    sq = np.sum(diff * diff, axis=1)
    cols, vals = _select_k_rows(sq[None, :], k)
    return cols[0], np.sqrt(vals[0])


def radius(
    points: np.ndarray, query: np.ndarray, r: float, sort: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Indices and distances of all points within ``r`` of ``query``."""
    points = _as_2d(points)
    if r < 0:
        raise ValueError("radius must be non-negative")
    diff = points - np.asarray(query, dtype=np.float64)
    sq = np.sum(diff * diff, axis=1)
    mask = sq <= r * r
    indices = np.nonzero(mask)[0].astype(np.int64)
    dists = np.sqrt(sq[mask])
    if sort:
        order = np.argsort(dists, kind="stable")
        return indices[order], dists[order]
    return indices, dists


def query_chunk(n_points: int, n_queries: int) -> int:
    """Queries per batch chunk so the (chunk, n_points) scratch stays
    cache-resident (~1 MB per buffer) — on large clouds the distance
    matrix must not spill to DRAM, and large fresh allocations are the
    dominant cost of naive batching."""
    return max(1, min(n_queries, 4096, int(65_536 // max(n_points, 1)) + 1))


def sq_distances(
    queries: np.ndarray,
    points: np.ndarray,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
    points_t: np.ndarray | None = None,
) -> np.ndarray:
    """Row-deterministic squared distances, shape (n_queries, n_points).

    Accumulates one coordinate at a time with elementwise ufuncs, so row
    ``i`` is bit-identical whether computed alone or inside any batch.
    ``out``/``scratch`` are optional preallocated (n_queries, n_points)
    buffers; ``points_t`` an optional contiguous (k, N) transpose.
    """
    queries = _as_2d(np.atleast_2d(queries))
    points = _as_2d(points)
    n_queries, ndim = queries.shape
    if points.shape[1] != ndim:
        raise ValueError(
            f"queries have dimension {ndim}, points {points.shape[1]}"
        )
    if points_t is None:
        points_t = points.T
    if out is None:
        out = np.empty((n_queries, len(points)))
    if scratch is None:
        scratch = np.empty((n_queries, len(points)))
    np.subtract(queries[:, 0, None], points_t[0][None, :], out=out)
    np.square(out, out=out)
    for j in range(1, ndim):
        np.subtract(queries[:, j, None], points_t[j][None, :], out=scratch)
        np.square(scratch, out=scratch)
        out += scratch
    return out


def nn_batch(
    points: np.ndarray, queries: np.ndarray, points_t: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized nearest neighbor for every row of ``queries``.

    Processes queries in cache-sized chunks with preallocated scratch;
    ties resolve to the lowest point index (``argmin`` semantics).
    """
    points = _as_2d(points)
    queries = _as_2d(np.atleast_2d(queries))
    if len(points) == 0:
        raise ValueError("cannot search an empty point set")
    if points_t is None:
        points_t = np.ascontiguousarray(points.T)
    indices = np.empty(len(queries), dtype=np.int64)
    dists = np.empty(len(queries))
    chunk = query_chunk(len(points), len(queries))
    sq = np.empty((chunk, len(points)))
    scratch = np.empty((chunk, len(points)))
    for start in range(0, len(queries), chunk):
        stop = min(start + chunk, len(queries))
        c = stop - start
        block = sq_distances(
            queries[start:stop], points, sq[:c], scratch[:c], points_t
        )
        best = np.argmin(block, axis=1)
        indices[start:stop] = best
        dists[start:stop] = np.sqrt(block[np.arange(c), best])
    return indices, dists


def _select_k_rows(
    block: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic k-smallest per row of ``block``: membership is the
    ``k`` smallest by ``(value, column)`` and rows come back sorted by
    that same key.  Returns (columns (c, k), values (c, k))."""
    c, n = block.shape
    if k >= n:
        cols = np.broadcast_to(np.arange(n, dtype=np.int64), (c, n)).copy()
    else:
        cols = np.argpartition(block, k - 1, axis=1)[:, :k].astype(np.int64)
        vals = np.take_along_axis(block, cols, axis=1)
        kth = vals.max(axis=1)
        # argpartition breaks value ties at the k-th boundary arbitrarily;
        # repair those rare rows to the (value, column) rule.
        n_eq_total = np.count_nonzero(block == kth[:, None], axis=1)
        n_eq_kept = np.count_nonzero(vals == kth[:, None], axis=1)
        for row in np.nonzero(n_eq_total > n_eq_kept)[0]:
            below = np.nonzero(block[row] < kth[row])[0]
            ties = np.nonzero(block[row] == kth[row])[0]
            cols[row] = np.concatenate([below, ties[: k - len(below)]])
    vals = np.take_along_axis(block, cols, axis=1)
    order = np.lexsort((cols, vals), axis=1)
    return np.take_along_axis(cols, order, axis=1), np.take_along_axis(
        vals, order, axis=1
    )


def knn_batch(
    points: np.ndarray,
    queries: np.ndarray,
    k: int,
    points_t: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized kNN for every row of ``queries``.

    Returns rectangular (n_queries, min(k, n)) index and distance arrays
    sorted ascending, ties resolved by lowest point index.
    """
    points = _as_2d(points)
    queries = _as_2d(np.atleast_2d(queries))
    if k <= 0:
        raise ValueError("k must be positive")
    if len(points) == 0:
        raise ValueError("cannot search an empty point set")
    k = min(k, len(points))
    if points_t is None:
        points_t = np.ascontiguousarray(points.T)
    indices = np.empty((len(queries), k), dtype=np.int64)
    dists = np.empty((len(queries), k))
    chunk = query_chunk(len(points), len(queries))
    sq = np.empty((chunk, len(points)))
    scratch = np.empty((chunk, len(points)))
    for start in range(0, len(queries), chunk):
        stop = min(start + chunk, len(queries))
        c = stop - start
        block = sq_distances(
            queries[start:stop], points, sq[:c], scratch[:c], points_t
        )
        cols, vals = _select_k_rows(block, k)
        indices[start:stop] = cols
        dists[start:stop] = np.sqrt(vals)
    return indices, dists


def radius_batch_csr(
    points: np.ndarray,
    queries: np.ndarray,
    r: float,
    sort: bool = False,
    points_t: np.ndarray | None = None,
) -> RaggedNeighborhoods:
    """Vectorized radius search returning the CSR result natively.

    Each chunk's hits already come out flat (``nonzero`` over the
    raveled mask walks row-major, so hits are grouped by query with
    ascending point index within each query); chunks concatenate into
    one flat index/distance pair plus offsets, with no per-row Python
    loop anywhere.  ``sort=True`` applies the stable per-query distance
    sort once, via :func:`repro.core.ragged.segment_sort_order`.
    """
    points = _as_2d(points)
    queries = _as_2d(np.atleast_2d(queries))
    if r < 0:
        raise ValueError("radius must be non-negative")
    if points_t is None:
        points_t = np.ascontiguousarray(points.T)
    r_sq = r * r
    n_queries = len(queries)
    chunk = query_chunk(len(points), n_queries)
    sq = np.empty((chunk, len(points)))
    scratch = np.empty((chunk, len(points)))
    chunk_cols: list[np.ndarray] = []
    chunk_dists: list[np.ndarray] = []
    chunk_counts: list[np.ndarray] = []
    for start in range(0, n_queries, chunk):
        stop = min(start + chunk, n_queries)
        c = stop - start
        block = sq_distances(
            queries[start:stop], points, sq[:c], scratch[:c], points_t
        )
        # 1D nonzero over the raveled mask: 2D nonzero is far slower.
        flat = np.nonzero((block <= r_sq).ravel())[0]
        hit_rows = flat // block.shape[1]
        hit_cols = flat - hit_rows * block.shape[1]
        chunk_cols.append(hit_cols)
        chunk_dists.append(np.sqrt(block[hit_rows, hit_cols]))
        chunk_counts.append(np.bincount(hit_rows, minlength=c))
    counts = (
        np.concatenate(chunk_counts)
        if chunk_counts
        else np.zeros(n_queries, dtype=np.int64)
    )
    offsets = np.zeros(n_queries + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    flat_idx = (
        np.concatenate(chunk_cols).astype(np.int64, copy=False)
        if chunk_cols
        else np.empty(0, dtype=np.int64)
    )
    flat_dist = (
        np.concatenate(chunk_dists) if chunk_dists else np.empty(0, dtype=np.float64)
    )
    result = RaggedNeighborhoods(flat_idx, offsets, flat_dist)
    if sort:
        result = result.sorted_by_distance()
    return result


def radius_batch(
    points: np.ndarray,
    queries: np.ndarray,
    r: float,
    sort: bool = False,
    points_t: np.ndarray | None = None,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Vectorized radius search for every row of ``queries``.

    Thin compatibility wrapper over :func:`radius_batch_csr`: returns
    ragged per-query (indices, distances) lists sliced from the CSR
    result; indices come back ascending (``sort=True`` re-orders by
    distance, stable).
    """
    return radius_batch_csr(points, queries, r, sort=sort, points_t=points_t).to_list_pair()
