"""Canonical KD-tree substrate: build, search, brute-force reference."""

from repro.kdtree import bruteforce
from repro.kdtree.stats import SearchStats
from repro.kdtree.tree import KDTree

__all__ = ["KDTree", "SearchStats", "bruteforce"]
