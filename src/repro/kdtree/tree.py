"""Canonical KD-tree (paper Sec. 4.1, Fig. 5a).

The classic Bentley KD-tree: every node stores one k-dimensional point
whose coordinate along the node's split dimension implicitly defines a
splitting hyperplane; the median point is chosen so the tree is balanced.
Search recursively traverses the tree, pruning any subtree whose region
cannot intersect the query's current hypersphere — the pruning that makes
the search efficient but *inherently sequential*, which is the problem
the two-stage structure in :mod:`repro.core` exists to solve.

The implementation is array-backed (flat numpy arrays indexed by node id)
with iterative explicit-stack traversal, and instrumented: every search
accepts an optional :class:`~repro.kdtree.stats.SearchStats` accumulator.
Pruning uses the incremental per-axis bound (as in FLANN/scipy) so node
visit counts are representative of a production implementation.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.kdtree.stats import SearchStats

__all__ = ["KDTree"]

_SPLIT_RULES = ("widest", "cyclic")


class KDTree:
    """A balanced, point-per-node KD-tree over an (N, k) point array.

    Parameters
    ----------
    points:
        The data points.  A defensive copy is stored.
    split_rule:
        ``"widest"`` splits on the dimension of largest spread (FLANN's
        default, better for anisotropic LiDAR data); ``"cyclic"`` cycles
        dimensions by depth (Bentley's original rule).
    """

    def __init__(self, points: np.ndarray, split_rule: str = "widest"):
        points = np.array(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be (N, k), got shape {points.shape}")
        if len(points) == 0:
            raise ValueError("cannot build a KD-tree over zero points")
        if not np.all(np.isfinite(points)):
            raise ValueError("points contain NaN or infinity")
        if split_rule not in _SPLIT_RULES:
            raise ValueError(f"split_rule must be one of {_SPLIT_RULES}")
        self._points = points
        self._split_rule = split_rule
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        n, ndim = self._points.shape
        point_index = np.empty(n, dtype=np.int64)
        split_dim = np.zeros(n, dtype=np.int64)
        left = np.full(n, -1, dtype=np.int64)
        right = np.full(n, -1, dtype=np.int64)
        depth = np.zeros(n, dtype=np.int64)

        next_node = 0
        # Tasks: (member indices, depth, parent node id, is_left_child).
        tasks: list[tuple[np.ndarray, int, int, bool]] = [
            (np.arange(n, dtype=np.int64), 0, -1, False)
        ]
        while tasks:
            indices, node_depth, parent, is_left = tasks.pop()
            dim = self._choose_dim(indices, node_depth, ndim)
            values = self._points[indices, dim]
            mid = (len(indices) - 1) // 2
            if len(indices) == 1:
                order = np.array([0], dtype=np.int64)
            else:
                order = np.argpartition(values, mid)
            node = next_node
            next_node += 1
            point_index[node] = indices[order[mid]]
            split_dim[node] = dim
            depth[node] = node_depth
            if parent >= 0:
                if is_left:
                    left[parent] = node
                else:
                    right[parent] = node
            left_members = indices[order[:mid]]
            right_members = indices[order[mid + 1 :]]
            if len(left_members):
                tasks.append((left_members, node_depth + 1, node, True))
            if len(right_members):
                tasks.append((right_members, node_depth + 1, node, False))

        self._point_index = point_index
        self._split_dim = split_dim
        self._left = left
        self._right = right
        self._depth = depth
        # Cache split values: each node splits at its own point's coordinate.
        self._split_value = self._points[point_index, split_dim]

    def _choose_dim(self, indices: np.ndarray, depth: int, ndim: int) -> int:
        if self._split_rule == "cyclic" or len(indices) == 1:
            return depth % ndim
        member_points = self._points[indices]
        spread = member_points.max(axis=0) - member_points.min(axis=0)
        return int(np.argmax(spread))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def points(self) -> np.ndarray:
        return self._points

    @property
    def n(self) -> int:
        return len(self._points)

    @property
    def ndim(self) -> int:
        return self._points.shape[1]

    @property
    def height(self) -> int:
        """Number of levels (a single-node tree has height 1)."""
        return int(self._depth.max()) + 1

    def node_point(self, node: int) -> np.ndarray:
        """The point stored at tree node ``node`` (root is node 0)."""
        return self._points[self._point_index[node]]

    def subtree_point_indices(self, node: int) -> np.ndarray:
        """All point indices stored in the subtree rooted at ``node``.

        Used by the two-stage structure to materialize leaf sets.
        """
        result: list[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            result.append(int(self._point_index[current]))
            if self._left[current] >= 0:
                stack.append(int(self._left[current]))
            if self._right[current] >= 0:
                stack.append(int(self._right[current]))
        return np.array(sorted(result), dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"KDTree(n={self.n}, ndim={self.ndim}, height={self.height}, "
            f"split_rule={self._split_rule!r})"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if len(query) != self.ndim:
            raise ValueError(
                f"query has dimension {len(query)}, tree has {self.ndim}"
            )
        if not np.all(np.isfinite(query)):
            raise ValueError("query contains NaN or infinity")
        return query

    def nn(
        self, query: np.ndarray, stats: SearchStats | None = None
    ) -> tuple[int, float]:
        """Nearest neighbor: (point index, distance)."""
        query = self._check_query(query)
        points = self._points
        best_sq = np.inf
        best_idx = -1
        visits = pops = pruned = 0

        contrib = np.zeros(self.ndim)
        stack: list[tuple[int, float, np.ndarray]] = [(0, 0.0, contrib)]
        while stack:
            node, bound_sq, contrib = stack.pop()
            pops += 1
            if bound_sq > best_sq:
                pruned += 1
                continue
            pidx = self._point_index[node]
            diff = query - points[pidx]
            d_sq = float(diff @ diff)
            visits += 1
            if d_sq < best_sq:
                best_sq = d_sq
                best_idx = int(pidx)
            left_child = self._left[node]
            right_child = self._right[node]
            if left_child < 0 and right_child < 0:
                continue
            dim = self._split_dim[node]
            delta = query[dim] - self._split_value[node]
            if delta < 0:
                near, far = left_child, right_child
            else:
                near, far = right_child, left_child
            if far >= 0:
                far_bound = bound_sq - contrib[dim] + delta * delta
                if far_bound <= best_sq:
                    far_contrib = contrib.copy()
                    far_contrib[dim] = delta * delta
                    stack.append((int(far), far_bound, far_contrib))
                else:
                    pruned += 1
            if near >= 0:
                stack.append((int(near), bound_sq, contrib))

        if stats is not None:
            stats.nodes_visited += visits
            stats.traversal_steps += pops
            stats.pruned_subtrees += pruned
            stats.queries += 1
            stats.results_returned += 1
        return best_idx, float(np.sqrt(best_sq))

    def knn(
        self, query: np.ndarray, k: int, stats: SearchStats | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest neighbors, sorted by ascending distance."""
        query = self._check_query(query)
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, self.n)
        points = self._points
        # Max-heap of (-sq_distance, point index), capped at k entries.
        heap: list[tuple[float, int]] = []
        visits = pops = pruned = 0

        def bound() -> float:
            return -heap[0][0] if len(heap) == k else np.inf

        contrib = np.zeros(self.ndim)
        stack: list[tuple[int, float, np.ndarray]] = [(0, 0.0, contrib)]
        while stack:
            node, bound_sq, contrib = stack.pop()
            pops += 1
            if bound_sq > bound():
                pruned += 1
                continue
            pidx = self._point_index[node]
            diff = query - points[pidx]
            d_sq = float(diff @ diff)
            visits += 1
            if len(heap) < k:
                heapq.heappush(heap, (-d_sq, int(pidx)))
            elif d_sq < -heap[0][0]:
                heapq.heapreplace(heap, (-d_sq, int(pidx)))
            left_child = self._left[node]
            right_child = self._right[node]
            if left_child < 0 and right_child < 0:
                continue
            dim = self._split_dim[node]
            delta = query[dim] - self._split_value[node]
            if delta < 0:
                near, far = left_child, right_child
            else:
                near, far = right_child, left_child
            if far >= 0:
                far_bound = bound_sq - contrib[dim] + delta * delta
                if far_bound <= bound():
                    far_contrib = contrib.copy()
                    far_contrib[dim] = delta * delta
                    stack.append((int(far), far_bound, far_contrib))
                else:
                    pruned += 1
            if near >= 0:
                stack.append((int(near), bound_sq, contrib))

        entries = sorted(((-neg_sq, idx) for neg_sq, idx in heap))
        indices = np.array([idx for _, idx in entries], dtype=np.int64)
        dists = np.sqrt(np.array([sq for sq, _ in entries]))
        if stats is not None:
            stats.nodes_visited += visits
            stats.traversal_steps += pops
            stats.pruned_subtrees += pruned
            stats.queries += 1
            stats.results_returned += len(indices)
        return indices, dists

    def radius(
        self,
        query: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """All neighbors within distance ``r``: (indices, distances)."""
        query = self._check_query(query)
        if r < 0:
            raise ValueError("radius must be non-negative")
        points = self._points
        r_sq = r * r
        found: list[tuple[int, float]] = []
        visits = pops = pruned = 0

        contrib = np.zeros(self.ndim)
        stack: list[tuple[int, float, np.ndarray]] = [(0, 0.0, contrib)]
        while stack:
            node, bound_sq, contrib = stack.pop()
            pops += 1
            if bound_sq > r_sq:
                pruned += 1
                continue
            pidx = self._point_index[node]
            diff = query - points[pidx]
            d_sq = float(diff @ diff)
            visits += 1
            if d_sq <= r_sq:
                found.append((int(pidx), d_sq))
            left_child = self._left[node]
            right_child = self._right[node]
            if left_child < 0 and right_child < 0:
                continue
            dim = self._split_dim[node]
            delta = query[dim] - self._split_value[node]
            if delta < 0:
                near, far = left_child, right_child
            else:
                near, far = right_child, left_child
            if far >= 0:
                far_bound = bound_sq - contrib[dim] + delta * delta
                if far_bound <= r_sq:
                    far_contrib = contrib.copy()
                    far_contrib[dim] = delta * delta
                    stack.append((int(far), far_bound, far_contrib))
                else:
                    pruned += 1
            if near >= 0:
                stack.append((int(near), bound_sq, contrib))

        if stats is not None:
            stats.nodes_visited += visits
            stats.traversal_steps += pops
            stats.pruned_subtrees += pruned
            stats.queries += 1
            stats.results_returned += len(found)
        if not found:
            return np.empty(0, dtype=np.int64), np.empty(0)
        indices = np.array([idx for idx, _ in found], dtype=np.int64)
        dists = np.sqrt(np.array([sq for _, sq in found]))
        if sort:
            order = np.argsort(dists, kind="stable")
            return indices[order], dists[order]
        return indices, dists

    # ------------------------------------------------------------------
    # Batch queries.  The canonical tree's pruned traversal is inherently
    # sequential (the bottleneck motivating the paper's two-stage
    # structure), so its batch entry points are tight loops over the
    # scalar searches — trivially bit-identical to per-query calls, and
    # still amortizing per-batch instrumentation in the callers.
    # ------------------------------------------------------------------

    def nn_batch(
        self, queries: np.ndarray, stats: SearchStats | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest neighbor for every row of ``queries``."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        indices = np.empty(len(queries), dtype=np.int64)
        dists = np.empty(len(queries))
        for i, query in enumerate(queries):
            indices[i], dists[i] = self.nn(query, stats)
        return indices, dists

    def knn_batch(
        self, queries: np.ndarray, k: int, stats: SearchStats | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """kNN for every row of ``queries``: (Q, min(k, n)) arrays."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, self.n)
        indices = np.empty((len(queries), k), dtype=np.int64)
        dists = np.empty((len(queries), k))
        for i, query in enumerate(queries):
            indices[i], dists[i] = self.knn(query, k, stats)
        return indices, dists

    def radius_batch(
        self,
        queries: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Radius search for every row of ``queries`` (ragged lists)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        all_indices, all_dists = [], []
        for query in queries:
            indices, dists = self.radius(query, r, stats, sort=sort)
            all_indices.append(indices)
            all_dists.append(dists)
        return all_indices, all_dists
