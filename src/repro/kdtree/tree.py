"""Canonical KD-tree (paper Sec. 4.1, Fig. 5a).

The classic Bentley KD-tree: every node stores one k-dimensional point
whose coordinate along the node's split dimension implicitly defines a
splitting hyperplane; the median point is chosen so the tree is balanced.
Search recursively traverses the tree, pruning any subtree whose region
cannot intersect the query's current hypersphere — the pruning that makes
the search efficient but *inherently sequential*, which is the problem
the two-stage structure in :mod:`repro.core` exists to solve.

The implementation is array-backed (flat numpy arrays indexed by node id)
with iterative explicit-stack traversal, and instrumented: every search
accepts an optional :class:`~repro.kdtree.stats.SearchStats` accumulator.
Pruning uses the incremental per-axis bound (as in FLANN/scipy) so node
visit counts are representative of a production implementation.

Batch queries
-------------
:meth:`KDTree.nn_batch`, :meth:`KDTree.knn_batch`, and
:meth:`KDTree.radius_batch` run a *level-synchronous frontier sweep*:
the per-query traversal stacks are fused into flat ``(node, query)``
pair arrays advanced one level per round with NumPy masks, pruned
against each query's running best bound exactly as the scalar recursion
prunes.  Nearest-neighbor and kNN batches first descend every query
along its near path (no backtracking) to seed tight bounds — the
vectorized analogue of the depth-first dive the scalar search performs
before it backtracks.  Results are bit-identical to the scalar methods:
distances accumulate per coordinate in the same order on both paths,
ties resolve to the lowest point index (nn/knn take the lexicographic
``(distance, index)`` minimum) and radius results come back in
ascending index order.  Radius work counters are exactly the scalar
loop's (radius pruning is query-history-independent); nn/knn counters
reflect the frontier schedule actually executed and may differ slightly
from a scalar loop's.  Passing ``sequential=True`` pins a batch to the
per-query loop (the fallback kept for trace-style debugging and for
pinning scalar/batch parity in tests); validation is hoisted to one
pass per batch on both paths.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.ragged import RaggedNeighborhoods
from repro.kdtree.stats import SearchStats

__all__ = ["KDTree"]

_SPLIT_RULES = ("widest", "cyclic")

# Sentinel index paired with +inf distances in unfilled kNN slots while
# merging; never visible to callers (k is clamped to n).
_BIG = np.iinfo(np.int64).max


def _point_sq_dist(query: np.ndarray, point: np.ndarray) -> float:
    """Squared distance accumulated coordinate by coordinate.

    The left-to-right accumulation order matches the per-coordinate
    ufunc accumulation of the batch frontier (:meth:`KDTree._sq_dists`),
    so scalar and batched traversals see bit-identical bounds and
    candidate distances.
    """
    d_sq = 0.0
    for t in query - point:
        d_sq += t * t
    return float(d_sq)


class KDTree:
    """A balanced, point-per-node KD-tree over an (N, k) point array.

    Parameters
    ----------
    points:
        The data points.  A defensive copy is stored.
    split_rule:
        ``"widest"`` splits on the dimension of largest spread (FLANN's
        default, better for anisotropic LiDAR data); ``"cyclic"`` cycles
        dimensions by depth (Bentley's original rule).
    """

    def __init__(self, points: np.ndarray, split_rule: str = "widest"):
        points = np.array(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be (N, k), got shape {points.shape}")
        if len(points) == 0:
            raise ValueError("cannot build a KD-tree over zero points")
        if not np.all(np.isfinite(points)):
            raise ValueError("points contain NaN or infinity")
        if split_rule not in _SPLIT_RULES:
            raise ValueError(f"split_rule must be one of {_SPLIT_RULES}")
        self._points = points
        self._split_rule = split_rule
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        n, ndim = self._points.shape
        point_index = np.empty(n, dtype=np.int64)
        split_dim = np.zeros(n, dtype=np.int64)
        left = np.full(n, -1, dtype=np.int64)
        right = np.full(n, -1, dtype=np.int64)
        depth = np.zeros(n, dtype=np.int64)

        next_node = 0
        # Tasks: (member indices, depth, parent node id, is_left_child).
        tasks: list[tuple[np.ndarray, int, int, bool]] = [
            (np.arange(n, dtype=np.int64), 0, -1, False)
        ]
        while tasks:
            indices, node_depth, parent, is_left = tasks.pop()
            dim = self._choose_dim(indices, node_depth, ndim)
            values = self._points[indices, dim]
            mid = (len(indices) - 1) // 2
            if len(indices) == 1:
                order = np.array([0], dtype=np.int64)
            else:
                order = np.argpartition(values, mid)
            node = next_node
            next_node += 1
            point_index[node] = indices[order[mid]]
            split_dim[node] = dim
            depth[node] = node_depth
            if parent >= 0:
                if is_left:
                    left[parent] = node
                else:
                    right[parent] = node
            left_members = indices[order[:mid]]
            right_members = indices[order[mid + 1 :]]
            if len(left_members):
                tasks.append((left_members, node_depth + 1, node, True))
            if len(right_members):
                tasks.append((right_members, node_depth + 1, node, False))

        self._point_index = point_index
        self._split_dim = split_dim
        self._left = left
        self._right = right
        self._depth = depth
        # Cache split values: each node splits at its own point's coordinate.
        self._split_value = self._points[point_index, split_dim]

    def _choose_dim(self, indices: np.ndarray, depth: int, ndim: int) -> int:
        if self._split_rule == "cyclic" or len(indices) == 1:
            return depth % ndim
        member_points = self._points[indices]
        spread = member_points.max(axis=0) - member_points.min(axis=0)
        return int(np.argmax(spread))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def points(self) -> np.ndarray:
        return self._points

    @property
    def n(self) -> int:
        return len(self._points)

    @property
    def ndim(self) -> int:
        return self._points.shape[1]

    @property
    def height(self) -> int:
        """Number of levels (a single-node tree has height 1)."""
        return int(self._depth.max()) + 1

    def node_point(self, node: int) -> np.ndarray:
        """The point stored at tree node ``node`` (root is node 0)."""
        return self._points[self._point_index[node]]

    def subtree_point_indices(self, node: int) -> np.ndarray:
        """All point indices stored in the subtree rooted at ``node``.

        Used by the two-stage structure to materialize leaf sets.
        """
        result: list[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            result.append(int(self._point_index[current]))
            if self._left[current] >= 0:
                stack.append(int(self._left[current]))
            if self._right[current] >= 0:
                stack.append(int(self._right[current]))
        return np.array(sorted(result), dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"KDTree(n={self.n}, ndim={self.ndim}, height={self.height}, "
            f"split_rule={self._split_rule!r})"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if len(query) != self.ndim:
            raise ValueError(
                f"query has dimension {len(query)}, tree has {self.ndim}"
            )
        if not np.all(np.isfinite(query)):
            raise ValueError("query contains NaN or infinity")
        return query

    def _check_queries(self, queries: np.ndarray) -> np.ndarray:
        """One validation pass for a whole batch (hoisted out of the
        per-query loop; the scalar methods keep their own check)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.ndim != 2 or queries.shape[1] != self.ndim:
            raise ValueError(
                f"queries have shape {queries.shape}, tree has dimension "
                f"{self.ndim}"
            )
        if not np.all(np.isfinite(queries)):
            raise ValueError("queries contain NaN or infinity")
        return queries

    def nn(
        self, query: np.ndarray, stats: SearchStats | None = None
    ) -> tuple[int, float]:
        """Nearest neighbor: (point index, distance)."""
        return self._nn_impl(self._check_query(query), stats)

    def _nn_impl(
        self, query: np.ndarray, stats: SearchStats | None
    ) -> tuple[int, float]:
        points = self._points
        best_sq = np.inf
        best_idx = -1
        visits = pops = pruned = 0

        contrib = np.zeros(self.ndim)
        stack: list[tuple[int, float, np.ndarray]] = [(0, 0.0, contrib)]
        while stack:
            node, bound_sq, contrib = stack.pop()
            pops += 1
            if bound_sq > best_sq:
                pruned += 1
                continue
            pidx = int(self._point_index[node])
            d_sq = _point_sq_dist(query, points[pidx])
            visits += 1
            # Deterministic tie rule shared with the batch frontier:
            # the global (distance, index) lexicographic minimum.
            if d_sq < best_sq or (d_sq == best_sq and pidx < best_idx):
                best_sq = d_sq
                best_idx = pidx
            left_child = self._left[node]
            right_child = self._right[node]
            if left_child < 0 and right_child < 0:
                continue
            dim = self._split_dim[node]
            delta = query[dim] - self._split_value[node]
            if delta < 0:
                near, far = left_child, right_child
            else:
                near, far = right_child, left_child
            if far >= 0:
                far_bound = bound_sq - contrib[dim] + delta * delta
                if far_bound <= best_sq:
                    far_contrib = contrib.copy()
                    far_contrib[dim] = delta * delta
                    stack.append((int(far), far_bound, far_contrib))
                else:
                    pruned += 1
            if near >= 0:
                stack.append((int(near), bound_sq, contrib))

        if stats is not None:
            stats.nodes_visited += visits
            stats.traversal_steps += pops
            stats.pruned_subtrees += pruned
            stats.queries += 1
            stats.results_returned += 1
        return best_idx, float(np.sqrt(best_sq))

    def knn(
        self, query: np.ndarray, k: int, stats: SearchStats | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest neighbors, sorted by ascending distance."""
        query = self._check_query(query)
        if k <= 0:
            raise ValueError("k must be positive")
        return self._knn_impl(query, min(k, self.n), stats)

    def _knn_impl(
        self, query: np.ndarray, k: int, stats: SearchStats | None
    ) -> tuple[np.ndarray, np.ndarray]:
        points = self._points
        # Max-heap over (distance, index) via negation: heap[0] is the
        # lexicographically largest (d_sq, idx) of the kept k, i.e. the
        # entry the next better candidate evicts.
        heap: list[tuple[float, int]] = []
        visits = pops = pruned = 0

        def bound() -> float:
            return -heap[0][0] if len(heap) == k else np.inf

        def offer(idx: int, d_sq: float) -> None:
            if len(heap) < k:
                heapq.heappush(heap, (-d_sq, -idx))
            else:
                worst_sq, worst_idx = -heap[0][0], -heap[0][1]
                if d_sq < worst_sq or (d_sq == worst_sq and idx < worst_idx):
                    heapq.heapreplace(heap, (-d_sq, -idx))

        contrib = np.zeros(self.ndim)
        stack: list[tuple[int, float, np.ndarray]] = [(0, 0.0, contrib)]
        while stack:
            node, bound_sq, contrib = stack.pop()
            pops += 1
            if bound_sq > bound():
                pruned += 1
                continue
            pidx = int(self._point_index[node])
            d_sq = _point_sq_dist(query, points[pidx])
            visits += 1
            offer(pidx, d_sq)
            left_child = self._left[node]
            right_child = self._right[node]
            if left_child < 0 and right_child < 0:
                continue
            dim = self._split_dim[node]
            delta = query[dim] - self._split_value[node]
            if delta < 0:
                near, far = left_child, right_child
            else:
                near, far = right_child, left_child
            if far >= 0:
                far_bound = bound_sq - contrib[dim] + delta * delta
                if far_bound <= bound():
                    far_contrib = contrib.copy()
                    far_contrib[dim] = delta * delta
                    stack.append((int(far), far_bound, far_contrib))
                else:
                    pruned += 1
            if near >= 0:
                stack.append((int(near), bound_sq, contrib))

        entries = sorted((-neg_sq, -neg_idx) for neg_sq, neg_idx in heap)
        indices = np.array([idx for _, idx in entries], dtype=np.int64)
        dists = np.sqrt(np.array([sq for sq, _ in entries]))
        if stats is not None:
            stats.nodes_visited += visits
            stats.traversal_steps += pops
            stats.pruned_subtrees += pruned
            stats.queries += 1
            stats.results_returned += len(indices)
        return indices, dists

    def radius(
        self,
        query: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """All neighbors within distance ``r``: (indices, distances).

        Results come back in ascending index order (ascending distance
        with ``sort=True``), the deterministic order shared with the
        batch frontier.
        """
        query = self._check_query(query)
        if r < 0:
            raise ValueError("radius must be non-negative")
        return self._radius_impl(query, r, stats, sort)

    def _radius_impl(
        self,
        query: np.ndarray,
        r: float,
        stats: SearchStats | None,
        sort: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        points = self._points
        r_sq = r * r
        found: list[tuple[int, float]] = []
        visits = pops = pruned = 0

        contrib = np.zeros(self.ndim)
        stack: list[tuple[int, float, np.ndarray]] = [(0, 0.0, contrib)]
        while stack:
            node, bound_sq, contrib = stack.pop()
            pops += 1
            if bound_sq > r_sq:
                pruned += 1
                continue
            pidx = int(self._point_index[node])
            d_sq = _point_sq_dist(query, points[pidx])
            visits += 1
            if d_sq <= r_sq:
                found.append((pidx, d_sq))
            left_child = self._left[node]
            right_child = self._right[node]
            if left_child < 0 and right_child < 0:
                continue
            dim = self._split_dim[node]
            delta = query[dim] - self._split_value[node]
            if delta < 0:
                near, far = left_child, right_child
            else:
                near, far = right_child, left_child
            if far >= 0:
                far_bound = bound_sq - contrib[dim] + delta * delta
                if far_bound <= r_sq:
                    far_contrib = contrib.copy()
                    far_contrib[dim] = delta * delta
                    stack.append((int(far), far_bound, far_contrib))
                else:
                    pruned += 1
            if near >= 0:
                stack.append((int(near), bound_sq, contrib))

        if stats is not None:
            stats.nodes_visited += visits
            stats.traversal_steps += pops
            stats.pruned_subtrees += pruned
            stats.queries += 1
            stats.results_returned += len(found)
        if not found:
            return np.empty(0, dtype=np.int64), np.empty(0)
        indices = np.array([idx for idx, _ in found], dtype=np.int64)
        sq_found = np.array([sq for _, sq in found])
        # Canonical ascending-index order, shared with the batch path
        # (which collects hits round by round, not in DFS order).
        order = np.argsort(indices, kind="stable")
        indices = indices[order]
        dists = np.sqrt(sq_found[order])
        if sort:
            order = np.argsort(dists, kind="stable")
            return indices[order], dists[order]
        return indices, dists

    # ------------------------------------------------------------------
    # Batch queries: the level-synchronous frontier sweep (see module
    # docstring).  ``sequential=True`` pins the per-query loop fallback.
    # ------------------------------------------------------------------

    def nn_batch(
        self,
        queries: np.ndarray,
        stats: SearchStats | None = None,
        sequential: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest neighbor for every row of ``queries``."""
        queries = self._check_queries(queries)
        if sequential:
            indices = np.empty(len(queries), dtype=np.int64)
            dists = np.empty(len(queries))
            for i, query in enumerate(queries):
                indices[i], dists[i] = self._nn_impl(query, stats)
            return indices, dists
        return self._nn_batch_fast(queries, stats)

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        stats: SearchStats | None = None,
        sequential: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """kNN for every row of ``queries``: (Q, min(k, n)) arrays."""
        queries = self._check_queries(queries)
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, self.n)
        if sequential:
            indices = np.empty((len(queries), k), dtype=np.int64)
            dists = np.empty((len(queries), k))
            for i, query in enumerate(queries):
                indices[i], dists[i] = self._knn_impl(query, k, stats)
            return indices, dists
        return self._knn_batch_fast(queries, k, stats)

    def radius_batch(
        self,
        queries: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
        sequential: bool = False,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Radius search for every row of ``queries`` (ragged lists).

        Thin compatibility wrapper: slices :meth:`radius_batch_csr`'s
        flat result into per-query lists (``sequential=True`` pins the
        pre-rebuild per-query loop instead).
        """
        if sequential:
            queries = self._check_queries(queries)
            if r < 0:
                raise ValueError("radius must be non-negative")
            all_indices, all_dists = [], []
            for query in queries:
                indices, dists = self._radius_impl(query, r, stats, sort)
                all_indices.append(indices)
                all_dists.append(dists)
            return all_indices, all_dists
        return self.radius_batch_csr(queries, r, stats, sort=sort).to_list_pair()

    def radius_batch_csr(
        self,
        queries: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
    ) -> RaggedNeighborhoods:
        """Radius search returning the CSR result natively.

        The frontier sweep already accumulates its hits flat; this
        entry point returns them without shredding into per-query
        lists.  Bit-identical content to :meth:`radius_batch` — same
        ascending-index order, same ``sort=True`` stable distance sort
        (applied once via :func:`repro.core.ragged.segment_sort_order`).
        """
        queries = self._check_queries(queries)
        if r < 0:
            raise ValueError("radius must be non-negative")
        result = self._radius_batch_fast(queries, r, stats)
        if sort:
            result = result.sorted_by_distance()
        return result

    # ------------------------------------------------------------------
    # Frontier machinery
    # ------------------------------------------------------------------

    def _sq_dists(self, query_rows: np.ndarray, node_pts: np.ndarray):
        """Per-coordinate squared distances (same accumulation order as
        :func:`_point_sq_dist`, hence bit-identical to the scalar path)."""
        t = query_rows[:, 0] - node_pts[:, 0]
        d_sq = t * t
        for j in range(1, self.ndim):
            t = query_rows[:, j] - node_pts[:, j]
            d_sq += t * t
        return d_sq

    def _descend(self, queries: np.ndarray):
        """Pure near-path descent of every query (no backtracking).

        Yields ``(query rows, node ids, squared distances)`` per level —
        the candidates the scalar DFS would evaluate on its first dive.
        Used to seed tight nn/knn bounds before the frontier sweep; the
        frontier re-visits (and charges) these nodes, so the descent
        itself is uncharged scheduling work.
        """
        node = np.zeros(len(queries), dtype=np.int64)
        alive = np.arange(len(queries), dtype=np.int64)
        while len(alive):
            current = node[alive]
            pidx = self._point_index[current]
            d_sq = self._sq_dists(queries[alive], self._points[pidx])
            yield alive, pidx, d_sq
            dim = self._split_dim[current]
            delta = queries[alive, dim] - self._split_value[current]
            child = np.where(delta < 0, self._left[current], self._right[current])
            descend = child >= 0
            node[alive[descend]] = child[descend]
            alive = alive[descend]

    def _nn_batch_fast(
        self, queries: np.ndarray, stats: SearchStats | None
    ) -> tuple[np.ndarray, np.ndarray]:
        n_queries, ndim = queries.shape
        best_sq = np.full(n_queries, np.inf)
        best_idx = np.full(n_queries, -1, dtype=np.int64)
        if n_queries == 0:
            return best_idx, np.full(n_queries, np.inf)
        visits = pops = pruned = 0

        def lex_update(q, d_sq, pidx):
            """Fold (query, distance, index) candidates into the bests by
            the (distance, index) lexicographic rule."""
            better = (d_sq < best_sq[q]) | (
                (d_sq == best_sq[q]) & (pidx < best_idx[q])
            )
            if not np.any(better):
                return
            bq, bsq, bidx = q[better], d_sq[better], pidx[better]
            # A query can meet several nodes in one round; reduce its
            # candidates to the lexicographic minimum before updating.
            sel = np.lexsort((bidx, bsq, bq))
            bq, bsq, bidx = bq[sel], bsq[sel], bidx[sel]
            first = np.r_[True, bq[1:] != bq[:-1]]
            cq, csq, cidx = bq[first], bsq[first], bidx[first]
            win = (csq < best_sq[cq]) | (
                (csq == best_sq[cq]) & (cidx < best_idx[cq])
            )
            best_sq[cq[win]] = csq[win]
            best_idx[cq[win]] = cidx[win]

        # Phase 1: seed bounds from the near-path descent.
        for rows, pidx, d_sq in self._descend(queries):
            lex_update(rows, d_sq, pidx)

        # Phase 2: the frontier sweep, pruned against the running bests
        # exactly as the scalar recursion (push-time and pop-time checks).
        refs = np.zeros(n_queries, dtype=np.int64)
        qidx = np.arange(n_queries, dtype=np.int64)
        bound = np.zeros(n_queries)
        contrib = np.zeros((n_queries, ndim))
        while len(refs):
            pops += len(refs)
            alive = bound <= best_sq[qidx]
            pruned += int(np.count_nonzero(~alive))
            refs_i = refs[alive]
            q_i = qidx[alive]
            b_i = bound[alive]
            c_i = contrib[alive]
            if len(refs_i) == 0:
                break
            visits += len(refs_i)
            pidx = self._point_index[refs_i]
            d_sq = self._sq_dists(queries[q_i], self._points[pidx])
            lex_update(q_i, d_sq, pidx)
            dim = self._split_dim[refs_i]
            delta = queries[q_i, dim] - self._split_value[refs_i]
            left = self._left[refs_i]
            right = self._right[refs_i]
            goes_left = delta < 0
            near = np.where(goes_left, left, right)
            far = np.where(goes_left, right, left)
            dd = delta * delta
            span = np.arange(len(refs_i))
            far_bound = b_i - c_i[span, dim] + dd
            far_contrib = c_i.copy()
            far_contrib[span, dim] = dd
            admit_far = (far >= 0) & (far_bound <= best_sq[q_i])
            pruned += int(np.count_nonzero((far >= 0) & ~admit_far))
            has_near = near >= 0
            refs = np.concatenate([far[admit_far], near[has_near]])
            qidx = np.concatenate([q_i[admit_far], q_i[has_near]])
            bound = np.concatenate([far_bound[admit_far], b_i[has_near]])
            contrib = np.concatenate([far_contrib[admit_far], c_i[has_near]])

        if stats is not None:
            stats.nodes_visited += visits
            stats.traversal_steps += pops
            stats.pruned_subtrees += pruned
            stats.queries += n_queries
            stats.results_returned += n_queries
        return best_idx, np.sqrt(best_sq)

    def _merge_topk(
        self,
        best_sq: np.ndarray,
        best_idx: np.ndarray,
        cq: np.ndarray,
        csq: np.ndarray,
        cidx: np.ndarray,
        k: int,
    ) -> None:
        """Merge flat (query, sq, idx) candidates into (Q, k) bests kept
        sorted by the (distance, index) lexicographic rule.

        Candidates may duplicate entries already in the bests (the
        frontier re-visits the seeded near path); duplicates carry
        identical (sq, idx) keys, land adjacent after the row sort, and
        are compacted out before truncation to k.
        """
        order = np.lexsort((cidx, csq, cq))
        cq, csq, cidx = cq[order], csq[order], cidx[order]
        uq, starts = np.unique(cq, return_index=True)
        counts = np.diff(np.r_[starts, len(cq)])
        m = int(counts.max())
        gid = np.repeat(np.arange(len(uq)), counts)
        pos = np.arange(len(cq)) - np.repeat(starts, counts)
        cand_sq = np.full((len(uq), m), np.inf)
        cand_idx = np.full((len(uq), m), _BIG, dtype=np.int64)
        cand_sq[gid, pos] = csq
        cand_idx[gid, pos] = cidx
        merged_sq = np.concatenate([best_sq[uq], cand_sq], axis=1)
        merged_idx = np.concatenate([best_idx[uq], cand_idx], axis=1)
        sel = np.lexsort((merged_idx, merged_sq))
        merged_sq = np.take_along_axis(merged_sq, sel, axis=1)
        merged_idx = np.take_along_axis(merged_idx, sel, axis=1)
        dup = (merged_sq[:, 1:] == merged_sq[:, :-1]) & (
            merged_idx[:, 1:] == merged_idx[:, :-1]
        )
        if np.any(dup):
            merged_sq[:, 1:][dup] = np.inf
            merged_idx[:, 1:][dup] = _BIG
            sel = np.lexsort((merged_idx, merged_sq))
            merged_sq = np.take_along_axis(merged_sq, sel, axis=1)
            merged_idx = np.take_along_axis(merged_idx, sel, axis=1)
        best_sq[uq] = merged_sq[:, :k]
        best_idx[uq] = merged_idx[:, :k]

    def _knn_batch_fast(
        self, queries: np.ndarray, k: int, stats: SearchStats | None
    ) -> tuple[np.ndarray, np.ndarray]:
        n_queries, ndim = queries.shape
        best_sq = np.full((n_queries, k), np.inf)
        best_idx = np.full((n_queries, k), _BIG, dtype=np.int64)
        if n_queries == 0:
            return best_idx, best_sq
        visits = pops = pruned = 0

        # Phase 1: seed the per-query top-k from the near-path descent
        # (one merge over all path candidates).
        path_q: list[np.ndarray] = []
        path_sq: list[np.ndarray] = []
        path_idx: list[np.ndarray] = []
        for rows, pidx, d_sq in self._descend(queries):
            path_q.append(rows)
            path_idx.append(pidx)
            path_sq.append(d_sq)
        self._merge_topk(
            best_sq,
            best_idx,
            np.concatenate(path_q),
            np.concatenate(path_sq),
            np.concatenate(path_idx),
            k,
        )

        # Phase 2: frontier sweep pruned against each query's kth-best.
        refs = np.zeros(n_queries, dtype=np.int64)
        qidx = np.arange(n_queries, dtype=np.int64)
        bound = np.zeros(n_queries)
        contrib = np.zeros((n_queries, ndim))
        while len(refs):
            pops += len(refs)
            alive = bound <= best_sq[qidx, k - 1]
            pruned += int(np.count_nonzero(~alive))
            refs_i = refs[alive]
            q_i = qidx[alive]
            b_i = bound[alive]
            c_i = contrib[alive]
            if len(refs_i) == 0:
                break
            visits += len(refs_i)
            pidx = self._point_index[refs_i]
            d_sq = self._sq_dists(queries[q_i], self._points[pidx])
            cand = d_sq <= best_sq[q_i, k - 1]
            if np.any(cand):
                self._merge_topk(
                    best_sq, best_idx, q_i[cand], d_sq[cand], pidx[cand], k
                )
            dim = self._split_dim[refs_i]
            delta = queries[q_i, dim] - self._split_value[refs_i]
            left = self._left[refs_i]
            right = self._right[refs_i]
            goes_left = delta < 0
            near = np.where(goes_left, left, right)
            far = np.where(goes_left, right, left)
            dd = delta * delta
            span = np.arange(len(refs_i))
            far_bound = b_i - c_i[span, dim] + dd
            far_contrib = c_i.copy()
            far_contrib[span, dim] = dd
            admit_far = (far >= 0) & (far_bound <= best_sq[q_i, k - 1])
            pruned += int(np.count_nonzero((far >= 0) & ~admit_far))
            has_near = near >= 0
            refs = np.concatenate([far[admit_far], near[has_near]])
            qidx = np.concatenate([q_i[admit_far], q_i[has_near]])
            bound = np.concatenate([far_bound[admit_far], b_i[has_near]])
            contrib = np.concatenate([far_contrib[admit_far], c_i[has_near]])

        if stats is not None:
            stats.nodes_visited += visits
            stats.traversal_steps += pops
            stats.pruned_subtrees += pruned
            stats.queries += n_queries
            stats.results_returned += best_idx.size
        return best_idx, np.sqrt(best_sq)

    def _radius_batch_fast(
        self,
        queries: np.ndarray,
        r: float,
        stats: SearchStats | None,
    ) -> RaggedNeighborhoods:
        n_queries, ndim = queries.shape
        r_sq = r * r
        hit_q: list[np.ndarray] = []
        hit_idx: list[np.ndarray] = []
        hit_sq: list[np.ndarray] = []
        visits = pruned = 0

        # The radius bound never tightens, so (unlike nn) pushes are
        # pre-filtered and every frontier pair is evaluated — the sweep
        # visits exactly the (node, query) pairs of the scalar loop and
        # the work counters match it exactly.
        if n_queries:
            refs = np.zeros(n_queries, dtype=np.int64)
            qidx = np.arange(n_queries, dtype=np.int64)
            bound = np.zeros(n_queries)
            contrib = np.zeros((n_queries, ndim))
            while len(refs):
                visits += len(refs)
                pidx = self._point_index[refs]
                d_sq = self._sq_dists(queries[qidx], self._points[pidx])
                hit = d_sq <= r_sq
                if np.any(hit):
                    hit_q.append(qidx[hit])
                    hit_idx.append(pidx[hit])
                    hit_sq.append(d_sq[hit])
                dim = self._split_dim[refs]
                delta = queries[qidx, dim] - self._split_value[refs]
                left = self._left[refs]
                right = self._right[refs]
                goes_left = delta < 0
                near = np.where(goes_left, left, right)
                far = np.where(goes_left, right, left)
                dd = delta * delta
                span = np.arange(len(refs))
                far_bound = bound - contrib[span, dim] + dd
                far_contrib = contrib.copy()
                far_contrib[span, dim] = dd
                admit_far = (far >= 0) & (far_bound <= r_sq)
                pruned += int(np.count_nonzero((far >= 0) & ~admit_far))
                has_near = near >= 0
                refs_new = np.concatenate([far[admit_far], near[has_near]])
                qidx_new = np.concatenate([qidx[admit_far], qidx[has_near]])
                bound = np.concatenate([far_bound[admit_far], bound[has_near]])
                contrib = np.concatenate(
                    [far_contrib[admit_far], contrib[has_near]]
                )
                refs, qidx = refs_new, qidx_new

        if hit_q:
            fq = np.concatenate(hit_q)
            fidx = np.concatenate(hit_idx)
            fsq = np.concatenate(hit_sq)
            order = np.lexsort((fidx, fq))
            fidx = fidx[order]
            fdist = np.sqrt(fsq[order])
            counts = np.bincount(fq, minlength=n_queries)
        else:
            fidx = np.empty(0, dtype=np.int64)
            fdist = np.empty(0)
            counts = np.zeros(n_queries, dtype=np.int64)
        offsets = np.zeros(n_queries + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])

        if stats is not None:
            stats.nodes_visited += visits
            stats.traversal_steps += visits
            stats.pruned_subtrees += pruned
            stats.queries += n_queries
            stats.results_returned += len(fidx)
        return RaggedNeighborhoods(fidx, offsets, fdist)
