"""Search-work instrumentation.

Fig. 4b, Fig. 6 and the whole accelerator evaluation hinge on counting
how much work a search performs.  ``SearchStats`` is the single source of
truth: every search entry point accepts an optional stats accumulator and
charges node visits to it.  A "node visit" is a distance computation
against a stored point — the unit the paper plots in Fig. 6b and the unit
the accelerator's processing elements execute.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["SearchStats"]


@dataclass
class SearchStats:
    """Accumulated work counters across one or more search queries.

    ``nodes_visited``
        Distance computations against tree-node points (canonical tree)
        plus leaf-set points scanned exhaustively (two-stage tree).  This
        is the paper's Fig. 6 "number of nodes visited".
    ``traversal_steps``
        Tree-edge traversals (stack pops), a proxy for the sequential
        recursion work the accelerator front-end performs.
    ``pruned_subtrees``
        Subtrees skipped by the bounding-distance test.
    ``leader_checks``
        Distance computations against leaders in the approximate search.
    ``queries`` / ``results_returned``
        Bookkeeping for averaging.
    ``batches``
        Batched entry-point invocations charged by
        :class:`~repro.registration.search.NeighborSearcher`; with the
        batch query layer a whole pipeline stage is one batch, so
        ``queries / batches`` is the amortization factor.
    ``reused_queries`` / ``cache_hits``
        Nested-radius reuse accounting: queries answered by filtering a
        cached larger-radius result instead of traversing the index
        (``reused_queries``, always ``<= queries``; such queries charge
        no ``nodes_visited``), and the number of batched calls served
        that way (``cache_hits``).  ``queries - reused_queries`` is the
        fresh-search count, so DSE/accelerator work models can tell
        executed traversals from derived results.
    ``csr_results``
        Radius queries whose results were delivered CSR-natively
        (``radius_batch_csr`` — flat indices/offsets/distances handed
        to the consumer with no per-query list materialization on the
        delivery path).  Benchmarks assert this to prove the zero-copy
        path is actually taken; the legacy list wrapper does not charge
        it.
    """

    nodes_visited: int = 0
    traversal_steps: int = 0
    pruned_subtrees: int = 0
    leader_checks: int = 0
    queries: int = 0
    results_returned: int = 0
    batches: int = 0
    reused_queries: int = 0
    cache_hits: int = 0
    csr_results: int = 0

    def merge(self, other: "SearchStats") -> None:
        """Fold another accumulator into this one.

        Iterates the declared dataclass fields, so a counter added to
        the class definition participates in merging automatically —
        it cannot silently drop out the way a hand-maintained field
        list could (``tests/kdtree/test_stats.py`` pins this).
        """
        for field_ in fields(self):
            setattr(
                self,
                field_.name,
                getattr(self, field_.name) + getattr(other, field_.name),
            )

    def reset(self) -> None:
        """Zero all counters (every declared field, automatically)."""
        for field_ in fields(self):
            setattr(self, field_.name, field_.default)

    def as_dict(self) -> dict:
        """Field name -> value for every declared counter.

        The telemetry layer attaches these as per-span counter deltas;
        like :meth:`merge`/:meth:`reset` it enumerates the dataclass
        fields so new counters flow through automatically.
        """
        return {field_.name: getattr(self, field_.name) for field_ in fields(self)}

    @property
    def nodes_per_query(self) -> float:
        """Average nodes visited per query (0 when no queries ran)."""
        if self.queries == 0:
            return 0.0
        return self.nodes_visited / self.queries

    @property
    def total_work(self) -> int:
        """All distance computations: node visits plus leader checks."""
        return self.nodes_visited + self.leader_checks

    def __repr__(self) -> str:
        reused = (
            f", reused_queries={self.reused_queries}"
            if self.reused_queries
            else ""
        )
        return (
            f"SearchStats(queries={self.queries}, "
            f"nodes_visited={self.nodes_visited}, "
            f"traversal_steps={self.traversal_steps}, "
            f"pruned_subtrees={self.pruned_subtrees}, "
            f"leader_checks={self.leader_checks}{reused})"
        )
