"""Point cloud data substrate: containers, file I/O, synthetic LiDAR."""

from repro.io.dataset import (
    SceneSpec,
    SceneSuite,
    SyntheticSequence,
    default_test_model,
    make_sequence,
)
from repro.io.kitti import read_kitti_poses, write_kitti_poses
from repro.io.pcd import read_pcd, write_pcd
from repro.io.pointcloud import PointCloud
from repro.io.synthetic import (
    Box,
    Cylinder,
    LidarModel,
    Plane,
    RotatedBox,
    Scene,
    Sphere,
    curved_trajectory,
    figure_eight_trajectory,
    highway_scene,
    intersection_scene,
    loop_trajectory,
    room_scene,
    scan,
    straight_trajectory,
    urban_scene,
)

__all__ = [
    "PointCloud",
    "read_pcd",
    "write_pcd",
    "read_kitti_poses",
    "write_kitti_poses",
    "SyntheticSequence",
    "SceneSpec",
    "SceneSuite",
    "make_sequence",
    "default_test_model",
    "Scene",
    "Plane",
    "Box",
    "Cylinder",
    "RotatedBox",
    "Sphere",
    "LidarModel",
    "scan",
    "urban_scene",
    "highway_scene",
    "intersection_scene",
    "room_scene",
    "straight_trajectory",
    "curved_trajectory",
    "loop_trajectory",
    "figure_eight_trajectory",
]
