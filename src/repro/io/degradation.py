"""Seeded, composable degradation of synthetic LiDAR sequences.

Real deployments fail in ways clean synthetic scans never exercise:
rain and dust collapse the return rate, interference injects range
noise far beyond the sensor's spec sheet, a passing truck occludes a
whole sector of the sweep, pedestrians and traffic contaminate the
static-world assumption, and the driver stack drops frames outright
under load.  This module models those failures as *post-passes* over an
already-synthesized :class:`~repro.io.dataset.SyntheticSequence`: the
scene, trajectory and ground truth are untouched, only the scans the
pipeline sees are corrupted.  That separation is what makes the
robustness benchmarks honest — the degraded run is scored against the
exact same ground truth as its clean twin.

Every generator is a frozen dataclass (hashable, reproducible config)
applied through a per-frame :class:`numpy.random.Generator` seeded from
``(seed, frame_index)``, so a degraded sequence is a pure function of
``(clean sequence, degradation list, seed)``: re-running it — or
re-ordering *scenes* in a suite — can never change what any frame
looks like.  Generators compose left to right; a generator that drops
the frame short-circuits the rest of the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.io.pointcloud import PointCloud

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dataset imports us)
    from repro.io.dataset import SyntheticSequence

__all__ = [
    "Degradation",
    "PointDropout",
    "NoiseBurst",
    "OcclusionWedge",
    "DynamicClutter",
    "FrameDrop",
    "degrade_sequence",
]


def _with_points(cloud: PointCloud, points: np.ndarray) -> PointCloud:
    """A copy of ``cloud`` with coordinates replaced.

    Attribute channels ride along unchanged except ``range``, which is
    recomputed so the organized-scan invariant (range == |point| in the
    sensor frame) survives the perturbation.
    """
    attributes = {
        name: cloud.get_attribute(name).copy() for name in cloud.attribute_names
    }
    if "range" in attributes:
        attributes["range"] = np.linalg.norm(points, axis=1)
    return PointCloud(points, **attributes)


@dataclass(frozen=True)
class Degradation:
    """Base class: one seeded per-frame corruption of a LiDAR scan.

    ``frames`` restricts the corruption to specific frame indices
    (``None`` strikes every frame) — bursts and outages are windows,
    not steady states.  Subclasses implement :meth:`apply`; returning
    ``None`` drops the frame from the sequence entirely.
    """

    frames: tuple[int, ...] | None = None

    def applies_to(self, index: int) -> bool:
        return self.frames is None or index in self.frames

    def apply(
        self, cloud: PointCloud, index: int, rng: np.random.Generator
    ) -> PointCloud | None:
        raise NotImplementedError

    def __call__(
        self, cloud: PointCloud | None, index: int, rng: np.random.Generator
    ) -> PointCloud | None:
        if cloud is None or not self.applies_to(index):
            return cloud
        return self.apply(cloud, index, rng)


@dataclass(frozen=True)
class PointDropout(Degradation):
    """Uniform random return loss (rain, dust, low-reflectance surfaces).

    Each point survives independently with probability ``1 - fraction``.
    At least one point always survives so downstream containers never
    see an empty cloud.
    """

    fraction: float = 0.5

    def __post_init__(self):
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError("dropout fraction must be in [0, 1)")

    def apply(self, cloud, index, rng):
        keep = rng.random(len(cloud)) >= self.fraction
        if not keep.any():
            keep[rng.integers(len(cloud))] = True
        return cloud.select(np.nonzero(keep)[0])


@dataclass(frozen=True)
class NoiseBurst(Degradation):
    """Isotropic Gaussian position noise far beyond the sensor spec.

    Models interference / multipath episodes: ``sigma`` meters of noise
    on every coordinate (the synthetic sensor's nominal range noise is
    ~0.02 m, so even a few tenths of a meter destroys the local surface
    structure normal estimation depends on).
    """

    sigma: float = 0.3

    def __post_init__(self):
        if self.sigma <= 0.0:
            raise ValueError("noise sigma must be positive")

    def apply(self, cloud, index, rng):
        noisy = cloud.points + rng.normal(0.0, self.sigma, size=cloud.points.shape)
        return _with_points(cloud, noisy)


@dataclass(frozen=True)
class OcclusionWedge(Degradation):
    """Remove an azimuthal sector of the sweep (a close-passing vehicle).

    Points whose horizontal bearing falls within ``width_deg`` degrees
    of ``center_deg`` vanish.  ``jitter_deg`` wobbles the wedge center
    per frame, as a real occluder would drift through the field of view.
    """

    center_deg: float = 0.0
    width_deg: float = 60.0
    jitter_deg: float = 0.0

    def __post_init__(self):
        if not 0.0 < self.width_deg < 360.0:
            raise ValueError("wedge width must be in (0, 360)")

    def apply(self, cloud, index, rng):
        center = np.radians(self.center_deg)
        if self.jitter_deg > 0.0:
            center += np.radians(rng.uniform(-self.jitter_deg, self.jitter_deg))
        bearing = np.arctan2(cloud.points[:, 1], cloud.points[:, 0])
        offset = np.mod(bearing - center + np.pi, 2.0 * np.pi) - np.pi
        keep = np.abs(offset) > np.radians(self.width_deg) / 2.0
        if not keep.any():
            keep[rng.integers(len(cloud))] = True
        return cloud.select(np.nonzero(keep)[0])


@dataclass(frozen=True)
class DynamicClutter(Degradation):
    """Dynamic objects: clumps of returns that move between frames.

    A fresh set of ``n_objects`` box-shaped clusters is sampled per
    frame at random bearings within ``[min_range, max_range]`` meters of
    the sensor, and ``points_per_object`` existing returns are relocated
    onto each — so the clutter is *inconsistent across frames*, the
    property that makes dynamic objects poison for frame-to-frame
    registration (a static obstacle would just be more scene).
    Relocating rather than appending preserves the cloud's attribute
    channels exactly.
    """

    n_objects: int = 3
    points_per_object: int = 150
    min_range: float = 2.0
    max_range: float = 8.0
    size: float = 1.8

    def apply(self, cloud, index, rng):
        total = self.n_objects * self.points_per_object
        total = min(total, len(cloud) // 2)
        if total == 0:
            return cloud
        victims = rng.choice(len(cloud), size=total, replace=False)
        points = cloud.points.copy()
        half = self.size / 2.0
        for chunk in np.array_split(victims, self.n_objects):
            bearing = rng.uniform(0.0, 2.0 * np.pi)
            distance = rng.uniform(self.min_range, self.max_range)
            center = np.array(
                [
                    distance * np.cos(bearing),
                    distance * np.sin(bearing),
                    rng.uniform(-1.4, 0.2),  # sensor sits ~1.8 m up
                ]
            )
            points[chunk] = center + rng.uniform(-half, half, size=(len(chunk), 3))
        return _with_points(cloud, points)


@dataclass(frozen=True)
class FrameDrop(Degradation):
    """Drop whole frames (sensor outage / driver back-pressure).

    The frame and its ground-truth pose are removed from the sequence,
    so the surviving neighbors become a consecutive pair whose true
    relative motion spans the gap — exactly what the motion model must
    bridge.  ``frames`` is mandatory: dropping *every* frame is never a
    scenario.
    """

    def __post_init__(self):
        if not self.frames:
            raise ValueError("FrameDrop needs an explicit frames tuple")

    def apply(self, cloud, index, rng):
        return None


def degrade_sequence(
    sequence: "SyntheticSequence",
    degradations: Sequence[Degradation],
    seed: int = 0,
) -> "SyntheticSequence":
    """Apply ``degradations`` (in order) to every frame of ``sequence``.

    Each frame gets its own generator seeded from ``(seed, index)``,
    shared by the chain in order — deterministic for a fixed chain, and
    independent across frames so dropping or editing one frame's
    corruption never shifts another's.  Frames any generator drops are
    removed together with their ground-truth poses, keeping the
    sequence's frame/pose alignment (and hence its pair iteration and
    metrics) valid.
    """
    frames: list[PointCloud] = []
    poses: list[np.ndarray] = []
    for index, (cloud, pose) in enumerate(zip(sequence.frames, sequence.poses)):
        rng = np.random.default_rng([seed, index])
        degraded: PointCloud | None = cloud
        for degradation in degradations:
            degraded = degradation(degraded, index, rng)
            if degraded is None:
                break
        if degraded is not None:
            frames.append(degraded)
            poses.append(pose)
    if len(frames) < 2:
        raise ValueError("degradation left fewer than two frames")
    return replace(sequence, frames=frames, poses=poses)
