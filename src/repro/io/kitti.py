"""KITTI odometry dataset I/O: pose files and velodyne scans.

The KITTI odometry benchmark (the paper's dataset) stores ground-truth
trajectories as text files with one pose per line — the first three
rows of the 4x4 transform, flattened row-major into 12 values — and
LiDAR sweeps as ``velodyne/NNNNNN.bin`` files of little-endian float32
``(x, y, z, reflectance)`` quadruples.  These helpers read/write both
formats and assemble a whole ``sequences/<id>`` directory into a
:class:`KittiSequence`, so the drivers here run on real KITTI data the
moment a dataset directory is pointed at them — and trajectories
estimated here can be exported for the official devkit.

No dataset ships with the repository (KITTI's license forbids it); the
tests exercise the loaders against a committed few-hundred-point
fixture in the same directory layout.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.geometry import se3
from repro.io.pointcloud import PointCloud

__all__ = [
    "KittiSequence",
    "load_kitti_sequence",
    "read_kitti_poses",
    "read_velodyne_bin",
    "write_kitti_poses",
    "write_velodyne_bin",
]


def write_kitti_poses(path: str | os.PathLike, poses: list[np.ndarray]) -> None:
    """Write a trajectory in KITTI's 12-value-per-line format."""
    with open(path, "w", encoding="ascii") as f:
        for pose in poses:
            pose = np.asarray(pose, dtype=np.float64)
            if pose.shape != (4, 4):
                raise ValueError(f"pose must be 4x4, got {pose.shape}")
            values = pose[:3, :].reshape(-1)
            f.write(" ".join(f"{v:.9e}" for v in values) + "\n")


def read_kitti_poses(path: str | os.PathLike) -> list[np.ndarray]:
    """Read a KITTI pose file into a list of 4x4 transforms.

    Every pose is validated to be rigid (within float tolerance); a
    malformed line raises with its line number.
    """
    poses: list[np.ndarray] = []
    with open(path, "r", encoding="ascii") as f:
        for line_number, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            values = line.split()
            if len(values) != 12:
                raise ValueError(
                    f"line {line_number}: expected 12 values, got {len(values)}"
                )
            matrix = np.array([float(v) for v in values]).reshape(3, 4)
            pose = np.eye(4)
            pose[:3, :] = matrix
            if not se3.is_valid_transform(pose, atol=1e-4):
                raise ValueError(f"line {line_number}: not a rigid transform")
            poses.append(pose)
    return poses


def write_velodyne_bin(path: str | os.PathLike, cloud: PointCloud) -> None:
    """Write a cloud as a KITTI velodyne scan (float32 x,y,z,reflectance).

    The reflectance column comes from the cloud's ``intensity``
    attribute when present, zeros otherwise.
    """
    points = np.asarray(cloud.points, dtype=np.float32)
    if cloud.has_attribute("intensity"):
        intensity = np.asarray(
            cloud.get_attribute("intensity"), dtype=np.float32
        ).reshape(-1, 1)
    else:
        intensity = np.zeros((len(points), 1), dtype=np.float32)
    np.hstack([points, intensity]).tofile(os.fspath(path))


def read_velodyne_bin(path: str | os.PathLike) -> PointCloud:
    """Read one KITTI velodyne ``.bin`` scan into a :class:`PointCloud`.

    The reflectance column is preserved as the cloud's ``intensity``
    attribute.  A file whose size is not a whole number of float32
    quadruples is rejected — the classic symptom of reading a scan with
    the wrong dtype or a truncated download.
    """
    raw = np.fromfile(os.fspath(path), dtype=np.float32)
    if raw.size % 4 != 0:
        raise ValueError(
            f"{path}: {raw.size} float32 values is not a whole number of "
            "(x, y, z, reflectance) quadruples"
        )
    scan = raw.reshape(-1, 4).astype(np.float64)
    return PointCloud(scan[:, :3], intensity=scan[:, 3])


@dataclass(frozen=True)
class KittiSequence:
    """One loaded KITTI odometry sequence.

    ``poses`` is ``None`` for the benchmark's held-out test sequences
    (11-21), which ship without ground truth.
    """

    name: str
    frames: list[PointCloud]
    poses: list[np.ndarray] | None

    def __len__(self) -> int:
        return len(self.frames)


def load_kitti_sequence(
    root: str | os.PathLike,
    sequence: str = "00",
    max_frames: int | None = None,
) -> KittiSequence:
    """Load ``<root>/sequences/<sequence>`` in the standard KITTI layout.

    Scans come from ``sequences/<id>/velodyne/*.bin`` (sorted by
    filename, i.e. frame index); ground truth from
    ``<root>/poses/<id>.txt`` when it exists.  ``max_frames`` truncates
    both — real sequences run to thousands of frames, and smoke runs
    want the first handful.
    """
    root = Path(root)
    scan_dir = root / "sequences" / sequence / "velodyne"
    if not scan_dir.is_dir():
        raise FileNotFoundError(f"no velodyne directory at {scan_dir}")
    scan_paths = sorted(scan_dir.glob("*.bin"))
    if not scan_paths:
        raise FileNotFoundError(f"no .bin scans in {scan_dir}")
    if max_frames is not None:
        scan_paths = scan_paths[:max_frames]
    frames = [read_velodyne_bin(path) for path in scan_paths]

    poses = None
    pose_path = root / "poses" / f"{sequence}.txt"
    if pose_path.is_file():
        poses = read_kitti_poses(pose_path)
        if len(poses) < len(frames):
            raise ValueError(
                f"{pose_path}: {len(poses)} poses for {len(frames)} scans"
            )
        poses = poses[: len(frames)]
    return KittiSequence(name=sequence, frames=frames, poses=poses)
