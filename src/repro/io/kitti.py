"""KITTI odometry pose-file I/O.

The KITTI odometry benchmark (the paper's dataset) stores ground-truth
trajectories as text files with one pose per line: the first three rows
of the 4x4 transform, flattened row-major into 12 values.  These
helpers read/write that format so trajectories estimated here can be
compared against real KITTI ground truth (or exported for the official
devkit) when the dataset is available.
"""

from __future__ import annotations

import os

import numpy as np

from repro.geometry import se3

__all__ = ["read_kitti_poses", "write_kitti_poses"]


def write_kitti_poses(path: str | os.PathLike, poses: list[np.ndarray]) -> None:
    """Write a trajectory in KITTI's 12-value-per-line format."""
    with open(path, "w", encoding="ascii") as f:
        for pose in poses:
            pose = np.asarray(pose, dtype=np.float64)
            if pose.shape != (4, 4):
                raise ValueError(f"pose must be 4x4, got {pose.shape}")
            values = pose[:3, :].reshape(-1)
            f.write(" ".join(f"{v:.9e}" for v in values) + "\n")


def read_kitti_poses(path: str | os.PathLike) -> list[np.ndarray]:
    """Read a KITTI pose file into a list of 4x4 transforms.

    Every pose is validated to be rigid (within float tolerance); a
    malformed line raises with its line number.
    """
    poses: list[np.ndarray] = []
    with open(path, "r", encoding="ascii") as f:
        for line_number, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            values = line.split()
            if len(values) != 12:
                raise ValueError(
                    f"line {line_number}: expected 12 values, got {len(values)}"
                )
            matrix = np.array([float(v) for v in values]).reshape(3, 4)
            pose = np.eye(4)
            pose[:3, :] = matrix
            if not se3.is_valid_transform(pose, atol=1e-4):
                raise ValueError(f"line {line_number}: not a rigid transform")
            poses.append(pose)
    return poses
