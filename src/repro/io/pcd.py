"""Minimal ASCII PCD (Point Cloud Data) reader/writer.

The PCD format is the native format of the Point Cloud Library the paper
builds its pipeline on.  We support the ASCII subset sufficient for
interchange: ``x y z`` plus optional ``normal_x normal_y normal_z
curvature`` fields, version 0.7 headers.
"""

from __future__ import annotations

import os

import numpy as np

from repro.io.pointcloud import PointCloud

__all__ = ["read_pcd", "write_pcd"]

_HEADER_KEYS = (
    "VERSION",
    "FIELDS",
    "SIZE",
    "TYPE",
    "COUNT",
    "WIDTH",
    "HEIGHT",
    "VIEWPOINT",
    "POINTS",
    "DATA",
)


def write_pcd(path: str | os.PathLike, cloud: PointCloud) -> None:
    """Write a point cloud as ASCII PCD 0.7.

    Normals and curvature are emitted when present; other attributes are
    not serialized (the format has no standard encoding for them).
    """
    fields = ["x", "y", "z"]
    columns = [cloud.points]
    if cloud.has_normals:
        fields += ["normal_x", "normal_y", "normal_z"]
        columns.append(np.asarray(cloud.normals, dtype=np.float64))
    if cloud.has_attribute("curvature"):
        fields.append("curvature")
        columns.append(
            np.asarray(cloud.get_attribute("curvature"), dtype=np.float64).reshape(
                -1, 1
            )
        )
    data = np.hstack(columns) if columns else cloud.points
    n = len(cloud)
    header = "\n".join(
        [
            "# .PCD v0.7 - Point Cloud Data file format",
            "VERSION 0.7",
            "FIELDS " + " ".join(fields),
            "SIZE " + " ".join(["4"] * len(fields)),
            "TYPE " + " ".join(["F"] * len(fields)),
            "COUNT " + " ".join(["1"] * len(fields)),
            f"WIDTH {n}",
            "HEIGHT 1",
            "VIEWPOINT 0 0 0 1 0 0 0",
            f"POINTS {n}",
            "DATA ascii",
        ]
    )
    with open(path, "w", encoding="ascii") as f:
        f.write(header + "\n")
        np.savetxt(f, data, fmt="%.8g")


def read_pcd(path: str | os.PathLike) -> PointCloud:
    """Read an ASCII PCD file written by :func:`write_pcd` (or PCL)."""
    header: dict[str, list[str]] = {}
    data_lines: list[str] = []
    with open(path, "r", encoding="ascii") as f:
        in_header = True
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if in_header:
                key, *values = line.split()
                if key in _HEADER_KEYS:
                    header[key] = values
                    if key == "DATA":
                        if values and values[0] != "ascii":
                            raise ValueError(
                                f"only ASCII PCD is supported, got {values[0]!r}"
                            )
                        in_header = False
                    continue
                raise ValueError(f"malformed PCD header line: {line!r}")
            data_lines.append(line)

    if "FIELDS" not in header or "POINTS" not in header:
        raise ValueError("missing FIELDS or POINTS in PCD header")
    fields = header["FIELDS"]
    expected = int(header["POINTS"][0])
    if expected == 0:
        return PointCloud(np.empty((0, 3)))
    raw = np.array(
        [[float(v) for v in line.split()] for line in data_lines], dtype=np.float64
    )
    if raw.shape != (expected, len(fields)):
        raise ValueError(
            f"PCD data shape {raw.shape} does not match header "
            f"({expected} points x {len(fields)} fields)"
        )
    column = {name: raw[:, i] for i, name in enumerate(fields)}
    for axis in ("x", "y", "z"):
        if axis not in column:
            raise ValueError(f"PCD file lacks required field {axis!r}")
    cloud = PointCloud(np.column_stack([column["x"], column["y"], column["z"]]))
    if all(f"normal_{axis}" in column for axis in ("x", "y", "z")):
        cloud.set_attribute(
            "normals",
            np.column_stack(
                [column["normal_x"], column["normal_y"], column["normal_z"]]
            ),
        )
    if "curvature" in column:
        cloud.set_attribute("curvature", column["curvature"])
    return cloud
