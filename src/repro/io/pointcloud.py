"""The ``PointCloud`` container.

A point cloud is a collection of points in a 3D Cartesian coordinate
system (paper Sec. 2.1).  This class is a thin, numpy-backed container: an
``(N, 3)`` float64 coordinate array plus optional per-point attribute
channels (normals, curvature, range-image indices) that downstream
pipeline stages attach and consume.
"""

from __future__ import annotations

import numpy as np

from repro.core import ragged
from repro.geometry import se3

__all__ = ["PointCloud"]


class PointCloud:
    """An immutable-by-convention set of 3D points with named attributes.

    Attributes are arbitrary per-point arrays (first dimension == number of
    points).  The registration pipeline uses ``normals`` (N, 3) and
    ``curvature`` (N,); the synthetic LiDAR attaches ``ring`` and ``azimuth``
    channels that the range-image keypoint detector consumes.
    """

    def __init__(self, points: np.ndarray, **attributes: np.ndarray):
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"points must be (N, 3), got {points.shape}")
        self._points = points
        self._attributes: dict[str, np.ndarray] = {}
        for name, value in attributes.items():
            self.set_attribute(name, value)

    # -- basic container protocol ------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        attrs = ", ".join(sorted(self._attributes)) or "none"
        return f"PointCloud({len(self)} points, attributes: {attrs})"

    @property
    def points(self) -> np.ndarray:
        """The (N, 3) coordinate array."""
        return self._points

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._attributes))

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    def get_attribute(self, name: str) -> np.ndarray:
        if name not in self._attributes:
            raise KeyError(
                f"point cloud has no attribute {name!r}; "
                f"available: {self.attribute_names}"
            )
        return self._attributes[name]

    def set_attribute(self, name: str, value: np.ndarray) -> None:
        value = np.asarray(value)
        if len(value) != len(self._points):
            raise ValueError(
                f"attribute {name!r} has {len(value)} entries for "
                f"{len(self._points)} points"
            )
        self._attributes[name] = value

    # -- convenience accessors ----------------------------------------------

    @property
    def normals(self) -> np.ndarray:
        """The (N, 3) unit normal array (raises if not yet estimated)."""
        return self.get_attribute("normals")

    @property
    def has_normals(self) -> bool:
        return self.has_attribute("normals")

    # -- derived clouds -------------------------------------------------------

    def copy(self) -> "PointCloud":
        """Deep copy of points and all attributes."""
        return PointCloud(
            self._points.copy(),
            **{name: value.copy() for name, value in self._attributes.items()},
        )

    def select(self, indices: np.ndarray) -> "PointCloud":
        """New cloud containing the points at ``indices`` (attributes too)."""
        indices = np.asarray(indices)
        return PointCloud(
            self._points[indices],
            **{name: value[indices] for name, value in self._attributes.items()},
        )

    def transformed(self, transform: np.ndarray) -> "PointCloud":
        """Apply a rigid transform; normals are rotated, other attrs copied."""
        points = se3.apply_transform(transform, self._points)
        attributes = {}
        rotation = se3.rotation_part(transform)
        for name, value in self._attributes.items():
            if name == "normals":
                attributes[name] = value @ rotation.T
            else:
                attributes[name] = value.copy()
        return PointCloud(points, **attributes)

    def voxel_downsample(self, voxel_size: float) -> "PointCloud":
        """Keep one representative point per voxel of side ``voxel_size``.

        The representative is the point closest to the voxel centroid, so
        the output is a subset of the input (attribute channels survive).
        """
        if voxel_size <= 0:
            raise ValueError("voxel_size must be positive")
        if len(self) == 0:
            return self.copy()
        keys = np.floor(self._points / voxel_size).astype(np.int64)
        # Group points by voxel via lexicographic sort of integer keys,
        # then pick every group's representative with segment kernels:
        # per-voxel centroids from one reduceat sum, then the first
        # member attaining the per-voxel minimum squared distance (the
        # same first-of-ties rule as a per-group argmin).
        order, _, group_starts, group_counts = ragged.lexsort_voxel_groups(keys)
        sorted_points = self._points[order]
        group_ids = np.repeat(np.arange(len(group_starts)), group_counts)
        centroids = (
            np.add.reduceat(sorted_points, group_starts, axis=0)
            / group_counts[:, None]
        )
        offsets = sorted_points - centroids[group_ids]
        d_sq = np.sum(offsets * offsets, axis=1)
        min_d_sq = np.minimum.reduceat(d_sq, group_starts)
        position = np.where(
            d_sq == min_d_sq[group_ids], np.arange(len(order)), len(order)
        )
        representatives = order[np.minimum.reduceat(position, group_starts)]
        return self.select(np.sort(representatives))

    def random_downsample(
        self, fraction: float, rng: np.random.Generator
    ) -> "PointCloud":
        """Keep a uniformly random ``fraction`` of points."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        count = max(1, int(round(fraction * len(self))))
        indices = rng.choice(len(self), size=count, replace=False)
        return self.select(np.sort(indices))

    def centroid(self) -> np.ndarray:
        """Mean of the points."""
        if len(self) == 0:
            raise ValueError("empty point cloud has no centroid")
        return self._points.mean(axis=0)

    def extent(self) -> np.ndarray:
        """Per-axis bounding-box size."""
        if len(self) == 0:
            return np.zeros(3)
        return self._points.max(axis=0) - self._points.min(axis=0)

    def concatenate(self, other: "PointCloud") -> "PointCloud":
        """Stack two clouds; only attributes present in both survive."""
        shared = set(self._attributes) & set(other._attributes)
        attributes = {
            name: np.concatenate([self._attributes[name], other._attributes[name]])
            for name in shared
        }
        return PointCloud(
            np.vstack([self._points, other._points]), **attributes
        )
