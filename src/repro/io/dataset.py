"""Sequence datasets with ground truth, mirroring the KITTI Odometry layout.

The paper evaluates on KITTI sequences 00-10 (the ones with ground-truth
poses).  ``SyntheticSequence`` plays that role here: an ordered list of
LiDAR frames (sensor-frame clouds) plus the exact sensor pose for each
frame, so registration estimates can be scored with the KITTI metrics in
:mod:`repro.geometry.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import se3
from repro.io.pointcloud import PointCloud
from repro.io.synthetic import (
    LidarModel,
    Scene,
    curved_trajectory,
    scan,
    straight_trajectory,
    urban_scene,
)

__all__ = ["SyntheticSequence", "make_sequence", "default_test_model"]


@dataclass
class SyntheticSequence:
    """Frames + ground-truth poses (sensor->world for each frame)."""

    frames: list[PointCloud]
    poses: list[np.ndarray]
    scene: Scene
    model: LidarModel

    def __post_init__(self):
        if len(self.frames) != len(self.poses):
            raise ValueError("frames and poses must align")

    def __len__(self) -> int:
        return len(self.frames)

    def pair(self, index: int) -> tuple[PointCloud, PointCloud, np.ndarray]:
        """Return (source, target, gt_relative) for consecutive frames.

        ``source`` is frame ``index + 1``, ``target`` is frame ``index``;
        ``gt_relative`` maps source-frame coordinates into the target
        frame — exactly the matrix registration should estimate for
        odometry (paper Sec. 2.2).
        """
        if not 0 <= index < len(self) - 1:
            raise IndexError(f"pair index {index} out of range")
        gt_relative = se3.compose(se3.invert(self.poses[index]), self.poses[index + 1])
        return self.frames[index + 1], self.frames[index], gt_relative

    def pairs(self):
        """Iterate over all consecutive (source, target, gt_relative)."""
        for index in range(len(self) - 1):
            yield self.pair(index)


def default_test_model(azimuth_steps: int = 180, channels: int = 16) -> LidarModel:
    """A scaled-down LiDAR used by tests/benches for tractable runtimes."""
    return LidarModel(
        channels=channels,
        azimuth_steps=azimuth_steps,
        max_range=80.0,
        range_noise_std=0.02,
        dropout_rate=0.0,
    )


def make_sequence(
    n_frames: int = 5,
    seed: int = 0,
    model: LidarModel | None = None,
    step: float = 1.0,
    yaw_rate: float = 0.0,
    scene: Scene | None = None,
) -> SyntheticSequence:
    """Generate a synthetic odometry sequence.

    A fresh urban scene is generated from ``seed`` unless one is passed
    in; the sensor drives through it on a straight or curved path and
    scans every frame.  This is the stand-in for a KITTI sequence used
    throughout the tests, examples, and benchmark harnesses.
    """
    rng = np.random.default_rng(seed)
    if scene is None:
        scene = urban_scene(rng, length=max(120.0, n_frames * step + 80.0))
    if model is None:
        model = default_test_model()
    if yaw_rate == 0.0:
        poses = straight_trajectory(n_frames, step=step)
    else:
        poses = curved_trajectory(n_frames, step=step, yaw_rate=yaw_rate)
    frames = [scan(scene, pose, model, rng) for pose in poses]
    return SyntheticSequence(frames=frames, poses=poses, scene=scene, model=model)
