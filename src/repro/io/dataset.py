"""Sequence datasets with ground truth, mirroring the KITTI Odometry layout.

The paper evaluates on KITTI sequences 00-10 (the ones with ground-truth
poses).  ``SyntheticSequence`` plays that role here: an ordered list of
LiDAR frames (sensor-frame clouds) plus the exact sensor pose for each
frame, so registration estimates can be scored with the KITTI metrics in
:mod:`repro.geometry.metrics`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.geometry import se3
from repro.io.degradation import (
    Degradation,
    DynamicClutter,
    FrameDrop,
    NoiseBurst,
    OcclusionWedge,
    PointDropout,
    degrade_sequence,
)
from repro.io.pointcloud import PointCloud
from repro.io.synthetic import (
    LidarModel,
    Scene,
    corridor_scene,
    curved_trajectory,
    highway_scene,
    intersection_scene,
    loop_trajectory,
    room_scene,
    scan,
    straight_trajectory,
    urban_scene,
)

__all__ = [
    "SyntheticSequence",
    "SceneSpec",
    "SceneSuite",
    "make_sequence",
    "default_test_model",
]


@dataclass
class SyntheticSequence:
    """Frames + ground-truth poses (sensor->world for each frame)."""

    frames: list[PointCloud]
    poses: list[np.ndarray]
    scene: Scene
    model: LidarModel

    def __post_init__(self):
        if len(self.frames) != len(self.poses):
            raise ValueError("frames and poses must align")

    def __len__(self) -> int:
        return len(self.frames)

    def pair(self, index: int) -> tuple[PointCloud, PointCloud, np.ndarray]:
        """Return (source, target, gt_relative) for consecutive frames.

        ``source`` is frame ``index + 1``, ``target`` is frame ``index``;
        ``gt_relative`` maps source-frame coordinates into the target
        frame — exactly the matrix registration should estimate for
        odometry (paper Sec. 2.2).
        """
        if not 0 <= index < len(self) - 1:
            raise IndexError(f"pair index {index} out of range")
        gt_relative = se3.compose(se3.invert(self.poses[index]), self.poses[index + 1])
        return self.frames[index + 1], self.frames[index], gt_relative

    def pairs(self):
        """Iterate over all consecutive (source, target, gt_relative)."""
        for index in range(len(self) - 1):
            yield self.pair(index)


def default_test_model(azimuth_steps: int = 180, channels: int = 16) -> LidarModel:
    """A scaled-down LiDAR used by tests/benches for tractable runtimes."""
    return LidarModel(
        channels=channels,
        azimuth_steps=azimuth_steps,
        max_range=80.0,
        range_noise_std=0.02,
        dropout_rate=0.0,
    )


@dataclass(frozen=True)
class SceneSpec:
    """How to synthesize one named workload of a :class:`SceneSuite`.

    ``factory`` builds the static world from a seeded generator;
    ``step`` is the per-frame travel distance (indoor scenes move
    slower to stay inside their geometry); ``seed`` drives both scene
    synthesis and scan noise so the sequence is reproducible.  Scene
    and scan deliberately draw from generators seeded identically —
    the convention the streaming tests and benches established — so a
    suite scene reproduces exactly the geometry those known-good seeds
    were validated on.

    ``trajectory``, when set, maps a frame count to an explicit pose
    list (e.g. :func:`~repro.io.synthetic.loop_trajectory` for the
    closed-circuit mapping workloads) and takes precedence over the
    default straight drive at ``step`` meters per frame.

    ``degradation``, when set, is an ordered tuple of
    :class:`~repro.io.degradation.Degradation` generators applied as a
    post-pass over the synthesized sequence (seeded from the spec seed,
    per frame) — the scene, trajectory, and ground truth stay those of
    the clean spec, so ``replace(spec, degradation=None)`` is always the
    exact clean twin of an adverse scene.

    ``model``, when set, overrides the suite-wide sensor model for this
    scene only (e.g. the degenerate corridor uses a noise-free sensor:
    degeneracy is a property of the geometry, and sensor noise faking
    observability would confound the measurement).
    """

    factory: Callable[[np.random.Generator], Scene]
    step: float = 1.0
    seed: int = 7
    trajectory: Callable[[int], list[np.ndarray]] | None = None
    degradation: tuple[Degradation, ...] | None = None
    model: LidarModel | None = None

    def build(self, n_frames: int, model: LidarModel | None) -> SyntheticSequence:
        rng = np.random.default_rng(self.seed)
        sequence = make_sequence(
            n_frames=n_frames,
            seed=self.seed,
            scene=self.factory(rng),
            model=self.model if self.model is not None else model,
            step=self.step,
            poses=None if self.trajectory is None else self.trajectory(n_frames),
        )
        if self.degradation:
            sequence = degrade_sequence(
                sequence, self.degradation, seed=self.seed
            )
        return sequence


class SceneSuite:
    """A named collection of synthetic scenarios for multi-scene evaluation.

    The design-space explorer sweeps configurations *per scene* and
    aggregates across the suite, mirroring how the paper reports over
    the eleven KITTI sequences.  Sequences are synthesized lazily and
    cached, so a suite can be passed around cheaply and only the scenes
    actually evaluated pay their ray-casting cost.

    :meth:`default` wraps the five standard workloads — ``urban``
    (feature-rich street), ``highway`` (feature-poor, aperture-limited
    by design), ``intersection`` (perpendicular structure both ways),
    ``room`` (indoor, sensor surrounded), and ``urban_loop`` (a closed
    circuit around the intersection; the revisit workload the mapping
    subsystem's loop closure consumes).  The intersection-based scenes
    use seed 11: seed 7 produces a near-symmetric scene whose front-end
    fails identically under every driver (a pipeline property recorded
    with PR 2, not a driver bug).
    """

    def __init__(
        self,
        specs: dict[str, SceneSpec],
        n_frames: int = 4,
        model: LidarModel | None = None,
    ):
        if not specs:
            raise ValueError("a SceneSuite needs at least one scene")
        if n_frames < 2:
            raise ValueError("sequences need at least two frames")
        self.specs = dict(specs)
        self.n_frames = n_frames
        self.model = model
        self._sequences: dict[str, SyntheticSequence] = {}

    @classmethod
    def default(
        cls,
        n_frames: int = 4,
        model: LidarModel | None = None,
        scenes: tuple[str, ...] | None = None,
    ) -> "SceneSuite":
        """The four standard workloads (optionally a named subset)."""
        specs = {
            "urban": SceneSpec(lambda rng: urban_scene(rng, length=120.0)),
            "highway": SceneSpec(lambda rng: highway_scene(rng, length=160.0)),
            "intersection": SceneSpec(
                lambda rng: intersection_scene(rng), seed=11
            ),
            "room": SceneSpec(lambda rng: room_scene(), step=0.3),
            # A closed circuit on the intersection's roadway: corner
            # buildings and poles stay in view all the way around, and
            # the second lap revisits every point of the first — the
            # loop-closure workload (the mapping tests use 48 frames).
            # Two laps need ~24 frames each to keep per-frame motion
            # registrable; short builds (tiny DSE sweeps) fall back to
            # a single lap so consecutive poses stay distinct.
            "urban_loop": SceneSpec(
                lambda rng: intersection_scene(rng),
                seed=11,
                trajectory=lambda n: loop_trajectory(
                    n, radius=5.0, laps=2 if n >= 32 else 1
                ),
            ),
        }
        if scenes is not None:
            unknown = set(scenes) - set(specs)
            if unknown:
                raise ValueError(f"unknown scenes: {sorted(unknown)}")
            specs = {name: specs[name] for name in scenes}
        return cls(specs, n_frames=n_frames, model=model)

    @classmethod
    def adverse(
        cls,
        n_frames: int = 8,
        model: LidarModel | None = None,
        scenes: tuple[str, ...] | None = None,
    ) -> "SceneSuite":
        """The adverse workloads: failure injection over known-good scenes.

        Every degraded scene reuses the *clean* ``urban`` geometry and
        seed from :meth:`default`, corrupted by a seeded post-pass (see
        :mod:`repro.io.degradation`), so
        ``replace(spec, degradation=None)`` recovers each scene's exact
        clean twin for baseline comparison.  Degradations strike a
        mid-sequence window — the sequence enters and leaves the fault
        healthy, which is what lets recovery (not just survival) be
        measured.  ``corridor`` is adverse through geometry alone: a
        structurally degenerate scene where motion along the corridor
        is unobservable to ICP.
        """
        urban = lambda rng: urban_scene(rng, length=120.0)  # noqa: E731
        window = tuple(
            range(max(1, n_frames // 3), max(2, (2 * n_frames) // 3))
        )
        mid = window[len(window) // 2]
        specs = {
            # Interference episode: position noise ~20x the sensor's
            # nominal range noise over the middle third of the drive.
            "urban_noise_burst": SceneSpec(
                urban,
                degradation=(NoiseBurst(sigma=0.4, frames=window),),
            ),
            # A close-passing occluder plus heavy return loss: most of
            # the sweep vanishes and what is left is one-sided.
            "urban_blackout": SceneSpec(
                urban,
                degradation=(
                    PointDropout(fraction=0.9, frames=window),
                    OcclusionWedge(
                        width_deg=160.0, jitter_deg=30.0, frames=window
                    ),
                ),
            ),
            # Dynamic objects all the way through: per-frame-inconsistent
            # clutter clusters contaminating the static-world assumption.
            "urban_clutter": SceneSpec(
                urban,
                degradation=(DynamicClutter(frames=window),),
            ),
            # Sensor outage: a mid-sequence frame vanishes, so one
            # surviving pair spans a double-length true motion.  The
            # pipeline absorbs this one (the seeded correspondence
            # radius covers the gap), making it the no-false-positive
            # scene: the gap pair *legitimately* violates the motion
            # model, so a correct health layer may flag it — but its
            # retry rungs must then recognize the self-consistent
            # re-solve and keep the measurement.  An overeager ladder
            # would bridge the gap pair with the one-step motion prior
            # and *introduce* a 1 m error.  (This is also why the
            # robust median-residual gate exists: the pair's RMSE is
            # inflated by reduced overlap alone, so an RMSE gate
            # misfires here while the median stays clean.)
            "urban_outage": SceneSpec(
                urban,
                degradation=(FrameDrop(frames=(mid,)),),
            ),
            # Geometric degeneracy, no injection needed: two parallel
            # walls and a ground plane leave travel-direction motion
            # unobservable (rank-2 translation Hessian).  A noise-free
            # sensor isolates the geometric property being tested.
            "corridor": SceneSpec(
                lambda rng: corridor_scene(),
                model=dataclasses.replace(
                    default_test_model(), range_noise_std=0.0
                ),
            ),
        }
        if scenes is not None:
            unknown = set(scenes) - set(specs)
            if unknown:
                raise ValueError(f"unknown scenes: {sorted(unknown)}")
            specs = {name: specs[name] for name in scenes}
        return cls(specs, n_frames=n_frames, model=model)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __contains__(self, name: str) -> bool:
        return name in self.specs

    def __iter__(self):
        return iter(self.specs)

    def sequence(self, name: str) -> SyntheticSequence:
        """The (cached) sequence for one scene."""
        if name not in self.specs:
            raise KeyError(f"unknown scene {name!r}; have {self.names}")
        if name not in self._sequences:
            self._sequences[name] = self.specs[name].build(
                self.n_frames, self.model
            )
        return self._sequences[name]

    def items(self):
        """Iterate ``(name, sequence)``, synthesizing as needed."""
        for name in self.specs:
            yield name, self.sequence(name)


def make_sequence(
    n_frames: int = 5,
    seed: int = 0,
    model: LidarModel | None = None,
    step: float = 1.0,
    yaw_rate: float = 0.0,
    scene: Scene | None = None,
    poses: list[np.ndarray] | None = None,
) -> SyntheticSequence:
    """Generate a synthetic odometry sequence.

    A fresh urban scene is generated from ``seed`` unless one is passed
    in; the sensor drives through it on a straight or curved path — or
    along explicitly supplied ``poses`` (e.g. a closed loop) — and
    scans every frame.  This is the stand-in for a KITTI sequence used
    throughout the tests, examples, and benchmark harnesses.
    """
    rng = np.random.default_rng(seed)
    if scene is None:
        scene = urban_scene(rng, length=max(120.0, n_frames * step + 80.0))
    if model is None:
        model = default_test_model()
    if poses is None:
        if yaw_rate == 0.0:
            poses = straight_trajectory(n_frames, step=step)
        else:
            poses = curved_trajectory(n_frames, step=step, yaw_rate=yaw_rate)
    elif len(poses) != n_frames:
        raise ValueError(
            f"got {len(poses)} explicit poses for {n_frames} frames"
        )
    frames = [scan(scene, pose, model, rng) for pose in poses]
    return SyntheticSequence(frames=frames, poses=poses, scene=scene, model=model)
