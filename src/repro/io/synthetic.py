"""Synthetic LiDAR data: procedurally generated scenes scanned by a
ray-cast spinning-LiDAR model.

The paper evaluates on the KITTI Odometry dataset, captured with a
Velodyne HDL-64E.  That data is not redistributable here, so this module
provides the substitution documented in DESIGN.md: parametric urban
scenes (ground plane, box buildings, cylindrical poles, spherical
shrubs) scanned by a 64-beam spinning LiDAR model with Gaussian range
noise and beam dropout.  The output has the same structure the pipeline
consumes — per-frame ``(x, y, z)`` clouds with LiDAR ring/azimuth
channels (which double as a range image for the NARF-style detector) —
and exact ground-truth sensor poses for KITTI-style error metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry import se3
from repro.io.pointcloud import PointCloud

__all__ = [
    "Plane",
    "Box",
    "Cylinder",
    "Sphere",
    "Scene",
    "LidarModel",
    "scan",
    "urban_scene",
    "highway_scene",
    "intersection_scene",
    "room_scene",
    "corridor_scene",
    "straight_trajectory",
    "curved_trajectory",
    "loop_trajectory",
    "figure_eight_trajectory",
]


# ---------------------------------------------------------------------------
# Scene primitives.  Each primitive answers ray queries in batch: given ray
# origins O (N, 3) and unit directions D (N, 3), return the hit parameter t
# per ray (np.inf where the ray misses).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Plane:
    """Infinite horizontal plane at height ``z`` (the ground)."""

    z: float = 0.0

    def intersect(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        t = np.full(len(origins), np.inf)
        dz = directions[:, 2]
        moving = np.abs(dz) > 1e-12
        t_hit = np.where(moving, (self.z - origins[:, 2]) / np.where(moving, dz, 1.0), np.inf)
        t = np.where(t_hit > 1e-6, t_hit, np.inf)
        return t


@dataclass(frozen=True)
class Box:
    """Axis-aligned box, e.g. a building or vehicle."""

    lo: tuple[float, float, float]
    hi: tuple[float, float, float]

    def intersect(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        # Slab method, vectorized over rays; divisions by ~0 produce +-inf
        # which the min/max logic handles correctly.
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = 1.0 / directions
            t1 = (lo - origins) * inv
            t2 = (hi - origins) * inv
        tmin = np.nanmax(np.minimum(t1, t2), axis=1)
        tmax = np.nanmin(np.maximum(t1, t2), axis=1)
        hit = (tmax >= tmin) & (tmax > 1e-6)
        t_entry = np.where(tmin > 1e-6, tmin, tmax)
        return np.where(hit & (t_entry > 1e-6), t_entry, np.inf)


@dataclass(frozen=True)
class RotatedBox:
    """A box rotated by ``yaw`` about the vertical axis (e.g. a parked car).

    Rays are transformed into the box frame and intersected with the
    axis-aligned slab there.
    """

    center: tuple[float, float, float]
    size: tuple[float, float, float]
    yaw: float

    def intersect(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        c, s = np.cos(-self.yaw), np.sin(-self.yaw)
        center = np.asarray(self.center, dtype=np.float64)
        local_o = origins - center
        local_o = np.column_stack(
            [
                c * local_o[:, 0] - s * local_o[:, 1],
                s * local_o[:, 0] + c * local_o[:, 1],
                local_o[:, 2],
            ]
        )
        local_d = np.column_stack(
            [
                c * directions[:, 0] - s * directions[:, 1],
                s * directions[:, 0] + c * directions[:, 1],
                directions[:, 2],
            ]
        )
        half = np.asarray(self.size, dtype=np.float64) / 2.0
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = 1.0 / local_d
            t1 = (-half - local_o) * inv
            t2 = (half - local_o) * inv
        tmin = np.nanmax(np.minimum(t1, t2), axis=1)
        tmax = np.nanmin(np.maximum(t1, t2), axis=1)
        hit = (tmax >= tmin) & (tmax > 1e-6)
        t_entry = np.where(tmin > 1e-6, tmin, tmax)
        return np.where(hit & (t_entry > 1e-6), t_entry, np.inf)


@dataclass(frozen=True)
class Cylinder:
    """Vertical cylinder (pole, trunk) from ``z_lo`` to ``z_hi``."""

    center: tuple[float, float]
    radius: float
    z_lo: float
    z_hi: float

    def intersect(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        ox = origins[:, 0] - self.center[0]
        oy = origins[:, 1] - self.center[1]
        dx, dy = directions[:, 0], directions[:, 1]
        a = dx * dx + dy * dy
        b = 2.0 * (ox * dx + oy * dy)
        c = ox * ox + oy * oy - self.radius**2
        disc = b * b - 4.0 * a * c
        valid = (disc >= 0.0) & (a > 1e-12)
        sqrt_disc = np.sqrt(np.where(valid, disc, 0.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            t_near = (-b - sqrt_disc) / (2.0 * a)
            t_far = (-b + sqrt_disc) / (2.0 * a)
        t = np.where(t_near > 1e-6, t_near, t_far)
        z = origins[:, 2] + t * directions[:, 2]
        ok = valid & (t > 1e-6) & (z >= self.z_lo) & (z <= self.z_hi)
        return np.where(ok, t, np.inf)


@dataclass(frozen=True)
class Sphere:
    """Sphere (shrub, boulder)."""

    center: tuple[float, float, float]
    radius: float

    def intersect(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        oc = origins - np.asarray(self.center, dtype=np.float64)
        b = 2.0 * np.sum(oc * directions, axis=1)
        c = np.sum(oc * oc, axis=1) - self.radius**2
        disc = b * b - 4.0 * c
        valid = disc >= 0.0
        sqrt_disc = np.sqrt(np.where(valid, disc, 0.0))
        t_near = (-b - sqrt_disc) / 2.0
        t_far = (-b + sqrt_disc) / 2.0
        t = np.where(t_near > 1e-6, t_near, t_far)
        return np.where(valid & (t > 1e-6), t, np.inf)


@dataclass
class Scene:
    """A static world: the union of primitives, queried by ray casting."""

    primitives: list = field(default_factory=list)

    def add(self, primitive) -> None:
        self.primitives.append(primitive)

    def intersect(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """Nearest hit parameter per ray over all primitives."""
        t = np.full(len(origins), np.inf)
        for primitive in self.primitives:
            t = np.minimum(t, primitive.intersect(origins, directions))
        return t


# ---------------------------------------------------------------------------
# LiDAR sensor model.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LidarModel:
    """A spinning multi-beam LiDAR.

    Defaults approximate the Velodyne HDL-64E used by KITTI: 64 vertical
    channels spanning +2 deg to -24.8 deg, 360 deg azimuth sweep, 120 m
    range, ~2 cm range noise.  ``azimuth_steps`` controls horizontal
    resolution and hence the points-per-frame budget; tests use small
    values, the examples use larger ones.
    """

    channels: int = 64
    vertical_fov_deg: tuple[float, float] = (-24.8, 2.0)
    azimuth_steps: int = 870
    max_range: float = 120.0
    min_range: float = 0.9
    range_noise_std: float = 0.02
    dropout_rate: float = 0.005

    def ray_directions(self) -> np.ndarray:
        """Unit ray directions in the sensor frame, shape (C*A, 3).

        Rays are ordered ring-major: index ``ring * azimuth_steps + step``,
        which lets the scan double as an organized range image.
        """
        elevations = np.radians(
            np.linspace(
                self.vertical_fov_deg[0], self.vertical_fov_deg[1], self.channels
            )
        )
        azimuths = np.linspace(0.0, 2.0 * np.pi, self.azimuth_steps, endpoint=False)
        el_grid, az_grid = np.meshgrid(elevations, azimuths, indexing="ij")
        cos_el = np.cos(el_grid)
        directions = np.stack(
            [
                cos_el * np.cos(az_grid),
                cos_el * np.sin(az_grid),
                np.sin(el_grid),
            ],
            axis=-1,
        )
        return directions.reshape(-1, 3)


def scan(
    scene: Scene,
    sensor_pose: np.ndarray,
    model: LidarModel,
    rng: np.random.Generator,
) -> PointCloud:
    """Scan ``scene`` from ``sensor_pose`` (sensor->world 4x4 transform).

    Returns the point cloud **in the sensor frame** (as a real LiDAR
    would), with ``ring``, ``azimuth`` and ``range`` attributes.  Rays
    that miss, exceed range limits, or are dropped by the dropout model
    produce no point.
    """
    directions_local = model.ray_directions()
    n_rays = len(directions_local)
    rotation = se3.rotation_part(sensor_pose)
    origin = se3.translation_part(sensor_pose)
    directions_world = directions_local @ rotation.T
    origins_world = np.broadcast_to(origin, (n_rays, 3))

    t = scene.intersect(origins_world, directions_world)
    if model.range_noise_std > 0:
        t = t + rng.normal(0.0, model.range_noise_std, size=n_rays)
    hit = np.isfinite(t) & (t >= model.min_range) & (t <= model.max_range)
    if model.dropout_rate > 0:
        hit &= rng.random(n_rays) >= model.dropout_rate

    indices = np.nonzero(hit)[0]
    points_local = directions_local[indices] * t[indices, None]
    rings = indices // model.azimuth_steps
    azimuth_idx = indices % model.azimuth_steps
    return PointCloud(
        points_local,
        ring=rings.astype(np.int32),
        azimuth=azimuth_idx.astype(np.int32),
        range=t[indices],
    )


# ---------------------------------------------------------------------------
# Procedural scenes and trajectories.
# ---------------------------------------------------------------------------


def urban_scene(
    rng: np.random.Generator,
    length: float = 200.0,
    road_width: float = 12.0,
    building_density: float = 0.05,
    pole_density: float = 0.2,
    car_density: float = 0.1,
) -> Scene:
    """A street corridor along +x: ground, buildings, cars, poles, shrubs.

    Densities are per meter of corridor.  The scene mixes large planar
    structure (ground, walls — dense radius-search workload for normal
    estimation) with abundant structure *perpendicular to the travel
    direction* (parked cars at random yaw, building end walls, poles),
    which is what makes frame-to-frame motion observable to ICP — the
    same property real KITTI streets have.
    """
    scene = Scene()
    scene.add(Plane(z=0.0))
    for side in (-1.0, 1.0):
        x = -length / 2.0
        while x < length / 2.0:
            if rng.random() < building_density * 10.0:
                width = rng.uniform(6.0, 14.0)
                depth = rng.uniform(6.0, 15.0)
                height = rng.uniform(4.0, 18.0)
                y0 = side * (road_width / 2.0 + rng.uniform(1.0, 4.0))
                y1 = y0 + side * depth
                scene.add(
                    Box(
                        (x, min(y0, y1), 0.0),
                        (x + width, max(y0, y1), height),
                    )
                )
                x += width + rng.uniform(2.0, 6.0)
            else:
                x += rng.uniform(3.0, 8.0)
    n_cars = int(car_density * length)
    for _ in range(n_cars):
        cx = rng.uniform(-length / 2.0, length / 2.0)
        cy = rng.choice([-1.0, 1.0]) * (road_width / 2.0 - rng.uniform(0.5, 1.5))
        scene.add(
            RotatedBox(
                center=(cx, cy, 0.75),
                size=(rng.uniform(3.8, 5.0), rng.uniform(1.6, 2.0), 1.5),
                yaw=rng.normal(0.0, 0.15),
            )
        )
    n_poles = int(pole_density * length)
    for _ in range(n_poles):
        px = rng.uniform(-length / 2.0, length / 2.0)
        py = rng.choice([-1.0, 1.0]) * (road_width / 2.0 + rng.uniform(0.2, 1.5))
        scene.add(
            Cylinder(
                (px, py), rng.uniform(0.1, 0.3), 0.0, rng.uniform(3.0, 8.0)
            )
        )
    for _ in range(n_poles // 2):
        sx = rng.uniform(-length / 2.0, length / 2.0)
        sy = rng.choice([-1.0, 1.0]) * (road_width / 2.0 + rng.uniform(1.0, 3.0))
        radius = rng.uniform(0.4, 1.2)
        scene.add(Sphere((sx, sy, radius), radius))
    return scene


def highway_scene(
    rng: np.random.Generator,
    length: float = 300.0,
    lanes: int = 3,
) -> Scene:
    """A highway segment: wide road, guard rails, gantries, sparse cars.

    Deliberately *feature-poor* along the travel direction — the
    degenerate case where frame-to-frame registration must rely on the
    few perpendicular structures (gantries, rail posts).  Useful for
    stress-testing registration observability.
    """
    scene = Scene()
    scene.add(Plane(z=0.0))
    road_half = lanes * 3.7 / 2.0 + 1.0
    # Guard rails: long, thin boxes on both sides.
    scene.add(Box((-length / 2, -road_half - 0.3, 0.4), (length / 2, -road_half, 0.8)))
    scene.add(Box((-length / 2, road_half, 0.4), (length / 2, road_half + 0.3, 0.8)))
    # Rail posts every ~8 m.
    x = -length / 2.0
    while x < length / 2.0:
        for side in (-1.0, 1.0):
            scene.add(
                Cylinder((x, side * (road_half + 0.15)), 0.08, 0.0, 0.8)
            )
        x += 8.0
    # Overhead gantries every ~80 m: two posts + a beam.
    x = -length / 2.0 + rng.uniform(0.0, 40.0)
    while x < length / 2.0:
        scene.add(Cylinder((x, -road_half - 1.0), 0.25, 0.0, 6.0))
        scene.add(Cylinder((x, road_half + 1.0), 0.25, 0.0, 6.0))
        scene.add(
            Box((x - 0.4, -road_half - 1.2, 5.4), (x + 0.4, road_half + 1.2, 6.0))
        )
        x += rng.uniform(60.0, 100.0)
    # Sparse moving-lane cars (static within a frame).
    for _ in range(int(length / 40.0)):
        cx = rng.uniform(-length / 2.0, length / 2.0)
        lane = rng.integers(0, lanes)
        cy = (lane - (lanes - 1) / 2.0) * 3.7
        scene.add(
            RotatedBox(
                center=(cx, cy, 0.75),
                size=(rng.uniform(4.0, 5.0), 1.8, 1.5),
                yaw=rng.normal(0.0, 0.02),
            )
        )
    return scene


def intersection_scene(
    rng: np.random.Generator,
    arm_length: float = 80.0,
    road_width: float = 12.0,
) -> Scene:
    """A four-way urban intersection: corner buildings and poles.

    Rich in perpendicular structure in *both* horizontal directions —
    the favourable case for registration, complementing
    :func:`highway_scene`.
    """
    scene = Scene()
    scene.add(Plane(z=0.0))
    half = road_width / 2.0
    # Four corner blocks.
    for sx in (-1.0, 1.0):
        for sy in (-1.0, 1.0):
            x0 = sx * (half + 2.0)
            y0 = sy * (half + 2.0)
            x1 = sx * (half + 2.0 + rng.uniform(15.0, 30.0))
            y1 = sy * (half + 2.0 + rng.uniform(15.0, 30.0))
            scene.add(
                Box(
                    (min(x0, x1), min(y0, y1), 0.0),
                    (max(x0, x1), max(y0, y1), rng.uniform(6.0, 20.0)),
                )
            )
    # Traffic poles near the corners and along the arms.
    for sx in (-1.0, 1.0):
        for sy in (-1.0, 1.0):
            scene.add(
                Cylinder((sx * (half + 0.8), sy * (half + 0.8)), 0.15, 0.0, 5.0)
            )
    for _ in range(int(arm_length / 10.0)):
        along = rng.uniform(half + 2.0, arm_length)
        side = rng.choice([-1.0, 1.0]) * (half + rng.uniform(0.3, 1.0))
        if rng.random() < 0.5:
            scene.add(Cylinder((along * rng.choice([-1, 1]), side), 0.1, 0.0, 4.0))
        else:
            scene.add(Cylinder((side, along * rng.choice([-1, 1])), 0.1, 0.0, 4.0))
    return scene


def room_scene(size: float = 10.0, height: float = 3.0) -> Scene:
    """A closed rectangular room — a compact indoor scan target.

    Useful for AR/reconstruction-style examples where the sensor is
    surrounded by geometry in all directions.
    """
    scene = Scene()
    half = size / 2.0
    thickness = 0.2
    scene.add(Plane(z=0.0))
    scene.add(Box((-half - thickness, -half, 0.0), (-half, half, height)))
    scene.add(Box((half, -half, 0.0), (half + thickness, half, height)))
    scene.add(Box((-half, -half - thickness, 0.0), (half, -half, height)))
    scene.add(Box((-half, half, 0.0), (half, half + thickness, height)))
    scene.add(Box((-1.0, -0.6, 0.0), (1.0, 0.6, 0.8)))  # a table
    scene.add(Cylinder((half * 0.6, -half * 0.6), 0.15, 0.0, height))
    scene.add(Sphere((-half * 0.5, half * 0.5, 0.5), 0.5))
    return scene


def corridor_scene(
    length: float = 400.0,
    width: float = 8.0,
    height: float = 6.0,
) -> Scene:
    """A featureless straight corridor: ground plus two parallel walls.

    Deliberately degenerate for registration along the travel direction:
    every surface normal is either vertical (the ground) or perpendicular
    to the corridor axis (the walls), so the point-to-plane
    normal-equations Hessian's translation block is rank 2 and motion
    along the corridor is unobservable — the canonical failure mode the
    LOAM-style degeneracy detector in
    :func:`repro.registration.health.translation_observability` exists
    to flag.  Unlike :func:`highway_scene` (feature-poor but still
    weakly observable through rail posts and gantries), this scene has
    *no* perpendicular structure at all.  The default length keeps the
    corridor's end caps (the only x-facing surfaces) beyond every
    sensor model's maximum range for trajectories near the origin, so
    not a single return carries travel-direction information.
    """
    scene = Scene()
    scene.add(Plane(z=0.0))
    half = width / 2.0
    scene.add(Box((-length / 2.0, -half - 0.5, 0.0), (length / 2.0, -half, height)))
    scene.add(Box((-length / 2.0, half, 0.0), (length / 2.0, half + 0.5, height)))
    return scene


def straight_trajectory(
    n_frames: int,
    step: float = 1.0,
    height: float = 1.8,
    start_x: float = 0.0,
) -> list[np.ndarray]:
    """Sensor poses driving straight along +x at LiDAR mount height."""
    return [
        se3.make_transform(np.eye(3), [start_x + i * step, 0.0, height])
        for i in range(n_frames)
    ]


def curved_trajectory(
    n_frames: int,
    step: float = 1.0,
    yaw_rate: float = 0.01,
    height: float = 1.8,
) -> list[np.ndarray]:
    """Sensor poses on a constant-curvature arc (yaw_rate rad per frame)."""
    poses = []
    position = np.array([0.0, 0.0, height])
    yaw = 0.0
    for _ in range(n_frames):
        poses.append(se3.make_transform(se3.rot_z(yaw), position.copy()))
        position = position + step * np.array([np.cos(yaw), np.sin(yaw), 0.0])
        yaw += yaw_rate
    return poses


def loop_trajectory(
    n_frames: int,
    radius: float = 5.0,
    height: float = 1.8,
    laps: int = 1,
) -> list[np.ndarray]:
    """Sensor poses on a closed counter-clockwise circuit.

    The sensor drives ``laps`` times around a circle of the given
    radius with its heading tangent to the path, placed one step short
    of closing: frame ``n_frames`` would coincide with frame 0 again,
    so the last frame revisits the start at ordinary frame-to-frame
    distance.  This is the canonical loop-closure workload — open-loop
    odometry accumulates drift around the circuit that a SLAM back end
    corrects once revisits are detected; extra laps revisit *every*
    point of the circuit, constraining the whole trajectory rather
    than just its endpoints.
    """
    if n_frames < 2:
        raise ValueError("a loop needs at least two frames")
    if laps < 1:
        raise ValueError("laps must be >= 1")
    poses = []
    for index in range(n_frames):
        angle = 2.0 * np.pi * laps * index / n_frames
        position = [radius * np.cos(angle), radius * np.sin(angle), height]
        poses.append(se3.make_transform(se3.rot_z(angle + np.pi / 2.0), position))
    return poses


def figure_eight_trajectory(
    n_frames: int,
    radius: float = 5.0,
    height: float = 1.8,
) -> list[np.ndarray]:
    """Sensor poses on a figure-eight (Gerono lemniscate) through the origin.

    ``x = 2r sin(t), y = 2r sin(t) cos(t)``, heading along the velocity.
    The path self-intersects at the origin mid-run and closes after the
    last frame — two revisit events per lap, exercising loop closure
    against both same-direction and crossing-direction geometry.
    """
    if n_frames < 2:
        raise ValueError("a figure eight needs at least two frames")
    poses = []
    for index in range(n_frames):
        t = 2.0 * np.pi * index / n_frames
        position = [
            2.0 * radius * np.sin(t),
            2.0 * radius * np.sin(t) * np.cos(t),
            height,
        ]
        yaw = np.arctan2(2.0 * radius * np.cos(2.0 * t), 2.0 * radius * np.cos(t))
        poses.append(se3.make_transform(se3.rot_z(yaw), position))
    return poses
