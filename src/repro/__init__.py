"""repro — a reproduction of Tigris (MICRO-52, 2019).

Tigris: Architecture and Algorithms for 3D Perception in Point Clouds
(Xu, Tian, Zhu).  The library provides:

* a configurable point cloud registration pipeline
  (:mod:`repro.registration`) with the design knobs of the paper's
  Table 1;
* the canonical KD-tree substrate (:mod:`repro.kdtree`);
* the paper's core contribution — the two-stage KD-tree and approximate
  leaders/followers search (:mod:`repro.core`);
* a trace-driven model of the Tigris accelerator and its CPU/GPU
  baselines (:mod:`repro.accel`);
* synthetic LiDAR sequences standing in for KITTI (:mod:`repro.io`),
  SE(3)/metrics utilities (:mod:`repro.geometry`), and a design-space
  exploration harness (:mod:`repro.dse`).
"""

from repro.core import ApproximateSearch, ApproximateSearchConfig, TwoStageKDTree
from repro.io import PointCloud, make_sequence
from repro.kdtree import KDTree, SearchStats

__version__ = "1.0.0"

__all__ = [
    "PointCloud",
    "make_sequence",
    "KDTree",
    "SearchStats",
    "TwoStageKDTree",
    "ApproximateSearch",
    "ApproximateSearchConfig",
    "__version__",
]
