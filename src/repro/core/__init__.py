"""Tigris core contribution: the acceleration-amenable KD-tree.

This package holds the paper's Sec. 4: the two-stage KD-tree data
structure that exposes query- and node-level parallelism, the per-query
work traces that drive the accelerator model, and the leaders/followers
approximate search algorithm that reclaims the structure's redundancy.
"""

from repro.core.approx import ApproximateSearch, ApproximateSearchConfig
from repro.core.gridhash import GridHashConfig, GridHashIndex
from repro.core.ragged import RaggedNeighborhoods
from repro.core.trace import LeafVisitRecord, QueryTrace
from repro.core.twostage import TwoStageKDTree

__all__ = [
    "TwoStageKDTree",
    "ApproximateSearch",
    "ApproximateSearchConfig",
    "GridHashConfig",
    "GridHashIndex",
    "QueryTrace",
    "LeafVisitRecord",
    "RaggedNeighborhoods",
]
