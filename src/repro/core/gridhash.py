"""Uniform voxel-grid hash search (paper Sec. 6, "other search structures").

The paper's DSE treats the search structure itself as a design knob:
the two-stage KD-tree wins its comparison, but the natural rival for
uniformly dense LiDAR frames is a flat voxel grid — O(1) cell lookup,
no tree descent at all.  :class:`GridHashIndex` is that rival as a
first-class backend: points are binned into cubic cells of side
``cell_size``; each query probes only the 3^d cells surrounding its
own (its Chebyshev-1 neighborhood) and scans their members.

Approximation contract (pinned by tests/registration/test_gridhash.py):

* ``radius``/``radius_batch`` probe the fixed 3^d neighborhood, so the
  result is **exact** (bit-identical to brute force, same ascending-
  index order and tie rules as every exact backend) whenever
  ``r <= cell_size`` and no candidate cap triggers.  For larger radii
  neighbors beyond the probed cells are (deliberately) missed — that
  is the approximation the DSE sweeps against accuracy.
* ``max_candidates`` caps the per-query work: each query keeps only
  its first ``max_candidates`` candidates — in deterministic probe
  order (cells in lexicographic offset order, ascending point index
  within a cell) — **before** the distance filter.  The candidate set
  therefore depends only on the query row, never on the radius, so a
  capped search at radius ``r`` equals the capped search at any
  ``R >= r`` filtered down to ``r`` — exactly the nested-radius
  contract :class:`~repro.registration.search.RadiusReuseCache`
  relies on.
* ``nn``/``knn`` expand Chebyshev rings outward from the query's cell
  and are **always exact**: ring ``m+1`` can hold nothing closer than
  ``m * cell_size``, so the scan retires once the current k-th best
  beats that bound (strictly — a tie defers retirement one ring, the
  (distance, index) rule shared with the exact backends).  The
  candidate cap does not apply to nn/knn.

Work accounting: ``traversal_steps`` counts cell probes (the hash
lookups an accelerator address unit would issue), ``nodes_visited``
counts candidate distance computations, matching the "nodes visited"
unit of Fig. 6.  All schedules are deterministic, so batched calls
charge bit-identical counters to a scalar loop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.ragged import RaggedNeighborhoods
from repro.kdtree.stats import SearchStats

__all__ = ["GridHashConfig", "GridHashIndex"]

# Refuse linearized grids whose cell count could overflow the int64
# key space (practically unreachable for LiDAR frames; guards against
# degenerate cell sizes).
_MAX_LINEAR_CELLS = 1 << 62


@dataclass(frozen=True)
class GridHashConfig:
    """Knobs of the voxel-hash backend (both are DSE sweep axes).

    ``cell_size``
        Side length of the cubic hash cells.  Radius searches are exact
        up to this radius; it also sets the nn/knn ring granularity.
    ``max_candidates``
        Per-query candidate cap for radius searches (``None`` = scan
        every candidate in the probed cells).  Applied in deterministic
        probe order *before* the distance filter — see the module
        docstring for why that ordering is load-bearing.
    """

    cell_size: float = 1.0
    max_candidates: int | None = None

    def __post_init__(self):
        if self.cell_size <= 0:
            raise ValueError("cell_size must be positive")
        if self.max_candidates is not None and self.max_candidates < 1:
            raise ValueError("max_candidates must be >= 1 (or None)")


class GridHashIndex:
    """Flat voxel-hash index over a fixed point set.

    Implements the shared backend interface (``nn``/``knn``/``radius``
    plus the batched entry points), with the approximation contract
    described in the module docstring.  Cells are linearized over the
    occupied bounding box and stored as a sorted-key CSR: member lookup
    is one ``searchsorted`` per probed cell, members within a cell are
    in ascending point-index order.
    """

    def __init__(self, points: np.ndarray, config: GridHashConfig | None = None):
        self._config = config or GridHashConfig()
        self._points = np.array(points, dtype=np.float64)
        if self._points.ndim != 2 or len(self._points) == 0:
            raise ValueError("need a non-empty (n, d) point array")
        self._cell = float(self._config.cell_size)
        cells = np.floor(self._points / self._cell).astype(np.int64)
        self._cmin = cells.min(axis=0)
        self._cmax = cells.max(axis=0)
        dims = self._cmax - self._cmin + 1
        total = 1
        for d in dims:
            total *= int(d)
        if total >= _MAX_LINEAR_CELLS:
            raise ValueError(
                "occupied cell grid too large to linearize; "
                "increase cell_size"
            )
        self._dims = dims
        strides = np.ones(len(dims), dtype=np.int64)
        for i in range(len(dims) - 2, -1, -1):
            strides[i] = strides[i + 1] * dims[i + 1]
        self._strides = strides
        lin = (cells - self._cmin) @ strides
        # Stable sort: members of a cell stay in ascending point index.
        order = np.argsort(lin, kind="stable")
        sorted_lin = lin[order]
        n = len(order)
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(sorted_lin[1:], sorted_lin[:-1], out=first[1:])
        self._order = order
        self._keys = sorted_lin[first]
        self._starts = np.append(np.flatnonzero(first), n).astype(np.int64)
        # Probe offsets for radius searches: the 3^d Chebyshev-1
        # neighborhood in lexicographic order (the deterministic
        # candidate order the max_candidates cap truncates).
        d = self._points.shape[1]
        self._probe_offsets = np.array(
            list(itertools.product((-1, 0, 1), repeat=d)), dtype=np.int64
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def points(self) -> np.ndarray:
        return self._points

    @property
    def n(self) -> int:
        return len(self._points)

    @property
    def ndim(self) -> int:
        return self._points.shape[1]

    @property
    def cell_size(self) -> float:
        return self._cell

    @property
    def n_occupied_cells(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:
        return (
            f"GridHashIndex(n={self.n}, cell_size={self._cell}, "
            f"occupied={self.n_occupied_cells})"
        )

    # ------------------------------------------------------------------
    # Validation helpers (shared error contract with the tree backends)
    # ------------------------------------------------------------------

    def _check_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.ndim != 2 or queries.shape[1] != self.ndim:
            raise ValueError(
                f"queries must be (Q, {self.ndim}), got {queries.shape}"
            )
        return queries

    # ------------------------------------------------------------------
    # Radius search (batch-first; scalar delegates to a 1-row batch)
    # ------------------------------------------------------------------

    def radius_batch(
        self,
        queries: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Radius search for every row of ``queries`` (ragged lists).

        Thin compatibility wrapper: slices :meth:`radius_batch_csr`'s
        flat result into per-query lists.
        """
        return self.radius_batch_csr(queries, r, stats, sort=sort).to_list_pair()

    def radius_batch_csr(
        self,
        queries: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
    ) -> RaggedNeighborhoods:
        """Radius search returning the CSR result natively.

        Exact iff ``r <= cell_size`` and no candidate cap triggers; see
        the module docstring.  Fully vectorized: one ``searchsorted``
        over all Q * 3^d probed cells, one flat CSR gather, one fused
        squared-distance filter — the kept flat arrays and their query
        offsets ARE the result, no per-query lists anywhere.
        """
        queries = self._check_queries(queries)
        if r < 0:
            raise ValueError("radius must be non-negative")
        n_queries = len(queries)
        n_slots = len(self._probe_offsets)

        qcells = np.floor(queries / self._cell).astype(np.int64)
        probed = qcells[:, None, :] + self._probe_offsets[None, :, :]
        rel = probed - self._cmin
        in_box = np.all((rel >= 0) & (rel < self._dims), axis=-1).ravel()
        lin = (rel @ self._strides).ravel()
        lin[~in_box] = -1
        pos = np.searchsorted(self._keys, lin)
        pos_c = np.minimum(pos, len(self._keys) - 1)
        hit = in_box & (self._keys[pos_c] == lin)
        counts = np.where(hit, self._starts[pos_c + 1] - self._starts[pos_c], 0)

        # Flat candidate gather: slots of one query are contiguous, so
        # candidates come out grouped by query, cells in probe order,
        # ascending index within each cell.
        slot_off = np.zeros(n_queries * n_slots + 1, dtype=np.int64)
        np.cumsum(counts, out=slot_off[1:])
        total = int(slot_off[-1])
        slot_ids = np.repeat(np.arange(n_queries * n_slots, dtype=np.int64), counts)
        base = np.where(hit, self._starts[pos_c], 0)
        source = base[slot_ids] + (
            np.arange(total, dtype=np.int64) - slot_off[:-1][slot_ids]
        )
        cand = self._order[source]
        qid = slot_ids // n_slots

        # Candidate cap BEFORE the distance filter (radius-independent
        # candidate sets — the nested-radius reuse contract).
        cap = self._config.max_candidates
        if cap is not None and total:
            qoff = np.zeros(n_queries + 1, dtype=np.int64)
            np.cumsum(np.bincount(qid, minlength=n_queries), out=qoff[1:])
            rank = np.arange(total, dtype=np.int64) - qoff[:-1][qid]
            keep_cap = rank < cap
            cand = cand[keep_cap]
            qid = qid[keep_cap]
            total = len(cand)

        # Fused per-coordinate squared distances (the shared acceptance
        # operand of every exact backend).
        if total:
            diff = self._points[cand] - queries[qid]
            sq = diff[:, 0] * diff[:, 0]
            for c in range(1, diff.shape[1]):
                sq += diff[:, c] * diff[:, c]
            keep = sq <= r * r
            kept_cand = cand[keep]
            kept_qid = qid[keep]
            kept_dist = np.sqrt(sq[keep])
        else:
            kept_cand = np.empty(0, dtype=np.int64)
            kept_qid = np.empty(0, dtype=np.int64)
            kept_dist = np.empty(0)

        # Canonical result order: ascending point index per query
        # (cells overlap-free, so a plain lexsort is enough); sort=True
        # replays the backends' stable distance sort on top.
        if len(kept_cand):
            if sort:
                order = np.lexsort((kept_cand, kept_dist, kept_qid))
            else:
                order = np.lexsort((kept_cand, kept_qid))
            kept_cand = kept_cand[order]
            kept_dist = kept_dist[order]
            kept_qid = kept_qid[order]
        per_query = np.bincount(kept_qid, minlength=n_queries)
        offsets = np.zeros(n_queries + 1, dtype=np.int64)
        np.cumsum(per_query, out=offsets[1:])

        if stats is not None:
            stats.traversal_steps += n_queries * n_slots
            stats.nodes_visited += total
            stats.queries += n_queries
            stats.results_returned += len(kept_cand)
        return RaggedNeighborhoods(kept_cand, offsets, kept_dist)

    def radius(
        self,
        query: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """All probed neighbors within ``r``: (indices, distances)."""
        idx_lists, dist_lists = self.radius_batch(
            np.atleast_2d(query), r, stats, sort=sort
        )
        return idx_lists[0], dist_lists[0]

    # ------------------------------------------------------------------
    # nn / knn: expanding Chebyshev rings (always exact)
    # ------------------------------------------------------------------

    def _ring_members(self, qcell: np.ndarray, m: int) -> tuple[np.ndarray, int]:
        """Point indices in cells at Chebyshev cell-distance exactly
        ``m`` from ``qcell`` (probe order), plus the probe count."""
        if m == 0:
            offsets = np.zeros((1, self.ndim), dtype=np.int64)
        else:
            span = np.arange(-m, m + 1, dtype=np.int64)
            grids = np.meshgrid(*([span] * self.ndim), indexing="ij")
            offsets = np.stack([g.ravel() for g in grids], axis=1)
            offsets = offsets[np.abs(offsets).max(axis=1) == m]
        probed = qcell[None, :] + offsets
        rel = probed - self._cmin
        in_box = np.all((rel >= 0) & (rel < self._dims), axis=-1)
        lin = (rel @ self._strides)
        lin[~in_box] = -1
        pos = np.searchsorted(self._keys, lin)
        pos_c = np.minimum(pos, len(self._keys) - 1)
        hit = in_box & (self._keys[pos_c] == lin)
        counts = np.where(hit, self._starts[pos_c + 1] - self._starts[pos_c], 0)
        total = int(counts.sum())
        if not total:
            return np.empty(0, dtype=np.int64), len(offsets)
        ids = np.repeat(np.arange(len(offsets), dtype=np.int64), counts)
        off = np.zeros(len(offsets) + 1, dtype=np.int64)
        np.cumsum(counts, out=off[1:])
        base = np.where(hit, self._starts[pos_c], 0)
        source = base[ids] + (np.arange(total, dtype=np.int64) - off[:-1][ids])
        return self._order[source], len(offsets)

    def knn(
        self,
        query: np.ndarray,
        k: int,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``min(k, n)`` nearest neighbors, ascending (distance, index)."""
        query = self._check_queries(query)[0]
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, self.n)
        qcell = np.floor(query / self._cell).astype(np.int64)
        # No occupied cell lies beyond this ring; an absolute stop.
        max_ring = int(
            np.maximum(qcell - self._cmin, self._cmax - qcell).max(initial=0)
        )
        cand_parts: list[np.ndarray] = []
        sq_parts: list[np.ndarray] = []
        n_found = 0
        probes = 0
        visits = 0
        m = 0
        while True:
            members, n_probes = self._ring_members(qcell, m)
            probes += n_probes
            if len(members):
                diff = self._points[members] - query
                sq = diff[:, 0] * diff[:, 0]
                for c in range(1, diff.shape[1]):
                    sq += diff[:, c] * diff[:, c]
                visits += len(members)
                cand_parts.append(members)
                sq_parts.append(sq)
                n_found += len(members)
            if m > max_ring:
                break
            if n_found >= k:
                all_sq = np.concatenate(sq_parts)
                worst_sq = np.partition(all_sq, k - 1)[k - 1]
                # Ring m+1 holds nothing closer than m * cell_size; a
                # tie at exactly that bound could still win on index,
                # so retire only on a strict beat.
                bound = m * self._cell
                if worst_sq < bound * bound:
                    break
            m += 1
        all_cand = np.concatenate(cand_parts)
        all_sq = np.concatenate(sq_parts)
        order = np.lexsort((all_cand, all_sq))[:k]
        if stats is not None:
            stats.traversal_steps += probes
            stats.nodes_visited += visits
            stats.queries += 1
            stats.results_returned += k
        return all_cand[order], np.sqrt(all_sq[order])

    def nn(
        self, query: np.ndarray, stats: SearchStats | None = None
    ) -> tuple[int, float]:
        """The nearest neighbor: smallest (distance, index) pair."""
        indices, dists = self.knn(query, 1, stats)
        return int(indices[0]), float(dists[0])

    def nn_batch(
        self, queries: np.ndarray, stats: SearchStats | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest neighbor per row: ((Q,), (Q,)) arrays.

        Vectorized fast path: one probe of every query's 3^d
        neighborhood (rings 0 and 1 at once) resolves a query whenever
        its best candidate is *strictly* inside one cell size — ring 2
        can hold nothing closer.  Unresolved queries (empty
        neighborhood, or a best at >= cell_size that an outer ring
        could still beat or tie) fall back to the scalar ring scan.
        Results are bit-identical to the scalar loop; work counters
        reflect the schedule executed (the fallback re-probes its inner
        rings), as with the tree backends' batch frontiers.
        """
        queries = self._check_queries(queries)
        n_queries = len(queries)
        n_slots = len(self._probe_offsets)
        indices = np.full(n_queries, -1, dtype=np.int64)
        best_sq = np.full(n_queries, np.inf)

        qcells = np.floor(queries / self._cell).astype(np.int64)
        rel = (qcells[:, None, :] + self._probe_offsets[None, :, :]) - self._cmin
        in_box = np.all((rel >= 0) & (rel < self._dims), axis=-1).ravel()
        lin = (rel @ self._strides).ravel()
        lin[~in_box] = -1
        pos = np.searchsorted(self._keys, lin)
        pos_c = np.minimum(pos, len(self._keys) - 1)
        hit = in_box & (self._keys[pos_c] == lin)
        counts = np.where(hit, self._starts[pos_c + 1] - self._starts[pos_c], 0)
        slot_off = np.zeros(n_queries * n_slots + 1, dtype=np.int64)
        np.cumsum(counts, out=slot_off[1:])
        total = int(slot_off[-1])
        if total:
            slot_ids = np.repeat(
                np.arange(n_queries * n_slots, dtype=np.int64), counts
            )
            base = np.where(hit, self._starts[pos_c], 0)
            source = base[slot_ids] + (
                np.arange(total, dtype=np.int64) - slot_off[:-1][slot_ids]
            )
            cand = self._order[source]
            qid = slot_ids // n_slots
            diff = self._points[cand] - queries[qid]
            sq = diff[:, 0] * diff[:, 0]
            for c in range(1, diff.shape[1]):
                sq += diff[:, c] * diff[:, c]
            # Per-query lexicographic minimum over (sq, index).
            order = np.lexsort((cand, sq, qid))
            group_first = np.empty(total, dtype=bool)
            group_first[0] = True
            np.not_equal(qid[order][1:], qid[order][:-1], out=group_first[1:])
            winners = order[group_first]
            indices[qid[winners]] = cand[winners]
            best_sq[qid[winners]] = sq[winners]
        if stats is not None:
            stats.traversal_steps += n_queries * n_slots
            stats.nodes_visited += total
            stats.queries += n_queries
            stats.results_returned += n_queries

        resolved = best_sq < self._cell * self._cell
        dists = np.sqrt(best_sq)
        if not np.all(resolved):
            # The fallback ring scan re-probes rings 0-1 on its way
            # out; its probe and distance work is charged on top of the
            # fast path's — counters reflect the schedule executed.
            fallback = SearchStats() if stats is not None else None
            for i in np.flatnonzero(~resolved):
                indices[i], dists[i] = self.nn(queries[i], fallback)
            if stats is not None:
                stats.traversal_steps += fallback.traversal_steps
                stats.nodes_visited += fallback.nodes_visited
        return indices, dists

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """kNN per row: (Q, min(k, n)) arrays."""
        queries = self._check_queries(queries)
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, self.n)
        indices = np.empty((len(queries), k), dtype=np.int64)
        dists = np.empty((len(queries), k))
        for i, query in enumerate(queries):
            indices[i], dists[i] = self.knn(query, k, stats)
        return indices, dists
