"""Vectorized ragged-neighborhood (CSR) kernels for the front end.

Every front-end stage (normal estimation, Harris/SIFT keypoints, the
FPFH/SHOT/3DSC descriptors, voxel binning) consumes the ragged
per-query neighbor lists produced by the batched search layer and then
aggregates over each neighborhood.  This module is the shared
aggregation layer: neighbor lists are flattened once into CSR form —
one flat index array plus an ``offsets`` array of segment boundaries —
and every per-neighborhood reduction becomes a dense batched numpy
operation over the flat arrays (``np.add.reduceat`` segment sums,
``np.bincount`` weighted histograms, a single stacked
``np.linalg.eigh`` over all 3x3 neighborhood covariances at once).

This is the software form of Mesorasi's delayed aggregation: the
neighbor *search* (PR 1's batched backends) is decoupled from the
neighbor *aggregation*, which then runs as one data-parallel kernel per
stage instead of a per-point Python loop.

Determinism notes
-----------------
* ``segment_sum`` (``np.add.reduceat``) applies numpy's pairwise
  blocking within long segments, so its results can differ in the last
  ulp from a sequential per-neighbor loop (and from ``np.sum``, whose
  blocking differs again); all downstream comparisons are tolerance-
  or tie-rule-guarded.  Where bit-identity with a sequential reference
  loop is required (FPFH's weighted SPFH accumulation), use
  ``segment_sum_sequential`` or the chunked
  ``gathered_weighted_segment_sums`` — ``np.bincount`` accumulates one
  element at a time in flat order, replaying ``acc += x`` exactly.
* Empty segments reduce to the identity (0 for sums, the fill value
  for min/max) instead of ``reduceat``'s repeated-index misbehaviour.
* ``np.linalg.eigh`` over a stacked ``(Q, 3, 3)`` input applies the
  same LAPACK routine per matrix as a scalar call, so batching itself
  introduces no divergence.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "RaggedNeighborhoods",
    "segment_sort_order",
    "csr_radius_select",
    "csr_radius_select_csr",
    "lexsort_voxel_groups",
    "segment_sum",
    "segment_sum_sequential",
    "segment_mean",
    "segment_min",
    "segment_max",
    "segment_histogram",
    "segment_outer_sums",
    "gathered_moment_covariances",
    "gathered_weighted_segment_sums",
    "batched_eigh",
]


class RaggedNeighborhoods:
    """CSR view of batched ragged neighbor-search results.

    ``indices`` is the concatenation of all per-query neighbor index
    lists; segment ``q`` occupies ``indices[offsets[q]:offsets[q + 1]]``.
    ``distances`` (optional) is the matching flat distance array.
    Neighbor order within a segment is exactly the order the search
    backend returned (ascending index for unsorted radius queries — the
    PR 1 tie rule), so sequential segment reductions replay the seed
    loops' accumulation order.
    """

    __slots__ = ("indices", "offsets", "distances", "_segment_ids")

    def __init__(
        self,
        indices: np.ndarray,
        offsets: np.ndarray,
        distances: np.ndarray | None = None,
    ):
        self.indices = np.asarray(indices, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or len(self.offsets) == 0:
            raise ValueError("offsets must be a non-empty 1-D array")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.indices):
            raise ValueError("offsets must start at 0 and end at len(indices)")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        self.distances = (
            None if distances is None else np.asarray(distances, dtype=np.float64)
        )
        if self.distances is not None and len(self.distances) != len(self.indices):
            raise ValueError("distances must align with indices")
        self._segment_ids: np.ndarray | None = None

    @classmethod
    def from_lists(
        cls,
        neighbor_lists: Sequence[np.ndarray],
        dist_lists: Sequence[np.ndarray] | None = None,
    ) -> "RaggedNeighborhoods":
        """Flatten ``radius_batch``-style ragged lists into CSR form."""
        counts = np.fromiter(
            (len(lst) for lst in neighbor_lists),
            dtype=np.int64,
            count=len(neighbor_lists),
        )
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        indices = (
            np.concatenate([np.asarray(lst, dtype=np.int64) for lst in neighbor_lists])
            if len(counts) and offsets[-1]
            else np.empty(0, dtype=np.int64)
        )
        distances = None
        if dist_lists is not None:
            distances = (
                np.concatenate(
                    [np.asarray(lst, dtype=np.float64) for lst in dist_lists]
                )
                if len(counts) and offsets[-1]
                else np.empty(0, dtype=np.float64)
            )
        return cls(indices, offsets, distances)

    # -- structure ---------------------------------------------------------

    @property
    def n_segments(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_entries(self) -> int:
        return len(self.indices)

    @property
    def counts(self) -> np.ndarray:
        """Per-segment neighbor count, ``(Q,)``."""
        return np.diff(self.offsets)

    @property
    def segment_ids(self) -> np.ndarray:
        """Owning segment of every flat entry, ``(total,)`` (cached)."""
        if self._segment_ids is None:
            self._segment_ids = np.repeat(
                np.arange(self.n_segments, dtype=np.int64), self.counts
            )
        return self._segment_ids

    def to_lists(self) -> list[np.ndarray]:
        """Round-trip back to per-segment index lists."""
        return np.split(self.indices, self.offsets[1:-1])

    def to_list_pair(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Legacy ragged ``(index_lists, dist_lists)`` view of this CSR.

        The compatibility format of the list-returning ``radius_batch``
        wrappers: per-segment slices of the flat arrays (views, no
        copies).  Requires ``distances``.
        """
        if self.distances is None:
            raise ValueError("to_list_pair requires distances")
        boundaries = self.offsets[1:-1]
        return (
            np.split(self.indices, boundaries),
            np.split(self.distances, boundaries),
        )

    def sorted_by_distance(self) -> "RaggedNeighborhoods":
        """New CSR with each segment stably re-ordered by distance.

        Replays the backends' per-row ``np.argsort(dists, kind="stable")``
        (the ``sort=True`` contract) as one vectorized lexsort over the
        flat arrays.  Requires ``distances``.
        """
        if self.distances is None:
            raise ValueError("sorted_by_distance requires distances")
        if self.n_entries == 0:
            return RaggedNeighborhoods(self.indices, self.offsets, self.distances)
        order = segment_sort_order(self.distances, self.segment_ids)
        return RaggedNeighborhoods(
            self.indices[order], self.offsets, self.distances[order]
        )

    def select(self, segments: np.ndarray) -> "RaggedNeighborhoods":
        """New CSR containing ``segments`` (rows), in the given order.

        A pure gather: duplicates and reorderings are allowed, entry
        order within each segment is preserved.  Used to assemble one
        stage's CSR from another's rows (e.g. FPFH's ``needed``-ordered
        support from the keypoint and extra search passes).
        """
        segments = np.asarray(segments, dtype=np.int64)
        counts = self.counts[segments]
        offsets = np.zeros(len(segments) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        ids = np.repeat(np.arange(len(segments), dtype=np.int64), counts)
        source = self.offsets[:-1][segments][ids] + (
            np.arange(offsets[-1], dtype=np.int64) - offsets[:-1][ids]
        )
        return RaggedNeighborhoods(
            self.indices[source],
            offsets,
            None if self.distances is None else self.distances[source],
        )

    def mask(self, keep: np.ndarray) -> "RaggedNeighborhoods":
        """New CSR with only the flat entries where ``keep`` is True.

        Within-segment order is preserved; segments may become empty.
        The common use is self-exclusion: ``r.mask(r.indices != centers)``.
        """
        keep = np.asarray(keep, dtype=bool)
        if len(keep) != self.n_entries:
            raise ValueError("mask must align with flat entries")
        counts = np.bincount(
            self.segment_ids[keep], minlength=self.n_segments
        ).astype(np.int64)
        offsets = np.zeros(self.n_segments + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return RaggedNeighborhoods(
            self.indices[keep],
            offsets,
            None if self.distances is None else self.distances[keep],
        )


def segment_sort_order(values: np.ndarray, segment_ids: np.ndarray) -> np.ndarray:
    """Stable per-segment ascending order of ``values`` as one lexsort.

    ``segment_ids`` must be non-decreasing (CSR flat order).  The
    returned permutation reorders flat entries so each segment is
    sorted ascending by its values with original order preserved on
    ties — bit-identical to running ``np.argsort(v, kind="stable")``
    per segment, done once for the whole batch (primary key segment,
    secondary value, position tiebreak).
    """
    position = np.arange(len(values), dtype=np.int64)
    return np.lexsort((position, values, segment_ids))


def csr_radius_select_csr(
    indices: np.ndarray,
    offsets: np.ndarray,
    sq_dists: np.ndarray,
    dists: np.ndarray,
    rows: np.ndarray,
    r: float,
    sort: bool = False,
) -> RaggedNeighborhoods:
    """Derive a radius-``r`` result from a cached larger-radius CSR.

    The nested-radius reuse kernel: given the CSR result of a radius
    search at some radius ``R >= r`` (``indices``/``offsets``/``dists``
    plus the backend's *squared* distances ``sq_dists``), gather the
    requested ``rows`` and keep each entry iff ``sq_dist <= r * r`` —
    the exact acceptance predicate every exact backend applies, over
    the same per-coordinate squared distances — so the derived result
    is bit-identical to a fresh radius-``r`` query of those rows.
    Cached entries arrive in the backends' ascending-index order and
    filtering preserves it; ``sort=True`` applies the backends' stable
    per-row distance sort (:func:`segment_sort_order`).  Returns the
    CSR result natively — no list materialization anywhere.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if len(rows) == 0:
        return RaggedNeighborhoods(
            np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    counts = np.diff(offsets)[rows]
    sel_offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(counts, out=sel_offsets[1:])
    ids = np.repeat(np.arange(len(rows), dtype=np.int64), counts)
    source = offsets[:-1][rows][ids] + (
        np.arange(sel_offsets[-1], dtype=np.int64) - sel_offsets[:-1][ids]
    )
    keep = sq_dists[source] <= r * r
    kept_source = source[keep]
    kept_ids = ids[keep]
    kept_idx = indices[kept_source]
    kept_dist = dists[kept_source]
    if sort and len(kept_ids):
        order = segment_sort_order(kept_dist, kept_ids)
        kept_idx = kept_idx[order]
        kept_dist = kept_dist[order]
    out_offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(np.bincount(kept_ids, minlength=len(rows)), out=out_offsets[1:])
    return RaggedNeighborhoods(kept_idx, out_offsets, kept_dist)


def csr_radius_select(
    indices: np.ndarray,
    offsets: np.ndarray,
    sq_dists: np.ndarray,
    dists: np.ndarray,
    rows: np.ndarray,
    r: float,
    sort: bool = False,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """List-returning wrapper over :func:`csr_radius_select_csr`.

    Returns ragged ``(index_lists, dist_lists)`` exactly like the
    legacy ``radius_batch`` — per-segment slices of the CSR result.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if len(rows) == 0:
        return [], []
    return csr_radius_select_csr(
        indices, offsets, sq_dists, dists, rows, r, sort=sort
    ).to_list_pair()


def lexsort_voxel_groups(
    keys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Group integer voxel keys: ``(order, sorted_keys, starts, counts)``.

    The shared lexsort -> boundary-scan preamble of every voxel-binning
    consumer (``PointCloud.voxel_downsample``, ``VoxelMap._apply``):
    ``order`` sorts points by key; group ``g`` occupies
    ``order[starts[g]:starts[g] + counts[g]]`` and its key is
    ``sorted_keys[starts[g]]``.  ``keys`` must be non-empty ``(N, 3)``.
    """
    order = np.lexsort((keys[:, 2], keys[:, 1], keys[:, 0]))
    sorted_keys = keys[order]
    boundaries = np.any(np.diff(sorted_keys, axis=0) != 0, axis=1)
    starts = np.concatenate(([0], np.nonzero(boundaries)[0] + 1))
    counts = np.diff(np.concatenate((starts, [len(order)])))
    return order, sorted_keys, starts, counts


# ---------------------------------------------------------------------------
# Segment reductions.
# ---------------------------------------------------------------------------


def _segment_reduce(ufunc, values: np.ndarray, offsets: np.ndarray, fill):
    """Apply ``ufunc.reduceat`` per segment, with empty segments = fill.

    ``reduceat`` returns ``values[i]`` for zero-width slices, which is
    wrong for empty neighborhoods; restricting the start indices to
    non-empty segments sidesteps it (consecutive non-empty starts bound
    exactly one non-empty segment, since empties have zero width).
    """
    values = np.asarray(values)
    counts = np.diff(offsets)
    out = np.full((len(counts),) + values.shape[1:], fill, dtype=values.dtype)
    nonempty = counts > 0
    if values.size and np.any(nonempty):
        out[nonempty] = ufunc.reduceat(values, offsets[:-1][nonempty], axis=0)
    return out


def segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sum of ``values`` (1-D or (total, D)); empty -> 0.

    Uses ``reduceat``, whose pairwise blocking may differ from a
    sequential loop in the last ulp on long segments; reach for
    :func:`segment_sum_sequential` when exact loop order matters.
    """
    return _segment_reduce(np.add, values, offsets, 0)


def segment_sum_sequential(
    values: np.ndarray, segment_ids: np.ndarray, n_segments: int
) -> np.ndarray:
    """Per-segment sum with strict flat-order scalar accumulation.

    ``np.bincount`` accumulates ``out[ids[i]] += w[i]`` one element at
    a time in flat order, so this reproduces a per-neighborhood
    ``acc += x`` Python loop bit-for-bit — unlike ``reduceat``/``sum``,
    whose pairwise blocking reorders long additions.  Use it where
    bit-identity with a sequential reference matters more than the last
    ~20% of throughput.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 1:
        return np.bincount(segment_ids, weights=values, minlength=n_segments)
    return np.stack(
        [
            np.bincount(segment_ids, weights=values[:, column], minlength=n_segments)
            for column in range(values.shape[1])
        ],
        axis=1,
    )


def segment_mean(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment mean; empty segments yield 0 (guarded divide)."""
    sums = segment_sum(values, offsets)
    counts = np.diff(offsets)
    denom = np.maximum(counts, 1).astype(np.float64)
    if sums.ndim > 1:
        denom = denom.reshape((-1,) + (1,) * (sums.ndim - 1))
    return sums / denom


def segment_min(values: np.ndarray, offsets: np.ndarray, fill=np.inf) -> np.ndarray:
    """Per-segment minimum; empty segments yield ``fill``."""
    return _segment_reduce(np.minimum, values, offsets, fill)


def segment_max(values: np.ndarray, offsets: np.ndarray, fill=-np.inf) -> np.ndarray:
    """Per-segment maximum; empty segments yield ``fill``."""
    return _segment_reduce(np.maximum, values, offsets, fill)


def segment_histogram(
    segment_ids: np.ndarray,
    bins: np.ndarray,
    n_bins: int,
    n_segments: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Per-segment histogram via one ``bincount`` over flattened keys.

    Returns ``(n_segments, n_bins)`` — float64 when ``weights`` is
    given, int64 counts otherwise.  ``bins`` must already be clipped to
    ``[0, n_bins)``.
    """
    flat = segment_ids * np.int64(n_bins) + bins
    out = np.bincount(flat, weights=weights, minlength=n_segments * n_bins)
    return out.reshape(n_segments, n_bins)


def segment_outer_sums(
    vectors: np.ndarray,
    offsets: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Per-segment sum of (weighted) outer products: ``(Q, D, D)``.

    Computes ``sum_k w_k * v_k v_k^T`` per segment one symmetric
    component at a time, so peak extra memory is one flat array rather
    than a ``(total, D, D)`` stack.  Empty segments yield zeros.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    dims = vectors.shape[1]
    out = np.empty((len(offsets) - 1, dims, dims))
    left = vectors if weights is None else vectors * weights[:, None]
    for a in range(dims):
        for b in range(a, dims):
            component = segment_sum(left[:, a] * vectors[:, b], offsets)
            out[:, a, b] = component
            out[:, b, a] = component
    return out


_BLOCK_PAIRS = 1 << 20  # flat entries per chunk; bounds buffer memory


def segment_blocks(offsets: np.ndarray, block_pairs: int = _BLOCK_PAIRS):
    """Yield ``(seg_lo, seg_hi, lo, hi)`` chunks of ~block_pairs flat
    entries, always split at segment boundaries (a segment larger than
    the block gets its own chunk)."""
    n_segments = len(offsets) - 1
    seg_lo = 0
    while seg_lo < n_segments:
        seg_hi = int(
            np.searchsorted(offsets, offsets[seg_lo] + block_pairs, side="right") - 1
        )
        seg_hi = min(max(seg_hi, seg_lo + 1), n_segments)
        yield seg_lo, seg_hi, int(offsets[seg_lo]), int(offsets[seg_hi])
        seg_lo = seg_hi


def gathered_weighted_segment_sums(
    table: np.ndarray,
    row_ids: np.ndarray,
    weights: np.ndarray,
    offsets: np.ndarray,
    block_pairs: int = _BLOCK_PAIRS,
) -> np.ndarray:
    """Per-segment ``sum_j weights[j] * table[row_ids[j]]``, fused.

    The FPFH pass-3 kernel: gathers each chunk of table rows into a
    reused buffer, scales in place, and accumulates per segment with
    one ``bincount`` per column — strict flat-order scalar adds, so the
    result is bit-identical to a sequential ``acc += w * table[j]``
    loop (chunks split at segment boundaries, so every segment is
    reduced by exactly one bincount).  Peak extra memory is
    ``O(block_pairs * D)`` instead of a full ``(total, D)`` gather.
    """
    table = np.asarray(table, dtype=np.float64)
    dims = table.shape[1]
    n_segments = len(offsets) - 1
    out = np.zeros((n_segments, dims))
    total = int(offsets[-1]) if n_segments else 0
    if n_segments == 0 or total == 0:
        return out
    counts = np.diff(offsets)
    capacity = int(min(total, max(block_pairs, counts.max(initial=0))))
    gathered = np.empty((max(capacity, 1), dims))
    for seg_lo, seg_hi, lo, hi in segment_blocks(offsets, block_pairs):
        m = hi - lo
        if m == 0:
            continue
        block = gathered[:m]
        np.take(table, row_ids[lo:hi], axis=0, out=block)
        np.multiply(block, weights[lo:hi, None], out=block)
        local_ids = np.repeat(
            np.arange(seg_hi - seg_lo, dtype=np.int64), counts[seg_lo:seg_hi]
        )
        for column in range(dims):
            out[seg_lo:seg_hi, column] = np.bincount(
                local_ids, weights=block[:, column], minlength=seg_hi - seg_lo
            )
    return out


def gathered_moment_covariances(
    source: np.ndarray,
    indices: np.ndarray,
    offsets: np.ndarray,
    center_source: np.ndarray | None = None,
    center_ids: np.ndarray | None = None,
    block_pairs: int = _BLOCK_PAIRS,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment covariance + mean of ``source[indices]``, fused.

    The kernel behind normal estimation and the Harris structure
    tensor: gathers each chunk of flat entries into reused buffers,
    optionally re-expresses them in query-local coordinates
    (``- center_source[center_ids]``, recommended for positions so the
    raw moments stay well-conditioned at neighborhood scale; the
    covariance itself is translation-invariant), and assembles
    ``cov = M2 / n - mean mean^T`` one symmetric component at a time.
    Chunking at segment boundaries keeps peak extra memory at
    ``O(block_pairs)`` regardless of total neighborhood mass — large
    fresh allocations would otherwise pay a page-fault tax comparable
    to the arithmetic itself.  Returns ``((Q, D, D), (Q, D))``; empty
    segments yield zeros.
    """
    source = np.asarray(source, dtype=np.float64)
    dims = source.shape[1]
    n_segments = len(offsets) - 1
    counts = np.diff(offsets)
    denominators = np.maximum(counts, 1).astype(np.float64)
    covariances = np.empty((n_segments, dims, dims))
    means = np.empty((n_segments, dims))
    if n_segments == 0:
        return covariances, means

    capacity = int(min(offsets[-1], max(block_pairs, counts.max(initial=0))))
    gathered = np.empty((max(capacity, 1), dims))
    centers = np.empty_like(gathered) if center_source is not None else None
    products = np.empty(max(capacity, 1))

    for seg_lo, seg_hi, lo, hi in segment_blocks(offsets, block_pairs):
        m = hi - lo
        block_offsets = offsets[seg_lo : seg_hi + 1] - lo
        block_denoms = denominators[seg_lo:seg_hi]
        block = gathered[:m]
        np.take(source, indices[lo:hi], axis=0, out=block)
        if center_source is not None:
            np.take(center_source, center_ids[lo:hi], axis=0, out=centers[:m])
            np.subtract(block, centers[:m], out=block)
        block_means = means[seg_lo:seg_hi]
        for a in range(dims):
            block_means[:, a] = (
                segment_sum(block[:, a], block_offsets) / block_denoms
            )
        for a in range(dims):
            for b in range(a, dims):
                np.multiply(block[:, a], block[:, b], out=products[:m])
                second = segment_sum(products[:m], block_offsets) / block_denoms
                component = second - block_means[:, a] * block_means[:, b]
                covariances[seg_lo:seg_hi, a, b] = component
                covariances[seg_lo:seg_hi, b, a] = component
    return covariances, means


def batched_eigh(
    matrices: np.ndarray, valid: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """``np.linalg.eigh`` over a ``(Q, D, D)`` stack, masking bad rows.

    Rows where ``valid`` is False (degenerate / empty neighborhoods)
    are replaced by the identity before the solve — their eigenpairs
    are well-defined placeholders the caller overrides — so one LAPACK
    sweep covers the whole batch without NaN contamination.
    """
    matrices = np.asarray(matrices, dtype=np.float64)
    if valid is not None and not np.all(valid):
        matrices = matrices.copy()
        matrices[~valid] = np.eye(matrices.shape[-1])
    return np.linalg.eigh(matrices)
