"""Per-query search traces.

The accelerator model (:mod:`repro.accel`) is trace-driven: the functional
two-stage search records, for every query, how much front-end (top-tree)
and back-end (leaf-set) work it performed, and the timing/energy models
replay those records against a hardware configuration.  The trace is also
what the redundancy study (Fig. 6) and the memory-traffic analysis
(Fig. 13) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LeafVisitRecord", "QueryTrace"]


@dataclass
class LeafVisitRecord:
    """One visit of a query to one leaf set of the two-stage tree.

    ``scanned`` counts brute-force distance computations (leaf children on
    the precise path, or the leader's result set on the approximate path).
    ``leader_checks`` counts distance computations against the leader
    buffer (zero in exact mode).  ``pruned`` leaf visits were popped from
    the traversal stack but skipped by the bounding test — the back-end
    never sees them.
    """

    leaf_id: int
    scanned: int = 0
    approximate: bool = False
    leader_checks: int = 0
    became_leader: bool = False
    pruned: bool = False
    result_size: int = 0


@dataclass
class QueryTrace:
    """Work performed by a single query on the two-stage tree.

    ``toptree_visits`` counts fully processed top-tree nodes (the
    front-end Recursion Unit iterates once per such node);
    ``toptree_bypassed`` counts nodes popped but pruned by the bounding
    test (candidates for the RU's node-bypassing optimization);
    ``stack_pushes`` counts query-stack pushes (traffic to the Query
    Stack Buffer).
    """

    toptree_visits: int = 0
    toptree_bypassed: int = 0
    stack_pushes: int = 0
    leaf_visits: list[LeafVisitRecord] = field(default_factory=list)
    results: int = 0

    @property
    def leaf_scanned(self) -> int:
        """Total brute-force distance computations in the back-end."""
        return sum(v.scanned for v in self.leaf_visits)

    @property
    def leader_checks(self) -> int:
        return sum(v.leader_checks for v in self.leaf_visits)

    @property
    def nodes_visited(self) -> int:
        """Front-end + back-end distance computations (Fig. 6 unit)."""
        return self.toptree_visits + self.leaf_scanned

    @property
    def active_leaf_visits(self) -> list[LeafVisitRecord]:
        """Leaf visits that actually reached the back-end (not pruned)."""
        return [v for v in self.leaf_visits if not v.pruned]
