"""Two-stage KD-tree (paper Sec. 4.1, Fig. 5b).

The two-stage KD-tree splits the canonical KD-tree into a *top-tree* —
identical to the first ``top_height`` levels of the classic structure —
and *unordered leaf sets*: the members of each subtree rooted just below
the top-tree, stored flat with no internal ordering.  Searching traverses
the top-tree with normal pruning, then exhaustively (and, in hardware,
in parallel) scans each reached leaf set.

The structure trades redundant work for parallelism: a shorter top-tree
means larger leaf sets, more brute-force work (Fig. 6), but more
node-level parallelism for the accelerator back-end.  At
``top_height = 0`` search degenerates to a full brute-force scan; at
``top_height >= log2(n)`` it matches the canonical tree.

Leaf scans are vectorized with numpy — deliberately mirroring the
data-parallel processing-element array of the accelerator back-end.

Batch queries
-------------
:meth:`TwoStageKDTree.nn_batch` and :meth:`TwoStageKDTree.radius_batch`
run a *grouped-by-leaf* schedule that mirrors the accelerator's
front-end/back-end split: all queries are routed through the top-tree
together (a vectorized frontier of ``(node, query-set)`` pairs advanced
level by level), and each reached leaf set is then scanned once against
every query that arrived at it.  Nearest-neighbor batches first descend
every query to its home leaf to seed tight pruning bounds (the
hardware's split-tree scheduling).  Results are bit-identical to the
scalar methods: ties resolve to the lowest point index and radius
results come back in ascending index order on both paths.  Passing
``trace=`` falls back to the sequential per-query path, which records
the exact per-query traversal the accelerator model replays.
:meth:`TwoStageKDTree.knn_batch` remains a tight scalar loop — the
bounded-heap eviction order of kNN is inherently sequential, and kNN is
not one of the two query kinds (NN, radius) the paper's workloads use.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.core.ragged import RaggedNeighborhoods
from repro.core.trace import LeafVisitRecord, QueryTrace
from repro.kdtree.stats import SearchStats

__all__ = ["TwoStageKDTree"]

# Child-slot encoding in the flat node arrays: values >= 0 are top-tree
# node ids, NO_CHILD marks an absent child, and values <= LEAF_BASE encode
# leaf-set ids as LEAF_BASE - leaf_id.
_NO_CHILD = -1
_LEAF_BASE = -2


def _encode_leaf(leaf_id: int) -> int:
    return _LEAF_BASE - leaf_id


def _decode_leaf(code: int) -> int:
    return _LEAF_BASE - code


def _point_sq_dist(query: np.ndarray, point: np.ndarray) -> float:
    """Squared distance accumulated coordinate by coordinate.

    The left-to-right accumulation order matches the per-coordinate
    ufunc accumulation of the batch frontier, so scalar and batched
    traversals see bit-identical bounds and candidate distances.
    """
    d_sq = 0.0
    for t in query - point:
        d_sq += t * t
    return float(d_sq)


class TwoStageKDTree:
    """Top-tree over median splits + unordered leaf sets.

    Parameters
    ----------
    points:
        (N, k) data array (copied).
    top_height:
        Number of top-tree levels.  Nodes exist at depths
        ``0 .. top_height - 1``; every subtree that would start at depth
        ``top_height`` is flattened into an unordered leaf set.  ``0``
        collapses the structure to one big brute-force set.
    split_rule:
        As for :class:`repro.kdtree.KDTree`.
    """

    def __init__(
        self,
        points: np.ndarray,
        top_height: int,
        split_rule: str = "widest",
    ):
        points = np.array(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be (N, k), got shape {points.shape}")
        if len(points) == 0:
            raise ValueError("cannot build a two-stage KD-tree over zero points")
        if not np.all(np.isfinite(points)):
            raise ValueError("points contain NaN or infinity")
        if top_height < 0:
            raise ValueError("top_height must be >= 0")
        if split_rule not in ("widest", "cyclic"):
            raise ValueError("split_rule must be 'widest' or 'cyclic'")
        self._points = points
        self._top_height = int(top_height)
        self._split_rule = split_rule
        self._build()

    @classmethod
    def from_leaf_size(
        cls,
        points: np.ndarray,
        leaf_size: int,
        split_rule: str = "widest",
    ) -> "TwoStageKDTree":
        """Build with the top-tree height that yields ~``leaf_size`` sets.

        Leaf-set size is approximately ``n / 2**top_height`` (paper
        Sec. 4.1: leaf-set size 1 is the classic KD-tree), so
        ``top_height = round(log2(n / leaf_size))``.
        """
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        n = len(np.atleast_2d(points))
        height = max(0, round(math.log2(max(n, 1) / leaf_size)))
        return cls(points, top_height=height, split_rule=split_rule)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        n, ndim = self._points.shape
        node_point: list[int] = []
        node_dim: list[int] = []
        node_value: list[float] = []
        node_left: list[int] = []
        node_right: list[int] = []
        node_depth: list[int] = []
        leaf_members: list[np.ndarray] = []

        def make_leaf(indices: np.ndarray) -> int:
            leaf_members.append(indices)
            return _encode_leaf(len(leaf_members) - 1)

        def choose_dim(indices: np.ndarray, depth: int) -> int:
            if self._split_rule == "cyclic" or len(indices) == 1:
                return depth % ndim
            member_points = self._points[indices]
            spread = member_points.max(axis=0) - member_points.min(axis=0)
            return int(np.argmax(spread))

        self._root_ref = _NO_CHILD
        if self._top_height == 0:
            self._root_ref = make_leaf(np.arange(n, dtype=np.int64))
        else:
            # Tasks: (member indices, depth, parent node id, is_left).
            tasks: list[tuple[np.ndarray, int, int, bool]] = [
                (np.arange(n, dtype=np.int64), 0, _NO_CHILD, False)
            ]
            while tasks:
                indices, depth, parent, is_left = tasks.pop()
                if len(indices) == 0:
                    ref = _NO_CHILD
                elif depth >= self._top_height:
                    ref = make_leaf(indices)
                else:
                    dim = choose_dim(indices, depth)
                    values = self._points[indices, dim]
                    mid = (len(indices) - 1) // 2
                    if len(indices) == 1:
                        order = np.array([0], dtype=np.int64)
                    else:
                        order = np.argpartition(values, mid)
                    node = len(node_point)
                    node_point.append(int(indices[order[mid]]))
                    node_dim.append(dim)
                    node_value.append(float(values[order[mid]]))
                    node_left.append(_NO_CHILD)
                    node_right.append(_NO_CHILD)
                    node_depth.append(depth)
                    tasks.append((indices[order[:mid]], depth + 1, node, True))
                    tasks.append((indices[order[mid + 1 :]], depth + 1, node, False))
                    ref = node
                if parent == _NO_CHILD:
                    if ref != _NO_CHILD and self._root_ref == _NO_CHILD:
                        self._root_ref = ref
                elif is_left:
                    node_left[parent] = ref
                else:
                    node_right[parent] = ref

        self._node_point = np.array(node_point, dtype=np.int64)
        self._node_dim = np.array(node_dim, dtype=np.int64)
        self._node_value = np.array(node_value, dtype=np.float64)
        self._node_left = np.array(node_left, dtype=np.int64)
        self._node_right = np.array(node_right, dtype=np.int64)
        self._node_depth = np.array(node_depth, dtype=np.int64)

        # Flatten leaf sets into one contiguous, scan-friendly layout.
        counts = np.array([len(m) for m in leaf_members], dtype=np.int64)
        if len(counts):
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            member_concat = np.concatenate(leaf_members)
        else:
            starts = np.empty(0, dtype=np.int64)
            member_concat = np.empty(0, dtype=np.int64)
        self._leaf_start = starts
        self._leaf_count = counts
        self._leaf_orig = member_concat
        self._leaf_points = (
            self._points[member_concat]
            if len(member_concat)
            else np.empty((0, ndim))
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def points(self) -> np.ndarray:
        return self._points

    @property
    def n(self) -> int:
        return len(self._points)

    @property
    def ndim(self) -> int:
        return self._points.shape[1]

    @property
    def top_height(self) -> int:
        return self._top_height

    @property
    def n_top_nodes(self) -> int:
        return len(self._node_point)

    @property
    def n_leaf_sets(self) -> int:
        return len(self._leaf_count)

    @property
    def leaf_set_sizes(self) -> np.ndarray:
        return self._leaf_count.copy()

    @property
    def mean_leaf_size(self) -> float:
        if len(self._leaf_count) == 0:
            return 0.0
        return float(self._leaf_count.mean())

    def leaf_set_indices(self, leaf_id: int) -> np.ndarray:
        """Original point indices stored in leaf set ``leaf_id``, sorted."""
        start = self._leaf_start[leaf_id]
        count = self._leaf_count[leaf_id]
        return np.sort(self._leaf_orig[start : start + count])

    def __repr__(self) -> str:
        return (
            f"TwoStageKDTree(n={self.n}, ndim={self.ndim}, "
            f"top_height={self.top_height}, leaf_sets={self.n_leaf_sets}, "
            f"mean_leaf_size={self.mean_leaf_size:.1f})"
        )

    # ------------------------------------------------------------------
    # Leaf scan primitives (exact mode).  The approximate search in
    # repro.core.approx supplies its own scan strategy via the same hook.
    # ------------------------------------------------------------------

    def scan_leaf(
        self, leaf_id: int, query: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Brute-force one leaf set: (original indices, squared distances)."""
        start = self._leaf_start[leaf_id]
        count = self._leaf_count[leaf_id]
        members = self._leaf_points[start : start + count]
        diff = members - query
        sq = np.einsum("ij,ij->i", diff, diff)
        return self._leaf_orig[start : start + count], sq

    def _exact_leaf_scan(self, leaf_id, query, record):
        indices, sq = self.scan_leaf(leaf_id, query)
        record.scanned = len(indices)
        return indices, sq

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if len(query) != self.ndim:
            raise ValueError(
                f"query has dimension {len(query)}, tree has {self.ndim}"
            )
        if not np.all(np.isfinite(query)):
            raise ValueError("query contains NaN or infinity")
        return query

    def nn(
        self,
        query: np.ndarray,
        stats: SearchStats | None = None,
        trace: list[QueryTrace] | None = None,
        leaf_scan=None,
    ) -> tuple[int, float]:
        """Nearest neighbor: (point index, distance)."""
        query = self._check_query(query)
        leaf_scan = leaf_scan or self._exact_leaf_scan
        record = QueryTrace()
        best_sq = np.inf
        best_idx = -1

        contrib = np.zeros(self.ndim)
        stack: list[tuple[int, float, np.ndarray]] = []
        if self._root_ref != _NO_CHILD:
            stack.append((self._root_ref, 0.0, contrib))
            record.stack_pushes += 1
        while stack:
            ref, bound_sq, contrib = stack.pop()
            if ref <= _LEAF_BASE:
                leaf_id = _decode_leaf(ref)
                visit = LeafVisitRecord(leaf_id=leaf_id)
                record.leaf_visits.append(visit)
                if bound_sq > best_sq:
                    visit.pruned = True
                    continue
                indices, sq = leaf_scan(leaf_id, query, visit)
                if len(indices):
                    # Deterministic tie rule shared with the batch path:
                    # the global (distance, index) lexicographic minimum.
                    jv = float(np.min(sq))
                    if jv <= best_sq:
                        cand = int(np.min(np.asarray(indices)[sq == jv]))
                        if jv < best_sq or cand < best_idx:
                            best_sq = jv
                            best_idx = cand
                continue
            if bound_sq > best_sq:
                record.toptree_bypassed += 1
                continue
            record.toptree_visits += 1
            pidx = int(self._node_point[ref])
            d_sq = _point_sq_dist(query, self._points[pidx])
            if d_sq < best_sq or (d_sq == best_sq and pidx < best_idx):
                best_sq = d_sq
                best_idx = pidx
            dim = self._node_dim[ref]
            delta = query[dim] - self._node_value[ref]
            left_child = self._node_left[ref]
            right_child = self._node_right[ref]
            if delta < 0:
                near, far = left_child, right_child
            else:
                near, far = right_child, left_child
            if far != _NO_CHILD:
                far_bound = bound_sq - contrib[dim] + delta * delta
                far_contrib = contrib.copy()
                far_contrib[dim] = delta * delta
                stack.append((int(far), far_bound, far_contrib))
                record.stack_pushes += 1
            if near != _NO_CHILD:
                stack.append((int(near), bound_sq, contrib))
                record.stack_pushes += 1

        record.results = 1 if best_idx >= 0 else 0
        self._account(record, stats, trace)
        return best_idx, float(np.sqrt(best_sq)) if best_idx >= 0 else np.inf

    def knn(
        self,
        query: np.ndarray,
        k: int,
        stats: SearchStats | None = None,
        trace: list[QueryTrace] | None = None,
        leaf_scan=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest neighbors, sorted by ascending distance."""
        query = self._check_query(query)
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, self.n)
        leaf_scan = leaf_scan or self._exact_leaf_scan
        record = QueryTrace()
        # Max-heap via negated keys; both fields negated so heap[0] is
        # the lexicographically largest (d_sq, idx) — the element the
        # shared (distance, index) tie rule evicts first.
        heap: list[tuple[float, int]] = []

        def bound() -> float:
            return -heap[0][0] if len(heap) == k else np.inf

        def offer(idx: int, d_sq: float) -> None:
            if len(heap) < k:
                heapq.heappush(heap, (-d_sq, -idx))
            elif (d_sq, idx) < (-heap[0][0], -heap[0][1]):
                heapq.heapreplace(heap, (-d_sq, -idx))

        contrib = np.zeros(self.ndim)
        stack: list[tuple[int, float, np.ndarray]] = []
        if self._root_ref != _NO_CHILD:
            stack.append((self._root_ref, 0.0, contrib))
            record.stack_pushes += 1
        while stack:
            ref, bound_sq, contrib = stack.pop()
            if ref <= _LEAF_BASE:
                leaf_id = _decode_leaf(ref)
                visit = LeafVisitRecord(leaf_id=leaf_id)
                record.leaf_visits.append(visit)
                if bound_sq > bound():
                    visit.pruned = True
                    continue
                indices, sq = leaf_scan(leaf_id, query, visit)
                for idx, d_sq in zip(indices, sq):
                    offer(int(idx), float(d_sq))
                continue
            if bound_sq > bound():
                record.toptree_bypassed += 1
                continue
            record.toptree_visits += 1
            pidx = self._node_point[ref]
            diff = query - self._points[pidx]
            offer(int(pidx), float(diff @ diff))
            dim = self._node_dim[ref]
            delta = query[dim] - self._node_value[ref]
            left_child = self._node_left[ref]
            right_child = self._node_right[ref]
            if delta < 0:
                near, far = left_child, right_child
            else:
                near, far = right_child, left_child
            if far != _NO_CHILD:
                far_bound = bound_sq - contrib[dim] + delta * delta
                far_contrib = contrib.copy()
                far_contrib[dim] = delta * delta
                stack.append((int(far), far_bound, far_contrib))
                record.stack_pushes += 1
            if near != _NO_CHILD:
                stack.append((int(near), bound_sq, contrib))
                record.stack_pushes += 1

        entries = sorted(((-neg_sq, -neg_idx) for neg_sq, neg_idx in heap))
        indices = np.array([idx for _, idx in entries], dtype=np.int64)
        dists = np.sqrt(np.array([sq for sq, _ in entries]))
        record.results = len(indices)
        self._account(record, stats, trace)
        return indices, dists

    def radius(
        self,
        query: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
        trace: list[QueryTrace] | None = None,
        leaf_scan=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """All neighbors within distance ``r``: (indices, distances)."""
        query = self._check_query(query)
        if r < 0:
            raise ValueError("radius must be non-negative")
        leaf_scan = leaf_scan or self._exact_leaf_scan
        record = QueryTrace()
        r_sq = r * r
        found_idx: list[np.ndarray] = []
        found_sq: list[np.ndarray] = []

        contrib = np.zeros(self.ndim)
        stack: list[tuple[int, float, np.ndarray]] = []
        if self._root_ref != _NO_CHILD:
            stack.append((self._root_ref, 0.0, contrib))
            record.stack_pushes += 1
        while stack:
            ref, bound_sq, contrib = stack.pop()
            if ref <= _LEAF_BASE:
                leaf_id = _decode_leaf(ref)
                visit = LeafVisitRecord(leaf_id=leaf_id)
                record.leaf_visits.append(visit)
                if bound_sq > r_sq:
                    visit.pruned = True
                    continue
                indices, sq = leaf_scan(leaf_id, query, visit)
                mask = sq <= r_sq
                if np.any(mask):
                    found_idx.append(np.asarray(indices)[mask])
                    found_sq.append(np.asarray(sq)[mask])
                visit.result_size = int(np.count_nonzero(mask))
                continue
            if bound_sq > r_sq:
                record.toptree_bypassed += 1
                continue
            record.toptree_visits += 1
            pidx = int(self._node_point[ref])
            d_sq = _point_sq_dist(query, self._points[pidx])
            if d_sq <= r_sq:
                found_idx.append(np.array([pidx], dtype=np.int64))
                found_sq.append(np.array([d_sq]))
            dim = self._node_dim[ref]
            delta = query[dim] - self._node_value[ref]
            left_child = self._node_left[ref]
            right_child = self._node_right[ref]
            if delta < 0:
                near, far = left_child, right_child
            else:
                near, far = right_child, left_child
            if far != _NO_CHILD:
                far_bound = bound_sq - contrib[dim] + delta * delta
                far_contrib = contrib.copy()
                far_contrib[dim] = delta * delta
                stack.append((int(far), far_bound, far_contrib))
                record.stack_pushes += 1
            if near != _NO_CHILD:
                stack.append((int(near), bound_sq, contrib))
                record.stack_pushes += 1

        if found_idx:
            indices = np.concatenate(found_idx).astype(np.int64)
            sq_found = np.concatenate(found_sq)
            # Canonical ascending-index order, shared with the batch
            # path (which collects leaves in a different order).
            order = np.argsort(indices, kind="stable")
            indices = indices[order]
            dists = np.sqrt(sq_found[order])
        else:
            indices = np.empty(0, dtype=np.int64)
            dists = np.empty(0)
        record.results = len(indices)
        self._account(record, stats, trace)
        if sort and len(indices):
            order = np.argsort(dists, kind="stable")
            return indices[order], dists[order]
        return indices, dists

    # ------------------------------------------------------------------
    # Batch queries (grouped-by-leaf fast paths; see module docstring).
    # ------------------------------------------------------------------

    def nn_batch(
        self,
        queries: np.ndarray,
        stats: SearchStats | None = None,
        trace: list[QueryTrace] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest neighbor for every row of ``queries``.

        Runs the grouped-by-leaf frontier; with ``trace`` it falls back
        to the sequential per-query path so the accelerator model sees
        exact per-query traversal records.
        """
        if trace is not None:
            queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
            indices = np.empty(len(queries), dtype=np.int64)
            dists = np.empty(len(queries))
            for i, query in enumerate(queries):
                indices[i], dists[i] = self.nn(query, stats, trace)
            return indices, dists
        queries = self._check_queries(queries)
        return self._nn_batch_fast(queries, stats)

    def radius_batch(
        self,
        queries: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
        trace: list[QueryTrace] | None = None,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Radius search for every row of ``queries`` (ragged lists).

        Thin compatibility wrapper: slices :meth:`radius_batch_csr`'s
        flat result into per-query lists; with ``trace`` it falls back
        to the sequential per-query path (see :meth:`nn_batch`).
        """
        if trace is not None:
            queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
            all_indices, all_dists = [], []
            for query in queries:
                indices, dists = self.radius(query, r, stats, sort=sort, trace=trace)
                all_indices.append(indices)
                all_dists.append(dists)
            return all_indices, all_dists
        return self.radius_batch_csr(queries, r, stats, sort=sort).to_list_pair()

    def radius_batch_csr(
        self,
        queries: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
    ) -> RaggedNeighborhoods:
        """Radius search returning the CSR result natively.

        The grouped-by-leaf frontier accumulates every hit flat (query
        id, original point index, squared distance) and one global
        lexsort establishes the ascending-index-per-query contract; no
        per-query list is ever materialized.  Content bit-identical to
        :meth:`radius_batch`, including the ``sort=True`` stable
        distance sort (:func:`repro.core.ragged.segment_sort_order`).
        """
        if r < 0:
            raise ValueError("radius must be non-negative")
        queries = self._check_queries(queries)
        result = self._radius_batch_fast(queries, r, stats)
        if sort:
            result = result.sorted_by_distance()
        return result

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        stats: SearchStats | None = None,
        trace: list[QueryTrace] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """kNN for every row of ``queries``: (Q, min(k, n)) arrays.

        A tight loop over the scalar search: kNN's bounded-heap eviction
        order is inherently sequential (see module docstring).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, self.n)
        indices = np.empty((len(queries), k), dtype=np.int64)
        dists = np.empty((len(queries), k))
        for i, query in enumerate(queries):
            indices[i], dists[i] = self.knn(query, k, stats, trace)
        return indices, dists

    # ------------------------------------------------------------------
    # Grouped-by-leaf batch machinery
    # ------------------------------------------------------------------

    def _check_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.ndim != 2 or queries.shape[1] != self.ndim:
            raise ValueError(
                f"queries have shape {queries.shape}, tree has dimension "
                f"{self.ndim}"
            )
        if not np.all(np.isfinite(queries)):
            raise ValueError("queries contain NaN or infinity")
        return queries

    def _route_to_leaves(self, queries: np.ndarray) -> np.ndarray:
        """Pure descend of every query to its home leaf (no backtracking).

        Returns the home leaf id per query, -1 where the descend dead-ends
        in an absent child.  This is the vectorized front-end pass that
        seeds the nearest-neighbor pruning bounds.
        """
        n_queries = len(queries)
        home = np.full(n_queries, -1, dtype=np.int64)
        if self._root_ref == _NO_CHILD:
            return home
        if self._root_ref <= _LEAF_BASE:
            home[:] = _decode_leaf(self._root_ref)
            return home
        node = np.full(n_queries, self._root_ref, dtype=np.int64)
        alive = np.arange(n_queries, dtype=np.int64)
        while len(alive):
            current = node[alive]
            dim = self._node_dim[current]
            delta = queries[alive, dim] - self._node_value[current]
            child = np.where(
                delta < 0, self._node_left[current], self._node_right[current]
            )
            at_leaf = child <= _LEAF_BASE
            home[alive[at_leaf]] = _LEAF_BASE - child[at_leaf]
            descend = ~at_leaf & (child != _NO_CHILD)
            node[alive[descend]] = child[descend]
            alive = alive[descend]
        return home

    def _scan_leaf_block(
        self, leaf_id: int, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scan one leaf set against a block of queries at once.

        Returns (original indices (c,), squared distances (m, c)); each
        row is bit-identical to :meth:`scan_leaf` for that query.
        """
        start = self._leaf_start[leaf_id]
        count = self._leaf_count[leaf_id]
        members = self._leaf_points[start : start + count]
        diff = queries[:, None, :] - members[None, :, :]
        sq = np.einsum("qij,qij->qi", diff, diff)
        return self._leaf_orig[start : start + count], sq

    @staticmethod
    def _leaf_groups(leaf_ids: np.ndarray, rows: np.ndarray):
        """Yield (leaf_id, member rows) for each distinct leaf."""
        if len(leaf_ids) == 0:
            return
        order = np.argsort(leaf_ids, kind="stable")
        sorted_ids = leaf_ids[order]
        starts = np.nonzero(np.r_[True, sorted_ids[1:] != sorted_ids[:-1]])[0]
        bounds = np.r_[starts, len(order)]
        for s, e in zip(bounds[:-1], bounds[1:]):
            yield int(sorted_ids[s]), rows[order[s:e]]

    def _node_sq_dists(self, queries_rows: np.ndarray, node_pts: np.ndarray):
        """Per-coordinate squared distances (same order as
        :func:`_point_sq_dist`, hence bit-identical to the scalar path)."""
        t = queries_rows[:, 0] - node_pts[:, 0]
        d_sq = t * t
        for j in range(1, self.ndim):
            t = queries_rows[:, j] - node_pts[:, j]
            d_sq += t * t
        return d_sq

    def _nn_batch_fast(
        self, queries: np.ndarray, stats: SearchStats | None
    ) -> tuple[np.ndarray, np.ndarray]:
        n_queries, ndim = queries.shape
        best_sq = np.full(n_queries, np.inf)
        best_idx = np.full(n_queries, -1, dtype=np.int64)
        if n_queries == 0 or self._root_ref == _NO_CHILD:
            return best_idx, np.full(n_queries, np.inf)
        visits = bypassed = leaf_pruned = scanned = 0
        big = np.iinfo(np.int64).max

        def scan_rows(leaf_id: int, rows: np.ndarray) -> int:
            """Scan a leaf against queries ``rows``; lexicographic-min
            update of the running bests.  Returns distance comps."""
            nonlocal best_sq, best_idx
            orig, sq = self._scan_leaf_block(leaf_id, queries[rows])
            jv = sq.min(axis=1)
            cand = np.where(sq == jv[:, None], orig[None, :], big).min(axis=1)
            better = (jv < best_sq[rows]) | (
                (jv == best_sq[rows]) & (cand < best_idx[rows])
            )
            upd = rows[better]
            best_sq[upd] = jv[better]
            best_idx[upd] = cand[better]
            return sq.size

        # Phase 1: descend every query to its home leaf and scan the home
        # leaves grouped, seeding tight pruning bounds.
        home = self._route_to_leaves(queries)
        routed = np.nonzero(home >= 0)[0]
        for leaf_id, rows in self._leaf_groups(home[routed], routed):
            scanned += scan_rows(leaf_id, rows)

        # Phase 2: full traversal as a vectorized frontier of
        # (node, query) pairs, pruned against the running bests.
        refs = np.full(n_queries, self._root_ref, dtype=np.int64)
        qidx = np.arange(n_queries, dtype=np.int64)
        bound = np.zeros(n_queries)
        contrib = np.zeros((n_queries, ndim))
        while len(refs):
            at_leaf = refs <= _LEAF_BASE
            if np.any(at_leaf):
                leaf_ids = _LEAF_BASE - refs[at_leaf]
                l_rows = qidx[at_leaf]
                l_bound = bound[at_leaf]
                revisit = leaf_ids == home[l_rows]  # scanned in phase 1
                leaf_ids = leaf_ids[~revisit]
                l_rows = l_rows[~revisit]
                l_bound = l_bound[~revisit]
                positions = np.arange(len(leaf_ids))
                for leaf_id, pos in self._leaf_groups(leaf_ids, positions):
                    # Re-check against the freshest bests per block: the
                    # bests tighten as sibling blocks are scanned.
                    rows = l_rows[pos]
                    keep = l_bound[pos] <= best_sq[rows]
                    leaf_pruned += int(np.count_nonzero(~keep))
                    if np.any(keep):
                        scanned += scan_rows(leaf_id, rows[keep])
            inner = ~at_leaf
            refs_i = refs[inner]
            q_i = qidx[inner]
            b_i = bound[inner]
            c_i = contrib[inner]
            alive = b_i <= best_sq[q_i]
            bypassed += int(np.count_nonzero(~alive))
            refs_i, q_i, b_i, c_i = (
                refs_i[alive],
                q_i[alive],
                b_i[alive],
                c_i[alive],
            )
            visits += len(refs_i)
            if len(refs_i) == 0:
                break
            pidx = self._node_point[refs_i]
            d_sq = self._node_sq_dists(queries[q_i], self._points[pidx])
            better = (d_sq < best_sq[q_i]) | (
                (d_sq == best_sq[q_i]) & (pidx < best_idx[q_i])
            )
            if np.any(better):
                # A query can meet several nodes in one round; reduce its
                # candidates to the lexicographic minimum before updating.
                bq, bsq, bidx = q_i[better], d_sq[better], pidx[better]
                sel = np.lexsort((bidx, bsq, bq))
                bq, bsq, bidx = bq[sel], bsq[sel], bidx[sel]
                first = np.r_[True, bq[1:] != bq[:-1]]
                cq, csq, cidx = bq[first], bsq[first], bidx[first]
                win = (csq < best_sq[cq]) | (
                    (csq == best_sq[cq]) & (cidx < best_idx[cq])
                )
                best_sq[cq[win]] = csq[win]
                best_idx[cq[win]] = cidx[win]
            dim = self._node_dim[refs_i]
            delta = queries[q_i, dim] - self._node_value[refs_i]
            left = self._node_left[refs_i]
            right = self._node_right[refs_i]
            goes_left = delta < 0
            near = np.where(goes_left, left, right)
            far = np.where(goes_left, right, left)
            dd = delta * delta
            span = np.arange(len(refs_i))
            far_bound = b_i - c_i[span, dim] + dd
            far_contrib = c_i.copy()
            far_contrib[span, dim] = dd
            has_far = far != _NO_CHILD
            has_near = near != _NO_CHILD
            refs = np.concatenate([far[has_far], near[has_near]])
            qidx = np.concatenate([q_i[has_far], q_i[has_near]])
            bound = np.concatenate([far_bound[has_far], b_i[has_near]])
            contrib = np.concatenate([far_contrib[has_far], c_i[has_near]])

        if stats is not None:
            stats.nodes_visited += visits + scanned
            stats.traversal_steps += visits + bypassed
            stats.pruned_subtrees += bypassed + leaf_pruned
            stats.queries += n_queries
            stats.results_returned += int(np.count_nonzero(best_idx >= 0))
        dists = np.sqrt(best_sq)
        dists[best_idx < 0] = np.inf
        return best_idx, dists

    def _radius_batch_fast(
        self,
        queries: np.ndarray,
        r: float,
        stats: SearchStats | None,
    ) -> RaggedNeighborhoods:
        n_queries, ndim = queries.shape
        r_sq = r * r
        hit_q: list[np.ndarray] = []
        hit_idx: list[np.ndarray] = []
        hit_sq: list[np.ndarray] = []
        visits = bypassed = leaf_pruned = scanned = 0

        if n_queries and self._root_ref != _NO_CHILD:
            refs = np.full(n_queries, self._root_ref, dtype=np.int64)
            qidx = np.arange(n_queries, dtype=np.int64)
            bound = np.zeros(n_queries)
            contrib = np.zeros((n_queries, ndim))
            while len(refs):
                at_leaf = refs <= _LEAF_BASE
                if np.any(at_leaf):
                    leaf_ids = _LEAF_BASE - refs[at_leaf]
                    l_rows = qidx[at_leaf]
                    l_alive = bound[at_leaf] <= r_sq
                    leaf_pruned += int(np.count_nonzero(~l_alive))
                    for leaf_id, rows in self._leaf_groups(
                        leaf_ids[l_alive], l_rows[l_alive]
                    ):
                        orig, sq = self._scan_leaf_block(leaf_id, queries[rows])
                        scanned += sq.size
                        hits = sq <= r_sq
                        if hits.any():
                            rflat, cflat = np.nonzero(hits)
                            hit_q.append(rows[rflat])
                            hit_idx.append(orig[cflat])
                            hit_sq.append(sq[rflat, cflat])
                inner = ~at_leaf
                refs_i = refs[inner]
                q_i = qidx[inner]
                b_i = bound[inner]
                c_i = contrib[inner]
                alive = b_i <= r_sq
                bypassed += int(np.count_nonzero(~alive))
                refs_i, q_i, b_i, c_i = (
                    refs_i[alive],
                    q_i[alive],
                    b_i[alive],
                    c_i[alive],
                )
                visits += len(refs_i)
                if len(refs_i) == 0:
                    break
                pidx = self._node_point[refs_i]
                d_sq = self._node_sq_dists(queries[q_i], self._points[pidx])
                hit = d_sq <= r_sq
                if np.any(hit):
                    hit_q.append(q_i[hit])
                    hit_idx.append(pidx[hit])
                    hit_sq.append(d_sq[hit])
                dim = self._node_dim[refs_i]
                delta = queries[q_i, dim] - self._node_value[refs_i]
                left = self._node_left[refs_i]
                right = self._node_right[refs_i]
                goes_left = delta < 0
                near = np.where(goes_left, left, right)
                far = np.where(goes_left, right, left)
                dd = delta * delta
                span = np.arange(len(refs_i))
                far_bound = b_i - c_i[span, dim] + dd
                far_contrib = c_i.copy()
                far_contrib[span, dim] = dd
                has_far = far != _NO_CHILD
                has_near = near != _NO_CHILD
                refs = np.concatenate([far[has_far], near[has_near]])
                qidx = np.concatenate([q_i[has_far], q_i[has_near]])
                bound = np.concatenate([far_bound[has_far], b_i[has_near]])
                contrib = np.concatenate([far_contrib[has_far], c_i[has_near]])

        # One global lexsort replaces the per-query index argsorts:
        # point indices are unique within a query, so ordering the flat
        # hits by (query, index) reproduces each row's ascending-index
        # result exactly.
        if hit_q:
            fq = np.concatenate(hit_q)
            fidx = np.concatenate(hit_idx).astype(np.int64, copy=False)
            fsq = np.concatenate(hit_sq)
            order = np.lexsort((fidx, fq))
            fidx = fidx[order]
            fdist = np.sqrt(fsq[order])
            counts = np.bincount(fq, minlength=n_queries)
        else:
            fidx = np.empty(0, dtype=np.int64)
            fdist = np.empty(0)
            counts = np.zeros(n_queries, dtype=np.int64)
        offsets = np.zeros(n_queries + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])

        if stats is not None:
            stats.nodes_visited += visits + scanned
            stats.traversal_steps += visits + bypassed
            stats.pruned_subtrees += bypassed + leaf_pruned
            stats.queries += n_queries
            stats.results_returned += len(fidx)
        return RaggedNeighborhoods(fidx, offsets, fdist)

    # ------------------------------------------------------------------

    def _account(
        self,
        record: QueryTrace,
        stats: SearchStats | None,
        trace: list[QueryTrace] | None,
    ) -> None:
        if stats is not None:
            stats.nodes_visited += record.nodes_visited
            stats.traversal_steps += record.toptree_visits + record.toptree_bypassed
            stats.pruned_subtrees += record.toptree_bypassed + sum(
                1 for v in record.leaf_visits if v.pruned
            )
            stats.leader_checks += record.leader_checks
            stats.queries += 1
            stats.results_returned += record.results
        if trace is not None:
            trace.append(record)
