"""Two-stage KD-tree (paper Sec. 4.1, Fig. 5b).

The two-stage KD-tree splits the canonical KD-tree into a *top-tree* —
identical to the first ``top_height`` levels of the classic structure —
and *unordered leaf sets*: the members of each subtree rooted just below
the top-tree, stored flat with no internal ordering.  Searching traverses
the top-tree with normal pruning, then exhaustively (and, in hardware,
in parallel) scans each reached leaf set.

The structure trades redundant work for parallelism: a shorter top-tree
means larger leaf sets, more brute-force work (Fig. 6), but more
node-level parallelism for the accelerator back-end.  At
``top_height = 0`` search degenerates to a full brute-force scan; at
``top_height >= log2(n)`` it matches the canonical tree.

Leaf scans are vectorized with numpy — deliberately mirroring the
data-parallel processing-element array of the accelerator back-end.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.core.trace import LeafVisitRecord, QueryTrace
from repro.kdtree.stats import SearchStats

__all__ = ["TwoStageKDTree"]

# Child-slot encoding in the flat node arrays: values >= 0 are top-tree
# node ids, NO_CHILD marks an absent child, and values <= LEAF_BASE encode
# leaf-set ids as LEAF_BASE - leaf_id.
_NO_CHILD = -1
_LEAF_BASE = -2


def _encode_leaf(leaf_id: int) -> int:
    return _LEAF_BASE - leaf_id


def _decode_leaf(code: int) -> int:
    return _LEAF_BASE - code


class TwoStageKDTree:
    """Top-tree over median splits + unordered leaf sets.

    Parameters
    ----------
    points:
        (N, k) data array (copied).
    top_height:
        Number of top-tree levels.  Nodes exist at depths
        ``0 .. top_height - 1``; every subtree that would start at depth
        ``top_height`` is flattened into an unordered leaf set.  ``0``
        collapses the structure to one big brute-force set.
    split_rule:
        As for :class:`repro.kdtree.KDTree`.
    """

    def __init__(
        self,
        points: np.ndarray,
        top_height: int,
        split_rule: str = "widest",
    ):
        points = np.array(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be (N, k), got shape {points.shape}")
        if len(points) == 0:
            raise ValueError("cannot build a two-stage KD-tree over zero points")
        if not np.all(np.isfinite(points)):
            raise ValueError("points contain NaN or infinity")
        if top_height < 0:
            raise ValueError("top_height must be >= 0")
        if split_rule not in ("widest", "cyclic"):
            raise ValueError("split_rule must be 'widest' or 'cyclic'")
        self._points = points
        self._top_height = int(top_height)
        self._split_rule = split_rule
        self._build()

    @classmethod
    def from_leaf_size(
        cls,
        points: np.ndarray,
        leaf_size: int,
        split_rule: str = "widest",
    ) -> "TwoStageKDTree":
        """Build with the top-tree height that yields ~``leaf_size`` sets.

        Leaf-set size is approximately ``n / 2**top_height`` (paper
        Sec. 4.1: leaf-set size 1 is the classic KD-tree), so
        ``top_height = round(log2(n / leaf_size))``.
        """
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        n = len(np.atleast_2d(points))
        height = max(0, round(math.log2(max(n, 1) / leaf_size)))
        return cls(points, top_height=height, split_rule=split_rule)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        n, ndim = self._points.shape
        node_point: list[int] = []
        node_dim: list[int] = []
        node_value: list[float] = []
        node_left: list[int] = []
        node_right: list[int] = []
        node_depth: list[int] = []
        leaf_members: list[np.ndarray] = []

        def make_leaf(indices: np.ndarray) -> int:
            leaf_members.append(indices)
            return _encode_leaf(len(leaf_members) - 1)

        def choose_dim(indices: np.ndarray, depth: int) -> int:
            if self._split_rule == "cyclic" or len(indices) == 1:
                return depth % ndim
            member_points = self._points[indices]
            spread = member_points.max(axis=0) - member_points.min(axis=0)
            return int(np.argmax(spread))

        self._root_ref = _NO_CHILD
        if self._top_height == 0:
            self._root_ref = make_leaf(np.arange(n, dtype=np.int64))
        else:
            # Tasks: (member indices, depth, parent node id, is_left).
            tasks: list[tuple[np.ndarray, int, int, bool]] = [
                (np.arange(n, dtype=np.int64), 0, _NO_CHILD, False)
            ]
            while tasks:
                indices, depth, parent, is_left = tasks.pop()
                if len(indices) == 0:
                    ref = _NO_CHILD
                elif depth >= self._top_height:
                    ref = make_leaf(indices)
                else:
                    dim = choose_dim(indices, depth)
                    values = self._points[indices, dim]
                    mid = (len(indices) - 1) // 2
                    if len(indices) == 1:
                        order = np.array([0], dtype=np.int64)
                    else:
                        order = np.argpartition(values, mid)
                    node = len(node_point)
                    node_point.append(int(indices[order[mid]]))
                    node_dim.append(dim)
                    node_value.append(float(values[order[mid]]))
                    node_left.append(_NO_CHILD)
                    node_right.append(_NO_CHILD)
                    node_depth.append(depth)
                    tasks.append((indices[order[:mid]], depth + 1, node, True))
                    tasks.append((indices[order[mid + 1 :]], depth + 1, node, False))
                    ref = node
                if parent == _NO_CHILD:
                    if ref != _NO_CHILD and self._root_ref == _NO_CHILD:
                        self._root_ref = ref
                elif is_left:
                    node_left[parent] = ref
                else:
                    node_right[parent] = ref

        self._node_point = np.array(node_point, dtype=np.int64)
        self._node_dim = np.array(node_dim, dtype=np.int64)
        self._node_value = np.array(node_value, dtype=np.float64)
        self._node_left = np.array(node_left, dtype=np.int64)
        self._node_right = np.array(node_right, dtype=np.int64)
        self._node_depth = np.array(node_depth, dtype=np.int64)

        # Flatten leaf sets into one contiguous, scan-friendly layout.
        counts = np.array([len(m) for m in leaf_members], dtype=np.int64)
        if len(counts):
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            member_concat = np.concatenate(leaf_members)
        else:
            starts = np.empty(0, dtype=np.int64)
            member_concat = np.empty(0, dtype=np.int64)
        self._leaf_start = starts
        self._leaf_count = counts
        self._leaf_orig = member_concat
        self._leaf_points = (
            self._points[member_concat]
            if len(member_concat)
            else np.empty((0, ndim))
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def points(self) -> np.ndarray:
        return self._points

    @property
    def n(self) -> int:
        return len(self._points)

    @property
    def ndim(self) -> int:
        return self._points.shape[1]

    @property
    def top_height(self) -> int:
        return self._top_height

    @property
    def n_top_nodes(self) -> int:
        return len(self._node_point)

    @property
    def n_leaf_sets(self) -> int:
        return len(self._leaf_count)

    @property
    def leaf_set_sizes(self) -> np.ndarray:
        return self._leaf_count.copy()

    @property
    def mean_leaf_size(self) -> float:
        if len(self._leaf_count) == 0:
            return 0.0
        return float(self._leaf_count.mean())

    def leaf_set_indices(self, leaf_id: int) -> np.ndarray:
        """Original point indices stored in leaf set ``leaf_id``, sorted."""
        start = self._leaf_start[leaf_id]
        count = self._leaf_count[leaf_id]
        return np.sort(self._leaf_orig[start : start + count])

    def __repr__(self) -> str:
        return (
            f"TwoStageKDTree(n={self.n}, ndim={self.ndim}, "
            f"top_height={self.top_height}, leaf_sets={self.n_leaf_sets}, "
            f"mean_leaf_size={self.mean_leaf_size:.1f})"
        )

    # ------------------------------------------------------------------
    # Leaf scan primitives (exact mode).  The approximate search in
    # repro.core.approx supplies its own scan strategy via the same hook.
    # ------------------------------------------------------------------

    def scan_leaf(
        self, leaf_id: int, query: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Brute-force one leaf set: (original indices, squared distances)."""
        start = self._leaf_start[leaf_id]
        count = self._leaf_count[leaf_id]
        members = self._leaf_points[start : start + count]
        diff = members - query
        sq = np.einsum("ij,ij->i", diff, diff)
        return self._leaf_orig[start : start + count], sq

    def _exact_leaf_scan(self, leaf_id, query, record):
        indices, sq = self.scan_leaf(leaf_id, query)
        record.scanned = len(indices)
        return indices, sq

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if len(query) != self.ndim:
            raise ValueError(
                f"query has dimension {len(query)}, tree has {self.ndim}"
            )
        if not np.all(np.isfinite(query)):
            raise ValueError("query contains NaN or infinity")
        return query

    def nn(
        self,
        query: np.ndarray,
        stats: SearchStats | None = None,
        trace: list[QueryTrace] | None = None,
        leaf_scan=None,
    ) -> tuple[int, float]:
        """Nearest neighbor: (point index, distance)."""
        query = self._check_query(query)
        leaf_scan = leaf_scan or self._exact_leaf_scan
        record = QueryTrace()
        best_sq = np.inf
        best_idx = -1

        contrib = np.zeros(self.ndim)
        stack: list[tuple[int, float, np.ndarray]] = []
        if self._root_ref != _NO_CHILD:
            stack.append((self._root_ref, 0.0, contrib))
            record.stack_pushes += 1
        while stack:
            ref, bound_sq, contrib = stack.pop()
            if ref <= _LEAF_BASE:
                leaf_id = _decode_leaf(ref)
                visit = LeafVisitRecord(leaf_id=leaf_id)
                record.leaf_visits.append(visit)
                if bound_sq > best_sq:
                    visit.pruned = True
                    continue
                indices, sq = leaf_scan(leaf_id, query, visit)
                if len(indices):
                    j = int(np.argmin(sq))
                    if sq[j] < best_sq:
                        best_sq = float(sq[j])
                        best_idx = int(indices[j])
                continue
            if bound_sq > best_sq:
                record.toptree_bypassed += 1
                continue
            record.toptree_visits += 1
            pidx = self._node_point[ref]
            diff = query - self._points[pidx]
            d_sq = float(diff @ diff)
            if d_sq < best_sq:
                best_sq = d_sq
                best_idx = int(pidx)
            dim = self._node_dim[ref]
            delta = query[dim] - self._node_value[ref]
            left_child = self._node_left[ref]
            right_child = self._node_right[ref]
            if delta < 0:
                near, far = left_child, right_child
            else:
                near, far = right_child, left_child
            if far != _NO_CHILD:
                far_bound = bound_sq - contrib[dim] + delta * delta
                far_contrib = contrib.copy()
                far_contrib[dim] = delta * delta
                stack.append((int(far), far_bound, far_contrib))
                record.stack_pushes += 1
            if near != _NO_CHILD:
                stack.append((int(near), bound_sq, contrib))
                record.stack_pushes += 1

        record.results = 1 if best_idx >= 0 else 0
        self._account(record, stats, trace)
        return best_idx, float(np.sqrt(best_sq)) if best_idx >= 0 else np.inf

    def knn(
        self,
        query: np.ndarray,
        k: int,
        stats: SearchStats | None = None,
        trace: list[QueryTrace] | None = None,
        leaf_scan=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest neighbors, sorted by ascending distance."""
        query = self._check_query(query)
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, self.n)
        leaf_scan = leaf_scan or self._exact_leaf_scan
        record = QueryTrace()
        heap: list[tuple[float, int]] = []  # max-heap via negated distances

        def bound() -> float:
            return -heap[0][0] if len(heap) == k else np.inf

        def offer(idx: int, d_sq: float) -> None:
            if len(heap) < k:
                heapq.heappush(heap, (-d_sq, idx))
            elif d_sq < -heap[0][0]:
                heapq.heapreplace(heap, (-d_sq, idx))

        contrib = np.zeros(self.ndim)
        stack: list[tuple[int, float, np.ndarray]] = []
        if self._root_ref != _NO_CHILD:
            stack.append((self._root_ref, 0.0, contrib))
            record.stack_pushes += 1
        while stack:
            ref, bound_sq, contrib = stack.pop()
            if ref <= _LEAF_BASE:
                leaf_id = _decode_leaf(ref)
                visit = LeafVisitRecord(leaf_id=leaf_id)
                record.leaf_visits.append(visit)
                if bound_sq > bound():
                    visit.pruned = True
                    continue
                indices, sq = leaf_scan(leaf_id, query, visit)
                for idx, d_sq in zip(indices, sq):
                    offer(int(idx), float(d_sq))
                continue
            if bound_sq > bound():
                record.toptree_bypassed += 1
                continue
            record.toptree_visits += 1
            pidx = self._node_point[ref]
            diff = query - self._points[pidx]
            offer(int(pidx), float(diff @ diff))
            dim = self._node_dim[ref]
            delta = query[dim] - self._node_value[ref]
            left_child = self._node_left[ref]
            right_child = self._node_right[ref]
            if delta < 0:
                near, far = left_child, right_child
            else:
                near, far = right_child, left_child
            if far != _NO_CHILD:
                far_bound = bound_sq - contrib[dim] + delta * delta
                far_contrib = contrib.copy()
                far_contrib[dim] = delta * delta
                stack.append((int(far), far_bound, far_contrib))
                record.stack_pushes += 1
            if near != _NO_CHILD:
                stack.append((int(near), bound_sq, contrib))
                record.stack_pushes += 1

        entries = sorted(((-neg_sq, idx) for neg_sq, idx in heap))
        indices = np.array([idx for _, idx in entries], dtype=np.int64)
        dists = np.sqrt(np.array([sq for sq, _ in entries]))
        record.results = len(indices)
        self._account(record, stats, trace)
        return indices, dists

    def radius(
        self,
        query: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
        trace: list[QueryTrace] | None = None,
        leaf_scan=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """All neighbors within distance ``r``: (indices, distances)."""
        query = self._check_query(query)
        if r < 0:
            raise ValueError("radius must be non-negative")
        leaf_scan = leaf_scan or self._exact_leaf_scan
        record = QueryTrace()
        r_sq = r * r
        found_idx: list[np.ndarray] = []
        found_sq: list[np.ndarray] = []

        contrib = np.zeros(self.ndim)
        stack: list[tuple[int, float, np.ndarray]] = []
        if self._root_ref != _NO_CHILD:
            stack.append((self._root_ref, 0.0, contrib))
            record.stack_pushes += 1
        while stack:
            ref, bound_sq, contrib = stack.pop()
            if ref <= _LEAF_BASE:
                leaf_id = _decode_leaf(ref)
                visit = LeafVisitRecord(leaf_id=leaf_id)
                record.leaf_visits.append(visit)
                if bound_sq > r_sq:
                    visit.pruned = True
                    continue
                indices, sq = leaf_scan(leaf_id, query, visit)
                mask = sq <= r_sq
                if np.any(mask):
                    found_idx.append(np.asarray(indices)[mask])
                    found_sq.append(np.asarray(sq)[mask])
                visit.result_size = int(np.count_nonzero(mask))
                continue
            if bound_sq > r_sq:
                record.toptree_bypassed += 1
                continue
            record.toptree_visits += 1
            pidx = self._node_point[ref]
            diff = query - self._points[pidx]
            d_sq = float(diff @ diff)
            if d_sq <= r_sq:
                found_idx.append(np.array([pidx], dtype=np.int64))
                found_sq.append(np.array([d_sq]))
            dim = self._node_dim[ref]
            delta = query[dim] - self._node_value[ref]
            left_child = self._node_left[ref]
            right_child = self._node_right[ref]
            if delta < 0:
                near, far = left_child, right_child
            else:
                near, far = right_child, left_child
            if far != _NO_CHILD:
                far_bound = bound_sq - contrib[dim] + delta * delta
                far_contrib = contrib.copy()
                far_contrib[dim] = delta * delta
                stack.append((int(far), far_bound, far_contrib))
                record.stack_pushes += 1
            if near != _NO_CHILD:
                stack.append((int(near), bound_sq, contrib))
                record.stack_pushes += 1

        if found_idx:
            indices = np.concatenate(found_idx).astype(np.int64)
            dists = np.sqrt(np.concatenate(found_sq))
        else:
            indices = np.empty(0, dtype=np.int64)
            dists = np.empty(0)
        record.results = len(indices)
        self._account(record, stats, trace)
        if sort and len(indices):
            order = np.argsort(dists, kind="stable")
            return indices[order], dists[order]
        return indices, dists

    # ------------------------------------------------------------------
    # Batch conveniences
    # ------------------------------------------------------------------

    def nn_batch(
        self,
        queries: np.ndarray,
        stats: SearchStats | None = None,
        trace: list[QueryTrace] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        indices = np.empty(len(queries), dtype=np.int64)
        dists = np.empty(len(queries))
        for i, query in enumerate(queries):
            indices[i], dists[i] = self.nn(query, stats, trace)
        return indices, dists

    def radius_batch(
        self,
        queries: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
        trace: list[QueryTrace] | None = None,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        all_indices, all_dists = [], []
        for query in queries:
            indices, dists = self.radius(query, r, stats, sort=sort, trace=trace)
            all_indices.append(indices)
            all_dists.append(dists)
        return all_indices, all_dists

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        stats: SearchStats | None = None,
        trace: list[QueryTrace] | None = None,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        all_indices, all_dists = [], []
        for query in queries:
            indices, dists = self.knn(query, k, stats, trace)
            all_indices.append(indices)
            all_dists.append(dists)
        return all_indices, all_dists

    # ------------------------------------------------------------------

    def _account(
        self,
        record: QueryTrace,
        stats: SearchStats | None,
        trace: list[QueryTrace] | None,
    ) -> None:
        if stats is not None:
            stats.nodes_visited += record.nodes_visited
            stats.traversal_steps += record.toptree_visits + record.toptree_bypassed
            stats.pruned_subtrees += record.toptree_bypassed + sum(
                1 for v in record.leaf_visits if v.pruned
            )
            stats.leader_checks += record.leader_checks
            stats.queries += 1
            stats.results_returned += record.results
        if trace is not None:
            trace.append(record)
