"""Approximate KD-tree search (paper Sec. 4.3, Algorithm 1).

Queries that arrive at the same leaf set of the two-stage KD-tree are
spatially close, so their search results are similar.  The algorithm
splits them into *leaders* — which search the leaf set exhaustively and
publish their results — and *followers* — which search only inside the
result set of their closest leader, provided that leader is within a
distance threshold ``thd``.  A follower thus compares against
``L + R`` points (L leaders, R leader-result points) instead of the
``N`` leaf children — the efficiency trade-off of the paper's
first-order cost model.

Hardware details modelled faithfully:

* the per-leaf leader buffer is capped (16 entries in the paper); once
  full, out-of-range queries fall back to the precise path but are *not*
  added as leaders (Sec. 5.3 — capping improves accuracy);
* leader checks are distance computations executed on the back-end PEs,
  so they are charged to :class:`~repro.kdtree.stats.SearchStats` via the
  ``leader_checks`` counter and appear in the query trace.

The same machinery serves NN, kNN and radius search — the paper's
approximate algorithm covers both NN and radius (Sec. 7 highlights this
versus NN-only prior work); kNN support is our extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.ragged import RaggedNeighborhoods
from repro.core.trace import QueryTrace
from repro.core.twostage import TwoStageKDTree
from repro.kdtree.stats import SearchStats

__all__ = ["ApproximateSearchConfig", "ApproximateSearch"]


@dataclass(frozen=True)
class ApproximateSearchConfig:
    """Tuning knobs for the leaders/followers algorithm.

    ``nn_threshold``
        The discriminator ``thd`` for NN/kNN queries, in point units.
        The paper uses 1.2 m on KITTI.
    ``radius_threshold_fraction``
        ``thd`` for radius queries as a fraction of the query radius.
        The paper uses 40 % of the original radius.
    ``leader_capacity``
        Leader-buffer entries per leaf set (paper: 16).
    ``leader_result_k``
        How many nearest neighbors a leader retains as its published
        result for NN-type queries.  1 reproduces the strict Algorithm 1
        reading (followers adopt the leader's nearest neighbor); larger
        values trade work for accuracy and are used by the ablation
        bench.
    """

    nn_threshold: float = 1.2
    radius_threshold_fraction: float = 0.4
    leader_capacity: int = 16
    leader_result_k: int = 1

    def __post_init__(self):
        if self.nn_threshold < 0:
            raise ValueError("nn_threshold must be >= 0")
        if not 0.0 <= self.radius_threshold_fraction <= 1.0:
            raise ValueError("radius_threshold_fraction must be in [0, 1]")
        if self.leader_capacity < 0:
            raise ValueError("leader_capacity must be >= 0")
        if self.leader_result_k < 1:
            raise ValueError("leader_result_k must be >= 1")


@dataclass
class _LeafLeaders:
    """Leader buffer state for one leaf set."""

    positions: list[np.ndarray] = field(default_factory=list)
    results: list[np.ndarray] = field(default_factory=list)  # point indices

    def __len__(self) -> int:
        return len(self.positions)


class ApproximateSearch:
    """Stateful approximate searcher over a :class:`TwoStageKDTree`.

    Leader state accumulates across queries, mirroring the accelerator's
    leader buffers filling up over one batch of queries.  Construct a
    fresh instance (or call :meth:`reset`) per batch, as the hardware
    does per search pass.
    """

    def __init__(
        self,
        tree: TwoStageKDTree,
        config: ApproximateSearchConfig | None = None,
    ):
        self._tree = tree
        self._config = config or ApproximateSearchConfig()
        self._leaders: dict[int, _LeafLeaders] = {}

    @property
    def tree(self) -> TwoStageKDTree:
        return self._tree

    @property
    def points(self) -> np.ndarray:
        """The indexed points (uniform backend interface)."""
        return self._tree.points

    @property
    def config(self) -> ApproximateSearchConfig:
        return self._config

    def reset(self) -> None:
        """Clear all leader buffers."""
        self._leaders.clear()

    def leader_count(self, leaf_id: int) -> int:
        """Number of leaders currently registered for a leaf set."""
        state = self._leaders.get(leaf_id)
        return len(state) if state else 0

    @property
    def total_leaders(self) -> int:
        return sum(len(state) for state in self._leaders.values())

    # ------------------------------------------------------------------
    # Algorithm 1, written once and parameterized by the leader-result
    # publication policy (NN keeps top-k, radius keeps the in-radius set).
    # ------------------------------------------------------------------

    def _make_leaf_scan(
        self,
        threshold: float,
        publish: Callable[[np.ndarray, np.ndarray], np.ndarray],
    ):
        def scan(leaf_id: int, query: np.ndarray, record):
            state = self._leaders.setdefault(leaf_id, _LeafLeaders())
            if len(state):
                # Find the closest leader (distance comps on the PEs).
                leader_positions = np.asarray(state.positions)
                diff = leader_positions - query
                leader_sq = np.einsum("ij,ij->i", diff, diff)
                record.leader_checks = len(state)
                closest = int(np.argmin(leader_sq))
                if leader_sq[closest] < threshold * threshold:
                    # Approximate path: search the leader's result set.
                    result_indices = state.results[closest]
                    record.approximate = True
                    record.scanned = len(result_indices)
                    if len(result_indices) == 0:
                        return result_indices, np.empty(0)
                    members = self._tree.points[result_indices]
                    diff = members - query
                    sq = np.einsum("ij,ij->i", diff, diff)
                    return result_indices, sq
            # Precise path: exhaustive scan of the leaf set.
            indices, sq = self._tree.scan_leaf(leaf_id, query)
            record.scanned = len(indices)
            if len(state) < self._config.leader_capacity:
                state.positions.append(np.array(query, dtype=np.float64))
                state.results.append(publish(indices, sq))
                record.became_leader = True
            return indices, sq

        return scan

    @staticmethod
    def _top_k_publisher(k: int) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
        def publish(indices: np.ndarray, sq: np.ndarray) -> np.ndarray:
            if len(indices) <= k:
                return np.array(indices, dtype=np.int64)
            top = np.argpartition(sq, k - 1)[:k]
            return np.array(indices[top], dtype=np.int64)

        return publish

    @staticmethod
    def _in_radius_publisher(r: float) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
        r_sq = r * r

        def publish(indices: np.ndarray, sq: np.ndarray) -> np.ndarray:
            mask = sq <= r_sq
            return np.array(indices[mask], dtype=np.int64)

        return publish

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------

    def nn(
        self,
        query: np.ndarray,
        stats: SearchStats | None = None,
        trace: list[QueryTrace] | None = None,
    ) -> tuple[int, float]:
        """Approximate nearest neighbor: (point index, distance)."""
        scan = self._make_leaf_scan(
            self._config.nn_threshold,
            self._top_k_publisher(self._config.leader_result_k),
        )
        return self._tree.nn(query, stats=stats, trace=trace, leaf_scan=scan)

    def knn(
        self,
        query: np.ndarray,
        k: int,
        stats: SearchStats | None = None,
        trace: list[QueryTrace] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate kNN (extension; leaders publish their top-k)."""
        scan = self._make_leaf_scan(
            self._config.nn_threshold,
            self._top_k_publisher(max(k, self._config.leader_result_k)),
        )
        return self._tree.knn(query, k, stats=stats, trace=trace, leaf_scan=scan)

    def radius(
        self,
        query: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
        trace: list[QueryTrace] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate radius search (leaders publish their in-radius set)."""
        scan = self._make_leaf_scan(
            self._config.radius_threshold_fraction * r,
            self._in_radius_publisher(r),
        )
        return self._tree.radius(
            query, r, stats=stats, sort=sort, trace=trace, leaf_scan=scan
        )

    # ------------------------------------------------------------------
    # Batch queries.  Leaders/followers is *stateful*: each query may
    # publish leaders that change what later queries see, exactly as the
    # hardware's leader buffers fill over one search pass.  The batch
    # entry points therefore process queries sequentially in row order —
    # bit-identical to issuing the scalar calls one by one — rather than
    # reordering work by leaf.
    # ------------------------------------------------------------------

    def nn_batch(
        self,
        queries: np.ndarray,
        stats: SearchStats | None = None,
        trace: list[QueryTrace] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate NN for every row of ``queries``, in row order."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        indices = np.empty(len(queries), dtype=np.int64)
        dists = np.empty(len(queries))
        for i, query in enumerate(queries):
            indices[i], dists[i] = self.nn(query, stats, trace)
        return indices, dists

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        stats: SearchStats | None = None,
        trace: list[QueryTrace] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate kNN for every row: (Q, min(k, n)) arrays."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, self._tree.n)
        # The approximate path may return fewer than k neighbors when a
        # leader's published result set is small; pad rows with misses.
        indices = np.full((len(queries), k), -1, dtype=np.int64)
        dists = np.full((len(queries), k), np.inf)
        for i, query in enumerate(queries):
            row_idx, row_dist = self.knn(query, k, stats, trace)
            indices[i, : len(row_idx)] = row_idx
            dists[i, : len(row_dist)] = row_dist
        return indices, dists

    def radius_batch(
        self,
        queries: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
        trace: list[QueryTrace] | None = None,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Approximate radius search for every row, in row order."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        all_indices, all_dists = [], []
        for query in queries:
            indices, dists = self.radius(query, r, stats, sort=sort, trace=trace)
            all_indices.append(indices)
            all_dists.append(dists)
        return all_indices, all_dists

    def radius_batch_csr(
        self,
        queries: np.ndarray,
        r: float,
        stats: SearchStats | None = None,
        sort: bool = False,
    ) -> RaggedNeighborhoods:
        """Approximate radius search, flattened to the CSR result form.

        Leaders/followers is stateful and processes queries
        sequentially by design (see above), so the flat-output path is
        one concatenation over the per-row results — the conversion the
        other backends eliminate structurally is inherent here, but the
        *consumers* still receive the uniform CSR type.
        """
        all_indices, all_dists = self.radius_batch(queries, r, stats, sort=sort)
        return RaggedNeighborhoods.from_lists(all_indices, all_dists)
