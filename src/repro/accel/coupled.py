"""Event-coupled front-end/back-end simulation.

The default simulator bounds total time by ``max(FE, BE) + drain``,
assuming the FE Query Queue and BE Query Buffers are deep enough to
decouple the halves.  This module provides the tighter discrete-event
alternative: back-end work only becomes available when the front-end
actually issues it, so a slow front-end *starves* the search units —
the effect that makes Acc-KD leave the back-end idle (paper Sec. 6.3)
and that shapes the Fig. 15 knee.

Timing semantics:

* every query is assigned to the earliest-free RU; all its leaf visits
  are issued when the query finishes its top-tree traversal (the CL
  stage fires per leaf, but a query's leaves cluster at its tail —
  one-timestamp-per-query is the documented approximation);
* each SU processes its arrival stream in order with the same windowed
  (leaf id, mode) batch former as the decoupled model, but may only
  batch visits that have arrived; if its buffer is empty it idles until
  the next arrival.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from repro.accel.config import AcceleratorConfig
from repro.accel.frontend import query_frontend_cycles
from repro.accel.workload import SearchWorkload
from repro.core.trace import LeafVisitRecord

__all__ = ["CoupledTiming", "simulate_coupled"]


@dataclass
class CoupledTiming:
    """Outcome of the event-coupled simulation (cycles)."""

    total_cycles: int
    frontend_cycles: int
    backend_finish: int
    backend_idle_cycles: int  # summed SU idle time while work remained

    @property
    def starvation_fraction(self) -> float:
        """Share of back-end busy-window cycles lost to starvation."""
        window = self.backend_finish
        if window == 0:
            return 0.0
        return self.backend_idle_cycles / (window * max(1, self._n_sus))

    _n_sus: int = 1


def simulate_coupled(
    workload: SearchWorkload, config: AcceleratorConfig
) -> CoupledTiming:
    """Run the discrete-event FE/BE coupling for one workload."""
    n_rus = config.n_recursion_units
    n_pes = config.pes_per_su
    backend = config.backend

    # Front end: earliest-free-RU assignment; record issue timestamps.
    ru_heap = [0] * n_rus
    heapq.heapify(ru_heap)
    arrivals: list[list[tuple[int, LeafVisitRecord]]] = [
        [] for _ in range(config.n_search_units)
    ]
    fe_cycles = 0
    for trace in workload.traces:
        cycles = query_frontend_cycles(trace, config)
        start = heapq.heappop(ru_heap)
        end = start + cycles
        heapq.heappush(ru_heap, end)
        fe_cycles = max(fe_cycles, end)
        for visit in trace.leaf_visits:
            if visit.pruned:
                continue
            arrivals[visit.leaf_id % config.n_search_units].append((end, visit))

    # Back end: per-SU event loop over the arrival stream.
    backend_finish = 0
    idle_total = 0
    for stream in arrivals:
        if not stream:
            continue
        stream.sort(key=lambda item: item[0])
        cursor = 0
        buffer: deque[tuple[int, LeafVisitRecord]] = deque()
        now = 0
        idle = 0
        while cursor < len(stream) or buffer:
            # Pull in everything that has arrived by `now`.
            while cursor < len(stream) and stream[cursor][0] <= now:
                buffer.append(stream[cursor])
                cursor += 1
            if not buffer:
                # Starved: jump to the next arrival.
                next_arrival = stream[cursor][0]
                idle += next_arrival - now
                now = next_arrival
                continue
            batch = _take_batch(buffer, n_pes, backend.scheduling,
                                backend.issue_window)
            longest_stream = max(v.scanned for _, v in batch)
            longest_checks = max(v.leader_checks for _, v in batch)
            check_cycles = -(-longest_checks // n_pes) if longest_checks else 0
            now += 1 + backend.pipeline_fill_cycles + check_cycles + longest_stream
        backend_finish = max(backend_finish, now)
        idle_total += idle

    total = max(fe_cycles, backend_finish)
    timing = CoupledTiming(
        total_cycles=total,
        frontend_cycles=fe_cycles,
        backend_finish=backend_finish,
        backend_idle_cycles=idle_total,
    )
    timing._n_sus = config.n_search_units
    return timing


def _take_batch(
    buffer: deque[tuple[int, LeafVisitRecord]],
    n_pes: int,
    scheduling: str,
    window: int,
) -> list[tuple[int, LeafVisitRecord]]:
    """Pop one batch from the arrived-visit buffer (same policy as the
    decoupled model's batch former, restricted to arrived entries)."""
    key_time, key = buffer.popleft()
    batch = [(key_time, key)]
    if scheduling == "mqmn":
        while buffer and len(batch) < n_pes:
            batch.append(buffer.popleft())
        return batch
    unmatched: deque[tuple[int, LeafVisitRecord]] = deque()
    examined = 0
    while buffer and len(batch) < n_pes and examined < window:
        time_stamp, candidate = buffer.popleft()
        examined += 1
        if (
            candidate.leaf_id == key.leaf_id
            and candidate.approximate == key.approximate
        ):
            batch.append((time_stamp, candidate))
        else:
            unmatched.append((time_stamp, candidate))
    buffer.extendleft(reversed(unmatched))
    return batch
