"""Search workloads: the functional traces the accelerator model replays.

A :class:`SearchWorkload` bundles the per-query traces produced by the
two-stage KD-tree (exact or approximate) over a concrete query set,
plus the tree geometry the hardware needs (leaf count/sizes, top-tree
height).  The same workload object feeds the Tigris simulator and the
CPU/GPU baseline models, so every Fig. 11-15 comparison runs identical
work.

The canonical KD-tree of the baselines is represented as a two-stage
tree with leaf size 1 (paper Sec. 4.1: "The classic KD-tree has a
leaf-size one"), making "Base-KD vs Base-2SKD vs Acc-KD vs Acc-2SKD"
a pure configuration sweep.

Workload capture always passes ``trace=`` to the batched searches,
which pins them to the sequential per-query path: the trace needs the
exact per-query traversal order the scalar search performs, not the
grouped-by-leaf schedule of the performance batch path (whose NN pass
can visit a slightly different node set).  Counts therefore replay the
accelerator-faithful sequential semantics regardless of how fast the
software batch layer is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.approx import ApproximateSearch, ApproximateSearchConfig
from repro.core.trace import QueryTrace
from repro.core.twostage import TwoStageKDTree

__all__ = ["SearchWorkload", "build_workload", "registration_workload"]


@dataclass
class SearchWorkload:
    """Traces plus tree geometry for one batch of queries."""

    name: str
    kind: str  # "nn" | "radius"
    traces: list[QueryTrace]
    tree_n: int
    top_height: int
    n_leaf_sets: int
    mean_leaf_size: float
    approximate: bool = False

    @property
    def n_queries(self) -> int:
        return len(self.traces)

    @property
    def total_toptree_visits(self) -> int:
        return sum(t.toptree_visits for t in self.traces)

    @property
    def total_toptree_bypassed(self) -> int:
        return sum(t.toptree_bypassed for t in self.traces)

    @property
    def total_leaf_scanned(self) -> int:
        return sum(t.leaf_scanned for t in self.traces)

    @property
    def total_leader_checks(self) -> int:
        return sum(t.leader_checks for t in self.traces)

    @property
    def total_nodes_visited(self) -> int:
        """The Fig. 6b unit: all distance computations against points."""
        return self.total_toptree_visits + self.total_leaf_scanned

    @property
    def total_results(self) -> int:
        return sum(t.results for t in self.traces)

    def merge(self, other: "SearchWorkload") -> "SearchWorkload":
        """Concatenate two workloads over the same tree."""
        if (self.tree_n, self.top_height) != (other.tree_n, other.top_height):
            raise ValueError("can only merge workloads over the same tree shape")
        return SearchWorkload(
            name=f"{self.name}+{other.name}",
            kind=self.kind if self.kind == other.kind else "mixed",
            traces=self.traces + other.traces,
            tree_n=self.tree_n,
            top_height=self.top_height,
            n_leaf_sets=self.n_leaf_sets,
            mean_leaf_size=self.mean_leaf_size,
            approximate=self.approximate or other.approximate,
        )


def build_workload(
    points: np.ndarray,
    queries: np.ndarray,
    kind: str = "nn",
    radius: float = 1.0,
    leaf_size: int | None = 128,
    top_height: int | None = None,
    approx: ApproximateSearchConfig | None = None,
    name: str | None = None,
    tree: TwoStageKDTree | None = None,
) -> SearchWorkload:
    """Run the functional search and capture traces.

    Exactly one of ``leaf_size`` / ``top_height`` / ``tree`` shapes the
    structure.  With ``approx`` set, the leaders/followers algorithm
    runs (fresh leader state, as one hardware pass).
    """
    if kind not in ("nn", "radius"):
        raise ValueError("kind must be 'nn' or 'radius'")
    if tree is None:
        if top_height is not None:
            tree = TwoStageKDTree(points, top_height=top_height)
        elif leaf_size is not None:
            tree = TwoStageKDTree.from_leaf_size(points, leaf_size)
        else:
            raise ValueError("provide leaf_size, top_height, or tree")

    traces: list[QueryTrace] = []
    if approx is not None:
        searcher = ApproximateSearch(tree, approx)
        if kind == "nn":
            searcher.nn_batch(queries, trace=traces)
        else:
            searcher.radius_batch(queries, radius, trace=traces)
    else:
        if kind == "nn":
            tree.nn_batch(queries, trace=traces)
        else:
            tree.radius_batch(queries, radius, trace=traces)

    return SearchWorkload(
        name=name or f"{kind}-h{tree.top_height}",
        kind=kind,
        traces=traces,
        tree_n=tree.n,
        top_height=tree.top_height,
        n_leaf_sets=tree.n_leaf_sets,
        mean_leaf_size=tree.mean_leaf_size,
        approximate=approx is not None,
    )


def registration_workload(
    source_points: np.ndarray,
    target_points: np.ndarray,
    normal_radius: float = 0.75,
    icp_iterations: int = 10,
    leaf_size: int | None = 128,
    top_height: int | None = None,
    approx: ApproximateSearchConfig | None = None,
    name: str = "registration",
) -> dict[str, SearchWorkload]:
    """The dense KD-tree searches of one registration pass.

    Reproduces the workload mix of a design point: radius searches of
    Normal Estimation over both clouds, plus the RPCE NN searches of
    every ICP iteration (source queried against the target tree; the
    query *count* per iteration is what the hardware sees, so the
    stationary source stands in for the slowly-moving ICP source —
    documented simulator approximation).

    Returns one workload per stage: ``{"NE": ..., "RPCE": ...}``.
    """
    source_points = np.asarray(source_points, dtype=np.float64)
    target_points = np.asarray(target_points, dtype=np.float64)

    def make_tree(points: np.ndarray) -> TwoStageKDTree:
        if top_height is not None:
            return TwoStageKDTree(points, top_height=top_height)
        return TwoStageKDTree.from_leaf_size(points, leaf_size)

    source_tree = make_tree(source_points)
    target_tree = make_tree(target_points)

    ne_source = build_workload(
        source_points,
        source_points,
        kind="radius",
        radius=normal_radius,
        tree=source_tree,
        approx=approx,
        name=f"{name}-NE-src",
    )
    ne_target = build_workload(
        target_points,
        target_points,
        kind="radius",
        radius=normal_radius,
        tree=target_tree,
        approx=approx,
        name=f"{name}-NE-tgt",
    )
    # Frame sizes generally differ slightly, so merge the two NE passes
    # under the source tree's geometry (the counts are what matter).
    ne = SearchWorkload(
        name=f"{name}-NE",
        kind="radius",
        traces=ne_source.traces + ne_target.traces,
        tree_n=source_tree.n,
        top_height=source_tree.top_height,
        n_leaf_sets=source_tree.n_leaf_sets,
        mean_leaf_size=source_tree.mean_leaf_size,
        approximate=approx is not None,
    )

    rpce_traces: list[QueryTrace] = []
    for _ in range(icp_iterations):
        iteration = build_workload(
            target_points,
            source_points,
            kind="nn",
            tree=target_tree,
            approx=approx,
            name=f"{name}-RPCE-iter",
        )
        rpce_traces.extend(iteration.traces)
    rpce = SearchWorkload(
        name=f"{name}-RPCE",
        kind="nn",
        traces=rpce_traces,
        tree_n=target_tree.n,
        top_height=target_tree.top_height,
        n_leaf_sets=target_tree.n_leaf_sets,
        mean_leaf_size=target_tree.mean_leaf_size,
        approximate=approx is not None,
    )
    return {"NE": ne, "RPCE": rpce}
