"""Tigris accelerator configuration (paper Sec. 5, Fig. 8).

The accelerator is a front-end of Recursion Units (RUs) traversing the
top-tree, feeding a back-end of Search Units (SUs), each an array of
Processing Elements (PEs) that exhaustively scan leaf sets.  The
defaults reproduce the paper's design point (Sec. 6.2): 64 RUs, 32 SUs,
32 PEs per SU, 500 MHz, with the published buffer sizing.

The ablation switches of Fig. 12/13 are all here: RU node bypassing and
forwarding, MQSN vs. MQMN back-end scheduling, and the node cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FrontEndConfig", "BackEndConfig", "AcceleratorConfig"]


@dataclass(frozen=True)
class FrontEndConfig:
    """RU pipeline options (paper Sec. 5.2).

    The six-stage RU pipeline (FQ RS RN CD PI CL) has a data dependency
    between PI (stack push) and RS (next stack pop) costing
    ``stall_cycles`` per iteration.  ``forwarding`` eliminates the
    stalls by forwarding the next node from CD/PI straight to RN;
    ``bypassing`` lets a popped-but-prunable node exit after RN instead
    of flowing through the full pipeline.
    """

    bypassing: bool = True
    forwarding: bool = True
    stall_cycles: int = 3

    @property
    def full_node_cycles(self) -> int:
        """Cycles per fully-processed top-tree node iteration."""
        return 1 if self.forwarding else 1 + self.stall_cycles

    @property
    def bypassed_node_cycles(self) -> int:
        """Cycles per popped-but-pruned node.

        With bypassing the node exits right after RN (2 stages of work,
        but the pipeline restarts the RS stage immediately, costing one
        extra cycle over a forwarded hit); without it the node flows
        through the same path as a full iteration.
        """
        if self.bypassing:
            return 1 if self.forwarding else 2
        return self.full_node_cycles


@dataclass(frozen=True)
class BackEndConfig:
    """SU/PE organization (paper Sec. 5.3).

    ``scheduling``
        ``"mqsn"`` — Multiple Query Single NodeSet: all PEs of an SU
        process queries of the *same* leaf set, so the node stream is
        fetched once per batch (memory-efficient, the adopted design);
        ``"mqmn"`` — Multiple Query Multiple NodeSet: PEs take any
        queries (full utilization, per-PE node streams, high traffic).
    ``pipeline_fill_cycles``
        PE datapath depth: cycles before the first node's result exits.
    ``node_cache_entries``
        LRU node-cache capacity in leaf sets (0 disables; the paper's
        128 KB cache holds ~8 sets of 128 points).
    ``issue_window``
        BQB entries examined per associative-search step (paper: groups
        of 32).
    """

    scheduling: str = "mqsn"
    pipeline_fill_cycles: int = 3
    node_cache_entries: int = 8
    issue_window: int = 32

    def __post_init__(self):
        if self.scheduling not in ("mqsn", "mqmn"):
            raise ValueError("scheduling must be 'mqsn' or 'mqmn'")
        if self.pipeline_fill_cycles < 0:
            raise ValueError("pipeline_fill_cycles must be >= 0")
        if self.node_cache_entries < 0:
            raise ValueError("node_cache_entries must be >= 0")


@dataclass(frozen=True)
class AcceleratorConfig:
    """Full accelerator design point (defaults: the paper's, Sec. 6.2)."""

    n_recursion_units: int = 64
    n_search_units: int = 32
    pes_per_su: int = 32
    clock_ghz: float = 0.5
    frontend: FrontEndConfig = field(default_factory=FrontEndConfig)
    backend: BackEndConfig = field(default_factory=BackEndConfig)

    # On-chip SRAM sizing in KB (paper Sec. 6.2).
    input_point_buffer_kb: float = 1536.0  # 1.5 MB
    query_buffer_kb: float = 1536.0  # 1.5 MB
    query_stack_buffer_kb: float = 1228.8  # 1.2 MB
    fe_query_queue_kb: float = 1536.0  # 1.5 MB
    be_query_buffer_kb_per_su: float = 1.0  # 1 KB x 32 SUs
    node_cache_kb: float = 128.0
    result_buffer_kb: float = 3072.0  # 3 MB, double-buffered to DRAM
    leader_buffer_entries: int = 16

    def __post_init__(self):
        if min(self.n_recursion_units, self.n_search_units, self.pes_per_su) < 1:
            raise ValueError("unit counts must be >= 1")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")

    @property
    def cycle_time_ns(self) -> float:
        return 1.0 / self.clock_ghz

    @property
    def total_pes(self) -> int:
        return self.n_search_units * self.pes_per_su

    @property
    def total_sram_kb(self) -> float:
        return (
            self.input_point_buffer_kb
            + self.query_buffer_kb
            + self.query_stack_buffer_kb
            + self.fe_query_queue_kb
            + self.be_query_buffer_kb_per_su * self.n_search_units
            + self.node_cache_kb
            + self.result_buffer_kb
        )
