"""The Tigris accelerator simulator (paper Sec. 5/6).

Trace-driven and cycle-approximate: the functional two-stage search
produces per-query traces (:mod:`repro.accel.workload`); the front-end
and back-end models replay them against an
:class:`~repro.accel.config.AcceleratorConfig`; energy converts the
resulting activity into joules.

Front-end and back-end run decoupled through the FE Query Queue and BE
Query Buffers (Fig. 8), so total time is the maximum of the two
makespans plus a drain term — the standard bound for a two-stage
pipelined system with deep queues.  This reproduces the paper's
first-order behaviours: Acc-KD (canonical tree) is front-end-bound with
idle SUs; short top-trees are back-end-bound; the knee sits where the
two balance (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.backend import BackEndReport, simulate_backend
from repro.accel.config import AcceleratorConfig
from repro.accel.energy import EnergyBreakdown, EnergyParameters, estimate_energy
from repro.accel.frontend import FrontEndReport, simulate_frontend
from repro.accel.memory import TrafficCounters
from repro.accel.workload import SearchWorkload

__all__ = ["SimulationResult", "TigrisSimulator"]


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    workload_name: str
    cycles: int
    time_seconds: float
    frontend: FrontEndReport
    backend: BackEndReport
    traffic: TrafficCounters
    energy: EnergyBreakdown

    @property
    def power_watts(self) -> float:
        if self.time_seconds == 0:
            return 0.0
        return self.energy.total / self.time_seconds

    @property
    def energy_joules(self) -> float:
        return self.energy.total

    @property
    def bound(self) -> str:
        """Which half limits performance."""
        return "frontend" if self.frontend.cycles >= self.backend.cycles else "backend"

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.workload_name!r}: "
            f"{self.time_seconds * 1e3:.3f} ms, {self.power_watts:.2f} W, "
            f"{self.bound}-bound)"
        )


class TigrisSimulator:
    """Replays search workloads on a configured accelerator."""

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        energy_parameters: EnergyParameters | None = None,
    ):
        self.config = config or AcceleratorConfig()
        self.energy_parameters = energy_parameters or EnergyParameters()

    def simulate(self, workload: SearchWorkload) -> SimulationResult:
        """Run one workload; returns timing, traffic, and energy."""
        config = self.config
        fe = simulate_frontend(workload, config)
        be = simulate_backend(workload, config)

        # Decoupled-pipeline bound: the slower half sets the pace; the
        # faster half hides behind the queues except for a drain term of
        # one average batch on the non-dominant side.
        drain = min(fe.cycles, be.cycles) // max(
            1, len(workload.traces) // max(config.n_recursion_units, 1) + 1
        )
        cycles = max(fe.cycles, be.cycles) + min(drain, min(fe.cycles, be.cycles))

        traffic = TrafficCounters()
        traffic.merge(fe.traffic)
        traffic.merge(be.traffic)

        time_seconds = cycles * config.cycle_time_ns * 1e-9
        energy = estimate_energy(
            traffic,
            fe.distance_computations + be.distance_computations,
            time_seconds,
            config,
            self.energy_parameters,
        )
        return SimulationResult(
            workload_name=workload.name,
            cycles=cycles,
            time_seconds=time_seconds,
            frontend=fe,
            backend=be,
            traffic=traffic,
            energy=energy,
        )

    def simulate_many(self, workloads: list[SearchWorkload]) -> SimulationResult:
        """Simulate a sequence of workloads back-to-back and sum them."""
        if not workloads:
            raise ValueError("need at least one workload")
        total_cycles = 0
        total_time = 0.0
        traffic = TrafficCounters()
        energy = EnergyBreakdown()
        fe_last: FrontEndReport | None = None
        be_last: BackEndReport | None = None
        for workload in workloads:
            result = self.simulate(workload)
            total_cycles += result.cycles
            total_time += result.time_seconds
            traffic.merge(result.traffic)
            energy.pe_compute += result.energy.pe_compute
            energy.sram_read += result.energy.sram_read
            energy.sram_write += result.energy.sram_write
            energy.dram += result.energy.dram
            energy.leakage += result.energy.leakage
            fe_last, be_last = result.frontend, result.backend
        return SimulationResult(
            workload_name="+".join(w.name for w in workloads),
            cycles=total_cycles,
            time_seconds=total_time,
            frontend=fe_last,
            backend=be_last,
            traffic=traffic,
            energy=energy,
        )
