"""Front-end (Recursion Unit) timing model (paper Sec. 5.2, Fig. 9).

Each RU processes one query at a time, iterating the six-stage pipeline
(FQ RS RN CD PI CL) over the query's top-tree path.  Per-iteration cost
depends on the stall-mitigation options:

* no optimizations — the PI->RS stack dependency stalls 3 cycles per
  iteration (4 cycles/node);
* node bypassing — popped-but-prunable nodes exit after RN;
* node forwarding — the PI stage forwards the next node to RN and the
  push-order decision moves into CD, eliminating the stalls entirely
  (1 cycle/node).

Queries are distributed to RUs dynamically from the FE Query Queue;
total front-end time is the makespan of a greedy earliest-free-unit
assignment, which is what the hardware's queue effectively implements.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.accel.config import AcceleratorConfig
from repro.accel.memory import TrafficCounters
from repro.accel.workload import SearchWorkload

__all__ = ["FrontEndReport", "simulate_frontend", "query_frontend_cycles"]


@dataclass
class FrontEndReport:
    """Front-end simulation outcome."""

    cycles: int
    busy_cycles: int  # summed across RUs
    utilization: float  # busy / (cycles * n_RUs)
    traffic: TrafficCounters
    distance_computations: int


def query_frontend_cycles(trace, config: AcceleratorConfig) -> int:
    """RU cycles to process one query's top-tree traversal."""
    fe = config.frontend
    cycles = 1  # FQ: fetch the query, once per query
    cycles += trace.toptree_visits * fe.full_node_cycles
    cycles += trace.toptree_bypassed * fe.bypassed_node_cycles
    # CL: one issue cycle per leaf handed to the back-end.
    cycles += len(trace.leaf_visits)
    return cycles


def simulate_frontend(
    workload: SearchWorkload, config: AcceleratorConfig
) -> FrontEndReport:
    """Replay all query traces on the RU array."""
    n_rus = config.n_recursion_units
    # Earliest-free-RU greedy assignment via a min-heap of finish times.
    finish = [0] * n_rus
    heapq.heapify(finish)
    busy = 0
    for trace in workload.traces:
        cycles = query_frontend_cycles(trace, config)
        busy += cycles
        start = heapq.heappop(finish)
        heapq.heappush(finish, start + cycles)
    makespan = max(finish) if workload.traces else 0

    traffic = TrafficCounters()
    n_queries = workload.n_queries
    total_pops = workload.total_toptree_visits + workload.total_toptree_bypassed
    total_pushes = sum(t.stack_pushes for t in workload.traces)
    total_leaves = sum(len(t.leaf_visits) for t in workload.traces)
    traffic.fe_query_queue += 2 * n_queries  # enqueue + dequeue
    traffic.query_buffer += n_queries  # FQ query-point fetch
    traffic.query_stack += total_pops + total_pushes
    traffic.points_buffer += workload.total_toptree_visits  # RN node reads
    traffic.be_query_buffer += total_leaves  # CL issues into BQBs
    # Result-buffer inserts from the FE happen only when a top-tree node
    # qualifies as a result candidate — once per returned result at most
    # (NN candidates update a register, not the buffer).
    traffic.result_buffer += workload.total_results

    utilization = busy / (makespan * n_rus) if makespan else 0.0
    return FrontEndReport(
        cycles=makespan,
        busy_cycles=busy,
        utilization=utilization,
        traffic=traffic,
        distance_computations=workload.total_toptree_visits,
    )
