"""Hardware and structure sweeps (paper Sec. 6.5, Fig. 14/15).

Library-level drivers for the sensitivity studies: sweep the RU/SU/PE
unit counts over a workload (Fig. 14), or sweep the two-stage tree's
top height and re-trace the workload per height (Fig. 15).  The
benchmark files are thin wrappers over these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.config import AcceleratorConfig
from repro.accel.simulator import SimulationResult, TigrisSimulator
from repro.accel.workload import SearchWorkload, registration_workload
from repro.core.approx import ApproximateSearchConfig

__all__ = ["HardwareSweep", "sweep_hardware", "sweep_top_height", "HeightSweep"]


@dataclass
class HardwareSweep:
    """Fig. 14 results: one simulation per (RU, SU, PE) combination."""

    results: dict[tuple[int, int, int], SimulationResult]

    def best(self) -> tuple[tuple[int, int, int], SimulationResult]:
        """The fastest configuration."""
        key = min(self.results, key=lambda k: self.results[k].time_seconds)
        return key, self.results[key]

    def pareto(self) -> list[tuple[int, int, int]]:
        """Configs not dominated in (time, power) — the Fig. 14a frontier."""
        keys = list(self.results)
        frontier = []
        for key in keys:
            mine = self.results[key]
            dominated = any(
                other is not mine
                and other.time_seconds <= mine.time_seconds
                and other.power_watts <= mine.power_watts
                and (
                    other.time_seconds < mine.time_seconds
                    or other.power_watts < mine.power_watts
                )
                for other in self.results.values()
            )
            if not dominated:
                frontier.append(key)
        return sorted(frontier)

    def table(self) -> str:
        lines = [f"{'RU':>4}{'SU':>5}{'PE':>5}{'time(us)':>11}{'power(W)':>10}"]
        for key in sorted(self.results):
            result = self.results[key]
            lines.append(
                f"{key[0]:>4}{key[1]:>5}{key[2]:>5}"
                f"{result.time_seconds * 1e6:>11.2f}{result.power_watts:>10.2f}"
            )
        return "\n".join(lines)


def sweep_hardware(
    workloads: list[SearchWorkload],
    ru_values: tuple[int, ...] = (16, 32, 64, 128),
    su_values: tuple[int, ...] = (16, 32, 64, 128),
    pe_values: tuple[int, ...] = (16, 32, 64, 128),
    base_config: AcceleratorConfig | None = None,
) -> HardwareSweep:
    """Simulate the workloads under every unit-count combination."""
    base = base_config or AcceleratorConfig()
    results: dict[tuple[int, int, int], SimulationResult] = {}
    for n_rus in ru_values:
        for n_sus in su_values:
            for n_pes in pe_values:
                config = AcceleratorConfig(
                    n_recursion_units=n_rus,
                    n_search_units=n_sus,
                    pes_per_su=n_pes,
                    clock_ghz=base.clock_ghz,
                    frontend=base.frontend,
                    backend=base.backend,
                )
                results[(n_rus, n_sus, n_pes)] = TigrisSimulator(
                    config
                ).simulate_many(workloads)
    return HardwareSweep(results=results)


@dataclass
class HeightSweep:
    """Fig. 15 results: one simulation per top-tree height."""

    results: dict[int, SimulationResult]
    n_points: int
    heights: tuple[int, ...] = field(default_factory=tuple)

    @property
    def optimal_height(self) -> int:
        return min(self.results, key=lambda h: self.results[h].time_seconds)

    def table(self) -> str:
        lines = [
            f"{'height':>7}{'leaf size':>11}{'time(us)':>11}"
            f"{'energy(uJ)':>12}{'bound':>10}"
        ]
        for height in sorted(self.results):
            result = self.results[height]
            lines.append(
                f"{height:>7}{self.n_points / 2**height:>11.0f}"
                f"{result.time_seconds * 1e6:>11.2f}"
                f"{result.energy_joules * 1e6:>12.2f}"
                f"{result.bound:>10}"
            )
        return "\n".join(lines)


def sweep_top_height(
    source_points: np.ndarray,
    target_points: np.ndarray,
    heights: tuple[int, ...],
    normal_radius: float = 0.75,
    icp_iterations: int = 2,
    approx: ApproximateSearchConfig | None = None,
    config: AcceleratorConfig | None = None,
) -> HeightSweep:
    """Re-trace and simulate a registration workload per top height."""
    simulator = TigrisSimulator(config)
    results: dict[int, SimulationResult] = {}
    for height in heights:
        workloads = registration_workload(
            source_points,
            target_points,
            normal_radius=normal_radius,
            icp_iterations=icp_iterations,
            leaf_size=None,
            top_height=height,
            approx=approx,
        )
        results[height] = simulator.simulate_many(list(workloads.values()))
    return HeightSweep(
        results=results,
        n_points=len(np.atleast_2d(source_points)),
        heights=tuple(heights),
    )
