"""CPU and GPU baseline performance/power models (paper Sec. 6.1).

The paper's baseline system is a 32-core Xeon Silver 4110 (PCL/FLANN
KD-tree on the CPU) and an RTX 2080 Ti running FLANN's CUDA KD-tree.
Neither device is available here, so both are analytic throughput
models driven by the *same* functional search traces as the
accelerator model (DESIGN.md substitution table).

Model shape:

* The CPU walks the tree sequentially; its time is node visits times a
  per-node latency, divided by a modest thread-level speedup (KD-tree
  traversal scales poorly with threads due to memory divergence).
* The GPU exploits query-level parallelism massively but pays a much
  higher per-node cost on divergent top-tree traversal than on
  coalesced brute-force leaf scans — which is exactly why Base-2SKD
  (two-stage on GPU) beats Base-KD (canonical on GPU) by ~28 % in the
  paper.  Two per-node costs capture that.

Constants are calibrated so the published anchor ratios hold on a
KITTI-like workload: GPU ~8-20x over CPU (Sec. 6.1), Base-2SKD ~1.28x
over Base-KD (Sec. 6.3).  Absolute seconds are not claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.workload import SearchWorkload

__all__ = ["DeviceReport", "CPUModel", "GPUModel"]


@dataclass
class DeviceReport:
    """Baseline device outcome for one workload."""

    name: str
    time_seconds: float
    power_watts: float

    @property
    def energy_joules(self) -> float:
        return self.time_seconds * self.power_watts


@dataclass(frozen=True)
class CPUModel:
    """Xeon-class KD-tree search: sequential traversal, few useful threads.

    ``ns_per_node`` covers the pointer chase + distance computation of
    one node visit; ``parallel_speedup`` is the effective thread-level
    speedup of batch KD-tree queries on the 32-core part (memory-bound
    well below core count).
    """

    name: str = "CPU (Xeon 4110)"
    ns_per_node: float = 140.0
    parallel_speedup: float = 4.0
    power_watts: float = 85.0

    def run(self, workload: SearchWorkload) -> DeviceReport:
        work_ns = workload.total_nodes_visited * self.ns_per_node
        work_ns += workload.total_leader_checks * self.ns_per_node
        return DeviceReport(
            name=self.name,
            time_seconds=work_ns * 1e-9 / self.parallel_speedup,
            power_watts=self.power_watts,
        )


@dataclass(frozen=True)
class GPUModel:
    """RTX 2080 Ti running FLANN's CUDA KD-tree.

    Divergent tree traversal costs ``traversal_ns_per_node`` per node
    per query *warp-step*; coalesced exhaustive leaf scans stream at
    ``scan_ns_per_node``.  Both are effective (throughput) costs, i.e.
    already divided by the device's exploitable parallelism.
    """

    name: str = "GPU (RTX 2080 Ti)"
    traversal_ns_per_node: float = 3.17
    scan_ns_per_node: float = 0.32
    fixed_overhead_us: float = 5.0  # kernel launch + transfer per batch
    power_watts: float = 185.0

    def run(self, workload: SearchWorkload) -> DeviceReport:
        traversal = (
            workload.total_toptree_visits + workload.total_toptree_bypassed
        ) * self.traversal_ns_per_node
        scan = (
            workload.total_leaf_scanned + workload.total_leader_checks
        ) * self.scan_ns_per_node
        time_ns = traversal + scan + self.fixed_overhead_us * 1e3
        return DeviceReport(
            name=self.name,
            time_seconds=time_ns * 1e-9,
            power_watts=self.power_watts,
        )
