"""Memory traffic accounting (paper Fig. 13).

Every buffer of the accelerator (Fig. 8) gets an access counter, in
units of *words* — one word is one point record (or one queue/stack
entry).  The front-end and back-end timing models deposit their traffic
here; the energy model converts counts into joules; the Fig. 13 bench
reports the distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["TrafficCounters"]


@dataclass
class TrafficCounters:
    """Access counts per architectural buffer (reads + writes merged,
    except the split the energy model needs)."""

    fe_query_queue: int = 0  # query pops/pushes at the FE
    query_buffer: int = 0  # query point fetches
    query_stack: int = 0  # recursion stack pushes + pops
    points_buffer: int = 0  # tree-node / leaf-set point fetches from SRAM
    node_cache: int = 0  # leaf-set point fetches served by the cache
    be_query_buffer: int = 0  # BQB enqueue/issue traffic
    result_buffer: int = 0  # result writes + leader-result reads
    leader_buffer: int = 0  # leader position reads/writes
    dram: int = 0  # result spills to DRAM (words)

    # Write-shares per buffer: the fraction of accesses that are writes
    # (the rest are reads).  Used by the energy model's read/write split.
    _WRITE_SHARE = {
        "fe_query_queue": 0.5,
        "query_buffer": 0.0,
        "query_stack": 0.5,
        "points_buffer": 0.0,
        "node_cache": 0.2,
        "be_query_buffer": 0.5,
        "result_buffer": 0.8,
        "leader_buffer": 0.3,
        "dram": 1.0,
    }

    def merge(self, other: "TrafficCounters") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    @property
    def total(self) -> int:
        return (
            self.fe_query_queue
            + self.query_buffer
            + self.query_stack
            + self.points_buffer
            + self.node_cache
            + self.be_query_buffer
            + self.result_buffer
            + self.leader_buffer
        )

    def distribution(self) -> dict[str, float]:
        """Fraction of on-chip traffic per buffer (the Fig. 13 bars)."""
        total = self.total
        if total == 0:
            return {}
        return {
            "FE Query Q": self.fe_query_queue / total,
            "Query Buf": self.query_buffer / total,
            "Query Stacks": self.query_stack / total,
            "Res. Buf": self.result_buffer / total,
            "BE Query Q": self.be_query_buffer / total,
            "Node Cache": self.node_cache / total,
            "Points Buf": self.points_buffer / total,
        }

    def reads_writes(self, buffer_name: str) -> tuple[int, int]:
        """Split a buffer's accesses into (reads, writes)."""
        count = getattr(self, buffer_name)
        share = self._WRITE_SHARE[buffer_name]
        writes = int(round(count * share))
        return count - writes, writes
