"""Energy model (paper Sec. 6.1/6.3).

The paper estimates power with PrimeTime over a 16 nm synthesis plus an
SRAM compiler and Micron's DDR4 sheets.  Here, per-event energy
constants at a 16 nm-class technology point convert activity counts
(distance computations, per-buffer accesses, DRAM words) into joules,
plus a leakage term proportional to runtime.

Constants are *effective system energies per counted event* — they
fold in network-on-chip distribution, control, and register traffic on
top of the raw cell access (our traffic counting charges one access
per shared node stream, not per PE consuming it).  They are calibrated
so the paper's DP4 energy breakdown is reproduced (PE 53.7 %, SRAM
read 34.8 %, SRAM write 8.0 %, leakage 3.3 %, DRAM 0.2 %) and so
power-per-unit-work matches the paper's reported 15-36 W operating
band.  Absolute watts are not claims; ratios and shares are.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.config import AcceleratorConfig
from repro.accel.memory import TrafficCounters

__all__ = ["EnergyParameters", "EnergyBreakdown", "estimate_energy"]


@dataclass(frozen=True)
class EnergyParameters:
    """Per-event energies in picojoules, plus leakage in watts.

    A "word" is one point record (3 x FP32 + metadata, ~16 B).  SRAM
    access energy scales roughly with the square root of capacity; the
    defaults bake that in per buffer.
    """

    distance_computation_pj: float = 87.0
    sram_read_pj: dict = field(
        default_factory=lambda: {
            "fe_query_queue": 420.0,
            "query_buffer": 420.0,
            "query_stack": 420.0,
            "points_buffer": 420.0,
            "node_cache": 126.0,
            "be_query_buffer": 12.0,
            "result_buffer": 420.0,
            "leader_buffer": 8.0,
        }
    )
    sram_write_pj: dict = field(
        default_factory=lambda: {
            "fe_query_queue": 190.0,
            "query_buffer": 190.0,
            "query_stack": 190.0,
            "points_buffer": 190.0,
            "node_cache": 57.0,
            "be_query_buffer": 6.0,
            "result_buffer": 190.0,
            "leader_buffer": 4.0,
        }
    )
    dram_pj_per_word: float = 25.0
    leakage_watts: float = 0.8  # whole-chip leakage at 16 nm


@dataclass
class EnergyBreakdown:
    """Joules per category (the paper's DP4 breakdown categories)."""

    pe_compute: float = 0.0
    sram_read: float = 0.0
    sram_write: float = 0.0
    dram: float = 0.0
    leakage: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.pe_compute + self.sram_read + self.sram_write + self.dram + self.leakage
        )

    def fractions(self) -> dict[str, float]:
        total = self.total
        if total == 0:
            return {}
        return {
            "PE": self.pe_compute / total,
            "SRAM read": self.sram_read / total,
            "SRAM write": self.sram_write / total,
            "Leakage": self.leakage / total,
            "DRAM": self.dram / total,
        }


def estimate_energy(
    traffic: TrafficCounters,
    distance_computations: int,
    runtime_seconds: float,
    config: AcceleratorConfig,
    parameters: EnergyParameters | None = None,
) -> EnergyBreakdown:
    """Convert activity counts into an energy breakdown."""
    params = parameters or EnergyParameters()
    breakdown = EnergyBreakdown()
    breakdown.pe_compute = distance_computations * params.distance_computation_pj * 1e-12

    for buffer_name in params.sram_read_pj:
        reads, writes = traffic.reads_writes(buffer_name)
        breakdown.sram_read += reads * params.sram_read_pj[buffer_name] * 1e-12
        breakdown.sram_write += writes * params.sram_write_pj[buffer_name] * 1e-12

    breakdown.dram = traffic.dram * params.dram_pj_per_word * 1e-12
    breakdown.leakage = params.leakage_watts * runtime_seconds
    return breakdown
