"""Area model (paper Sec. 6.2).

The paper reports, for the 64 RU / 32 SU / 32 PE configuration at
16 nm: 8.38 mm^2 of SRAM and 7.19 mm^2 of combinational logic — 53.8 %
memory, 46.2 % compute.  This model reproduces those numbers with two
density constants (mm^2 per KB of SRAM; mm^2 per distance-compute
datapath) and scales them across configurations for the sensitivity
study (Fig. 14's hardware sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.config import AcceleratorConfig

__all__ = ["AreaParameters", "AreaReport", "estimate_area"]


@dataclass(frozen=True)
class AreaParameters:
    """Density constants calibrated to the paper's design point.

    8.38 mm^2 / 9068.8 KB total SRAM and 7.19 mm^2 / (64 RU + 1024 PE)
    distance datapaths yield the defaults below.
    """

    sram_mm2_per_kb: float = 8.38 / 9068.8
    datapath_mm2_per_unit: float = 7.19 / (64 + 32 * 32)


@dataclass
class AreaReport:
    """Area split for one configuration, in mm^2."""

    sram_mm2: float
    logic_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.sram_mm2 + self.logic_mm2

    @property
    def sram_fraction(self) -> float:
        return self.sram_mm2 / self.total_mm2 if self.total_mm2 else 0.0

    @property
    def logic_fraction(self) -> float:
        return self.logic_mm2 / self.total_mm2 if self.total_mm2 else 0.0


def estimate_area(
    config: AcceleratorConfig, parameters: AreaParameters | None = None
) -> AreaReport:
    """Estimate die area for a configuration.

    Every RU and every PE is dominated by its 32-bit floating-point
    euclidean-distance datapath (paper Sec. 6.2), so logic area scales
    with the unit count; SRAM area scales with total buffer capacity.
    """
    params = parameters or AreaParameters()
    sram = config.total_sram_kb * params.sram_mm2_per_kb
    units = config.n_recursion_units + config.total_pes
    logic = units * params.datapath_mm2_per_unit
    return AreaReport(sram_mm2=sram, logic_mm2=logic)
