"""Trace-driven model of the Tigris accelerator and its baselines.

* :class:`AcceleratorConfig` — the hardware design point (RU/SU/PE
  counts, buffer sizes, the Fig. 12/13 ablation switches);
* :func:`build_workload` / :func:`registration_workload` — capture
  functional search traces;
* :class:`TigrisSimulator` — cycle-approximate timing + energy;
* :class:`CPUModel` / :class:`GPUModel` — the baseline devices;
* :func:`estimate_area` — the Sec. 6.2 area split.
"""

from repro.accel.area import AreaParameters, AreaReport, estimate_area
from repro.accel.backend import BackEndReport, simulate_backend
from repro.accel.baselines import CPUModel, DeviceReport, GPUModel
from repro.accel.config import AcceleratorConfig, BackEndConfig, FrontEndConfig
from repro.accel.coupled import CoupledTiming, simulate_coupled
from repro.accel.endtoend import EndToEndModel, SystemPhase, amdahl_speedup
from repro.accel.energy import EnergyBreakdown, EnergyParameters, estimate_energy
from repro.accel.frontend import FrontEndReport, simulate_frontend
from repro.accel.memory import TrafficCounters
from repro.accel.simulator import SimulationResult, TigrisSimulator
from repro.accel.sweep import (
    HardwareSweep,
    HeightSweep,
    sweep_hardware,
    sweep_top_height,
)
from repro.accel.workload import SearchWorkload, build_workload, registration_workload

__all__ = [
    "AcceleratorConfig",
    "FrontEndConfig",
    "BackEndConfig",
    "TigrisSimulator",
    "SimulationResult",
    "SearchWorkload",
    "build_workload",
    "registration_workload",
    "simulate_frontend",
    "FrontEndReport",
    "simulate_backend",
    "BackEndReport",
    "TrafficCounters",
    "EnergyParameters",
    "EnergyBreakdown",
    "estimate_energy",
    "AreaParameters",
    "AreaReport",
    "estimate_area",
    "CPUModel",
    "GPUModel",
    "DeviceReport",
    "EndToEndModel",
    "SystemPhase",
    "amdahl_speedup",
    "HardwareSweep",
    "HeightSweep",
    "sweep_hardware",
    "sweep_top_height",
    "CoupledTiming",
    "simulate_coupled",
]
