"""Back-end (Search Unit) timing model (paper Sec. 5.3, Fig. 10).

Leaf visits issued by the front-end are routed to Search Units by the
leaf id's low-order bits (the paper's simple, insensitive mapping).
Each SU batches queries onto its PE array:

* **MQSN** — all PEs of a batch process queries from the *same* leaf
  set; the node stream is fetched once and flows through the systolic
  array (query-stationary).  Memory-efficient; utilization depends on
  how many same-leaf queries the issue logic can gather.
* **MQMN** — PEs take any queries; batches always fill, but every PE
  streams its own node set (traffic multiplies).

Per-batch cycles = pipeline fill + the longest node stream in the
batch, plus the leader-check computations of the approximate search
(executed on the same PEs, Sec. 5.3).  A per-SU LRU node cache serves
repeat leaf-set fetches, cutting Points Buffer traffic (Fig. 13).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.accel.config import AcceleratorConfig
from repro.accel.memory import TrafficCounters
from repro.accel.workload import SearchWorkload
from repro.core.trace import LeafVisitRecord

__all__ = ["BackEndReport", "simulate_backend"]


@dataclass
class BackEndReport:
    """Back-end simulation outcome."""

    cycles: int
    busy_cycles: int
    utilization: float
    traffic: TrafficCounters
    distance_computations: int
    n_batches: int
    node_cache_hits: int
    node_cache_misses: int


class _LeafLRUCache:
    """LRU cache of leaf-set node streams, keyed by leaf id."""

    def __init__(self, entries: int):
        self._capacity = entries
        self._entries: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, leaf_id: int) -> bool:
        """Record an access; returns True on hit."""
        if self._capacity == 0:
            self.misses += 1
            return False
        if leaf_id in self._entries:
            self._entries.move_to_end(leaf_id)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[leaf_id] = None
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        return False


def simulate_backend(
    workload: SearchWorkload, config: AcceleratorConfig
) -> BackEndReport:
    """Replay all leaf visits on the SU/PE arrays."""
    n_sus = config.n_search_units
    n_pes = config.pes_per_su
    backend = config.backend

    # Route active (non-pruned) leaf visits to SUs by leaf-id low bits.
    per_su: list[list[LeafVisitRecord]] = [[] for _ in range(n_sus)]
    for trace in workload.traces:
        for visit in trace.leaf_visits:
            if visit.pruned:
                continue
            per_su[visit.leaf_id % n_sus].append(visit)

    traffic = TrafficCounters()
    total_cycles = 0
    total_busy = 0
    total_batches = 0
    total_compute = 0
    cache_hits = 0
    cache_misses = 0

    for su_visits in per_su:
        if not su_visits:
            continue
        cache = _LeafLRUCache(backend.node_cache_entries)
        batches = _form_batches(
            su_visits, n_pes, backend.scheduling, backend.issue_window
        )
        su_cycles = 0
        for batch in batches:
            longest_stream = max(v.scanned for v in batch)
            longest_checks = max(v.leader_checks for v in batch)
            # Leader checks reuse the PE array in parallel (Sec. 5.3:
            # "We reuse the PEs in the SU for these computations"), so a
            # buffer of L leaders costs ceil(L / PEs) cycles, not L.
            check_cycles = -(-longest_checks // n_pes) if longest_checks else 0
            su_cycles += (
                1  # issue (associative search, amortized)
                + backend.pipeline_fill_cycles
                + check_cycles
                + longest_stream
            )
            total_busy += sum(v.scanned + v.leader_checks for v in batch)
            total_compute += sum(v.scanned + v.leader_checks for v in batch)

            # Memory traffic.
            traffic.be_query_buffer += len(batch)  # BQB pops
            traffic.query_buffer += len(batch)  # query point fetches
            precise = [v for v in batch if not v.approximate]
            followers = [v for v in batch if v.approximate]
            if backend.scheduling == "mqsn":
                # One shared node stream per batch (all same leaf).
                if precise:
                    stream = max(v.scanned for v in precise)
                    if cache.access(batch[0].leaf_id):
                        traffic.node_cache += stream
                    else:
                        traffic.points_buffer += stream
            else:
                # Every precise visit streams its own node set.
                for visit in precise:
                    if cache.access(visit.leaf_id):
                        traffic.node_cache += visit.scanned
                    else:
                        traffic.points_buffer += visit.scanned
            for visit in followers:
                traffic.result_buffer += visit.scanned  # leader-result reads
            for visit in batch:
                traffic.leader_buffer += visit.leader_checks
                traffic.result_buffer += max(visit.result_size, 1)  # writes
        total_cycles = max(total_cycles, su_cycles)
        total_batches += len(batches)
        cache_hits += cache.hits
        cache_misses += cache.misses

    # Result spills: the double-buffered Result Buffer writes final
    # results out to DRAM once per query result.
    traffic.dram += workload.total_results

    capacity = total_cycles * n_sus * n_pes
    utilization = total_busy / capacity if capacity else 0.0
    return BackEndReport(
        cycles=total_cycles,
        busy_cycles=total_busy,
        utilization=utilization,
        traffic=traffic,
        distance_computations=total_compute,
        n_batches=total_batches,
        node_cache_hits=cache_hits,
        node_cache_misses=cache_misses,
    )


def _form_batches(
    visits: list[LeafVisitRecord], n_pes: int, scheduling: str, window: int
) -> list[list[LeafVisitRecord]]:
    """Group visits into PE batches.

    MQSN mirrors the paper's issue logic: take the first query in the
    BE Query Buffer as the search key and associatively gather matching
    queries from the next ``window`` entries (Sec. 5.3 searches in
    groups of 32).  The key is (leaf id, precise/approximate): a
    systolic batch streams exactly one node source — the Input Point
    Buffer for precise visits, the Result Buffer for followers — so the
    two modes cannot share a pass.  Because the scheduling window is
    bounded, a leaf's visits recur across separated batches — which is
    exactly the reuse the node cache exists to capture.  MQMN batches
    are first-come-first-served regardless of leaf.
    """
    batches: list[list[LeafVisitRecord]] = []
    if scheduling == "mqsn":
        queue = deque(visits)
        while queue:
            key = queue.popleft()
            batch = [key]
            scanned: deque[LeafVisitRecord] = deque()
            examined = 0
            while queue and len(batch) < n_pes and examined < window:
                candidate = queue.popleft()
                examined += 1
                if (
                    candidate.leaf_id == key.leaf_id
                    and candidate.approximate == key.approximate
                ):
                    batch.append(candidate)
                else:
                    scanned.append(candidate)
            # Unmatched entries return to the queue head in order.
            queue.extendleft(reversed(scanned))
            batches.append(batch)
    else:
        for start in range(0, len(visits), n_pes):
            batches.append(visits[start : start + n_pes])
    return batches
