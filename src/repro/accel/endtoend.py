"""End-to-end registration speedup and power (paper Sec. 6.3).

The accelerator replaces only the KD-tree searches; the rest of the
pipeline still runs on the host CPU.  The paper's headline end-to-end
numbers — 41.7 % faster registration and 3.0x lower power for DP7 —
therefore follow from Amdahl's law over the measured KD-tree time
fraction (Fig. 4b) and the search speedup (Fig. 11), plus a
time-weighted power average over the two phases.  This module makes
that coupling explicit and reusable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SystemPhase", "EndToEndModel", "amdahl_speedup"]


def amdahl_speedup(accelerated_fraction: float, speedup: float) -> float:
    """Overall speedup when ``accelerated_fraction`` of time gets
    ``speedup`` and the rest is unchanged."""
    if not 0.0 <= accelerated_fraction <= 1.0:
        raise ValueError("accelerated_fraction must be in [0, 1]")
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    return 1.0 / ((1.0 - accelerated_fraction) + accelerated_fraction / speedup)


@dataclass(frozen=True)
class SystemPhase:
    """One phase of the end-to-end run: a duration on a device."""

    seconds: float
    watts: float

    @property
    def joules(self) -> float:
        return self.seconds * self.watts


@dataclass
class EndToEndModel:
    """Couples search-device choice with the host pipeline.

    ``kdtree_fraction``
        Share of baseline end-to-end time spent in KD-tree search (the
        Fig. 4b measurement; 0.5-0.85 across design points).
    ``baseline_total_seconds``
        End-to-end registration time of the baseline system.
    ``host_watts``
        CPU power while running the non-search stages.
    """

    kdtree_fraction: float
    baseline_total_seconds: float
    host_watts: float = 85.0

    def __post_init__(self):
        if not 0.0 < self.kdtree_fraction < 1.0:
            raise ValueError("kdtree_fraction must be in (0, 1)")
        if self.baseline_total_seconds <= 0:
            raise ValueError("baseline_total_seconds must be positive")

    @property
    def baseline_search_seconds(self) -> float:
        return self.kdtree_fraction * self.baseline_total_seconds

    @property
    def other_seconds(self) -> float:
        return (1.0 - self.kdtree_fraction) * self.baseline_total_seconds

    def system(
        self, search_seconds: float, search_watts: float
    ) -> tuple[float, float]:
        """(total seconds, average watts) with the given search device.

        The host phase is unchanged; power is the time-weighted average
        across the two phases (how a wall-power meter would read it).
        """
        if search_seconds < 0 or search_watts < 0:
            raise ValueError("search phase must be non-negative")
        host = SystemPhase(self.other_seconds, self.host_watts)
        search = SystemPhase(search_seconds, search_watts)
        total = host.seconds + search.seconds
        average_watts = (host.joules + search.joules) / total if total else 0.0
        return total, average_watts

    def speedup_over_baseline(
        self,
        search_speedup: float,
        baseline_search_watts: float,
        accelerated_search_watts: float,
    ) -> tuple[float, float]:
        """(end-to-end speedup, end-to-end power reduction).

        ``search_speedup`` is the Fig. 11 KD-tree-search speedup of the
        accelerator over the baseline search device.
        """
        base_total, base_watts = self.system(
            self.baseline_search_seconds, baseline_search_watts
        )
        accel_total, accel_watts = self.system(
            self.baseline_search_seconds / search_speedup,
            accelerated_search_watts,
        )
        return base_total / accel_total, base_watts / accel_watts
