"""The Pareto-optimal design points DP1-DP8 (paper Sec. 3.2, Fig. 3/4).

The paper's design-space exploration identifies eight Pareto-optimal
configurations of the registration pipeline, spanning the spectrum from
performance-oriented (DP4: tight radii, cheap algorithms) to
accuracy-oriented (DP7: wide radii, RANSAC, point-to-plane).  The exact
KITTI-tuned parameter values are not published; these configurations
follow the paper's qualitative descriptions — e.g. Sec. 6.3: "the
Normal Estimation stage in DP4 uses a radius of 0.30 while using a
radius of 0.75 in DP7" — and span the same knob axes (Table 1) so the
DSE and bottleneck analyses reproduce the paper's *shape*.

Use :func:`design_point` to get a fresh config, or iterate
``DESIGN_POINT_NAMES``.  The evaluation section's two featured points
are aliased as :func:`dp4_performance` and :func:`dp7_accuracy`.
"""

from __future__ import annotations

from repro.core.approx import ApproximateSearchConfig
from repro.registration.correspondence import KPCEConfig, RPCEConfig
from repro.registration.descriptors import DescriptorConfig
from repro.registration.icp import ICPConfig
from repro.registration.keypoints import KeypointConfig
from repro.registration.normals import NormalEstimationConfig
from repro.registration.pipeline import PipelineConfig
from repro.registration.rejection import RejectionConfig
from repro.registration.search import SearchConfig

__all__ = [
    "DESIGN_POINT_NAMES",
    "design_point",
    "dp4_performance",
    "dp7_accuracy",
]

DESIGN_POINT_NAMES = tuple(f"DP{i}" for i in range(1, 9))


def design_point(name: str, scale: float = 1.0) -> PipelineConfig:
    """Return the named design point's pipeline configuration.

    ``scale`` multiplies all metric radii/thresholds, letting the same
    design points run on scenes of different point density (tests use
    scaled-down synthetic frames).
    """
    if name not in DESIGN_POINT_NAMES:
        raise ValueError(f"unknown design point {name!r}; use one of {DESIGN_POINT_NAMES}")
    factory = _FACTORIES[name]
    return factory(scale)


def dp4_performance(scale: float = 1.0) -> PipelineConfig:
    """DP4 — the performance-oriented point featured in Sec. 6 (Fig. 11b)."""
    return design_point("DP4", scale)


def dp7_accuracy(scale: float = 1.0) -> PipelineConfig:
    """DP7 — the accuracy-oriented point featured in Sec. 6 (Fig. 11a)."""
    return design_point("DP7", scale)


def _base_icp(
    metric: str,
    solver: str = "svd",
    max_iterations: int = 25,
    max_distance: float = 2.0,
    rpce_method: str = "nearest",
) -> ICPConfig:
    return ICPConfig(
        rpce=RPCEConfig(method=rpce_method, max_distance=max_distance),
        error_metric=metric,
        solver=solver,
        max_iterations=max_iterations,
        transformation_epsilon=1e-5,
        fitness_epsilon=1e-6,
    )


def _dp1(scale: float) -> PipelineConfig:
    """Fastest: uniform keypoints, FPFH, threshold rejection, few iters."""
    return PipelineConfig(
        normals=NormalEstimationConfig(method="plane_svd", radius=0.30 * scale),
        keypoints=KeypointConfig(method="uniform", params={"voxel_size": 4.0 * scale}),
        descriptor=DescriptorConfig(method="fpfh", radius=0.8 * scale),
        kpce=KPCEConfig(reciprocal=False),
        rejection=RejectionConfig(
            method="threshold", distance_threshold=None, one_to_one=True
        ),
        icp=_base_icp("point_to_point", max_iterations=10, max_distance=1.5 * scale),
        search=SearchConfig(),
    )


def _dp2(scale: float) -> PipelineConfig:
    """Fast: Harris keypoints, FPFH, threshold rejection."""
    return PipelineConfig(
        normals=NormalEstimationConfig(method="plane_svd", radius=0.30 * scale),
        keypoints=KeypointConfig(
            method="harris", params={"radius": 1.0 * scale, "threshold": 5e-5}
        ),
        descriptor=DescriptorConfig(method="fpfh", radius=1.0 * scale),
        kpce=KPCEConfig(reciprocal=False),
        rejection=RejectionConfig(method="threshold", one_to_one=True),
        icp=_base_icp("point_to_point", max_iterations=15, max_distance=1.5 * scale),
        search=SearchConfig(),
    )


def _dp3(scale: float) -> PipelineConfig:
    """Balanced: NARF keypoints, FPFH, RANSAC."""
    return PipelineConfig(
        normals=NormalEstimationConfig(method="plane_svd", radius=0.40 * scale),
        keypoints=KeypointConfig(
            method="narf", params={"support_size": 2.0 * scale}
        ),
        descriptor=DescriptorConfig(method="fpfh", radius=1.0 * scale),
        kpce=KPCEConfig(reciprocal=True),
        rejection=RejectionConfig(
            method="ransac", ransac_threshold=0.8 * scale, ransac_iterations=150
        ),
        icp=_base_icp("point_to_point", max_iterations=20, max_distance=2.0 * scale),
        search=SearchConfig(),
    )


def _dp4(scale: float) -> PipelineConfig:
    """Performance-oriented featured point: tight radii (NE 0.30)."""
    return PipelineConfig(
        normals=NormalEstimationConfig(method="plane_svd", radius=0.30 * scale),
        keypoints=KeypointConfig(
            method="harris", params={"radius": 1.0 * scale, "threshold": 5e-5}
        ),
        descriptor=DescriptorConfig(method="fpfh", radius=1.0 * scale),
        kpce=KPCEConfig(reciprocal=True),
        rejection=RejectionConfig(
            method="ransac", ransac_threshold=0.6 * scale, ransac_iterations=200
        ),
        icp=_base_icp("point_to_point", max_iterations=20, max_distance=1.5 * scale),
        search=SearchConfig(),
    )


def _dp5(scale: float) -> PipelineConfig:
    """Balanced+: SIFT keypoints, FPFH, RANSAC, point-to-plane."""
    return PipelineConfig(
        normals=NormalEstimationConfig(method="plane_svd", radius=0.50 * scale),
        keypoints=KeypointConfig(
            method="sift",
            params={"min_scale": 0.4 * scale, "n_octaves": 2, "scales_per_octave": 2},
        ),
        descriptor=DescriptorConfig(method="fpfh", radius=1.2 * scale),
        kpce=KPCEConfig(reciprocal=True),
        rejection=RejectionConfig(
            method="ransac", ransac_threshold=0.6 * scale, ransac_iterations=200
        ),
        icp=_base_icp("point_to_plane", max_iterations=25, max_distance=2.0 * scale),
        search=SearchConfig(),
    )


def _dp6(scale: float) -> PipelineConfig:
    """Accuracy-leaning: SHOT descriptors, RANSAC, point-to-plane."""
    return PipelineConfig(
        normals=NormalEstimationConfig(method="plane_svd", radius=0.60 * scale),
        keypoints=KeypointConfig(
            method="harris", params={"radius": 1.2 * scale, "threshold": 2e-5}
        ),
        descriptor=DescriptorConfig(method="shot", radius=1.5 * scale),
        kpce=KPCEConfig(reciprocal=True, backend="bruteforce"),
        rejection=RejectionConfig(
            method="ransac", ransac_threshold=0.5 * scale, ransac_iterations=300
        ),
        icp=_base_icp("point_to_plane", max_iterations=30, max_distance=2.0 * scale),
        search=SearchConfig(),
    )


def _dp7(scale: float) -> PipelineConfig:
    """Accuracy-oriented featured point: wide radii (NE 0.75)."""
    return PipelineConfig(
        normals=NormalEstimationConfig(method="plane_svd", radius=0.75 * scale),
        keypoints=KeypointConfig(
            method="harris", params={"radius": 1.2 * scale, "threshold": 2e-5}
        ),
        descriptor=DescriptorConfig(method="fpfh", radius=1.5 * scale),
        kpce=KPCEConfig(reciprocal=True),
        rejection=RejectionConfig(
            method="ransac", ransac_threshold=0.5 * scale, ransac_iterations=300
        ),
        icp=_base_icp("point_to_plane", max_iterations=30, max_distance=2.5 * scale),
        search=SearchConfig(),
    )


def _dp8(scale: float) -> PipelineConfig:
    """Most accurate/expensive: AreaWeighted normals, widest radii, LM."""
    return PipelineConfig(
        normals=NormalEstimationConfig(method="area_weighted", radius=0.90 * scale),
        keypoints=KeypointConfig(
            method="harris", params={"radius": 1.5 * scale, "threshold": 1e-5}
        ),
        descriptor=DescriptorConfig(method="fpfh", radius=1.8 * scale),
        kpce=KPCEConfig(reciprocal=True),
        rejection=RejectionConfig(
            method="ransac", ransac_threshold=0.4 * scale, ransac_iterations=400
        ),
        icp=_base_icp(
            "point_to_plane", solver="lm", max_iterations=35, max_distance=2.5 * scale
        ),
        search=SearchConfig(),
    )


_FACTORIES = {
    "DP1": _dp1,
    "DP2": _dp2,
    "DP3": _dp3,
    "DP4": _dp4,
    "DP5": _dp5,
    "DP6": _dp6,
    "DP7": _dp7,
    "DP8": _dp8,
}


def approximate_variant(
    config: PipelineConfig,
    leaf_size: int = 128,
    approx: ApproximateSearchConfig | None = None,
) -> PipelineConfig:
    """Clone a design point with approximate search on the dense stages.

    Uses the paper's Sec. 6.3 settings by default: leaf sets ~128
    (top-tree height 10 on KITTI-sized frames), NN threshold 1.2 m and
    radius threshold 40 %.
    """
    clone = PipelineConfig(
        normals=config.normals,
        keypoints=config.keypoints,
        descriptor=config.descriptor,
        kpce=config.kpce,
        rejection=config.rejection,
        icp=config.icp,
        search=SearchConfig(
            backend="approximate",
            leaf_size=leaf_size,
            split_rule=config.search.split_rule,
            approx=approx or ApproximateSearchConfig(),
        ),
        injectors=dict(config.injectors),
        voxel_downsample=config.voxel_downsample,
        skip_initial_estimation=config.skip_initial_estimation,
    )
    return clone
