"""Surface normal estimation (pipeline stage 1, paper Sec. 3.1).

A point's normal is the 3D vector perpendicular to the tangent plane at
the point, computed from its radius neighborhood — making this stage one
of the heaviest KD-tree (radius search) consumers in the pipeline
(Fig. 4).  Two estimators from the paper's Table 1 (both from Klasing et
al., ICRA 2009) are provided:

``plane_svd``
    Fit a plane to the neighborhood by taking the eigenvector of the
    neighborhood covariance with the smallest eigenvalue (the PlaneSVD /
    PlanePCA family; identical results, eigh formulation).
``area_weighted``
    Average the normals of the triangles formed by the point and pairs
    of angularly adjacent neighbors, weighted by triangle area
    (AreaWeighted in Klasing's taxonomy).

Both also produce the *surface curvature* proxy lambda_0 / (lambda_0 +
lambda_1 + lambda_2) used by the SIFT/Harris keypoint detectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.io.pointcloud import PointCloud
from repro.registration.search import NeighborSearcher

__all__ = ["NormalEstimationConfig", "estimate_normals"]

_METHODS = ("plane_svd", "area_weighted")


@dataclass(frozen=True)
class NormalEstimationConfig:
    """Knobs of the Normal Estimation stage (Table 1).

    ``radius`` is the key parameter the paper sweeps (e.g. 0.30 in the
    performance-oriented DP4 vs. 0.75 in the accuracy-oriented DP7 —
    Sec. 6.3).  ``min_neighbors`` guards degenerate fits; points with
    fewer neighbors get a zero curvature and an upward normal.
    ``orient_towards`` fixes the sign ambiguity by pointing normals at
    the sensor origin (the LiDAR always sees front faces).
    """

    method: str = "plane_svd"
    radius: float = 0.5
    min_neighbors: int = 3
    orient_towards: tuple[float, float, float] = (0.0, 0.0, 0.0)

    def __post_init__(self):
        if self.method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}")
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.min_neighbors < 3:
            raise ValueError("min_neighbors must be >= 3 to define a plane")


def estimate_normals(
    cloud: PointCloud,
    searcher: NeighborSearcher,
    config: NormalEstimationConfig | None = None,
) -> PointCloud:
    """Attach ``normals`` and ``curvature`` attributes to a copy of ``cloud``.

    ``searcher`` must index the same points as ``cloud`` (the pipeline
    builds it over ``cloud.points``).
    """
    config = config or NormalEstimationConfig()
    points = cloud.points
    n = len(points)
    normals = np.zeros((n, 3))
    curvature = np.zeros(n)
    viewpoint = np.asarray(config.orient_towards, dtype=np.float64)

    # One batched radius search for the whole stage (the heaviest search
    # consumer in Fig. 4 issues a single call instead of n).
    all_neighbors, _ = searcher.radius_batch(points, config.radius)
    for i in range(n):
        neighbor_idx = all_neighbors[i]
        if len(neighbor_idx) < config.min_neighbors:
            normals[i] = (0.0, 0.0, 1.0)
            continue
        neighborhood = points[neighbor_idx]
        if config.method == "plane_svd":
            normal, curv = _plane_svd_normal(neighborhood)
        else:
            normal, curv = _area_weighted_normal(points[i], neighborhood)
        # Resolve the sign ambiguity: point towards the viewpoint.
        to_view = viewpoint - points[i]
        if normal @ to_view < 0:
            normal = -normal
        normals[i] = normal
        curvature[i] = curv

    result = cloud.copy()
    result.set_attribute("normals", normals)
    result.set_attribute("curvature", curvature)
    return result


def _plane_svd_normal(neighborhood: np.ndarray) -> tuple[np.ndarray, float]:
    """Smallest-eigenvector normal + curvature from the covariance."""
    centered = neighborhood - neighborhood.mean(axis=0)
    covariance = centered.T @ centered / len(neighborhood)
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    normal = eigenvectors[:, 0]
    total = float(eigenvalues.sum())
    curvature = float(eigenvalues[0]) / total if total > 1e-12 else 0.0
    norm = np.linalg.norm(normal)
    return (normal / norm if norm > 0 else np.array([0.0, 0.0, 1.0])), curvature


def _area_weighted_normal(
    point: np.ndarray, neighborhood: np.ndarray
) -> tuple[np.ndarray, float]:
    """Area-weighted average of fan-triangle normals around ``point``.

    Neighbors are sorted by angle in the tangent plane of a rough
    (PlaneSVD) normal, then consecutive pairs form triangles with the
    center point; the cross product of each triangle's edges is both its
    normal direction and (half) its area, so summing raw cross products
    is exactly the area weighting.
    """
    rough_normal, curvature = _plane_svd_normal(neighborhood)
    offsets = neighborhood - point
    # Project offsets into the tangent plane to get fan ordering.
    basis_u = np.cross(rough_normal, [1.0, 0.0, 0.0])
    if np.linalg.norm(basis_u) < 1e-8:
        basis_u = np.cross(rough_normal, [0.0, 1.0, 0.0])
    basis_u /= np.linalg.norm(basis_u)
    basis_v = np.cross(rough_normal, basis_u)
    angles = np.arctan2(offsets @ basis_v, offsets @ basis_u)
    order = np.argsort(angles, kind="stable")
    ring = offsets[order]
    # Sum of cross products of consecutive fan edges (wrapping around).
    crosses = np.cross(ring, np.roll(ring, -1, axis=0))
    total = crosses.sum(axis=0)
    norm = np.linalg.norm(total)
    if norm < 1e-12:
        return rough_normal, curvature
    normal = total / norm
    # Keep the orientation consistent with the rough estimate.
    if normal @ rough_normal < 0:
        normal = -normal
    return normal, curvature
