"""Surface normal estimation (pipeline stage 1, paper Sec. 3.1).

A point's normal is the 3D vector perpendicular to the tangent plane at
the point, computed from its radius neighborhood — making this stage one
of the heaviest KD-tree (radius search) consumers in the pipeline
(Fig. 4).  Two estimators from the paper's Table 1 (both from Klasing et
al., ICRA 2009) are provided:

``plane_svd``
    Fit a plane to the neighborhood by taking the eigenvector of the
    neighborhood covariance with the smallest eigenvalue (the PlaneSVD /
    PlanePCA family; identical results, eigh formulation).
``area_weighted``
    Average the normals of the triangles formed by the point and pairs
    of angularly adjacent neighbors, weighted by triangle area
    (AreaWeighted in Klasing's taxonomy).

Both also produce the *surface curvature* proxy lambda_0 / (lambda_0 +
lambda_1 + lambda_2) used by the SIFT/Harris keypoint detectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ragged import (
    RaggedNeighborhoods,
    batched_eigh,
    gathered_moment_covariances,
    segment_sum,
)
from repro.io.pointcloud import PointCloud
from repro.registration.search import NeighborSearcher

__all__ = ["NormalEstimationConfig", "estimate_normals"]

_METHODS = ("plane_svd", "area_weighted")


@dataclass(frozen=True)
class NormalEstimationConfig:
    """Knobs of the Normal Estimation stage (Table 1).

    ``radius`` is the key parameter the paper sweeps (e.g. 0.30 in the
    performance-oriented DP4 vs. 0.75 in the accuracy-oriented DP7 —
    Sec. 6.3).  ``min_neighbors`` guards degenerate fits; points with
    fewer neighbors get a zero curvature and an upward normal.
    ``orient_towards`` fixes the sign ambiguity by pointing normals at
    the sensor origin (the LiDAR always sees front faces).
    """

    method: str = "plane_svd"
    radius: float = 0.5
    min_neighbors: int = 3
    orient_towards: tuple[float, float, float] = (0.0, 0.0, 0.0)

    def __post_init__(self):
        if self.method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}")
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.min_neighbors < 3:
            raise ValueError("min_neighbors must be >= 3 to define a plane")


def estimate_normals(
    cloud: PointCloud,
    searcher: NeighborSearcher,
    config: NormalEstimationConfig | None = None,
) -> PointCloud:
    """Attach ``normals`` and ``curvature`` attributes to a copy of ``cloud``.

    ``searcher`` must index the same points as ``cloud`` (the pipeline
    builds it over ``cloud.points``).
    """
    config = config or NormalEstimationConfig()
    points = cloud.points
    viewpoint = np.asarray(config.orient_towards, dtype=np.float64)

    # One batched radius search for the whole stage (the heaviest search
    # consumer in Fig. 4 issues a single call instead of n), delivered
    # CSR-natively so every aggregation below is one dense batched
    # kernel with no per-query list round-trip.  The queries are the
    # indexed points themselves (``self_indices``), making this the
    # filling/reusing call of the nested-radius cache.
    ragged = searcher.radius_batch_csr(
        points, config.radius, self_indices=np.arange(len(points))
    )
    valid = ragged.counts >= config.min_neighbors

    if config.method == "plane_svd":
        normals, curvature = _plane_svd_batch(points, ragged, valid)
    else:
        normals, curvature = _area_weighted_batch(points, ragged, valid)

    # Resolve the sign ambiguity: point towards the viewpoint.
    flip = np.einsum("ij,ij->i", normals, viewpoint - points) < 0
    normals = np.where(flip[:, None], -normals, normals)
    # Sparse neighborhoods get a zero curvature and an upward normal.
    normals[~valid] = (0.0, 0.0, 1.0)
    curvature[~valid] = 0.0

    result = cloud.copy()
    result.set_attribute("normals", normals)
    result.set_attribute("curvature", curvature)
    return result


def _plane_svd_batch(
    points: np.ndarray, ragged: RaggedNeighborhoods, valid: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Smallest-eigenvector normals + curvatures, all neighborhoods at once.

    Stacked 3x3 covariances assembled from query-local segment moments,
    then a single batched ``eigh`` — the per-matrix LAPACK math is
    identical to the per-point formulation.
    """
    counts = ragged.counts
    covariances, _ = gathered_moment_covariances(
        points,
        ragged.indices,
        ragged.offsets,
        center_source=points,
        center_ids=ragged.segment_ids,
    )
    eigenvalues, eigenvectors = batched_eigh(covariances, valid)
    normals = eigenvectors[:, :, 0].copy()
    totals = eigenvalues.sum(axis=1)
    curvature = np.divide(
        eigenvalues[:, 0],
        np.where(totals > 1e-12, totals, 1.0),
        out=np.zeros(len(counts), dtype=np.float64),
        where=totals > 1e-12,
    )
    norms = np.linalg.norm(normals, axis=1)
    degenerate = norms == 0
    normals[degenerate] = (0.0, 0.0, 1.0)
    norms[degenerate] = 1.0
    return normals / norms[:, None], curvature


def _area_weighted_batch(
    points: np.ndarray, ragged: RaggedNeighborhoods, valid: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Area-weighted average of fan-triangle normals, batched.

    Per point, neighbors are sorted by angle in the tangent plane of a
    rough (PlaneSVD) normal, then consecutive pairs form triangles with
    the center point; the cross product of each triangle's edges is
    both its normal direction and (half) its area, so summing raw cross
    products is exactly the area weighting.  The fan ordering is a
    single global ``lexsort`` by (segment, angle) and the wrap-around
    "next neighbor in the ring" is an index shift within segments.
    """
    rough_normals, curvature = _plane_svd_batch(points, ragged, valid)

    segment_ids = ragged.segment_ids
    offsets_flat = points[ragged.indices] - points[segment_ids]
    # Tangent-plane bases from the rough normals, with the degenerate
    # (rough parallel to x-axis) fallback applied row-wise.
    basis_u = np.cross(rough_normals, [1.0, 0.0, 0.0])
    weak = np.linalg.norm(basis_u, axis=1) < 1e-8
    if np.any(weak):
        basis_u[weak] = np.cross(rough_normals[weak], [0.0, 1.0, 0.0])
    basis_u /= np.maximum(np.linalg.norm(basis_u, axis=1, keepdims=True), 1e-300)
    basis_v = np.cross(rough_normals, basis_u)

    angles = np.arctan2(
        np.einsum("ij,ij->i", offsets_flat, basis_v[segment_ids]),
        np.einsum("ij,ij->i", offsets_flat, basis_u[segment_ids]),
    )
    # Stable within-segment angle sort (matches per-point stable argsort).
    order = np.lexsort((angles, segment_ids))
    ring = offsets_flat[order]

    # "Next in ring" with per-segment wrap-around.
    nxt = np.arange(1, ragged.n_entries + 1, dtype=np.int64)
    nonempty = ragged.counts > 0
    if np.any(nonempty):
        nxt[ragged.offsets[1:][nonempty] - 1] = ragged.offsets[:-1][nonempty]
    crosses = np.cross(ring, ring[nxt]) if ragged.n_entries else ring
    totals = segment_sum(crosses, ragged.offsets)

    norms = np.linalg.norm(totals, axis=1)
    strong = norms >= 1e-12
    fan = totals / np.where(norms, norms, 1.0)[:, None]
    # Keep the orientation consistent with the rough estimate.
    against = np.einsum("ij,ij->i", fan, rough_normals) < 0
    fan = np.where(against[:, None], -fan, fan)
    normals = np.where(strong[:, None], fan, rough_normals)
    return normals, curvature
