"""NARF keypoint detector (paper Table 1: NARF [62]).

Steder et al.'s Normal Aligned Radial Feature detector operates on a
*range image* rather than the raw point set: it finds object borders
(range discontinuities), scores surface change in the neighborhood of
every image pixel, and selects stable surface points close to
significant change — typically object corners and silhouettes.

Our LiDAR frames are natively organized (``ring`` x ``azimuth``
channels from :mod:`repro.io.synthetic`), so the range image is exact;
for unorganized clouds a spherical projection is computed.  The
``support_size`` parameter (meters) is the "range" design knob of the
paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.io.pointcloud import PointCloud

__all__ = ["narf_keypoints", "RangeImage", "build_range_image"]


@dataclass
class RangeImage:
    """An organized range map with the producing point index per pixel."""

    ranges: np.ndarray  # (rows, cols), np.inf where no return
    point_index: np.ndarray  # (rows, cols) int, -1 where no return

    @property
    def shape(self) -> tuple[int, int]:
        return self.ranges.shape

    def valid_mask(self) -> np.ndarray:
        return np.isfinite(self.ranges)


def build_range_image(
    cloud: PointCloud,
    rows: int = 32,
    cols: int = 180,
) -> RangeImage:
    """Organize a cloud into a range image.

    Uses the LiDAR ``ring``/``azimuth`` attributes when present (exact);
    otherwise bins points by spherical coordinates around the sensor
    origin.  When several points land in one pixel the closest wins, as
    a real sensor would report.
    """
    points = cloud.points
    ranges = np.linalg.norm(points, axis=1)
    if cloud.has_attribute("ring") and cloud.has_attribute("azimuth"):
        row_idx = np.asarray(cloud.get_attribute("ring"), dtype=np.int64)
        col_idx = np.asarray(cloud.get_attribute("azimuth"), dtype=np.int64)
        n_rows = int(row_idx.max()) + 1 if len(row_idx) else rows
        n_cols = int(col_idx.max()) + 1 if len(col_idx) else cols
    else:
        elevation = np.arcsin(np.clip(points[:, 2] / np.maximum(ranges, 1e-9), -1, 1))
        azimuth = np.arctan2(points[:, 1], points[:, 0])
        el_lo, el_hi = elevation.min(), elevation.max() + 1e-9
        row_idx = ((elevation - el_lo) / (el_hi - el_lo) * (rows - 1)).astype(np.int64)
        # Azimuth convention matches the LiDAR scan layout: [0, 2*pi).
        col_idx = (np.mod(azimuth, 2 * np.pi) / (2 * np.pi) * (cols - 1)).astype(
            np.int64
        )
        n_rows, n_cols = rows, cols

    image = np.full((n_rows, n_cols), np.inf)
    index = np.full((n_rows, n_cols), -1, dtype=np.int64)
    for i in range(len(points)):
        r, c = row_idx[i], col_idx[i]
        if ranges[i] < image[r, c]:
            image[r, c] = ranges[i]
            index[r, c] = i
    return RangeImage(ranges=image, point_index=index)


def narf_keypoints(
    cloud: PointCloud,
    support_size: float = 2.0,
    border_threshold: float = 0.5,
    interest_threshold: float = 0.02,
    max_keypoints: int | None = None,
) -> np.ndarray:
    """Return indices of NARF keypoints.

    ``support_size`` (meters) sets both the surface-change window and
    the non-maximum-suppression radius; ``border_threshold`` (meters) is
    the range jump that declares an object border.
    """
    if support_size <= 0:
        raise ValueError("support_size must be positive")
    image = build_range_image(cloud)
    ranges = image.ranges
    rows, cols = image.shape
    valid = image.valid_mask()

    # 1. Border detection: range discontinuities along rows and columns
    # (columns wrap around: the scan is a full revolution).
    border = np.zeros((rows, cols), dtype=bool)
    right = np.roll(ranges, -1, axis=1)
    down = np.full_like(ranges, np.inf)
    down[:-1, :] = ranges[1:, :]
    # inf - inf at missing-return pixels is expected; the isfinite mask
    # discards those entries, so the invalid-op warning is suppressed.
    with np.errstate(invalid="ignore"):
        jump_h = np.abs(ranges - right)
        jump_v = np.abs(ranges - down)
    border |= np.isfinite(jump_h) & (jump_h > border_threshold)
    border |= np.isfinite(jump_v) & (jump_v > border_threshold)
    # A pixel next to a missing return is also a border.
    border |= valid & ~np.isfinite(right)
    border |= valid & ~np.isfinite(down)

    # 2. Surface-change score per pixel from the 3D covariance of the
    # support window, masked to non-border stable pixels.
    points = cloud.points
    interest = np.zeros((rows, cols))
    # Convert the metric support size to a pixel window per row block;
    # use the median range for a single global window size (the scan's
    # angular resolution is uniform).
    finite = ranges[valid]
    if len(finite) == 0:
        return np.empty(0, dtype=np.int64)
    typical_range = float(np.median(finite))
    angular_step = 2.0 * np.pi / cols
    window = max(1, int(round(support_size / max(typical_range * angular_step, 1e-6))))
    window = min(window, 8)  # bound the cost on coarse images

    for r in range(rows):
        for c in range(cols):
            if not valid[r, c] or border[r, c]:
                continue
            r0, r1 = max(0, r - window), min(rows, r + window + 1)
            cs = [(c + dc) % cols for dc in range(-window, window + 1)]
            patch_idx = image.point_index[r0:r1, cs]
            members = patch_idx[patch_idx >= 0]
            if len(members) < 5:
                continue
            neighborhood = points[members]
            centered = neighborhood - neighborhood.mean(axis=0)
            covariance = centered.T @ centered / len(members)
            eigenvalues = np.linalg.eigvalsh(covariance)
            total = eigenvalues.sum()
            if total <= 1e-12:
                continue
            surface_change = float(eigenvalues[0] / total)
            near_border = bool(border[r0:r1, cs].any())
            interest[r, c] = surface_change * (2.0 if near_border else 1.0)

    # 3. Threshold + greedy image-space non-maximum suppression.
    candidates = np.argwhere(interest > interest_threshold)
    if len(candidates) == 0:
        return np.empty(0, dtype=np.int64)
    scores = interest[candidates[:, 0], candidates[:, 1]]
    order = np.argsort(-scores, kind="stable")
    kept: list[int] = []
    kept_pixels: list[tuple[int, int]] = []
    for rank in order:
        r, c = candidates[rank]
        if any(
            abs(r - kr) <= window and _wrap_dist(c, kc, cols) <= window
            for kr, kc in kept_pixels
        ):
            continue
        kept.append(int(image.point_index[r, c]))
        kept_pixels.append((int(r), int(c)))
        if max_keypoints is not None and len(kept) >= max_keypoints:
            break
    return np.array(sorted(kept), dtype=np.int64)


def _wrap_dist(a: int, b: int, period: int) -> int:
    """Circular distance between two column indices."""
    d = abs(int(a) - int(b))
    return min(d, period - d)
