"""SIFT 3D keypoint detector (paper Table 1: SIFT [40, 59]).

The 3D adaptation of Lowe's scale-invariant feature transform used by
PCL: a per-point scalar signal (here surface curvature, the geometric
analogue of image intensity) is smoothed at a ladder of scales with
Gaussian-weighted neighborhood averages; differences of adjacent
smoothed signals (DoG) localize blob-like structure, and points that
are extrema of the DoG both spatially and across scale, with contrast
above a threshold, become keypoints.

The ``min_scale`` / ``n_octaves`` / ``scales_per_octave`` parameters are
the "scale" design knob of the paper's Table 1.
"""

from __future__ import annotations

import numpy as np

from repro.io.pointcloud import PointCloud
from repro.registration.search import NeighborSearcher

__all__ = ["sift_keypoints"]


def sift_keypoints(
    cloud: PointCloud,
    searcher: NeighborSearcher,
    min_scale: float = 0.5,
    n_octaves: int = 3,
    scales_per_octave: int = 2,
    contrast_threshold: float = 1e-4,
) -> np.ndarray:
    """Return indices of SIFT-3D keypoints.

    Requires ``cloud`` to carry a ``curvature`` attribute (produced by
    normal estimation), which serves as the scalar signal.
    """
    if not cloud.has_attribute("curvature"):
        raise ValueError("SIFT 3D requires curvature; run estimate_normals first")
    if min_scale <= 0:
        raise ValueError("min_scale must be positive")
    if n_octaves < 1 or scales_per_octave < 1:
        raise ValueError("need at least one octave and one scale per octave")

    points = cloud.points
    signal = np.asarray(cloud.get_attribute("curvature"), dtype=np.float64)
    n = len(points)

    # The scale ladder: geometric progression across octaves.
    scales = [
        min_scale * (2.0**octave) * (2.0 ** (s / scales_per_octave))
        for octave in range(n_octaves)
        for s in range(scales_per_octave + 1)
    ]
    scales = sorted(set(scales))

    # Smooth the signal at every scale with Gaussian-weighted neighbors.
    # One batched radius search at the widest support covers every scale.
    smoothed = np.empty((len(scales), n))
    max_radius = 2.0 * scales[-1]
    cache_idx, cache_dist = searcher.radius_batch(points, max_radius)
    neighbor_cache: list[tuple[np.ndarray, np.ndarray]] = list(
        zip(cache_idx, cache_dist)
    )
    for s, sigma in enumerate(scales):
        support = 2.0 * sigma
        for i in range(n):
            idx, dist = neighbor_cache[i]
            mask = dist <= support
            if not np.any(mask):
                smoothed[s, i] = signal[i]
                continue
            weights = np.exp(-0.5 * (dist[mask] / sigma) ** 2)
            smoothed[s, i] = float(
                np.sum(weights * signal[idx[mask]]) / np.sum(weights)
            )

    dog = np.diff(smoothed, axis=0)  # (n_scales - 1, n)

    # A keypoint is a spatial + scale extremum of the DoG with contrast.
    keypoints: list[int] = []
    for s in range(1, len(dog) - 1) if len(dog) > 2 else range(len(dog)):
        lower = dog[s - 1] if s - 1 >= 0 else None
        upper = dog[s + 1] if s + 1 < len(dog) else None
        sigma = scales[s]
        for i in range(n):
            value = dog[s, i]
            if abs(value) < contrast_threshold:
                continue
            idx, dist = neighbor_cache[i]
            mask = (dist <= sigma) & (idx != i)
            spatial = dog[s, idx[mask]]
            if len(spatial) == 0:
                continue
            is_max = value > spatial.max()
            is_min = value < spatial.min()
            if not (is_max or is_min):
                continue
            if lower is not None:
                neighborhood = np.append(lower[idx[mask]], lower[i])
                if is_max and value <= neighborhood.max():
                    continue
                if is_min and value >= neighborhood.min():
                    continue
            if upper is not None:
                neighborhood = np.append(upper[idx[mask]], upper[i])
                if is_max and value <= neighborhood.max():
                    continue
                if is_min and value >= neighborhood.min():
                    continue
            keypoints.append(i)

    return np.array(sorted(set(keypoints)), dtype=np.int64)
