"""SIFT 3D keypoint detector (paper Table 1: SIFT [40, 59]).

The 3D adaptation of Lowe's scale-invariant feature transform used by
PCL: a per-point scalar signal (here surface curvature, the geometric
analogue of image intensity) is smoothed at a ladder of scales with
Gaussian-weighted neighborhood averages; differences of adjacent
smoothed signals (DoG) localize blob-like structure, and points that
are extrema of the DoG both spatially and across scale, with contrast
above a threshold, become keypoints.

The ``min_scale`` / ``n_octaves`` / ``scales_per_octave`` parameters are
the "scale" design knob of the paper's Table 1.
"""

from __future__ import annotations

import numpy as np

from repro.core.ragged import segment_max, segment_min
from repro.io.pointcloud import PointCloud
from repro.registration.search import NeighborSearcher

__all__ = ["sift_keypoints"]


def sift_keypoints(
    cloud: PointCloud,
    searcher: NeighborSearcher,
    min_scale: float = 0.5,
    n_octaves: int = 3,
    scales_per_octave: int = 2,
    contrast_threshold: float = 1e-4,
) -> np.ndarray:
    """Return indices of SIFT-3D keypoints.

    Requires ``cloud`` to carry a ``curvature`` attribute (produced by
    normal estimation), which serves as the scalar signal.
    """
    if not cloud.has_attribute("curvature"):
        raise ValueError("SIFT 3D requires curvature; run estimate_normals first")
    if min_scale <= 0:
        raise ValueError("min_scale must be positive")
    if n_octaves < 1 or scales_per_octave < 1:
        raise ValueError("need at least one octave and one scale per octave")

    points = cloud.points
    signal = np.asarray(cloud.get_attribute("curvature"), dtype=np.float64)
    n = len(points)

    # The scale ladder: geometric progression across octaves.
    scales = [
        min_scale * (2.0**octave) * (2.0 ** (s / scales_per_octave))
        for octave in range(n_octaves)
        for s in range(scales_per_octave + 1)
    ]
    scales = sorted(set(scales))

    # Smooth the signal at every scale with Gaussian-weighted neighbors.
    # One batched radius search at the widest support covers every
    # scale; delivered CSR-natively, each scale's smoothing pass is two
    # bincounts over the flat arrays.
    smoothed = np.empty((len(scales), n))
    max_radius = 2.0 * scales[-1]
    ragged = searcher.radius_batch_csr(
        points, max_radius, self_indices=np.arange(n)
    )
    flat_idx, flat_dist = ragged.indices, ragged.distances
    segment_ids = ragged.segment_ids
    for s, sigma in enumerate(scales):
        in_support = flat_dist <= 2.0 * sigma
        ids = segment_ids[in_support]
        weights = np.exp(-0.5 * (flat_dist[in_support] / sigma) ** 2)
        numerator = np.bincount(
            ids, weights=weights * signal[flat_idx[in_support]], minlength=n
        )
        denominator = np.bincount(ids, weights=weights, minlength=n)
        covered = np.bincount(ids, minlength=n) > 0
        smoothed[s] = np.divide(
            numerator,
            np.where(covered, denominator, 1.0),
            out=signal.copy(),
            where=covered,
        )

    dog = np.diff(smoothed, axis=0)  # (n_scales - 1, n)

    # A keypoint is a spatial + scale extremum of the DoG with contrast.
    # Per scale, the masked per-neighborhood max/min become segment
    # reductions over +-inf-filled flat arrays.
    keypoint_mask = np.zeros(n, dtype=bool)
    not_self = flat_idx != segment_ids
    for s in range(1, len(dog) - 1) if len(dog) > 2 else range(len(dog)):
        lower = dog[s - 1] if s - 1 >= 0 else None
        upper = dog[s + 1] if s + 1 < len(dog) else None
        sigma = scales[s]
        value = dog[s]
        spatial_mask = (flat_dist <= sigma) & not_self
        has_neighbors = (
            np.bincount(segment_ids[spatial_mask], minlength=n) > 0
        )
        gathered = dog[s, flat_idx]
        is_max = value > segment_max(
            np.where(spatial_mask, gathered, -np.inf), ragged.offsets
        )
        is_min = value < segment_min(
            np.where(spatial_mask, gathered, np.inf), ragged.offsets
        )
        passes = (
            (np.abs(value) >= contrast_threshold)
            & has_neighbors
            & (is_max | is_min)
        )
        for band in (lower, upper):
            if band is None:
                continue
            gathered = band[flat_idx]
            band_max = np.maximum(
                segment_max(np.where(spatial_mask, gathered, -np.inf), ragged.offsets),
                band,
            )
            band_min = np.minimum(
                segment_min(np.where(spatial_mask, gathered, np.inf), ragged.offsets),
                band,
            )
            passes &= np.where(is_max, value > band_max, value < band_min)
        keypoint_mask |= passes

    return np.flatnonzero(keypoint_mask).astype(np.int64)
