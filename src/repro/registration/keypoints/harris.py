"""Harris 3D keypoint detector (paper Table 1: HARRIS [27, 61]).

Sipiran & Bustos' extension of the Harris corner detector to 3D
surfaces: instead of image gradients, the covariance of surface normals
over a support neighborhood plays the role of the structure tensor.
Corners — points whose neighborhoods bend in multiple directions — score
high; planar and cylindrical regions score low.
"""

from __future__ import annotations

import numpy as np

from repro.core.ragged import batched_eigh, gathered_moment_covariances
from repro.io.pointcloud import PointCloud
from repro.registration.search import NeighborSearcher

__all__ = ["harris_keypoints"]


def harris_keypoints(
    cloud: PointCloud,
    searcher: NeighborSearcher,
    radius: float = 1.0,
    k: float = 0.04,
    threshold: float = 1e-4,
    non_max_radius: float | None = None,
    response: str = "eigen_product",
) -> np.ndarray:
    """Return indices of Harris-3D keypoints.

    Parameters mirror PCL's ``HarrisKeypoint3D``: ``radius`` is the
    support for the normal-covariance structure tensor, ``k`` is the
    Harris trace weight, ``threshold`` drops weak responses, and
    ``non_max_radius`` (defaults to ``radius``) enforces spatial
    non-maximum suppression so keypoints spread over the frame.

    ``response`` selects the corner measure over the structure tensor's
    eigenvalues ``l1 <= l2 <= l3``:

    * ``"eigen_product"`` (default) — ``l1 * l2``, a Shi-Tomasi-style
      measure that is positive only where normals vary in at least two
      directions (true corners, pole junctions) and zero on planes *and*
      straight edges, which slide under registration.  On piecewise-
      planar LiDAR scenes the classic measure below is degenerate
      (``det`` vanishes whenever fewer than three plane orientations
      meet), so this is the robust default.
    * ``"harris"`` — the classic ``det - k * trace^2``.

    Requires ``cloud`` to carry normals (run normal estimation first).
    """
    if response not in ("eigen_product", "harris"):
        raise ValueError("response must be 'eigen_product' or 'harris'")
    if not cloud.has_normals:
        raise ValueError("Harris 3D requires normals; run estimate_normals first")
    if radius <= 0:
        raise ValueError("radius must be positive")
    points = cloud.points
    normals = cloud.normals

    # One batched radius search (nested-radius reusable: the queries
    # are the indexed points themselves), delivered CSR-natively, then
    # the normal-covariance structure tensors of every neighborhood
    # assembled and decomposed at once.
    ragged = searcher.radius_batch_csr(
        points, radius, self_indices=np.arange(len(points))
    )
    valid = ragged.counts >= 5

    # Neighbor normals are re-expressed relative to the center point's
    # normal (covariance is shift-invariant): normals cluster around
    # it, so the raw moments stay at difference scale instead of O(1),
    # keeping the cancellation in cov = M2/n - mean mean^T benign.
    tensors, _ = gathered_moment_covariances(
        normals,
        ragged.indices,
        ragged.offsets,
        center_source=normals,
        center_ids=ragged.segment_ids,
    )
    if response == "harris":
        det = np.linalg.det(tensors)
        trace = np.trace(tensors, axis1=1, axis2=2)
        scores = det - k * trace * trace
    else:
        eigenvalues, _ = batched_eigh(tensors, valid)
        scores = eigenvalues[:, 0] * eigenvalues[:, 1]
    scores = np.where(valid, scores, -np.inf)

    candidates = np.nonzero(scores > threshold)[0]
    if len(candidates) == 0:
        return candidates.astype(np.int64)
    return _non_max_suppress(
        points, scores, candidates, non_max_radius or radius
    )


def _non_max_suppress(
    points: np.ndarray,
    response: np.ndarray,
    candidates: np.ndarray,
    radius: float,
) -> np.ndarray:
    """Greedy spatial NMS: keep strongest, drop neighbors within radius."""
    order = candidates[np.argsort(-response[candidates], kind="stable")]
    kept: list[int] = []
    kept_points: list[np.ndarray] = []
    r_sq = radius * radius
    for idx in order:
        p = points[idx]
        if kept_points:
            existing = np.asarray(kept_points)
            diff = existing - p
            if np.any(np.einsum("ij,ij->i", diff, diff) < r_sq):
                continue
        kept.append(int(idx))
        kept_points.append(p)
    return np.array(sorted(kept), dtype=np.int64)
