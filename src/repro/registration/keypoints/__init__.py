"""Key-point detection (pipeline stage 2, paper Sec. 3.1).

Selects salient, representative points from source and target clouds so
the initial-estimation front-end operates on a sparse subset.  The
algorithm choices mirror the paper's Table 1 — NARF, SIFT, HARRIS —
plus a uniform voxel sampler as the cheap baseline the DSE sweeps over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.io.pointcloud import PointCloud
from repro.registration.keypoints.harris import harris_keypoints
from repro.registration.keypoints.narf import (
    RangeImage,
    build_range_image,
    narf_keypoints,
)
from repro.registration.keypoints.sift import sift_keypoints
from repro.registration.search import NeighborSearcher

__all__ = [
    "KeypointConfig",
    "detect_keypoints",
    "harris_keypoints",
    "sift_keypoints",
    "narf_keypoints",
    "uniform_keypoints",
    "RangeImage",
    "build_range_image",
]

_METHODS = ("harris", "sift", "narf", "uniform")


@dataclass(frozen=True)
class KeypointConfig:
    """Detector choice + per-detector parameters (Table 1 knobs).

    ``params`` is forwarded to the chosen detector, e.g.
    ``{"min_scale": 0.5}`` for SIFT ("scale" knob) or
    ``{"support_size": 2.0}`` for NARF ("range" knob).
    ``min_keypoints`` guards downstream stages: if the detector returns
    fewer, a uniform sample tops the set up (real pipelines do the same
    to avoid degenerate correspondence estimation).
    """

    method: str = "harris"
    params: dict = field(default_factory=dict)
    min_keypoints: int = 8

    def __post_init__(self):
        if self.method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}")


def uniform_keypoints(
    cloud: PointCloud, voxel_size: float = 2.0
) -> np.ndarray:
    """Voxel-grid subsampling as a keypoint baseline: one point per voxel."""
    if voxel_size <= 0:
        raise ValueError("voxel_size must be positive")
    points = cloud.points
    if len(points) == 0:
        return np.empty(0, dtype=np.int64)
    keys = np.floor(points / voxel_size).astype(np.int64)
    _, first = np.unique(keys, axis=0, return_index=True)
    return np.sort(first).astype(np.int64)


def detect_keypoints(
    cloud: PointCloud,
    searcher: NeighborSearcher,
    config: KeypointConfig | None = None,
) -> np.ndarray:
    """Run the configured detector; returns sorted point indices."""
    config = config or KeypointConfig()
    if config.method == "harris":
        indices = harris_keypoints(cloud, searcher, **config.params)
    elif config.method == "sift":
        indices = sift_keypoints(cloud, searcher, **config.params)
    elif config.method == "narf":
        indices = narf_keypoints(cloud, **config.params)
    else:
        indices = uniform_keypoints(cloud, **config.params)

    if len(indices) < config.min_keypoints and len(cloud) > 0:
        # Top up with a deterministic uniform sample over the remainder.
        missing = config.min_keypoints - len(indices)
        pool = np.setdiff1d(np.arange(len(cloud)), indices)
        if len(pool):
            step = max(1, len(pool) // max(missing, 1))
            extra = pool[::step][:missing]
            indices = np.sort(np.concatenate([indices, extra]))
    return indices.astype(np.int64)
