"""Controlled error injection into KD-tree search (paper Sec. 4.2, Fig. 7).

To quantify how tolerant registration is to inexact search, the paper
injects two kinds of errors:

* **k-th NN substitution** — NN search returns the k-th nearest
  neighbor instead of the nearest (Fig. 7a; ``k`` sweeps 1..9);
* **shell radius search** — radius search returns points inside the
  spherical shell ``<r1, r2>`` instead of the ball of radius ``r``
  (Fig. 7b; the paper sweeps r1 from 10 cm up with r2 >= r).

Injectors plug into :class:`~repro.registration.search.NeighborSearcher`
and post-process backend results, so any stage can be degraded
independently — dense stages (NE, RPCE) to demonstrate robustness,
sparse KPCE to demonstrate fragility.

Each injector exposes both scalar hooks (``nn``/``knn``/``radius``) and
batched hooks (``nn_batch``/``knn_batch``/``radius_batch``/
``radius_batch_csr``) so degraded stages ride the batch query layer at
full speed; the batched hooks post-process the backend's batched
results identically, row by row.  The CSR hooks keep results in the
flat :class:`~repro.core.ragged.RaggedNeighborhoods` form end-to-end —
the shell filter is one boolean mask over the flat distances rather
than a per-row loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KthNeighborInjector", "ShellRadiusInjector", "IdentityInjector"]


@dataclass(frozen=True)
class IdentityInjector:
    """Pass-through injector (useful as a control in experiments)."""

    def nn(self, index, query, stats):
        return index.nn(query, stats)

    def knn(self, index, query, k, stats):
        return index.knn(query, k, stats)

    def radius(self, index, query, r, stats, sort=False):
        return index.radius(query, r, stats, sort=sort)

    def nn_batch(self, index, queries, stats):
        return index.nn_batch(queries, stats)

    def knn_batch(self, index, queries, k, stats):
        return index.knn_batch(queries, k, stats)

    def radius_batch(self, index, queries, r, stats, sort=False):
        return index.radius_batch(queries, r, stats, sort=sort)

    def radius_batch_csr(self, index, queries, r, stats, sort=False):
        return index.radius_batch_csr(queries, r, stats, sort=sort)


@dataclass(frozen=True)
class KthNeighborInjector:
    """Replace NN results with the k-th nearest neighbor.

    ``k = 1`` is exact.  kNN queries are shifted accordingly (the i-th
    requested neighbor becomes the (i + k - 1)-th true neighbor), and
    radius queries pass through untouched.
    """

    k: int = 1

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("k must be >= 1")

    def nn(self, index, query, stats):
        indices, dists = index.knn(query, self.k, stats)
        if len(indices) == 0:
            return -1, np.inf
        return int(indices[-1]), float(dists[-1])

    def knn(self, index, query, k, stats):
        indices, dists = index.knn(query, k + self.k - 1, stats)
        return indices[self.k - 1 :], dists[self.k - 1 :]

    def radius(self, index, query, r, stats, sort=False):
        return index.radius(query, r, stats, sort=sort)

    def nn_batch(self, index, queries, stats):
        indices, dists = index.knn_batch(queries, self.k, stats)
        # Rows can be padded with -1/inf (approximate backend); take the
        # last *valid* neighbor per row, as the scalar hook does.
        valid = indices >= 0
        last = np.maximum(valid.sum(axis=1) - 1, 0)[:, None]
        out_idx = np.take_along_axis(indices, last, axis=1)[:, 0]
        out_dist = np.take_along_axis(dists, last, axis=1)[:, 0]
        empty = ~valid.any(axis=1)
        out_idx[empty] = -1
        out_dist[empty] = np.inf
        return out_idx, out_dist

    def knn_batch(self, index, queries, k, stats):
        indices, dists = index.knn_batch(queries, k + self.k - 1, stats)
        return indices[:, self.k - 1 :], dists[:, self.k - 1 :]

    def radius_batch(self, index, queries, r, stats, sort=False):
        return index.radius_batch(queries, r, stats, sort=sort)

    def radius_batch_csr(self, index, queries, r, stats, sort=False):
        return index.radius_batch_csr(queries, r, stats, sort=sort)


@dataclass(frozen=True)
class ShellRadiusInjector:
    """Replace radius-``r`` results with the shell ``<r1, r2>``.

    Points closer than ``r1`` are dropped and the search extends to
    ``r2``; with ``r1 = 0, r2 = r`` the search is exact.  NN/kNN queries
    pass through untouched.
    """

    r1: float
    r2: float

    def __post_init__(self):
        if self.r1 < 0 or self.r2 <= self.r1:
            raise ValueError("need 0 <= r1 < r2")

    def nn(self, index, query, stats):
        return index.nn(query, stats)

    def knn(self, index, query, k, stats):
        return index.knn(query, k, stats)

    def radius(self, index, query, r, stats, sort=False):
        indices, dists = index.radius(query, self.r2, stats, sort=sort)
        mask = dists >= self.r1
        return indices[mask], dists[mask]

    def nn_batch(self, index, queries, stats):
        return index.nn_batch(queries, stats)

    def knn_batch(self, index, queries, k, stats):
        return index.knn_batch(queries, k, stats)

    def radius_batch(self, index, queries, r, stats, sort=False):
        return self.radius_batch_csr(
            index, queries, r, stats, sort=sort
        ).to_list_pair()

    def radius_batch_csr(self, index, queries, r, stats, sort=False):
        result = index.radius_batch_csr(queries, self.r2, stats, sort=sort)
        return result.mask(result.distances >= self.r1)
