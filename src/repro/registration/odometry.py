"""Sequence odometry drivers (paper Sec. 2.2's motivating application).

Registers consecutive frames of a sequence, chains the relative
transforms into a trajectory, and scores it with the KITTI metrics —
the accuracy methodology of the paper's evaluation (Sec. 6.1).  The
drivers also implement the constant-velocity prior standard in LiDAR
odometry: each registration is seeded with the previous pair's motion,
which keeps ICP inside its convergence basin between frames.

Two drivers share that contract.  :func:`run_odometry` registers each
consecutive pair independently through ``Pipeline.register`` — simple,
but it preprocesses every interior frame twice (once as a pair's
source, once as the next pair's target).  :class:`StreamingOdometry`
feeds frames one at a time through the pipeline's per-frame/pairwise
split: each frame is preprocessed exactly once into a
:class:`~repro.registration.pipeline.FrameState`, used as pair ``k``'s
source, then handed over as pair ``k + 1``'s target.  Steady-state
per-pair cost drops to one preprocess plus one match — half the tree
builds and single-frame stage invocations — while trajectories stay
bit-identical to the pair-by-pair driver (the split only reorders
computation; ``tests/registration/test_streaming.py`` enforces it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import metrics
from repro.geometry.metrics import SequenceErrors
from repro.io.dataset import SyntheticSequence
from repro.io.pointcloud import PointCloud
from repro.profiling.timer import StageProfiler
from repro.registration.pipeline import (
    FrameState,
    Pipeline,
    RegistrationResult,
)
from repro.telemetry import tracer_of

__all__ = [
    "OdometryResult",
    "run_odometry",
    "StreamingOdometry",
    "run_streaming_odometry",
]


@dataclass
class OdometryResult:
    """Everything a sequence run produced.

    ``trajectory`` holds absolute poses in the first frame's coordinate
    system (starting at identity).  ``errors`` is filled only when
    ground-truth poses were available for scoring.
    """

    relatives: list[np.ndarray]
    trajectory: list[np.ndarray]
    pair_results: list[RegistrationResult]
    pair_seconds: list[float]
    profiler: StageProfiler
    errors: SequenceErrors | None = None
    per_pair_errors: list[tuple[float, float]] = field(default_factory=list)

    @property
    def n_pairs(self) -> int:
        return len(self.relatives)

    @property
    def mean_pair_seconds(self) -> float:
        if not self.pair_seconds:
            return 0.0
        return float(np.mean(self.pair_seconds))

    def summary(self) -> str:
        lines = [
            f"odometry over {self.n_pairs} pairs, "
            f"{self.mean_pair_seconds:.2f} s/pair"
        ]
        if self.errors is not None:
            lines.append(
                f"KITTI errors: {self.errors.translational_percent:.2f} % "
                f"translational, {self.errors.rotational:.4f} deg/m rotational"
            )
        for index, (rot, trans) in enumerate(self.per_pair_errors):
            lines.append(
                f"  pair {index}: rot {rot:.3f} deg, trans {trans:.3f} m"
            )
        return "\n".join(lines)


def run_odometry(
    frames: list[PointCloud] | SyntheticSequence,
    pipeline: Pipeline,
    ground_truth_poses: list[np.ndarray] | None = None,
    seed_with_previous: bool = True,
    max_pairs: int | None = None,
    tracer=None,
) -> OdometryResult:
    """Register a frame sequence into a trajectory.

    ``frames`` may be a plain list of clouds or a
    :class:`~repro.io.dataset.SyntheticSequence` (whose ground-truth
    poses are then used for scoring unless explicitly overridden).
    Passing a :class:`~repro.telemetry.Tracer` records a per-pair span
    tree (``pair -> preprocess/match -> stages``) for trace export.
    """
    frames, ground_truth_poses, n_pairs = _prepare_frames(
        frames, ground_truth_poses, max_pairs
    )

    profiler = StageProfiler()
    relatives: list[np.ndarray] = []
    pair_results: list[RegistrationResult] = []
    pair_seconds: list[float] = []
    previous: np.ndarray | None = None

    for index in range(n_pairs):
        source, target = frames[index + 1], frames[index]
        pair_profiler = StageProfiler(tracer=tracer)
        initial = previous if (seed_with_previous and previous is not None) else None
        start = time.perf_counter()
        with tracer_of(pair_profiler).span(
            "pair", index=index, seeded=initial is not None
        ):
            result = pipeline.register(source, target, initial=initial,
                                       profiler=pair_profiler)
        pair_seconds.append(time.perf_counter() - start)
        profiler.merge(pair_profiler)
        relatives.append(result.transformation)
        pair_results.append(result)
        previous = result.transformation

    return _score_run(
        relatives, pair_results, pair_seconds, profiler, ground_truth_poses
    )


def _prepare_frames(
    frames: list[PointCloud] | SyntheticSequence,
    ground_truth_poses: list[np.ndarray] | None,
    max_pairs: int | None,
) -> tuple[list[PointCloud], list[np.ndarray] | None, int]:
    """Normalize driver input: unwrap sequences, validate, clamp pairs."""
    if isinstance(frames, SyntheticSequence):
        if ground_truth_poses is None:
            ground_truth_poses = frames.poses
        frames = frames.frames
    if len(frames) < 2:
        raise ValueError("need at least two frames")
    n_pairs = len(frames) - 1
    if max_pairs is not None:
        n_pairs = min(n_pairs, max_pairs)
    return frames, ground_truth_poses, n_pairs


def _score_run(
    relatives: list[np.ndarray],
    pair_results: list[RegistrationResult],
    pair_seconds: list[float],
    profiler: StageProfiler,
    ground_truth_poses: list[np.ndarray] | None,
) -> OdometryResult:
    """Chain relatives into a trajectory and score against ground truth."""
    n_pairs = len(relatives)
    trajectory = metrics.trajectory_from_relative(relatives)

    errors = None
    per_pair: list[tuple[float, float]] = []
    if ground_truth_poses is not None:
        truth = list(ground_truth_poses)[: n_pairs + 1]
        if len(truth) != n_pairs + 1:
            raise ValueError("ground_truth_poses shorter than the run")
        errors = metrics.kitti_sequence_errors(trajectory, truth)
        gt_relatives = metrics.relative_from_trajectory(truth)
        per_pair = [
            metrics.pair_errors(estimate, gt)
            for estimate, gt in zip(relatives, gt_relatives)
        ]

    return OdometryResult(
        relatives=relatives,
        trajectory=trajectory,
        pair_results=pair_results,
        pair_seconds=pair_seconds,
        profiler=profiler,
        errors=errors,
        per_pair_errors=per_pair,
    )


class StreamingOdometry:
    """Streaming sequence odometry with cross-frame artifact reuse.

    Frames are fed one at a time via :meth:`push`.  The engine caches
    the trailing frame's :class:`~repro.registration.pipeline.FrameState`
    (search structure, normals, keypoints, descriptors) so
    that pair ``k``'s preprocessed *source* becomes pair ``k + 1``'s
    *target* without recomputation — the steady-state per-pair cost is
    one frame preprocess plus one pairwise match, versus two
    preprocesses plus a match for the pair-by-pair driver.  Results are
    bit-identical to :func:`run_odometry` with the same pipeline and
    seeding mode: the per-frame/pairwise split reorders computation but
    never changes it.

    Usage::

        engine = StreamingOdometry(pipeline)
        for frame in frames:
            engine.push(frame)          # returns a RegistrationResult
        result = engine.result(poses)   # once >= 2 frames were pushed
    """

    def __init__(
        self,
        pipeline: Pipeline,
        seed_with_previous: bool = True,
        tracer=None,
    ):
        self.pipeline = pipeline
        self.seed_with_previous = seed_with_previous
        # Optional repro.telemetry.Tracer: every push records a
        # "pair" (or "bootstrap") span with the pipeline spans nested
        # inside.  None (the default) costs nothing.
        self.tracer = tracer
        self.profiler = StageProfiler()
        self.relatives: list[np.ndarray] = []
        self.pair_results: list[RegistrationResult] = []
        self.pair_seconds: list[float] = []
        self._target_state: FrameState | None = None
        self._previous: np.ndarray | None = None
        self._n_frames = 0
        # Preprocessing time for the very first frame, folded into pair
        # 0's seconds so timing accounts match the pair-by-pair driver.
        self._pending_seconds = 0.0

    @property
    def n_frames(self) -> int:
        """How many frames have been pushed."""
        return self._n_frames

    @property
    def n_pairs(self) -> int:
        return len(self.relatives)

    @property
    def target_state(self) -> FrameState | None:
        """The cached trailing frame's preprocessed artifacts."""
        return self._target_state

    def push(self, frame: PointCloud) -> RegistrationResult | None:
        """Feed the next frame; registers it against the previous one.

        Returns the pair's :class:`RegistrationResult`, or ``None`` for
        the very first frame (which is only preprocessed and cached).
        """
        start = time.perf_counter()
        step_profiler = StageProfiler(tracer=self.tracer)
        tracer = tracer_of(step_profiler)
        self._n_frames += 1

        initial = (
            self._previous
            if (self.seed_with_previous and self._previous is not None)
            else None
        )
        run_initial = self.pipeline.runs_initial(initial)

        if self._target_state is None:
            # First frame: preprocess and wait for a partner.  Features
            # are computed only if pair 0 will run initial estimation.
            with tracer.span("bootstrap", frame=self._n_frames - 1):
                self._target_state = self.pipeline.preprocess(
                    frame, profiler=step_profiler, with_features=run_initial
                )
            self.profiler.merge(step_profiler)
            self._pending_seconds = time.perf_counter() - start
            return None

        with tracer.span(
            "pair", index=self.n_pairs, seeded=initial is not None
        ):
            source_state = self.pipeline.preprocess(
                frame, profiler=step_profiler, with_features=run_initial
            )
            # When this pair runs initial estimation, the cached target
            # was preprocessed with features too (its own pair was
            # unseeded as well); if that invariant ever breaks, match()
            # computes the missing features locally without caching
            # them back.
            result = self.pipeline.match(
                source_state,
                self._target_state,
                initial=initial,
                profiler=step_profiler,
            )

        self.pair_seconds.append(
            time.perf_counter() - start + self._pending_seconds
        )
        self._pending_seconds = 0.0
        self.profiler.merge(step_profiler)
        self.relatives.append(result.transformation)
        self.pair_results.append(result)
        self._previous = result.transformation
        # The handoff: this pair's source is the next pair's target.
        self._target_state = source_state
        return result

    def result(
        self, ground_truth_poses: list[np.ndarray] | None = None
    ) -> OdometryResult:
        """Chain the pairs registered so far into a scored trajectory.

        The returned result is a snapshot: further :meth:`push` calls
        do not mutate it.
        """
        if self.n_pairs == 0:
            raise ValueError("need at least two frames")
        profiler = StageProfiler()
        profiler.merge(self.profiler)
        return _score_run(
            list(self.relatives),
            list(self.pair_results),
            list(self.pair_seconds),
            profiler,
            ground_truth_poses,
        )


def run_streaming_odometry(
    frames: list[PointCloud] | SyntheticSequence,
    pipeline: Pipeline,
    ground_truth_poses: list[np.ndarray] | None = None,
    seed_with_previous: bool = True,
    max_pairs: int | None = None,
    tracer=None,
) -> OdometryResult:
    """Drop-in streaming counterpart of :func:`run_odometry`.

    Same signature, same scoring, same (bit-identical) trajectory —
    but frames flow through a :class:`StreamingOdometry` engine, so
    each is preprocessed once instead of twice.
    """
    frames, ground_truth_poses, n_pairs = _prepare_frames(
        frames, ground_truth_poses, max_pairs
    )

    engine = StreamingOdometry(
        pipeline, seed_with_previous=seed_with_previous, tracer=tracer
    )
    for frame in frames[: n_pairs + 1]:
        engine.push(frame)
    return engine.result(ground_truth_poses)
