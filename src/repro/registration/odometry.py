"""Sequence odometry driver (paper Sec. 2.2's motivating application).

Registers consecutive frames of a sequence, chains the relative
transforms into a trajectory, and scores it with the KITTI metrics —
the accuracy methodology of the paper's evaluation (Sec. 6.1).  The
driver also implements the constant-velocity prior standard in LiDAR
odometry: each registration is seeded with the previous pair's motion,
which keeps ICP inside its convergence basin between frames.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import metrics
from repro.geometry.metrics import SequenceErrors
from repro.io.dataset import SyntheticSequence
from repro.io.pointcloud import PointCloud
from repro.profiling.timer import StageProfiler
from repro.registration.pipeline import Pipeline, RegistrationResult

__all__ = ["OdometryResult", "run_odometry"]


@dataclass
class OdometryResult:
    """Everything a sequence run produced.

    ``trajectory`` holds absolute poses in the first frame's coordinate
    system (starting at identity).  ``errors`` is filled only when
    ground-truth poses were available for scoring.
    """

    relatives: list[np.ndarray]
    trajectory: list[np.ndarray]
    pair_results: list[RegistrationResult]
    pair_seconds: list[float]
    profiler: StageProfiler
    errors: SequenceErrors | None = None
    per_pair_errors: list[tuple[float, float]] = field(default_factory=list)

    @property
    def n_pairs(self) -> int:
        return len(self.relatives)

    @property
    def mean_pair_seconds(self) -> float:
        if not self.pair_seconds:
            return 0.0
        return float(np.mean(self.pair_seconds))

    def summary(self) -> str:
        lines = [
            f"odometry over {self.n_pairs} pairs, "
            f"{self.mean_pair_seconds:.2f} s/pair"
        ]
        if self.errors is not None:
            lines.append(
                f"KITTI errors: {self.errors.translational_percent:.2f} % "
                f"translational, {self.errors.rotational:.4f} deg/m rotational"
            )
        for index, (rot, trans) in enumerate(self.per_pair_errors):
            lines.append(
                f"  pair {index}: rot {rot:.3f} deg, trans {trans:.3f} m"
            )
        return "\n".join(lines)


def run_odometry(
    frames: list[PointCloud] | SyntheticSequence,
    pipeline: Pipeline,
    ground_truth_poses: list[np.ndarray] | None = None,
    seed_with_previous: bool = True,
    max_pairs: int | None = None,
) -> OdometryResult:
    """Register a frame sequence into a trajectory.

    ``frames`` may be a plain list of clouds or a
    :class:`~repro.io.dataset.SyntheticSequence` (whose ground-truth
    poses are then used for scoring unless explicitly overridden).
    """
    if isinstance(frames, SyntheticSequence):
        if ground_truth_poses is None:
            ground_truth_poses = frames.poses
        frames = frames.frames
    if len(frames) < 2:
        raise ValueError("need at least two frames")

    n_pairs = len(frames) - 1
    if max_pairs is not None:
        n_pairs = min(n_pairs, max_pairs)

    profiler = StageProfiler()
    relatives: list[np.ndarray] = []
    pair_results: list[RegistrationResult] = []
    pair_seconds: list[float] = []
    previous: np.ndarray | None = None

    for index in range(n_pairs):
        source, target = frames[index + 1], frames[index]
        pair_profiler = StageProfiler()
        initial = previous if (seed_with_previous and previous is not None) else None
        start = time.perf_counter()
        result = pipeline.register(source, target, initial=initial,
                                   profiler=pair_profiler)
        pair_seconds.append(time.perf_counter() - start)
        profiler.merge(pair_profiler)
        relatives.append(result.transformation)
        pair_results.append(result)
        previous = result.transformation

    trajectory = metrics.trajectory_from_relative(relatives)

    errors = None
    per_pair: list[tuple[float, float]] = []
    if ground_truth_poses is not None:
        truth = list(ground_truth_poses)[: n_pairs + 1]
        if len(truth) != n_pairs + 1:
            raise ValueError("ground_truth_poses shorter than the run")
        errors = metrics.kitti_sequence_errors(trajectory, truth)
        gt_relatives = metrics.relative_from_trajectory(truth)
        per_pair = [
            metrics.pair_errors(estimate, gt)
            for estimate, gt in zip(relatives, gt_relatives)
        ]

    return OdometryResult(
        relatives=relatives,
        trajectory=trajectory,
        pair_results=pair_results,
        pair_seconds=pair_seconds,
        profiler=profiler,
        errors=errors,
        per_pair_errors=per_pair,
    )
