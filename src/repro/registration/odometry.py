"""Sequence odometry drivers (paper Sec. 2.2's motivating application).

Registers consecutive frames of a sequence, chains the relative
transforms into a trajectory, and scores it with the KITTI metrics —
the accuracy methodology of the paper's evaluation (Sec. 6.1).  The
drivers also implement the constant-velocity prior standard in LiDAR
odometry: each registration is seeded with the previous pair's motion,
which keeps ICP inside its convergence basin between frames.

Two drivers share that contract.  :func:`run_odometry` registers each
consecutive pair independently through ``Pipeline.register`` — simple,
but it preprocesses every interior frame twice (once as a pair's
source, once as the next pair's target).  :class:`StreamingOdometry`
feeds frames one at a time through the pipeline's per-frame/pairwise
split: each frame is preprocessed exactly once into a
:class:`~repro.registration.pipeline.FrameState`, used as pair ``k``'s
source, then handed over as pair ``k + 1``'s target.  Steady-state
per-pair cost drops to one preprocess plus one match — half the tree
builds and single-frame stage invocations — while trajectories stay
bit-identical to the pair-by-pair driver (the split only reorders
computation; ``tests/registration/test_streaming.py`` enforces it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.geometry import metrics
from repro.geometry.metrics import SequenceErrors
from repro.io.dataset import SyntheticSequence
from repro.io.pointcloud import PointCloud
from repro.profiling.timer import StageProfiler
from repro.registration.health import (
    HealthConfig,
    RegistrationHealth,
    assess_registration,
)
from repro.registration.pipeline import (
    FrameState,
    Pipeline,
    RegistrationResult,
)
from repro.telemetry import tracer_of

__all__ = [
    "OdometryResult",
    "OdometryStats",
    "RecoveryConfig",
    "run_odometry",
    "StreamingOdometry",
    "run_streaming_odometry",
]


@dataclass
class OdometryStats:
    """Per-run health/recovery bookkeeping for the sequence drivers.

    Both drivers count non-converged ICP pairs (previously consumed
    silently); the streaming driver with a :class:`RecoveryConfig`
    additionally records per-pair health verdicts and every recovery
    rung it climbed.  ``pair_health``/``pair_actions`` are indexed by
    pair; ``failure_counts`` tallies
    :class:`~repro.registration.health.RegistrationHealth` reason codes
    across the run.
    """

    n_pairs: int = 0
    n_nonconverged: int = 0
    n_unhealthy: int = 0
    n_reseeded: int = 0
    n_widened: int = 0
    n_bridged: int = 0
    failure_counts: dict[str, int] = field(default_factory=dict)
    pair_health: list[RegistrationHealth | None] = field(default_factory=list)
    pair_actions: list[tuple[str, ...]] = field(default_factory=list)
    degraded_pairs: list[int] = field(default_factory=list)

    @property
    def n_recovered(self) -> int:
        """Pairs that started unhealthy but a retry rung salvaged."""
        return self.n_unhealthy - len(self.degraded_pairs)

    def snapshot(self) -> "OdometryStats":
        """An independent copy (results must not alias live state)."""
        return replace(
            self,
            failure_counts=dict(self.failure_counts),
            pair_health=list(self.pair_health),
            pair_actions=list(self.pair_actions),
            degraded_pairs=list(self.degraded_pairs),
        )

    def summary(self) -> str:
        parts = [
            f"{self.n_pairs} pairs: {self.n_nonconverged} non-converged ICP"
        ]
        if self.n_unhealthy:
            parts.append(
                f"{self.n_unhealthy} unhealthy "
                f"(reseeded {self.n_reseeded}, widened {self.n_widened}, "
                f"bridged {self.n_bridged})"
            )
        if self.failure_counts:
            reasons = ", ".join(
                f"{name} x{count}"
                for name, count in sorted(self.failure_counts.items())
            )
            parts.append(f"reasons: {reasons}")
        return "; ".join(parts)


@dataclass(frozen=True)
class RecoveryConfig:
    """The deterministic recovery ladder for unhealthy pairs.

    When a pair's :func:`~repro.registration.health.assess_registration`
    verdict fails, :class:`StreamingOdometry` escalates rung by rung,
    re-assessing after each, and accepts the first healthy attempt:

    1. *re-seed* — retry the match seeded from the constant-velocity
       motion model (skipped when the failed attempt already used that
       exact seed);
    2. *widen* — retry through a recovery pipeline with the RPCE
       correspondence distance and ICP iteration budget scaled up
       (pairwise knobs only, so cached FrameStates stay valid);
    3. *bridge* — give up on registration for this pair, substitute the
       motion-model prediction, and mark the pair degraded.

    Every rung is deterministic (no randomness, no retries with
    different seeds), so a given sequence always takes the same path.
    """

    health: HealthConfig = field(default_factory=HealthConfig)
    reseed_from_prior: bool = True
    widened_retry: bool = True
    rpce_distance_scale: float = 2.0
    icp_iteration_scale: float = 2.0
    bridge_with_prior: bool = True


@dataclass
class OdometryResult:
    """Everything a sequence run produced.

    ``trajectory`` holds absolute poses in the first frame's coordinate
    system (starting at identity).  ``errors`` is filled only when
    ground-truth poses were available for scoring.
    """

    relatives: list[np.ndarray]
    trajectory: list[np.ndarray]
    pair_results: list[RegistrationResult]
    pair_seconds: list[float]
    profiler: StageProfiler
    errors: SequenceErrors | None = None
    per_pair_errors: list[tuple[float, float]] = field(default_factory=list)
    stats: OdometryStats = field(default_factory=OdometryStats)

    @property
    def n_pairs(self) -> int:
        return len(self.relatives)

    @property
    def mean_pair_seconds(self) -> float:
        if not self.pair_seconds:
            return 0.0
        return float(np.mean(self.pair_seconds))

    def summary(self) -> str:
        lines = [
            f"odometry over {self.n_pairs} pairs, "
            f"{self.mean_pair_seconds:.2f} s/pair"
        ]
        if self.stats.n_nonconverged or self.stats.n_unhealthy:
            lines.append(f"health: {self.stats.summary()}")
        if self.errors is not None:
            lines.append(
                f"KITTI errors: {self.errors.translational_percent:.2f} % "
                f"translational, {self.errors.rotational:.4f} deg/m rotational"
            )
        for index, (rot, trans) in enumerate(self.per_pair_errors):
            lines.append(
                f"  pair {index}: rot {rot:.3f} deg, trans {trans:.3f} m"
            )
        return "\n".join(lines)


def run_odometry(
    frames: list[PointCloud] | SyntheticSequence,
    pipeline: Pipeline,
    ground_truth_poses: list[np.ndarray] | None = None,
    seed_with_previous: bool = True,
    max_pairs: int | None = None,
    tracer=None,
) -> OdometryResult:
    """Register a frame sequence into a trajectory.

    ``frames`` may be a plain list of clouds or a
    :class:`~repro.io.dataset.SyntheticSequence` (whose ground-truth
    poses are then used for scoring unless explicitly overridden).
    Passing a :class:`~repro.telemetry.Tracer` records a per-pair span
    tree (``pair -> preprocess/match -> stages``) for trace export.
    """
    frames, ground_truth_poses, n_pairs = _prepare_frames(
        frames, ground_truth_poses, max_pairs
    )

    profiler = StageProfiler()
    relatives: list[np.ndarray] = []
    pair_results: list[RegistrationResult] = []
    pair_seconds: list[float] = []
    previous: np.ndarray | None = None
    stats = OdometryStats()

    for index in range(n_pairs):
        source, target = frames[index + 1], frames[index]
        pair_profiler = StageProfiler(tracer=tracer)
        pair_tracer = tracer_of(pair_profiler)
        initial = previous if (seed_with_previous and previous is not None) else None
        start = time.perf_counter()
        with pair_tracer.span(
            "pair", index=index, seeded=initial is not None
        ):
            result = pipeline.register(source, target, initial=initial,
                                       profiler=pair_profiler)
            stats.n_pairs += 1
            if not result.icp.converged:
                stats.n_nonconverged += 1
                pair_tracer.count("odometry.nonconverged")
        pair_seconds.append(time.perf_counter() - start)
        profiler.merge(pair_profiler)
        relatives.append(result.transformation)
        pair_results.append(result)
        previous = result.transformation

    return _score_run(
        relatives, pair_results, pair_seconds, profiler, ground_truth_poses,
        stats=stats,
    )


def _prepare_frames(
    frames: list[PointCloud] | SyntheticSequence,
    ground_truth_poses: list[np.ndarray] | None,
    max_pairs: int | None,
) -> tuple[list[PointCloud], list[np.ndarray] | None, int]:
    """Normalize driver input: unwrap sequences, validate, clamp pairs."""
    if isinstance(frames, SyntheticSequence):
        if ground_truth_poses is None:
            ground_truth_poses = frames.poses
        frames = frames.frames
    if len(frames) < 2:
        raise ValueError("need at least two frames")
    n_pairs = len(frames) - 1
    if max_pairs is not None:
        n_pairs = min(n_pairs, max_pairs)
    return frames, ground_truth_poses, n_pairs


def _score_run(
    relatives: list[np.ndarray],
    pair_results: list[RegistrationResult],
    pair_seconds: list[float],
    profiler: StageProfiler,
    ground_truth_poses: list[np.ndarray] | None,
    stats: OdometryStats | None = None,
) -> OdometryResult:
    """Chain relatives into a trajectory and score against ground truth."""
    n_pairs = len(relatives)
    trajectory = metrics.trajectory_from_relative(relatives)

    errors = None
    per_pair: list[tuple[float, float]] = []
    if ground_truth_poses is not None:
        truth = list(ground_truth_poses)[: n_pairs + 1]
        if len(truth) != n_pairs + 1:
            raise ValueError("ground_truth_poses shorter than the run")
        errors = metrics.kitti_sequence_errors(trajectory, truth)
        gt_relatives = metrics.relative_from_trajectory(truth)
        per_pair = [
            metrics.pair_errors(estimate, gt)
            for estimate, gt in zip(relatives, gt_relatives)
        ]

    if stats is None:
        stats = OdometryStats(
            n_pairs=n_pairs,
            n_nonconverged=sum(
                1 for result in pair_results if not result.icp.converged
            ),
        )
    return OdometryResult(
        relatives=relatives,
        trajectory=trajectory,
        pair_results=pair_results,
        pair_seconds=pair_seconds,
        profiler=profiler,
        errors=errors,
        per_pair_errors=per_pair,
        stats=stats,
    )


class StreamingOdometry:
    """Streaming sequence odometry with cross-frame artifact reuse.

    Frames are fed one at a time via :meth:`push`.  The engine caches
    the trailing frame's :class:`~repro.registration.pipeline.FrameState`
    (search structure, normals, keypoints, descriptors) so
    that pair ``k``'s preprocessed *source* becomes pair ``k + 1``'s
    *target* without recomputation — the steady-state per-pair cost is
    one frame preprocess plus one pairwise match, versus two
    preprocesses plus a match for the pair-by-pair driver.  Results are
    bit-identical to :func:`run_odometry` with the same pipeline and
    seeding mode: the per-frame/pairwise split reorders computation but
    never changes it.

    Usage::

        engine = StreamingOdometry(pipeline)
        for frame in frames:
            engine.push(frame)          # returns a RegistrationResult
        result = engine.result(poses)   # once >= 2 frames were pushed
    """

    def __init__(
        self,
        pipeline: Pipeline,
        seed_with_previous: bool = True,
        tracer=None,
        recovery: RecoveryConfig | None = None,
    ):
        self.pipeline = pipeline
        self.seed_with_previous = seed_with_previous
        # Optional repro.telemetry.Tracer: every push records a
        # "pair" (or "bootstrap") span with the pipeline spans nested
        # inside.  None (the default) costs nothing.
        self.tracer = tracer
        # Optional failure-aware mode: assess every pair's health and
        # climb the RecoveryConfig ladder on unhealthy ones.  None (the
        # default) preserves the legacy consume-everything behavior
        # bit-for-bit; non-converged pairs are counted either way.
        self.recovery = recovery
        self.stats = OdometryStats()
        self.profiler = StageProfiler()
        self.relatives: list[np.ndarray] = []
        self.pair_results: list[RegistrationResult] = []
        self.pair_seconds: list[float] = []
        self._target_state: FrameState | None = None
        self._previous: np.ndarray | None = None
        self._n_frames = 0
        self._recovery_pipeline: Pipeline | None = None
        # Preprocessing time for the very first frame, folded into pair
        # 0's seconds so timing accounts match the pair-by-pair driver.
        self._pending_seconds = 0.0

    @property
    def n_frames(self) -> int:
        """How many frames have been pushed."""
        return self._n_frames

    @property
    def n_pairs(self) -> int:
        return len(self.relatives)

    @property
    def target_state(self) -> FrameState | None:
        """The cached trailing frame's preprocessed artifacts."""
        return self._target_state

    def push(self, frame: PointCloud) -> RegistrationResult | None:
        """Feed the next frame; registers it against the previous one.

        Returns the pair's :class:`RegistrationResult`, or ``None`` for
        the very first frame (which is only preprocessed and cached).
        """
        start = time.perf_counter()
        step_profiler = StageProfiler(tracer=self.tracer)
        tracer = tracer_of(step_profiler)
        self._n_frames += 1

        initial = (
            self._previous
            if (self.seed_with_previous and self._previous is not None)
            else None
        )
        run_initial = self.pipeline.runs_initial(initial)

        if self._target_state is None:
            # First frame: preprocess and wait for a partner.  Features
            # are computed only if pair 0 will run initial estimation.
            with tracer.span("bootstrap", frame=self._n_frames - 1):
                self._target_state = self.pipeline.preprocess(
                    frame, profiler=step_profiler, with_features=run_initial
                )
            self.profiler.merge(step_profiler)
            self._pending_seconds = time.perf_counter() - start
            return None

        with tracer.span(
            "pair", index=self.n_pairs, seeded=initial is not None
        ):
            source_state = self.pipeline.preprocess(
                frame, profiler=step_profiler, with_features=run_initial
            )
            # When this pair runs initial estimation, the cached target
            # was preprocessed with features too (its own pair was
            # unseeded as well); if that invariant ever breaks, match()
            # computes the missing features locally without caching
            # them back.
            result = self.pipeline.match(
                source_state,
                self._target_state,
                initial=initial,
                profiler=step_profiler,
            )

            health: RegistrationHealth | None = None
            actions: tuple[str, ...] = ()
            if self.recovery is not None:
                health = assess_registration(
                    result, self.recovery.health, prior=self._previous
                )
                if not health.healthy:
                    result, health, actions = self._recover(
                        source_state, initial, result, health,
                        step_profiler, tracer,
                    )

            self.stats.n_pairs += 1
            if not result.icp.converged:
                self.stats.n_nonconverged += 1
                tracer.count("odometry.nonconverged")
            self.stats.pair_health.append(health)
            self.stats.pair_actions.append(actions)
            if health is not None:
                for reason in health.reasons:
                    self.stats.failure_counts[reason] = (
                        self.stats.failure_counts.get(reason, 0) + 1
                    )
                tracer.annotate(
                    healthy=health.healthy,
                    degraded="bridge" in actions,
                    **(
                        {"recovery": ",".join(actions)} if actions else {}
                    ),
                )

        self.pair_seconds.append(
            time.perf_counter() - start + self._pending_seconds
        )
        self._pending_seconds = 0.0
        self.profiler.merge(step_profiler)
        self.relatives.append(result.transformation)
        self.pair_results.append(result)
        self._previous = result.transformation
        # The handoff: this pair's source is the next pair's target.
        self._target_state = source_state
        return result

    def _widened_pipeline(self) -> Pipeline:
        """The recovery pipeline: same config, widened pairwise budgets.

        Only pairwise knobs change (RPCE correspondence distance, ICP
        iteration budget), so every cached :class:`FrameState` remains
        valid for it — the same trick the loop closer uses for its
        verification matcher.  Built once, on first use.
        """
        if self._recovery_pipeline is None:
            recovery = self.recovery
            config = self.pipeline.config
            icp_config = replace(
                config.icp,
                rpce=replace(
                    config.icp.rpce,
                    max_distance=(
                        None
                        if config.icp.rpce.max_distance is None
                        else config.icp.rpce.max_distance
                        * recovery.rpce_distance_scale
                    ),
                ),
                max_iterations=max(
                    config.icp.max_iterations + 1,
                    int(
                        round(
                            config.icp.max_iterations
                            * recovery.icp_iteration_scale
                        )
                    ),
                ),
            )
            self._recovery_pipeline = Pipeline(replace(config, icp=icp_config))
        return self._recovery_pipeline

    def _recover(
        self,
        source_state: FrameState,
        initial: np.ndarray | None,
        result: RegistrationResult,
        health: RegistrationHealth,
        profiler: StageProfiler,
        tracer,
    ) -> tuple[RegistrationResult, RegistrationHealth, tuple[str, ...]]:
        """Climb the recovery ladder for one unhealthy pair.

        Returns the accepted (result, health, actions) — the first
        healthy retry, or the bridged/degraded outcome.  A bridged
        result carries the motion-model prediction as its
        transformation (so trajectory chaining and downstream consumers
        see the substitute) while keeping the failed attempt's ICP
        diagnostics.
        """
        recovery = self.recovery
        prior = self._previous
        actions: list[str] = []
        self.stats.n_unhealthy += 1
        tracer.count("odometry.unhealthy")

        # Retries are judged on intrinsic quality only: the prior
        # tolerances are disabled for re-assessment (deviations are
        # still recorded).  A prior disagreement means either a bad
        # solve or genuinely changed motion — and the retry is exactly
        # the experiment that distinguishes them.  If an independent
        # re-solve with a fresh seed / widened search is self-consistent
        # (converged, low RMSE, non-degenerate, physically plausible)
        # yet still disagrees with the motion model, the measurement
        # wins: bridging it away would hard-code the constant-velocity
        # assumption precisely when the platform broke it (e.g. the
        # double-length true motion across a dropped frame).
        retry_config = replace(
            recovery.health,
            prior_translation_tolerance=None,
            prior_rotation_tolerance_deg=None,
        )

        # Rung 1: re-seed from the constant-velocity motion model —
        # unless the failed attempt already used exactly that seed.
        if (
            recovery.reseed_from_prior
            and prior is not None
            and (initial is None or not np.array_equal(initial, prior))
        ):
            actions.append("reseed")
            self.stats.n_reseeded += 1
            tracer.count("odometry.reseeded")
            with tracer.span("recovery", rung="reseed"):
                candidate = self.pipeline.match(
                    source_state, self._target_state,
                    initial=prior, profiler=profiler,
                )
            candidate_health = assess_registration(
                candidate, retry_config, prior=prior
            )
            if candidate_health.healthy:
                return candidate, candidate_health, tuple(actions)
            result, health = candidate, candidate_health

        # Rung 2: widened correspondence/iteration budgets.
        if recovery.widened_retry:
            actions.append("widen")
            self.stats.n_widened += 1
            tracer.count("odometry.widened")
            with tracer.span("recovery", rung="widen"):
                candidate = self._widened_pipeline().match(
                    source_state, self._target_state,
                    initial=prior if prior is not None else initial,
                    profiler=profiler,
                )
            candidate_health = assess_registration(
                candidate, retry_config, prior=prior
            )
            if candidate_health.healthy:
                return candidate, candidate_health, tuple(actions)
            result, health = candidate, candidate_health

        # Rung 3: bridge the pair with the motion-model prediction and
        # mark it degraded.  Without a prior (pair 0 failing) the
        # unhealthy transform is kept — there is nothing to bridge with
        # — but the pair is still marked degraded for downstream gates.
        degraded_index = self.n_pairs
        self.stats.degraded_pairs.append(degraded_index)
        if recovery.bridge_with_prior and prior is not None:
            actions.append("bridge")
            self.stats.n_bridged += 1
            tracer.count("odometry.bridged")
            result = replace(result, transformation=np.array(prior))
        return result, health, tuple(actions)

    def result(
        self, ground_truth_poses: list[np.ndarray] | None = None
    ) -> OdometryResult:
        """Chain the pairs registered so far into a scored trajectory.

        The returned result is a snapshot: further :meth:`push` calls
        do not mutate it.
        """
        if self.n_pairs == 0:
            raise ValueError("need at least two frames")
        profiler = StageProfiler()
        profiler.merge(self.profiler)
        return _score_run(
            list(self.relatives),
            list(self.pair_results),
            list(self.pair_seconds),
            profiler,
            ground_truth_poses,
            stats=self.stats.snapshot(),
        )


def run_streaming_odometry(
    frames: list[PointCloud] | SyntheticSequence,
    pipeline: Pipeline,
    ground_truth_poses: list[np.ndarray] | None = None,
    seed_with_previous: bool = True,
    max_pairs: int | None = None,
    tracer=None,
    recovery: RecoveryConfig | None = None,
) -> OdometryResult:
    """Drop-in streaming counterpart of :func:`run_odometry`.

    Same signature, same scoring, same (bit-identical) trajectory —
    but frames flow through a :class:`StreamingOdometry` engine, so
    each is preprocessed once instead of twice.  ``recovery`` enables
    the failure-aware ladder (see :class:`RecoveryConfig`).
    """
    frames, ground_truth_poses, n_pairs = _prepare_frames(
        frames, ground_truth_poses, max_pairs
    )

    engine = StreamingOdometry(
        pipeline, seed_with_previous=seed_with_previous, tracer=tracer,
        recovery=recovery,
    )
    for frame in frames[: n_pairs + 1]:
        engine.push(frame)
    return engine.result(ground_truth_poses)
