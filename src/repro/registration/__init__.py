"""The configurable point cloud registration pipeline (paper Fig. 2).

Public API:

* :class:`Pipeline` / :class:`PipelineConfig` — the end-to-end
  registration pipeline with every Table-1 knob;
* :func:`design_point` — the DP1-DP8 Pareto-optimal configurations;
* the individual stage functions for composing custom pipelines
  (``estimate_normals``, ``detect_keypoints``, ``compute_descriptors``,
  ``estimate_feature_correspondences``, ``reject_correspondences``,
  ``icp``, ...).
"""

from repro.registration.correspondence import (
    Correspondences,
    KPCEConfig,
    RPCEConfig,
    estimate_feature_correspondences,
    estimate_point_correspondences,
)
from repro.registration.descriptors import DescriptorConfig, compute_descriptors
from repro.registration.design_points import (
    DESIGN_POINT_NAMES,
    approximate_variant,
    design_point,
    dp4_performance,
    dp7_accuracy,
)
from repro.registration.error_injection import (
    IdentityInjector,
    KthNeighborInjector,
    ShellRadiusInjector,
)
from repro.registration.estimation import (
    kabsch,
    levenberg_marquardt,
    point_to_plane,
)
from repro.registration.health import (
    HealthConfig,
    RegistrationHealth,
    assess_registration,
    translation_observability,
)
from repro.registration.icp import ICPConfig, ICPResult, icp
from repro.registration.keypoints import KeypointConfig, detect_keypoints
from repro.registration.normals import NormalEstimationConfig, estimate_normals
from repro.registration.odometry import (
    OdometryResult,
    OdometryStats,
    RecoveryConfig,
    StreamingOdometry,
    run_odometry,
    run_streaming_odometry,
)
from repro.registration.pipeline import (
    STAGE_NAMES,
    FrameState,
    Pipeline,
    PipelineConfig,
    RegistrationResult,
    register_pair,
)
from repro.registration.rejection import (
    RejectionConfig,
    reject_correspondences,
    reject_ransac,
)
from repro.registration.search import NeighborSearcher, SearchConfig, build_searcher

__all__ = [
    "Pipeline",
    "PipelineConfig",
    "RegistrationResult",
    "FrameState",
    "register_pair",
    "STAGE_NAMES",
    "DESIGN_POINT_NAMES",
    "design_point",
    "dp4_performance",
    "dp7_accuracy",
    "approximate_variant",
    "NormalEstimationConfig",
    "estimate_normals",
    "KeypointConfig",
    "detect_keypoints",
    "DescriptorConfig",
    "compute_descriptors",
    "KPCEConfig",
    "RPCEConfig",
    "Correspondences",
    "estimate_feature_correspondences",
    "estimate_point_correspondences",
    "RejectionConfig",
    "reject_correspondences",
    "reject_ransac",
    "ICPConfig",
    "ICPResult",
    "icp",
    "HealthConfig",
    "RegistrationHealth",
    "assess_registration",
    "translation_observability",
    "RecoveryConfig",
    "OdometryStats",
    "kabsch",
    "point_to_plane",
    "levenberg_marquardt",
    "SearchConfig",
    "NeighborSearcher",
    "build_searcher",
    "KthNeighborInjector",
    "ShellRadiusInjector",
    "IdentityInjector",
    "OdometryResult",
    "run_odometry",
    "StreamingOdometry",
    "run_streaming_odometry",
]
