"""Correspondence rejection (pipeline stage 5, paper Sec. 3.1).

Removes incorrect key-point correspondences before the initial
transformation is estimated.  Algorithm choices per Table 1: simple
distance thresholding and the classic RANSAC [19]; we additionally
provide Lowe's ratio test (the Table-1 "ratio threshold" knob) and
one-to-one de-duplication, both standard PCL rejectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import se3
from repro.registration.correspondence import Correspondences
from repro.registration.estimation import kabsch

__all__ = [
    "RejectionConfig",
    "reject_correspondences",
    "reject_distance",
    "reject_ratio",
    "reject_one_to_one",
    "reject_ransac",
    "RansacResult",
]


@dataclass(frozen=True)
class RejectionConfig:
    """Rejector choice + thresholds (Table 1 knobs).

    ``method``
        ``"threshold"`` applies the distance (and optional ratio)
        thresholds only; ``"ransac"`` additionally runs RANSAC and
        keeps its inlier set.
    ``distance_threshold``
        Maximum allowed *match* distance (feature-space units for KPCE
        output); ``None`` disables.
    ``ratio_threshold``
        Lowe's best/second-best ratio; ``None`` disables.  Requires the
        correspondences to carry ``second_distances``.
    ``ransac_threshold``
        3D inlier distance for RANSAC (meters).
    """

    method: str = "ransac"
    distance_threshold: float | None = None
    ratio_threshold: float | None = None
    one_to_one: bool = True
    ransac_threshold: float = 0.5
    ransac_iterations: int = 200
    ransac_seed: int = 0

    def __post_init__(self):
        if self.method not in ("threshold", "ransac"):
            raise ValueError("method must be 'threshold' or 'ransac'")
        if self.ransac_threshold <= 0:
            raise ValueError("ransac_threshold must be positive")
        if self.ransac_iterations < 1:
            raise ValueError("ransac_iterations must be >= 1")


@dataclass
class RansacResult:
    """RANSAC output: surviving inliers and the model they support."""

    correspondences: Correspondences
    transformation: np.ndarray
    inlier_ratio: float


def reject_distance(
    correspondences: Correspondences, threshold: float
) -> Correspondences:
    """Drop pairs whose match distance exceeds ``threshold``."""
    return correspondences.select(correspondences.distances <= threshold)


def reject_ratio(
    correspondences: Correspondences, ratio: float
) -> Correspondences:
    """Lowe's ratio test: best must beat second-best by ``ratio``."""
    if correspondences.second_distances is None:
        raise ValueError(
            "ratio rejection needs second_distances; run KPCE with with_second"
        )
    seconds = np.maximum(correspondences.second_distances, 1e-12)
    return correspondences.select(correspondences.distances / seconds <= ratio)


def reject_one_to_one(correspondences: Correspondences) -> Correspondences:
    """Keep only the closest source match for every target point."""
    if len(correspondences) == 0:
        return correspondences
    # Vectorized first-wins scan: in distance order (stable), the first
    # occurrence of each target is its closest source match.
    order = np.argsort(correspondences.distances, kind="stable")
    targets = correspondences.target_indices[order]
    by_target = np.argsort(targets, kind="stable")
    first = np.r_[True, targets[by_target][1:] != targets[by_target][:-1]]
    keep_rows = order[by_target[first]]
    return correspondences.select(np.sort(keep_rows.astype(np.int64)))


def reject_ransac(
    correspondences: Correspondences,
    source_points: np.ndarray,
    target_points: np.ndarray,
    threshold: float = 0.5,
    iterations: int = 200,
    seed: int = 0,
) -> RansacResult:
    """Classic RANSAC over correspondences [19].

    Repeatedly samples 3 pairs, fits a rigid transform (Kabsch), and
    counts inliers within ``threshold``; the best model is refit on its
    full inlier set.  ``source_points`` / ``target_points`` are the 3D
    positions the correspondence indices refer to.
    """
    n = len(correspondences)
    if n < 3:
        return RansacResult(correspondences, np.eye(4), 0.0)
    rng = np.random.default_rng(seed)
    src = np.asarray(source_points, dtype=np.float64)[correspondences.source_indices]
    tgt = np.asarray(target_points, dtype=np.float64)[correspondences.target_indices]

    best_inliers: np.ndarray | None = None
    best_count = -1
    for _ in range(iterations):
        sample = rng.choice(n, size=3, replace=False)
        if _degenerate(src[sample]):
            continue
        model = kabsch(src[sample], tgt[sample])
        residuals = np.linalg.norm(se3.apply_transform(model, src) - tgt, axis=1)
        inliers = residuals < threshold
        count = int(inliers.sum())
        if count > best_count:
            best_count = count
            best_inliers = inliers

    if best_inliers is None or best_count < 3:
        return RansacResult(correspondences.select(np.zeros(n, dtype=bool)), np.eye(4), 0.0)
    transformation = kabsch(src[best_inliers], tgt[best_inliers])
    # One re-scoring pass with the refit model tightens the inlier set.
    residuals = np.linalg.norm(se3.apply_transform(transformation, src) - tgt, axis=1)
    final_inliers = residuals < threshold
    if final_inliers.sum() >= 3:
        transformation = kabsch(src[final_inliers], tgt[final_inliers])
    else:
        final_inliers = best_inliers
    return RansacResult(
        correspondences.select(final_inliers),
        transformation,
        float(final_inliers.sum()) / n,
    )


def reject_correspondences(
    correspondences: Correspondences,
    source_points: np.ndarray,
    target_points: np.ndarray,
    config: RejectionConfig | None = None,
) -> RansacResult:
    """Apply the configured rejection cascade.

    Always returns a :class:`RansacResult`; for the plain threshold
    method the transformation is fit with Kabsch on the survivors.
    """
    config = config or RejectionConfig()
    current = correspondences
    if config.distance_threshold is not None:
        current = reject_distance(current, config.distance_threshold)
    if config.ratio_threshold is not None and current.second_distances is not None:
        current = reject_ratio(current, config.ratio_threshold)
    if config.one_to_one:
        current = reject_one_to_one(current)

    if config.method == "ransac":
        return reject_ransac(
            current,
            source_points,
            target_points,
            threshold=config.ransac_threshold,
            iterations=config.ransac_iterations,
            seed=config.ransac_seed,
        )
    if len(current) >= 3:
        src = np.asarray(source_points)[current.source_indices]
        tgt = np.asarray(target_points)[current.target_indices]
        transformation = kabsch(src, tgt)
        inlier_ratio = 1.0 if len(correspondences) == 0 else len(current) / len(
            correspondences
        )
    else:
        transformation = np.eye(4)
        inlier_ratio = 0.0
    return RansacResult(current, transformation, inlier_ratio)


def _degenerate(points: np.ndarray, tol: float = 1e-6) -> bool:
    """Whether 3 sample points are (nearly) collinear."""
    v1 = points[1] - points[0]
    v2 = points[2] - points[0]
    return float(np.linalg.norm(np.cross(v1, v2))) < tol
