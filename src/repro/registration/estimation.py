"""Transformation estimation (paper Sec. 3.1, fine-tuning stage 2).

Given matched point pairs, estimate the rigid transform minimizing an
error metric.  Table-1 choices implemented:

* **point-to-point** error [34] with the closed-form **SVD** solver [25]
  (the Kabsch/Umeyama algorithm);
* **point-to-plane** error [12] with a linearized small-angle
  least-squares solver (the standard Gauss-Newton step for ICP);
* the **Levenberg-Marquardt** iterative solver [45] for either metric,
  implemented directly on the 6-dof (rotation-vector, translation)
  parameterization.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import se3

__all__ = [
    "kabsch",
    "point_to_plane",
    "levenberg_marquardt",
    "point_to_point_residuals",
    "point_to_plane_residuals",
]


def kabsch(
    source: np.ndarray,
    target: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Closed-form least-squares rigid transform (point-to-point, SVD).

    Returns the 4x4 transform ``M`` minimizing
    ``sum w_i || M source_i - target_i ||^2``.
    """
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if source.shape != target.shape or source.ndim != 2 or source.shape[1] != 3:
        raise ValueError("source/target must be matching (N, 3) arrays")
    if len(source) < 3:
        raise ValueError("need at least 3 point pairs")
    if weights is None:
        weights = np.ones(len(source))
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")

    source_centroid = (weights[:, None] * source).sum(axis=0) / total
    target_centroid = (weights[:, None] * target).sum(axis=0) / total
    src_centered = source - source_centroid
    tgt_centered = target - target_centroid
    cross_cov = (weights[:, None] * src_centered).T @ tgt_centered
    u, _, vt = np.linalg.svd(cross_cov)
    sign = np.sign(np.linalg.det(vt.T @ u.T))
    correction = np.diag([1.0, 1.0, sign if sign != 0 else 1.0])
    rotation = vt.T @ correction @ u.T
    translation = target_centroid - rotation @ source_centroid
    return se3.make_transform(rotation, translation)


def point_to_plane(
    source: np.ndarray,
    target: np.ndarray,
    target_normals: np.ndarray,
) -> np.ndarray:
    """Linearized point-to-plane step (Chen & Medioni).

    Minimizes ``sum ((R s_i + t - q_i) . n_i)^2`` under the small-angle
    approximation ``R ~ I + [w]x``, yielding a 6x6 linear system in
    ``(w, t)``.  The returned transform uses the exact rotation
    reconstructed from ``w`` so repeated application stays in SE(3).
    """
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    normals = np.asarray(target_normals, dtype=np.float64)
    if not (source.shape == target.shape == normals.shape):
        raise ValueError("source/target/normals must be matching (N, 3) arrays")
    if len(source) < 6:
        raise ValueError("need at least 6 pairs for a stable 6-dof solve")

    cross = np.cross(source, normals)  # d residual / d w
    jacobian = np.hstack([cross, normals])  # (N, 6)
    residuals = np.einsum("ij,ij->i", source - target, normals)
    lhs = jacobian.T @ jacobian
    rhs = -jacobian.T @ residuals
    try:
        x = np.linalg.solve(lhs, rhs)
    except np.linalg.LinAlgError:
        x, *_ = np.linalg.lstsq(lhs, rhs, rcond=None)
    omega, translation = x[:3], x[3:]
    angle = float(np.linalg.norm(omega))
    rotation = (
        se3.axis_angle_to_rotation(omega, angle) if angle > 0 else np.eye(3)
    )
    return se3.make_transform(rotation, translation)


def point_to_point_residuals(
    params: np.ndarray, source: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """Flattened residual vector for the point-to-point metric."""
    transform = _params_to_transform(params)
    return (se3.apply_transform(transform, source) - target).ravel()


def point_to_plane_residuals(
    params: np.ndarray,
    source: np.ndarray,
    target: np.ndarray,
    normals: np.ndarray,
) -> np.ndarray:
    """Residual vector for the point-to-plane metric."""
    transform = _params_to_transform(params)
    moved = se3.apply_transform(transform, source)
    return np.einsum("ij,ij->i", moved - target, normals)


def levenberg_marquardt(
    source: np.ndarray,
    target: np.ndarray,
    target_normals: np.ndarray | None = None,
    max_iterations: int = 20,
    initial_lambda: float = 1e-3,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Levenberg-Marquardt rigid-transform fit [45].

    Uses the point-to-plane metric when ``target_normals`` is given,
    point-to-point otherwise.  The Jacobian is evaluated analytically at
    the identity of the *current* estimate each iteration (the standard
    compose-update scheme), so convergence does not rely on small total
    motion.
    """
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if len(source) < 3:
        raise ValueError("need at least 3 point pairs")
    current = se3.identity()
    lam = initial_lambda

    def cost(transform: np.ndarray) -> float:
        moved = se3.apply_transform(transform, source)
        if target_normals is None:
            return float(np.sum((moved - target) ** 2))
        r = np.einsum("ij,ij->i", moved - target, target_normals)
        return float(np.sum(r * r))

    current_cost = cost(current)
    for _ in range(max_iterations):
        moved = se3.apply_transform(current, source)
        if target_normals is None:
            # Residuals r = moved - target; d r / d (w, t) per coordinate.
            residuals = (moved - target).ravel()
            n = len(source)
            jacobian = np.zeros((3 * n, 6))
            # d(R p)/dw = -[p]x at identity, applied around current estimate.
            jacobian[0::3, 1] = moved[:, 2]
            jacobian[0::3, 2] = -moved[:, 1]
            jacobian[1::3, 0] = -moved[:, 2]
            jacobian[1::3, 2] = moved[:, 0]
            jacobian[2::3, 0] = moved[:, 1]
            jacobian[2::3, 1] = -moved[:, 0]
            jacobian[0::3, 3] = 1.0
            jacobian[1::3, 4] = 1.0
            jacobian[2::3, 5] = 1.0
        else:
            residuals = np.einsum("ij,ij->i", moved - target, target_normals)
            jacobian = np.hstack(
                [np.cross(moved, target_normals), target_normals]
            )

        gram = jacobian.T @ jacobian
        gradient = jacobian.T @ residuals
        improved = False
        for _ in range(8):
            try:
                step = np.linalg.solve(
                    gram + lam * np.diag(np.diag(gram)) + 1e-12 * np.eye(6),
                    -gradient,
                )
            except np.linalg.LinAlgError:
                lam *= 10.0
                continue
            candidate = se3.compose(_params_to_transform(step), current)
            candidate_cost = cost(candidate)
            if candidate_cost < current_cost:
                current = candidate
                gain = current_cost - candidate_cost
                current_cost = candidate_cost
                lam = max(lam / 10.0, 1e-12)
                improved = True
                if gain < tolerance:
                    return current
                break
            lam *= 10.0
        if not improved:
            break
    return current


def _params_to_transform(params: np.ndarray) -> np.ndarray:
    """(rotation-vector, translation) 6-vector to a 4x4 transform."""
    params = np.asarray(params, dtype=np.float64).reshape(6)
    omega, translation = params[:3], params[3:]
    angle = float(np.linalg.norm(omega))
    rotation = (
        se3.axis_angle_to_rotation(omega, angle) if angle > 0 else np.eye(3)
    )
    return se3.make_transform(rotation, translation)
