"""Correspondence estimation: KPCE and RPCE (paper Sec. 3.1).

Two stages of the pipeline match points between frames:

* **KPCE** (Key-Point Correspondence Estimation) matches keypoints by
  nearest neighbor *in the high-dimensional feature space* produced by
  the descriptor stage.  The paper's Table-1 knob is reciprocity
  (keep a pair only when the match holds in both directions).
* **RPCE** (Raw-Point Correspondence Estimation) matches every source
  point to the target *in 3D space* inside the ICP fine-tuning loop —
  the single heaviest NN-search consumer in the pipeline.  Algorithm
  choices per Table 1: plain nearest neighbor, normal shooting, and
  range-image projection [10].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.io.pointcloud import PointCloud
from repro.registration.keypoints.narf import RangeImage, build_range_image
from repro.registration.search import NeighborSearcher, SearchConfig, build_searcher

__all__ = [
    "Correspondences",
    "KPCEConfig",
    "estimate_feature_correspondences",
    "RPCEConfig",
    "estimate_point_correspondences",
]


@dataclass
class Correspondences:
    """Matched index pairs with their match distances.

    ``distances`` live in whichever space the matcher searched (feature
    space for KPCE, 3D for RPCE).  ``second_distances`` — the distance
    to the runner-up match — is filled when the matcher was asked to
    support Lowe's ratio rejection.
    """

    source_indices: np.ndarray
    target_indices: np.ndarray
    distances: np.ndarray
    second_distances: np.ndarray | None = None

    def __post_init__(self):
        if not (
            len(self.source_indices)
            == len(self.target_indices)
            == len(self.distances)
        ):
            raise ValueError("correspondence arrays must align")

    def __len__(self) -> int:
        return len(self.source_indices)

    def select(self, mask: np.ndarray) -> "Correspondences":
        """Subset by boolean mask or index array."""
        return Correspondences(
            self.source_indices[mask],
            self.target_indices[mask],
            self.distances[mask],
            None if self.second_distances is None else self.second_distances[mask],
        )


# ---------------------------------------------------------------------------
# KPCE
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KPCEConfig:
    """Feature-space matching knobs (Table 1: reciprocity).

    ``backend`` selects how the feature space is searched.  KD-trees
    degrade in high dimensions (SHOT is 352-d), so ``"bruteforce"`` is a
    legitimate exact alternative; the paper's pipelines use KD-tree
    (FLANN) which we default to.  ``with_second`` also retrieves the
    second-nearest match to enable ratio rejection downstream.
    """

    reciprocal: bool = True
    backend: str = "canonical"
    with_second: bool = False

    def __post_init__(self):
        if self.backend not in ("canonical", "bruteforce"):
            raise ValueError("backend must be 'canonical' or 'bruteforce'")


def estimate_feature_correspondences(
    source_features: np.ndarray,
    target_features: np.ndarray,
    config: KPCEConfig | None = None,
    profiler=None,
    stats=None,
    injector=None,
) -> Correspondences:
    """Match source keypoints to target keypoints in feature space.

    Returns row indices into the respective feature arrays (the caller
    maps them back to point indices).
    """
    config = config or KPCEConfig()
    source_features = np.asarray(source_features, dtype=np.float64)
    target_features = np.asarray(target_features, dtype=np.float64)
    if len(source_features) == 0 or len(target_features) == 0:
        empty = np.empty(0, dtype=np.int64)
        return Correspondences(empty, empty.copy(), np.empty(0))

    search_config = SearchConfig(backend=config.backend)
    target_index = build_searcher(
        target_features, search_config, profiler, stats, injector
    )
    need_second = config.with_second and len(target_features) >= 2

    # One batched feature-space search for the whole KPCE stage.
    if need_second:
        idx, d = target_index.knn_batch(source_features, 2)
        matches = idx[:, 0].astype(np.int64)
        dists = d[:, 0].copy()
        seconds = d[:, 1].copy() if d.shape[1] > 1 else np.full(len(d), np.inf)
    else:
        matches, dists = target_index.nn_batch(source_features)
        seconds = None
    if np.any(matches < 0):
        # Backends for this stage always fill every row; a -1 means an
        # injector produced padded/empty rows — fail loudly rather than
        # let Python's negative indexing fabricate a correspondence.
        raise ValueError("KPCE received empty nearest-neighbor rows")

    source_rows = np.arange(len(source_features), dtype=np.int64)
    if config.reciprocal:
        source_index = build_searcher(
            source_features, search_config, profiler, stats, injector
        )
        back, _ = source_index.nn_batch(target_features[matches])
        keep = back == source_rows
        source_rows = source_rows[keep]
        matches = matches[keep]
        dists = dists[keep]
        if seconds is not None:
            seconds = seconds[keep]
    return Correspondences(source_rows, matches, dists, seconds)


# ---------------------------------------------------------------------------
# RPCE
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RPCEConfig:
    """Raw-point matching knobs (Table 1: # of neighbors, reciprocity).

    ``method``
        ``"nearest"`` — plain NN in 3D (classic ICP);
        ``"normal_shooting"`` — among ``k_candidates`` nearest target
        points, pick the one closest to the ray along the source normal;
        ``"projection"`` — project the source point into the target's
        range image and take the hit pixel's point [10].
    ``max_distance``
        Pairs farther than this are dropped (ICP's correspondence gate).
    """

    method: str = "nearest"
    max_distance: float = np.inf
    reciprocal: bool = False
    k_candidates: int = 5

    def __post_init__(self):
        if self.method not in ("nearest", "normal_shooting", "projection"):
            raise ValueError(
                "method must be 'nearest', 'normal_shooting', or 'projection'"
            )
        if self.max_distance <= 0:
            raise ValueError("max_distance must be positive")
        if self.k_candidates < 1:
            raise ValueError("k_candidates must be >= 1")


def estimate_point_correspondences(
    source_points: np.ndarray,
    target_searcher: NeighborSearcher,
    config: RPCEConfig | None = None,
    source_normals: np.ndarray | None = None,
    target_range_image: RangeImage | None = None,
    target_cloud: PointCloud | None = None,
    source_searcher: NeighborSearcher | None = None,
) -> Correspondences:
    """Match every source point to a target point in 3D.

    ``source_points`` are already transformed into the target frame (the
    ICP loop applies the current transform before calling).  Extra
    context arguments are required per method: normals for normal
    shooting, a range image or the target cloud for projection, a
    source searcher for reciprocity.
    """
    config = config or RPCEConfig()
    source_points = np.asarray(source_points, dtype=np.float64)
    n = len(source_points)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return Correspondences(empty, empty.copy(), np.empty(0))

    if config.method == "nearest":
        matches, dists = _match_nearest(source_points, target_searcher)
    elif config.method == "normal_shooting":
        if source_normals is None:
            raise ValueError("normal_shooting requires source_normals")
        matches, dists = _match_normal_shooting(
            source_points, source_normals, target_searcher, config.k_candidates
        )
    else:
        if target_range_image is None:
            if target_cloud is None:
                raise ValueError(
                    "projection requires target_range_image or target_cloud"
                )
            target_range_image = build_range_image(target_cloud)
        matches, dists = _match_projection(
            source_points, target_searcher.points, target_range_image
        )

    source_rows = np.arange(n, dtype=np.int64)
    valid = (matches >= 0) & (dists <= config.max_distance)
    source_rows, matches, dists = source_rows[valid], matches[valid], dists[valid]

    if config.reciprocal and source_searcher is not None and len(matches):
        target_points = target_searcher.points
        back, _ = source_searcher.nn_batch(target_points[matches])
        keep = back == source_rows
        source_rows, matches, dists = (
            source_rows[keep],
            matches[keep],
            dists[keep],
        )
    return Correspondences(source_rows, matches, dists)


def _match_nearest(
    source_points: np.ndarray, target_searcher: NeighborSearcher
) -> tuple[np.ndarray, np.ndarray]:
    return target_searcher.nn_batch(source_points)


def _match_normal_shooting(
    source_points: np.ndarray,
    source_normals: np.ndarray,
    target_searcher: NeighborSearcher,
    k_candidates: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Pick, among the k nearest, the candidate best aligned with the
    source normal ray (smallest perpendicular distance to the ray)."""
    target_points = target_searcher.points
    matches = np.empty(len(source_points), dtype=np.int64)
    dists = np.empty(len(source_points))
    # One batched kNN for the stage; the per-point candidate selection
    # below is cheap (k is small) and kept scalar for exactness.
    all_idx, all_d = target_searcher.knn_batch(source_points, k_candidates)
    for i, point in enumerate(source_points):
        idx, d = all_idx[i], all_d[i]
        valid = idx >= 0  # approximate rows may be padded with misses
        idx, d = idx[valid], d[valid]
        if len(idx) == 0:
            matches[i], dists[i] = -1, np.inf
            continue
        normal = source_normals[i]
        norm = np.linalg.norm(normal)
        if norm < 1e-9:
            matches[i], dists[i] = int(idx[0]), float(d[0])
            continue
        normal = normal / norm
        offsets = target_points[idx] - point
        along = offsets @ normal
        perp = offsets - along[:, None] * normal[None, :]
        perp_dist = np.linalg.norm(perp, axis=1)
        best = int(np.argmin(perp_dist))
        matches[i], dists[i] = int(idx[best]), float(d[best])
    return matches, dists


def _match_projection(
    source_points: np.ndarray,
    target_points: np.ndarray,
    image: RangeImage,
) -> tuple[np.ndarray, np.ndarray]:
    """Project each source point into the target range image.

    The pixel is found by spherical coordinates; if it is empty the
    3x3 pixel neighborhood is searched for the nearest valid return.
    """
    rows, cols = image.shape
    matches = np.full(len(source_points), -1, dtype=np.int64)
    dists = np.full(len(source_points), np.inf)

    ranges = np.linalg.norm(source_points, axis=1)
    ok = ranges > 1e-9
    elevation = np.zeros(len(source_points))
    elevation[ok] = np.arcsin(np.clip(source_points[ok, 2] / ranges[ok], -1, 1))
    azimuth = np.arctan2(source_points[:, 1], source_points[:, 0])

    # Infer the image's angular layout from the valid target pixels.
    valid_rc = np.argwhere(image.valid_mask())
    if len(valid_rc) == 0:
        return matches, dists
    tgt_ranges = np.linalg.norm(target_points, axis=1)
    tgt_el = np.arcsin(
        np.clip(target_points[:, 2] / np.maximum(tgt_ranges, 1e-9), -1, 1)
    )
    el_lo, el_hi = float(tgt_el.min()), float(tgt_el.max()) + 1e-9

    row_idx = np.clip(
        ((elevation - el_lo) / (el_hi - el_lo) * (rows - 1)).astype(np.int64),
        0,
        rows - 1,
    )
    # Same [0, 2*pi) azimuth convention as the range-image builder.
    col_idx = np.clip(
        (np.mod(azimuth, 2 * np.pi) / (2 * np.pi) * (cols - 1)).astype(np.int64),
        0,
        cols - 1,
    )

    for i in range(len(source_points)):
        r, c = row_idx[i], col_idx[i]
        best_idx, best_dist = -1, np.inf
        for dr in (0, -1, 1):
            rr = r + dr
            if not 0 <= rr < rows:
                continue
            for dc in (0, -1, 1):
                cc = (c + dc) % cols
                pidx = image.point_index[rr, cc]
                if pidx < 0:
                    continue
                d = float(np.linalg.norm(target_points[pidx] - source_points[i]))
                if d < best_dist:
                    best_idx, best_dist = int(pidx), d
        matches[i], dists[i] = best_idx, best_dist
    return matches, dists
