"""Registration health: a per-pair verdict over ``Pipeline.match`` output.

Production LiDAR stacks treat registration failure as a first-class
signal, not an exception: a pair can "succeed" numerically (finite
transform, enough correspondences) while being useless — ICP stopped on
its iteration budget, the feature stage found almost no inliers, the
solved motion is physically impossible for the platform, or the scene
geometry left a motion direction unobservable (the corridor problem).
This module condenses those signals into a :class:`RegistrationHealth`
verdict that the streaming drivers (recovery ladder in
:class:`~repro.registration.odometry.StreamingOdometry`) and the SLAM
back end (keyframe quarantine / loop-closure gating in
:class:`~repro.mapping.mapper.StreamingMapper`) act on.

Degeneracy detection follows the LOAM/Zhang "On Degeneracy of
Optimization-based State Estimation" recipe: inspect the eigen-spectrum
of the normal-equations Hessian ``J^T J`` that ICP's final iteration
already solved.  For point-to-plane the translation sub-block is
``N^T N`` over the matched unit normals — in a corridor every normal is
perpendicular to the travel direction, the block drops to rank 2, and
the smallest eigenvalue collapses relative to the largest.  The
assessment is pure observation: computing it never changes a transform,
so pipelines with health enabled stay bit-identical on healthy pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import se3
from repro.registration.pipeline import RegistrationResult

__all__ = [
    "HealthConfig",
    "RegistrationHealth",
    "assess_registration",
    "translation_observability",
]


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds for the per-pair health verdict.

    Defaults are deliberately permissive: a clean synthetic scene (and
    any well-behaved real pair) must pass every gate, so enabling
    health on a clean sequence changes nothing.  ``None`` disables an
    individual check.

    ``require_converged``
        Fail pairs where ICP stopped on its iteration budget.  Off by
        default: the reference configs run ICP with deliberately small
        budgets (6-15 iterations) and routinely stop on the budget with
        a perfectly good alignment, so convergence alone is an
        informational signal (counted in odometry stats and telemetry),
        not a gate.
    ``max_rmse``
        Upper bound on the final ICP correspondence RMSE (meters).
    ``max_median_residual``
        Upper bound on the *median* of the final ICP per-match
        residuals (meters).  The robust counterpart of ``max_rmse``:
        the RMSE is dominated by the far-match tail, which grows with
        frame separation even when the alignment is excellent (a pair
        spanning a dropped frame has less overlap, hence more distant
        matches), so a tight RMSE gate misfires exactly when the
        stream skips a frame.  The median ignores that tail but shifts
        decisively under broad corruption — noise bursts, dynamic
        clutter, heavy occlusion — making it the preferred quality
        gate for recovery ladders.  Off by default.
    ``min_inlier_ratio``
        Lower bound on rejection inliers / feature correspondences;
        only checked when the pair ran initial estimation.
    ``max_translation`` / ``max_rotation_deg``
        Motion sanity bounds on the solved relative transform — a
        per-pair displacement no real platform produces means the
        solve latched onto the wrong structure.
    ``prior_translation_tolerance`` / ``prior_rotation_tolerance_deg``
        Allowed deviation from a motion-model prediction, when the
        caller supplies one (the constant-velocity prior in odometry).
    ``min_eigenvalue_ratio`` / ``max_condition_number``
        Degeneracy gates over the translation block of the ICP
        normal-equations Hessian (see module docstring).
    """

    require_converged: bool = False
    max_rmse: float | None = 1.0
    max_median_residual: float | None = None
    min_inlier_ratio: float | None = 0.05
    max_translation: float | None = 10.0
    max_rotation_deg: float | None = 45.0
    prior_translation_tolerance: float | None = None
    prior_rotation_tolerance_deg: float | None = None
    min_eigenvalue_ratio: float | None = 1e-4
    max_condition_number: float | None = None


@dataclass(frozen=True)
class RegistrationHealth:
    """The verdict plus every signal that fed it.

    ``healthy`` is the conjunction of all enabled gates; ``reasons``
    names each failed gate (stable identifiers, usable as telemetry
    counter keys).  The raw signals are retained so callers can log or
    threshold them differently without re-running the registration.
    """

    healthy: bool
    reasons: tuple[str, ...]
    converged: bool
    rmse: float
    median_residual: float | None
    inlier_ratio: float | None
    translation: float
    rotation_deg: float
    prior_translation_deviation: float | None
    prior_rotation_deviation_deg: float | None
    degenerate: bool
    eigenvalue_ratio: float | None
    condition_number: float | None

    def __repr__(self) -> str:
        status = "healthy" if self.healthy else "UNHEALTHY"
        detail = f" ({', '.join(self.reasons)})" if self.reasons else ""
        return (
            f"RegistrationHealth({status}{detail}, rmse={self.rmse:.4f}, "
            f"|t|={self.translation:.3f} m, rot={self.rotation_deg:.2f} deg)"
        )


def translation_observability(
    hessian: np.ndarray | None,
    normals: np.ndarray | None = None,
    trim_fraction: float = 0.05,
) -> tuple[float | None, float | None]:
    """(min/max eigenvalue ratio, condition number) of the translation
    block of a 6x6 normal-equations Hessian, or ``(None, None)``.

    The translation sub-block isolates the geometric aperture: for
    point-to-plane it is exactly ``N^T N`` over the matched normals, so
    a planar/corridor scene shows up as a near-zero smallest eigenvalue
    regardless of how many points matched.

    When the raw matched ``normals`` are available (point-to-plane),
    the smallest eigenvalue is measured on a *trimmed* set: the
    ``trim_fraction`` of matches contributing most along the weakest
    direction are removed and the spectrum recomputed (twice, since the
    weak eigenvector can rotate after the first trim).  Degenerate
    plane fits — single-ring scan arcs whose neighborhoods are
    collinear — emit normals with arbitrary orientation, and a few
    percent of such junk is enough to prop the null direction of a
    genuinely degenerate scene up to apparent observability.  A real
    aperture is supported broadly across the matched set and survives
    the trim; artifact support collapses.  This mirrors how LOAM-style
    degeneracy analysis restricts itself to reliable planar features.
    """
    if hessian is None:
        return None, None
    block = np.asarray(hessian, dtype=np.float64)[3:6, 3:6]
    if normals is not None and len(normals) >= 12 and trim_fraction > 0.0:
        trimmed = np.asarray(normals, dtype=np.float64)
        for _ in range(2):
            _, vectors = np.linalg.eigh(trimmed.T @ trimmed)
            contributions = (trimmed @ vectors[:, 0]) ** 2
            k = max(1, int(round(trim_fraction * len(trimmed))))
            cutoff = np.partition(contributions, -k)[-k]
            keep = contributions < cutoff
            if keep.sum() < 6:
                break
            trimmed = trimmed[keep]
        block = trimmed.T @ trimmed
    eigenvalues = np.linalg.eigvalsh(block)
    largest = float(eigenvalues[-1])
    smallest = float(eigenvalues[0])
    if largest <= 0.0:
        return 0.0, np.inf
    ratio = max(smallest, 0.0) / largest
    condition = np.inf if smallest <= 0.0 else largest / smallest
    return ratio, condition


def assess_registration(
    result: RegistrationResult,
    config: HealthConfig | None = None,
    prior: np.ndarray | None = None,
) -> RegistrationHealth:
    """Assess one ``Pipeline.match`` result against ``config``.

    ``prior``, when given, is the motion-model prediction of the
    relative transform (e.g. the previous pair's motion under a
    constant-velocity model); the solved transform's deviation from it
    is checked against the prior tolerances.
    """
    config = config or HealthConfig()
    reasons: list[str] = []

    converged = bool(result.icp.converged)
    rmse = float(result.icp.rmse)
    rotation_rad = se3.rotation_angle(se3.rotation_part(result.transformation))
    rotation_deg = float(np.degrees(rotation_rad))
    translation = float(
        np.linalg.norm(se3.translation_part(result.transformation))
    )

    if not result.success:
        reasons.append("no_solution")
    if config.require_converged and not converged:
        reasons.append("icp_not_converged")
    if config.max_rmse is not None and not rmse <= config.max_rmse:
        reasons.append("rmse")

    median_residual = None
    residuals = result.icp.matched_residuals
    if residuals is not None and len(residuals):
        median_residual = float(np.median(residuals))
    if config.max_median_residual is not None and not (
        median_residual is not None
        and median_residual <= config.max_median_residual
    ):
        reasons.append("median_residual")

    inlier_ratio = None
    if result.n_feature_correspondences > 0:
        inlier_ratio = (
            result.n_inlier_correspondences / result.n_feature_correspondences
        )
        if (
            config.min_inlier_ratio is not None
            and inlier_ratio < config.min_inlier_ratio
        ):
            reasons.append("inlier_ratio")

    if config.max_translation is not None and translation > config.max_translation:
        reasons.append("translation_bound")
    if (
        config.max_rotation_deg is not None
        and rotation_deg > config.max_rotation_deg
    ):
        reasons.append("rotation_bound")

    prior_trans_dev = prior_rot_dev = None
    if prior is not None:
        rot_dev_rad, prior_trans_dev = se3.transform_distance(
            prior, result.transformation
        )
        prior_rot_dev = float(np.degrees(rot_dev_rad))
        if (
            config.prior_translation_tolerance is not None
            and prior_trans_dev > config.prior_translation_tolerance
        ):
            reasons.append("prior_translation")
        if (
            config.prior_rotation_tolerance_deg is not None
            and prior_rot_dev > config.prior_rotation_tolerance_deg
        ):
            reasons.append("prior_rotation")

    eigenvalue_ratio, condition_number = translation_observability(
        result.icp.hessian, normals=result.icp.matched_normals
    )
    degenerate = False
    if eigenvalue_ratio is not None:
        if (
            config.min_eigenvalue_ratio is not None
            and eigenvalue_ratio < config.min_eigenvalue_ratio
        ):
            degenerate = True
        if (
            config.max_condition_number is not None
            and condition_number > config.max_condition_number
        ):
            degenerate = True
        if degenerate:
            reasons.append("degenerate")

    return RegistrationHealth(
        healthy=not reasons,
        reasons=tuple(reasons),
        converged=converged,
        rmse=rmse,
        median_residual=median_residual,
        inlier_ratio=inlier_ratio,
        translation=translation,
        rotation_deg=rotation_deg,
        prior_translation_deviation=prior_trans_dev,
        prior_rotation_deviation_deg=prior_rot_dev,
        degenerate=degenerate,
        eigenvalue_ratio=eigenvalue_ratio,
        condition_number=condition_number,
    )
