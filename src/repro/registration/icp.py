"""Iterative Closest Point fine-tuning (paper Sec. 3.1, phase 2).

The fine-tuning phase iterates between Raw-Point Correspondence
Estimation (RPCE — every source point finds its target mate in 3D) and
Transformation Estimation (solve for the transform minimizing the error
metric), until convergence.  The Table-1 knobs — error metric, solver,
convergence criteria, RPCE method and reciprocity — are all exposed via
:class:`ICPConfig`.

RPCE is the heaviest NN-search consumer in the pipeline (Fig. 4a); each
iteration issues **one batched** nearest-neighbor call over all moved
source points (see :mod:`repro.registration.search`), the software
analogue of the accelerator streaming a whole query batch through its
PE array per pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry import se3
from repro.io.pointcloud import PointCloud
from repro.profiling.timer import StageProfiler
from repro.registration.correspondence import (
    RPCEConfig,
    estimate_point_correspondences,
)
from repro.registration.estimation import (
    kabsch,
    levenberg_marquardt,
    point_to_plane,
)
from repro.kdtree.stats import SearchStats
from repro.registration.keypoints.narf import RangeImage, build_range_image
from repro.registration.search import (
    NeighborSearcher,
    SearchConfig,
    build_searcher,
)

__all__ = ["ICPConfig", "ICPResult", "icp"]


@dataclass(frozen=True)
class ICPConfig:
    """Fine-tuning knobs (Table 1).

    ``error_metric``
        ``"point_to_point"`` [34] or ``"point_to_plane"`` [12]
        (the latter requires target normals).
    ``solver``
        ``"svd"`` — closed-form Kabsch for point-to-point, linearized
        least squares for point-to-plane; ``"lm"`` — Levenberg-
        Marquardt [45] for either metric.
    ``transformation_epsilon`` / ``fitness_epsilon`` / ``max_iterations``
        The convergence criteria knob: stop when the incremental
        transform magnitude, the relative error change, or the
        iteration budget is reached.
    """

    rpce: RPCEConfig = field(default_factory=RPCEConfig)
    error_metric: str = "point_to_point"
    solver: str = "svd"
    max_iterations: int = 30
    transformation_epsilon: float = 1e-6
    fitness_epsilon: float = 1e-6

    def __post_init__(self):
        if self.error_metric not in ("point_to_point", "point_to_plane"):
            raise ValueError(
                "error_metric must be 'point_to_point' or 'point_to_plane'"
            )
        if self.solver not in ("svd", "lm"):
            raise ValueError("solver must be 'svd' or 'lm'")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")


@dataclass
class ICPResult:
    """Outcome of the fine-tuning loop.

    ``hessian`` is the 6x6 normal-equations Gauss-Newton Hessian
    ``J^T J`` of the *final* iteration's correspondence set, in
    ``(rotation, translation)`` block order — the observability matrix
    the registration health layer inspects for degeneracy (a
    corridor-like scene leaves the unconstrained direction as a
    near-null eigenvector).  ``None`` when the loop never reached a
    solvable correspondence set.  ``matched_normals`` retains the final
    iteration's matched target normals (point-to-plane only): the raw
    per-match translation Jacobian rows, which let the health layer
    compute a *trimmed* observability statistic robust to the few junk
    normals that degenerate (collinear) neighborhoods produce.
    ``matched_residuals`` holds the final iteration's per-match
    Euclidean distances (the vector whose RMS is ``rmse``): their
    *median* is the robust alignment-quality signal — unlike the RMSE
    it ignores the far-match tail that grows with frame separation, so
    it stays comparable between ordinary pairs and pairs spanning a
    dropped frame, while broad corruption (noise, clutter) shifts it.
    """

    transformation: np.ndarray
    converged: bool
    iterations: int
    rmse: float
    n_correspondences: int
    rmse_history: list[float] = field(default_factory=list)
    hessian: np.ndarray | None = None
    matched_normals: np.ndarray | None = None
    matched_residuals: np.ndarray | None = None

    def __repr__(self) -> str:
        status = "converged" if self.converged else "not converged"
        return (
            f"ICPResult({status} after {self.iterations} iterations, "
            f"rmse={self.rmse:.4f}, pairs={self.n_correspondences})"
        )


def _normal_equations_hessian(
    points: np.ndarray, normals: np.ndarray | None = None
) -> np.ndarray:
    """``J^T J`` of one Gauss-Newton pass over matched points.

    ``(rotation, translation)`` block order.  With ``normals`` this is
    the point-to-plane system (one residual per pair); without, the
    point-to-point system (three residuals per pair).  Pure observation
    of the solve the iteration already performed — computing it never
    changes the transform.
    """
    if normals is not None:
        jacobian = np.hstack([np.cross(points, normals), normals])
        return jacobian.T @ jacobian
    n = len(points)
    rot = np.zeros((3 * n, 3))
    rot[0::3, 1] = points[:, 2]
    rot[0::3, 2] = -points[:, 1]
    rot[1::3, 0] = -points[:, 2]
    rot[1::3, 2] = points[:, 0]
    rot[2::3, 0] = points[:, 1]
    rot[2::3, 1] = -points[:, 0]
    jacobian = np.hstack([rot, np.tile(np.eye(3), (n, 1))])
    return jacobian.T @ jacobian


def icp(
    source: PointCloud,
    target: PointCloud,
    target_searcher: NeighborSearcher,
    config: ICPConfig | None = None,
    initial: np.ndarray | None = None,
    profiler: StageProfiler | None = None,
    searcher_factory=None,
    range_image: RangeImage | None = None,
) -> ICPResult:
    """Refine ``initial`` so that ``source`` aligns onto ``target``.

    ``target_searcher`` indexes ``target.points``.  When
    ``searcher_factory`` is given, it is called once per iteration to
    produce a fresh searcher (the hook the pipeline uses to reset
    approximate-search leader state per RPCE pass, matching the
    hardware's per-pass leader buffers).  ``range_image`` may supply a
    prebuilt target range image for projection RPCE — a pure function of
    the target frame, so streaming callers build it once per frame and
    reuse it across pairs; when omitted it is built here.

    Profiler stages: ``RPCE`` for correspondence search, ``Error
    Minimization`` for the solver — the names of Fig. 4a.
    """
    config = config or ICPConfig()
    current = np.array(initial if initial is not None else np.eye(4), dtype=np.float64)
    profiler = profiler or StageProfiler()

    if config.error_metric == "point_to_plane" and not target.has_normals:
        raise ValueError("point_to_plane ICP requires target normals")

    source_points = source.points
    source_normals = source.normals if source.has_normals else None
    target_points = target.points
    target_normals = target.normals if target.has_normals else None

    if config.rpce.method == "projection" and range_image is None:
        range_image = build_range_image(target)

    rmse_history: list[float] = []
    previous_rmse = np.inf
    converged = False
    iterations = 0
    n_pairs = 0
    # The final iteration's matched geometry, retained so the
    # normal-equations Hessian and the per-match residuals (the health
    # layer's degeneracy and quality signals) can be computed once
    # after the loop.
    last_matched: (
        tuple[np.ndarray, np.ndarray, np.ndarray | None] | None
    ) = None

    for iteration in range(config.max_iterations):
        iterations = iteration + 1
        searcher = (
            searcher_factory() if searcher_factory is not None else target_searcher
        )
        moved = se3.apply_transform(current, source_points)
        moved_normals = None
        if source_normals is not None:
            moved_normals = source_normals @ se3.rotation_part(current).T

        with profiler.stage("RPCE"):
            source_searcher = None
            if config.rpce.reciprocal:
                # Reciprocity needs the reverse search; the moved source
                # changes every iteration, so its index is rebuilt here
                # (charged to the RPCE stage, as on the real pipeline).
                source_searcher = build_searcher(
                    moved, SearchConfig(), profiler, SearchStats()
                )
            correspondences = estimate_point_correspondences(
                moved,
                searcher,
                config.rpce,
                source_normals=moved_normals,
                target_range_image=range_image,
                source_searcher=source_searcher,
            )
        n_pairs = len(correspondences)
        if n_pairs < 6:
            break

        matched_source = moved[correspondences.source_indices]
        matched_target = target_points[correspondences.target_indices]

        with profiler.stage("Error Minimization"):
            if config.error_metric == "point_to_plane":
                normals = target_normals[correspondences.target_indices]
                last_matched = (matched_source, matched_target, normals)
                if config.solver == "lm":
                    delta = levenberg_marquardt(
                        matched_source, matched_target, normals
                    )
                else:
                    delta = point_to_plane(matched_source, matched_target, normals)
            else:
                last_matched = (matched_source, matched_target, None)
                if config.solver == "lm":
                    delta = levenberg_marquardt(matched_source, matched_target)
                else:
                    delta = kabsch(matched_source, matched_target)

        current = se3.compose(delta, current)
        current[:3, :3] = se3.orthonormalize_rotation(current[:3, :3])

        rmse = float(
            np.sqrt(np.mean(np.sum((matched_source - matched_target) ** 2, axis=1)))
        )
        rmse_history.append(rmse)

        rot_delta, trans_delta = se3.transform_distance(np.eye(4), delta)
        if (
            rot_delta < config.transformation_epsilon
            and trans_delta < config.transformation_epsilon
        ):
            converged = True
            break
        if abs(previous_rmse - rmse) < config.fitness_epsilon:
            converged = True
            break
        previous_rmse = rmse

    final_rmse = rmse_history[-1] if rmse_history else np.inf
    hessian = None
    matched_normals = None
    matched_residuals = None
    if last_matched is not None:
        matched_src, matched_tgt, matched_normals = last_matched
        hessian = _normal_equations_hessian(matched_src, matched_normals)
        matched_residuals = np.sqrt(
            np.sum((matched_src - matched_tgt) ** 2, axis=1)
        )
    return ICPResult(
        transformation=current,
        converged=converged,
        iterations=iterations,
        rmse=final_rmse,
        n_correspondences=n_pairs,
        rmse_history=rmse_history,
        hessian=hessian,
        matched_normals=matched_normals,
        matched_residuals=matched_residuals,
    )
