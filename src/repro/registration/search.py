"""Neighbor-search backends for the registration pipeline.

Every shaded stage in paper Fig. 2 (Normal Estimation, Descriptor
Calculation, KPCE, RPCE) funnels its neighbor queries through this
module.  A :class:`NeighborSearcher` wraps one of three backends —
canonical KD-tree, two-stage KD-tree, or the approximate
leaders/followers search — behind one interface, and transparently:

* accumulates :class:`~repro.kdtree.stats.SearchStats` (work counts for
  the accelerator model and Fig. 6);
* charges wall time to the active :class:`~repro.profiling.StageProfiler`
  (the Fig. 4b KD-tree vs. other split);
* optionally applies an error injector (Fig. 7's k-th NN and shell
  radius studies).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.approx import ApproximateSearch, ApproximateSearchConfig
from repro.core.twostage import TwoStageKDTree
from repro.kdtree.stats import SearchStats
from repro.kdtree.tree import KDTree
from repro.profiling.timer import StageProfiler

__all__ = ["SearchConfig", "NeighborSearcher", "build_searcher"]

_BACKENDS = ("canonical", "twostage", "approximate", "bruteforce")


@dataclass(frozen=True)
class SearchConfig:
    """How a pipeline stage performs its neighbor searches.

    ``backend``
        ``"canonical"`` — classic KD-tree (the paper's baseline);
        ``"twostage"`` — exact search on the two-stage structure (the
        accelerator's data layout; also the fastest exact option here
        because leaf scans vectorize);
        ``"approximate"`` — two-stage with leaders/followers;
        ``"bruteforce"`` — exhaustive scan (used for high-dimensional
        feature spaces where KD-trees degrade).
    ``leaf_size``
        Target leaf-set size for the two-stage backends (the paper's
        sweep parameter in Fig. 6; ~128 at the design point).
    ``approx``
        Thresholds for the approximate backend.
    """

    backend: str = "twostage"
    leaf_size: int = 64
    split_rule: str = "widest"
    approx: ApproximateSearchConfig = field(default_factory=ApproximateSearchConfig)

    def __post_init__(self):
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}")
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")


class _BruteForceIndex:
    """Adapter giving the brute-force scan the tree-search interface."""

    def __init__(self, points: np.ndarray):
        self._points = np.array(points, dtype=np.float64)
        if len(self._points) == 0:
            raise ValueError("cannot search an empty point set")

    @property
    def points(self) -> np.ndarray:
        return self._points

    def _charge(self, stats: SearchStats | None, results: int) -> None:
        if stats is not None:
            stats.nodes_visited += len(self._points)
            stats.queries += 1
            stats.results_returned += results

    def nn(self, query, stats=None):
        diff = self._points - np.asarray(query, dtype=np.float64)
        sq = np.einsum("ij,ij->i", diff, diff)
        best = int(np.argmin(sq))
        self._charge(stats, 1)
        return best, float(np.sqrt(sq[best]))

    def knn(self, query, k, stats=None):
        diff = self._points - np.asarray(query, dtype=np.float64)
        sq = np.einsum("ij,ij->i", diff, diff)
        k = min(k, len(sq))
        top = np.argpartition(sq, k - 1)[:k] if k < len(sq) else np.arange(len(sq))
        order = top[np.argsort(sq[top], kind="stable")]
        self._charge(stats, k)
        return order.astype(np.int64), np.sqrt(sq[order])

    def radius(self, query, r, stats=None, sort=False):
        diff = self._points - np.asarray(query, dtype=np.float64)
        sq = np.einsum("ij,ij->i", diff, diff)
        mask = sq <= r * r
        indices = np.nonzero(mask)[0].astype(np.int64)
        dists = np.sqrt(sq[mask])
        self._charge(stats, len(indices))
        if sort and len(indices):
            order = np.argsort(dists, kind="stable")
            return indices[order], dists[order]
        return indices, dists


class NeighborSearcher:
    """Uniform, instrumented query interface over any backend.

    All pipeline stages call :meth:`nn`, :meth:`knn`, and :meth:`radius`
    here; the wrapper forwards to the backend, times the call, and
    accumulates work counters.  An injector (see
    :mod:`repro.registration.error_injection`) may post-process results.
    """

    def __init__(
        self,
        index,
        stats: SearchStats,
        build_time: float,
        profiler: StageProfiler | None = None,
        injector=None,
    ):
        self._index = index
        self.stats = stats
        self.build_time = build_time
        self._profiler = profiler
        self._injector = injector

    @property
    def index(self):
        """The underlying search structure."""
        return self._index

    @property
    def points(self) -> np.ndarray:
        if isinstance(self._index, ApproximateSearch):
            return self._index.tree.points
        return self._index.points

    def nn(self, query: np.ndarray) -> tuple[int, float]:
        start = time.perf_counter()
        if self._injector is not None:
            result = self._injector.nn(self._index, query, self.stats)
        else:
            result = self._index.nn(query, self.stats)
        if self._profiler is not None:
            self._profiler.charge_search(time.perf_counter() - start)
        return result

    def knn(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        start = time.perf_counter()
        if self._injector is not None:
            result = self._injector.knn(self._index, query, k, self.stats)
        else:
            result = self._index.knn(query, k, self.stats)
        if self._profiler is not None:
            self._profiler.charge_search(time.perf_counter() - start)
        return result

    def radius(
        self, query: np.ndarray, r: float, sort: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        start = time.perf_counter()
        if self._injector is not None:
            result = self._injector.radius(self._index, query, r, self.stats, sort)
        else:
            result = self._index.radius(query, r, self.stats, sort=sort)
        if self._profiler is not None:
            self._profiler.charge_search(time.perf_counter() - start)
        return result


def build_searcher(
    points: np.ndarray,
    config: SearchConfig | None = None,
    profiler: StageProfiler | None = None,
    stats: SearchStats | None = None,
    injector=None,
) -> NeighborSearcher:
    """Construct the configured search structure over ``points``.

    Build time is charged to the profiler's active stage as KD-tree
    construction (the middle band of Fig. 4b).
    """
    config = config or SearchConfig()
    stats = stats if stats is not None else SearchStats()
    start = time.perf_counter()
    if config.backend == "canonical":
        index = KDTree(points, split_rule=config.split_rule)
    elif config.backend == "twostage":
        index = TwoStageKDTree.from_leaf_size(
            points, config.leaf_size, split_rule=config.split_rule
        )
    elif config.backend == "approximate":
        tree = TwoStageKDTree.from_leaf_size(
            points, config.leaf_size, split_rule=config.split_rule
        )
        index = ApproximateSearch(tree, config.approx)
    else:
        index = _BruteForceIndex(points)
    build_time = time.perf_counter() - start
    if profiler is not None:
        profiler.charge_construction(build_time)
    return NeighborSearcher(
        index, stats, build_time, profiler=profiler, injector=injector
    )
