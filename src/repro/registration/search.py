"""Neighbor-search backends for the registration pipeline.

Every shaded stage in paper Fig. 2 (Normal Estimation, Descriptor
Calculation, KPCE, RPCE) funnels its neighbor queries through this
module.  A :class:`NeighborSearcher` wraps one of five backends —
canonical KD-tree, two-stage KD-tree, the approximate
leaders/followers search, an exhaustive brute-force scan, or the flat
voxel-hash grid — behind one interface, and transparently:

* accumulates :class:`~repro.kdtree.stats.SearchStats` (work counts for
  the accelerator model and Fig. 6);
* charges wall time to the active :class:`~repro.profiling.StageProfiler`
  (the Fig. 4b KD-tree vs. other split);
* optionally applies an error injector (Fig. 7's k-th NN and shell
  radius studies).

Batch query layer
-----------------
Pipeline stages issue **one batched call per stage** — ``nn_batch``,
``knn_batch`` (rectangular ``(Q, min(k, n))`` results), and
``radius_batch_csr`` (one flat
:class:`~repro.core.ragged.RaggedNeighborhoods` in CSR form) — the
software analogue of the accelerator's data-parallel PE array.  Each
backend implements the batch entry points natively: fully vectorized
chunked scans for brute-force, grouped-by-leaf scans behind a
vectorized top-tree frontier for the two-stage tree, a tight loop for
the canonical KD-tree (whose pruned traversal is inherently sequential
— the very bottleneck the paper targets), and sequential leader-state
updates for the approximate search.  Radius results travel CSR
end-to-end: every backend *produces* flat ``indices``/``offsets``/
``distances`` (with any requested per-segment distance sort done once
by a global lexsort), the reuse cache and injectors pass the CSR form
through unchanged, and the front-end consumers gather from it directly
— no per-query Python lists anywhere on the hot path.  The legacy
``radius_batch`` survives as a thin wrapper that slices the CSR result
into per-query lists at the delivery edge.  The wrapper charges the
profiler once per batch and counts one ``SearchStats.batches``
increment per call; ``queries``/``results_returned`` stay exact per
query (CSR-delivered queries additionally tick ``csr_results``), while
the work counters (node visits, pruning) reflect the schedule actually
executed — identical to the scalar loop for radius batches, within a
percent or so for the two-stage NN frontier (see
:mod:`repro.core.twostage`).  Batched *results* are bit-identical to
issuing the scalar methods row by row.

Nested-radius reuse
-------------------
Preprocess stages query the *same* per-frame index at nested radii
over the frame's own points: normal estimation at ``normals.radius``,
Harris/SIFT keypoint support, and the descriptor supports are all row
subsets of one conceptual all-points radius search at the largest
planned radius.  A :class:`RadiusReuseCache` (installed by
``Pipeline.preprocess``; plain searchers carry none and behave exactly
as before) runs that search once — the first eligible full-cloud
``radius_batch`` is transparently inflated to the planned maximum
radius and its CSR result retained — and serves every later nested
request by row-select plus exact squared-distance re-filter
(:func:`repro.core.ragged.csr_radius_select`), bit-identical to a
fresh query.  Accounting stays honest: the filling stage is charged
the full inflated search it executed (its ``results_returned`` counts
the retained larger-radius results), while served calls charge
``queries``/``reused_queries``/``cache_hits`` and their filtered
result counts but no traversal work.  Callers opt in per call by
passing ``self_indices`` — the index rows their query points are —
and the cache is bypassed whenever an injector is active, the
effective index is not the cache's own (e.g. the stateful approximate
wrapper), or the radius exceeds the cached one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.approx import ApproximateSearch, ApproximateSearchConfig
from repro.core.gridhash import GridHashConfig, GridHashIndex
from repro.core.ragged import (
    RaggedNeighborhoods,
    csr_radius_select,
    csr_radius_select_csr,
)
from repro.core.twostage import TwoStageKDTree
from repro.kdtree import bruteforce
from repro.kdtree.stats import SearchStats
from repro.kdtree.tree import KDTree
from repro.profiling.timer import StageProfiler

__all__ = [
    "SearchConfig",
    "NeighborSearcher",
    "RadiusReuseCache",
    "build_searcher",
    "build_index",
    "exact_index",
]

_BACKENDS = ("canonical", "twostage", "approximate", "bruteforce", "gridhash")


@dataclass(frozen=True)
class SearchConfig:
    """How a pipeline stage performs its neighbor searches.

    ``backend``
        ``"canonical"`` — classic KD-tree (the paper's baseline);
        ``"twostage"`` — exact search on the two-stage structure (the
        accelerator's data layout; also the fastest exact option here
        because leaf scans vectorize);
        ``"approximate"`` — two-stage with leaders/followers;
        ``"bruteforce"`` — exhaustive scan (used for high-dimensional
        feature spaces where KD-trees degrade);
        ``"gridhash"`` — flat voxel-hash grid (no tree at all; exact
        for radii up to its cell size, approximate beyond — see
        :mod:`repro.core.gridhash`).
    ``leaf_size``
        Target leaf-set size for the two-stage backends (the paper's
        sweep parameter in Fig. 6; ~128 at the design point).
    ``approx``
        Thresholds for the approximate backend.
    ``gridhash``
        Cell size and candidate cap for the voxel-hash backend.
    """

    backend: str = "twostage"
    leaf_size: int = 64
    split_rule: str = "widest"
    approx: ApproximateSearchConfig = field(default_factory=ApproximateSearchConfig)
    gridhash: GridHashConfig = field(default_factory=GridHashConfig)

    def __post_init__(self):
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}")
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")


class _BruteForceIndex:
    """Adapter giving the brute-force scan the tree-search interface.

    Scalar queries delegate to the batched kernels with a single row, so
    batched and per-query results are bit-identical by construction.
    """

    def __init__(self, points: np.ndarray):
        self._points = np.array(points, dtype=np.float64)
        if len(self._points) == 0:
            raise ValueError("cannot search an empty point set")
        self._points_t = np.ascontiguousarray(self._points.T)

    @property
    def points(self) -> np.ndarray:
        return self._points

    def _charge(self, stats: SearchStats | None, queries: int, results: int) -> None:
        if stats is not None:
            stats.nodes_visited += len(self._points) * queries
            stats.queries += queries
            stats.results_returned += results

    def nn(self, query, stats=None):
        indices, dists = self.nn_batch(np.atleast_2d(query), stats)
        return int(indices[0]), float(dists[0])

    def knn(self, query, k, stats=None):
        indices, dists = self.knn_batch(np.atleast_2d(query), k, stats)
        return indices[0], dists[0]

    def radius(self, query, r, stats=None, sort=False):
        indices, dists = self.radius_batch(np.atleast_2d(query), r, stats, sort=sort)
        return indices[0], dists[0]

    def nn_batch(self, queries, stats=None):
        indices, dists = bruteforce.nn_batch(self._points, queries, self._points_t)
        self._charge(stats, len(indices), len(indices))
        return indices, dists

    def knn_batch(self, queries, k, stats=None):
        indices, dists = bruteforce.knn_batch(self._points, queries, k, self._points_t)
        self._charge(stats, len(indices), indices.size)
        return indices, dists

    def radius_batch(self, queries, r, stats=None, sort=False):
        return self.radius_batch_csr(queries, r, stats, sort=sort).to_list_pair()

    def radius_batch_csr(self, queries, r, stats=None, sort=False):
        result = bruteforce.radius_batch_csr(
            self._points, queries, r, sort=sort, points_t=self._points_t
        )
        self._charge(stats, result.n_segments, result.n_entries)
        return result


# Flat neighbor pairs per chunk when recomputing squared distances at
# cache-fill time; bounds the transient (chunk, dim) diff buffer.
_REUSE_BLOCK = 1 << 20


class RadiusReuseCache:
    """One inflated radius search serving a frame's nested-radius stages.

    Holds the CSR result (flat indices, offsets, distances, and the
    backend's per-coordinate *squared* distances) of a single all-points
    radius search at ``max_radius`` over ``index``.  ``fill`` runs that
    search; ``serve`` derives any nested request — a row subset at any
    radius ``r <= max_radius`` — via :func:`repro.core.ragged.csr_radius_select`,
    bit-identical to a fresh query of the same rows.  Once filled the
    cache is immutable, so repeated preprocessing of the same frame
    reuses identically and charges identical stats.

    The cache is valid for exactly one index object (compared by
    identity): :class:`NeighborSearcher` bypasses it whenever its
    effective index differs — notably the per-stage fresh
    :class:`~repro.core.approx.ApproximateSearch` views, whose stateful
    leader results must never be reused across stages.
    """

    def __init__(self, index, max_radius: float):
        self.index = index
        self.max_radius = float(max_radius)
        self.filled = False
        self._indices: np.ndarray | None = None
        self._offsets: np.ndarray | None = None
        self._dists: np.ndarray | None = None
        self._sq_dists: np.ndarray | None = None

    def covers_all_rows(self, self_indices: np.ndarray) -> bool:
        """Whether ``self_indices`` is every index row in natural order
        (the only query set whose result can serve arbitrary subsets)."""
        n = len(self.index.points)
        return len(self_indices) == n and bool(
            np.array_equal(self_indices, np.arange(n, dtype=np.int64))
        )

    def fill(self, stats: SearchStats) -> None:
        """Run the inflated all-points search and retain its CSR result.

        Charged to ``stats`` exactly as the backend reports it — the
        filling stage owns the work it executed, including the results
        beyond its own requested radius that later stages will reuse.
        """
        points = self.index.points
        result = self.index.radius_batch_csr(points, self.max_radius, stats)
        indices, offsets, dists = result.indices, result.offsets, result.distances
        total = result.n_entries
        # Recompute the backends' squared distances (per-coordinate
        # accumulation — every exact backend's acceptance operand) for
        # the exact-filter predicate, chunked to bound transient memory.
        owner = result.segment_ids
        sq = np.empty(total, dtype=np.float64)
        for lo in range(0, total, _REUSE_BLOCK):
            hi = min(lo + _REUSE_BLOCK, total)
            diff = points[indices[lo:hi]] - points[owner[lo:hi]]
            block = diff[:, 0] * diff[:, 0]
            for c in range(1, diff.shape[1]):
                block += diff[:, c] * diff[:, c]
            sq[lo:hi] = block
        self._indices, self._offsets = indices, offsets
        self._dists, self._sq_dists = dists, sq
        self.filled = True

    def serve(
        self, rows: np.ndarray, r: float, sort: bool = False
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Radius-``r`` result for index ``rows``, filtered from the cache."""
        return csr_radius_select(
            self._indices,
            self._offsets,
            self._sq_dists,
            self._dists,
            rows,
            r,
            sort=sort,
        )

    def serve_csr(
        self, rows: np.ndarray, r: float, sort: bool = False
    ) -> RaggedNeighborhoods:
        """Like :meth:`serve` but CSR in, CSR out — no list materialization."""
        return csr_radius_select_csr(
            self._indices,
            self._offsets,
            self._sq_dists,
            self._dists,
            rows,
            r,
            sort=sort,
        )


class NeighborSearcher:
    """Uniform, instrumented query interface over any backend.

    All pipeline stages call the batched entry points :meth:`nn_batch`,
    :meth:`knn_batch`, and :meth:`radius_batch` — one call per stage,
    one timer read and one ``batches`` increment per call; query and
    result counters stay exact per query, and work counters reflect
    the batch schedule actually executed.  The scalar methods
    :meth:`nn`, :meth:`knn`, and :meth:`radius` remain for one-off
    queries and produce bit-identical results.  An injector (see
    :mod:`repro.registration.error_injection`) may post-process results
    on either path.
    """

    def __init__(
        self,
        index,
        stats: SearchStats,
        build_time: float,
        profiler: StageProfiler | None = None,
        injector=None,
        reuse: RadiusReuseCache | None = None,
    ):
        self._index = index
        self.stats = stats
        self.build_time = build_time
        self._profiler = profiler
        self._injector = injector
        self._reuse = reuse if reuse is not None and reuse.index is index else None

    @property
    def index(self):
        """The underlying search structure."""
        return self._index

    @property
    def points(self) -> np.ndarray:
        return self._index.points

    def nn(self, query: np.ndarray) -> tuple[int, float]:
        start = time.perf_counter()
        if self._injector is not None:
            result = self._injector.nn(self._index, query, self.stats)
        else:
            result = self._index.nn(query, self.stats)
        if self._profiler is not None:
            self._profiler.charge_search(time.perf_counter() - start)
        return result

    def knn(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        start = time.perf_counter()
        if self._injector is not None:
            result = self._injector.knn(self._index, query, k, self.stats)
        else:
            result = self._index.knn(query, k, self.stats)
        if self._profiler is not None:
            self._profiler.charge_search(time.perf_counter() - start)
        return result

    def radius(
        self, query: np.ndarray, r: float, sort: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        start = time.perf_counter()
        if self._injector is not None:
            result = self._injector.radius(self._index, query, r, self.stats, sort)
        else:
            result = self._index.radius(query, r, self.stats, sort=sort)
        if self._profiler is not None:
            self._profiler.charge_search(time.perf_counter() - start)
        return result

    # ------------------------------------------------------------------
    # Batched queries: one timer read / injector dispatch per stage-sized
    # batch instead of per point.  Results are bit-identical to issuing
    # the scalar methods per row.
    # ------------------------------------------------------------------

    def nn_batch(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Nearest neighbor for every row of ``queries``: ((Q,), (Q,))."""
        start = time.perf_counter()
        if self._injector is not None:
            if hasattr(self._injector, "nn_batch"):
                result = self._injector.nn_batch(self._index, queries, self.stats)
            else:
                result = self._loop_injected_nn(queries)
        else:
            result = self._index.nn_batch(queries, self.stats)
        self.stats.batches += 1
        if self._profiler is not None:
            self._profiler.charge_search(time.perf_counter() - start)
        return result

    def knn_batch(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """kNN for every row of ``queries``: ((Q, min(k, n)), same)."""
        start = time.perf_counter()
        if self._injector is not None:
            if hasattr(self._injector, "knn_batch"):
                result = self._injector.knn_batch(self._index, queries, k, self.stats)
            else:
                result = self._loop_injected_knn(queries, k)
        else:
            result = self._index.knn_batch(queries, k, self.stats)
        self.stats.batches += 1
        if self._profiler is not None:
            self._profiler.charge_search(time.perf_counter() - start)
        return result

    def radius_batch(
        self,
        queries: np.ndarray,
        r: float,
        sort: bool = False,
        self_indices: np.ndarray | None = None,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Radius search for every row of ``queries``: ragged lists.

        Thin compatibility wrapper: runs the CSR-native path of
        :meth:`radius_batch_csr` and slices the flat result into
        per-query lists.  Because the slicing happens *here*, on the
        delivery edge, the queries are not counted as CSR-delivered
        (``stats.csr_results`` stays untouched); all other counters are
        charged identically to the CSR entry point.
        """
        start = time.perf_counter()
        result, _ = self._radius_batch_impl(queries, r, sort, self_indices)
        self.stats.batches += 1
        if self._profiler is not None:
            self._profiler.charge_search(time.perf_counter() - start)
        return result.to_list_pair()

    def radius_batch_csr(
        self,
        queries: np.ndarray,
        r: float,
        sort: bool = False,
        self_indices: np.ndarray | None = None,
    ) -> RaggedNeighborhoods:
        """Radius search for every row of ``queries``, CSR end-to-end.

        Returns the backend's :class:`RaggedNeighborhoods` directly —
        flat indices/offsets/distances, never materialized as per-query
        lists anywhere between the index and the consumer.  Entries per
        segment follow the backend's radius order (ascending index), or
        ascending distance when ``sort=True``; bit-identical to slicing
        :meth:`radius_batch`'s lists.

        ``self_indices``, when given, asserts that row ``i`` of
        ``queries`` is index point ``self_indices[i]`` — the hint that
        lets an installed :class:`RadiusReuseCache` serve the call by
        filtering its cached larger-radius result (bit-identical to the
        fresh search).  Searchers without a cache ignore it.

        Queries answered without any list round-trip are counted in
        ``stats.csr_results``; an injector that lacks a
        ``radius_batch_csr`` hook forces a list fallback, which is
        repacked but not counted.
        """
        start = time.perf_counter()
        result, csr_native = self._radius_batch_impl(
            queries, r, sort, self_indices
        )
        if csr_native:
            self.stats.csr_results += result.n_segments
        self.stats.batches += 1
        if self._profiler is not None:
            self._profiler.charge_search(time.perf_counter() - start)
        return result

    def _radius_batch_impl(
        self, queries, r, sort, self_indices
    ) -> tuple[RaggedNeighborhoods, bool]:
        """Shared dispatch for both radius entry points.

        Returns ``(result, csr_native)`` where ``csr_native`` is False
        only when a legacy injector forced a per-query list fallback.
        """
        if self._injector is not None:
            if hasattr(self._injector, "radius_batch_csr"):
                return (
                    self._injector.radius_batch_csr(
                        self._index, queries, r, self.stats, sort
                    ),
                    True,
                )
            if hasattr(self._injector, "radius_batch"):
                lists = self._injector.radius_batch(
                    self._index, queries, r, self.stats, sort
                )
            else:
                lists = self._loop_injected_radius(queries, r, sort)
            return RaggedNeighborhoods.from_lists(*lists), False
        result = self._reused_radius_csr(r, sort, self_indices)
        if result is None:
            result = self._index.radius_batch_csr(
                queries, r, self.stats, sort=sort
            )
        return result, True

    def _reused_radius_csr(self, r, sort, self_indices):
        """Serve a radius batch from the reuse cache, or None for fresh.

        The first eligible full-cloud call fills the cache (inflated to
        the planned maximum radius, charged to this searcher's stats as
        the backend reports it); later calls — any row subset at any
        nested radius — charge ``reused_queries``/``cache_hits`` and
        their filtered result counts, but no traversal work.
        """
        cache = self._reuse
        if cache is None or self_indices is None or r > cache.max_radius:
            return None
        self_indices = np.asarray(self_indices, dtype=np.int64)
        filled_now = False
        if not cache.filled:
            if not cache.covers_all_rows(self_indices):
                return None
            cache.fill(self.stats)
            filled_now = True
        result = cache.serve_csr(self_indices, r, sort=sort)
        if not filled_now:
            self.stats.queries += len(self_indices)
            self.stats.reused_queries += len(self_indices)
            self.stats.cache_hits += 1
            self.stats.results_returned += result.n_entries
        return result

    # Fallbacks for third-party injectors that only define scalar hooks.

    def _loop_injected_nn(self, queries):
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        indices = np.empty(len(queries), dtype=np.int64)
        dists = np.empty(len(queries))
        for i, query in enumerate(queries):
            indices[i], dists[i] = self._injector.nn(self._index, query, self.stats)
        return indices, dists

    def _loop_injected_knn(self, queries, k):
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        rows = [
            self._injector.knn(self._index, query, k, self.stats)
            for query in queries
        ]
        # Rows can be ragged (approximate backend); pad to a rectangle
        # with (-1, inf) misses like the backends' own knn_batch.
        width = max((len(r[0]) for r in rows), default=0)
        indices = np.full((len(rows), width), -1, dtype=np.int64)
        dists = np.full((len(rows), width), np.inf)
        for i, (row_idx, row_dist) in enumerate(rows):
            indices[i, : len(row_idx)] = row_idx
            dists[i, : len(row_dist)] = row_dist
        return indices, dists

    def _loop_injected_radius(self, queries, r, sort):
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        all_indices, all_dists = [], []
        for query in queries:
            indices, dists = self._injector.radius(
                self._index, query, r, self.stats, sort
            )
            all_indices.append(indices)
            all_dists.append(dists)
        return all_indices, all_dists


def build_index(
    points: np.ndarray,
    config: SearchConfig | None = None,
    profiler: StageProfiler | None = None,
) -> tuple[object, float]:
    """Construct the raw search structure over ``points``.

    Returns ``(index, build_time)``.  This is the per-frame artifact the
    pipeline's :class:`~repro.registration.pipeline.FrameState` owns and
    reuses across registrations; :class:`NeighborSearcher` instances are
    cheap per-stage views derived from it.  Build time is charged to the
    profiler's active stage as KD-tree construction (the middle band of
    Fig. 4b).
    """
    config = config or SearchConfig()
    start = time.perf_counter()
    if config.backend == "canonical":
        index = KDTree(points, split_rule=config.split_rule)
    elif config.backend == "twostage":
        index = TwoStageKDTree.from_leaf_size(
            points, config.leaf_size, split_rule=config.split_rule
        )
    elif config.backend == "approximate":
        tree = TwoStageKDTree.from_leaf_size(
            points, config.leaf_size, split_rule=config.split_rule
        )
        index = ApproximateSearch(tree, config.approx)
    elif config.backend == "gridhash":
        index = GridHashIndex(points, config.gridhash)
    else:
        index = _BruteForceIndex(points)
    build_time = time.perf_counter() - start
    if profiler is not None:
        profiler.charge_construction(build_time)
    return index, build_time


def exact_index(index):
    """Strip the stateful approximation layer, if any, off an index.

    The sparse, error-sensitive stages (keypoints, descriptors) always
    search the exact two-stage tree even when the pipeline runs the
    approximate backend (paper Sec. 4.2).
    """
    return index.tree if isinstance(index, ApproximateSearch) else index


def build_searcher(
    points: np.ndarray,
    config: SearchConfig | None = None,
    profiler: StageProfiler | None = None,
    stats: SearchStats | None = None,
    injector=None,
) -> NeighborSearcher:
    """Construct the configured search structure over ``points``.

    Build time is charged to the profiler's active stage as KD-tree
    construction (the middle band of Fig. 4b).
    """
    stats = stats if stats is not None else SearchStats()
    index, build_time = build_index(points, config, profiler)
    return NeighborSearcher(
        index, stats, build_time, profiler=profiler, injector=injector
    )
