"""The configurable point cloud registration pipeline (paper Fig. 2).

Two phases: **initial estimation** (normal estimation -> key-point
detection -> descriptor calculation -> KPCE -> correspondence rejection)
produces a coarse transform from sparse salient points; **fine-tuning**
(ICP: RPCE <-> transformation estimation) iterates on all raw points
until convergence.  Every algorithmic and parametric knob of the paper's
Table 1 is a field of :class:`PipelineConfig`, which is what makes the
design-space exploration of Sec. 3.2 possible.

The pipeline is also the instrumentation harness: per-stage wall time
(Fig. 4a), KD-tree search/construction time (Fig. 4b), per-stage search
work counters (the accelerator workload), and per-stage error injectors
(Fig. 7) all hang off the same ``register`` call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.approx import ApproximateSearch
from repro.io.pointcloud import PointCloud
from repro.kdtree.stats import SearchStats
from repro.profiling.timer import StageProfiler
from repro.registration.correspondence import (
    KPCEConfig,
    estimate_feature_correspondences,
)
from repro.registration.descriptors import DescriptorConfig, compute_descriptors
from repro.registration.icp import ICPConfig, ICPResult, icp
from repro.registration.keypoints import KeypointConfig, detect_keypoints
from repro.registration.normals import NormalEstimationConfig, estimate_normals
from repro.registration.rejection import RejectionConfig, reject_correspondences
from repro.registration.search import (
    NeighborSearcher,
    SearchConfig,
    build_searcher,
)

__all__ = ["PipelineConfig", "RegistrationResult", "Pipeline", "STAGE_NAMES"]

# The seven key stages of Fig. 4a, in pipeline order.
STAGE_NAMES = (
    "Normal Estimation",
    "Key-point Detection",
    "Descriptor Calculation",
    "KPCE",
    "Correspondence Rejection",
    "RPCE",
    "Error Minimization",
)


@dataclass
class PipelineConfig:
    """Every design knob of Table 1, plus engineering controls.

    ``search`` selects the neighbor-search backend for the 3D stages
    (NE, keypoints, descriptors, RPCE).  With ``backend="approximate"``
    the approximation applies only to the dense stages — NE and RPCE —
    as the paper prescribes (Sec. 4.2: sparse KPCE is error-sensitive);
    keypoint detection and descriptors fall back to exact search on the
    same two-stage tree.

    ``injectors`` maps stage names (``"Normal Estimation"``, ``"RPCE"``,
    ``"KPCE"``) to error injectors for the Fig. 7 study.

    ``voxel_downsample`` optionally reduces both clouds before any
    processing — an engineering control for test runtimes, not a paper
    knob.
    """

    normals: NormalEstimationConfig = field(default_factory=NormalEstimationConfig)
    keypoints: KeypointConfig = field(default_factory=KeypointConfig)
    descriptor: DescriptorConfig = field(default_factory=DescriptorConfig)
    kpce: KPCEConfig = field(default_factory=KPCEConfig)
    rejection: RejectionConfig = field(default_factory=RejectionConfig)
    icp: ICPConfig = field(default_factory=ICPConfig)
    search: SearchConfig = field(default_factory=SearchConfig)
    injectors: dict = field(default_factory=dict)
    voxel_downsample: float | None = None
    skip_initial_estimation: bool = False


@dataclass
class RegistrationResult:
    """Everything a ``register`` call produced.

    ``transformation`` maps source-frame coordinates into the target
    frame (the matrix M of paper Eq. 1).
    """

    transformation: np.ndarray
    initial_transformation: np.ndarray
    icp: ICPResult
    profiler: StageProfiler
    stage_stats: dict[str, SearchStats]
    n_source_keypoints: int = 0
    n_target_keypoints: int = 0
    n_feature_correspondences: int = 0
    n_inlier_correspondences: int = 0
    success: bool = True

    @property
    def total_search_stats(self) -> SearchStats:
        """All search work across stages, merged."""
        total = SearchStats()
        for stats in self.stage_stats.values():
            total.merge(stats)
        return total

    def summary(self) -> str:
        """Human-readable account of the registration run."""
        work = self.total_search_stats
        fractions = self.profiler.kdtree_fractions()
        lines = [
            f"registration {'succeeded' if self.success else 'FAILED'} "
            f"in {self.profiler.total:.2f} s",
            f"  initial estimation: {self.n_source_keypoints}/"
            f"{self.n_target_keypoints} keypoints, "
            f"{self.n_feature_correspondences} matches, "
            f"{self.n_inlier_correspondences} inliers",
            f"  fine-tuning: {self.icp!r}",
            f"  search work: {work.nodes_visited:,} node visits over "
            f"{work.queries:,} queries "
            f"({100 * fractions['search']:.0f} % of runtime)",
        ]
        return "\n".join(lines)


class Pipeline:
    """A configured registration pipeline; reusable across frame pairs."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()

    def register(
        self,
        source: PointCloud,
        target: PointCloud,
        initial: np.ndarray | None = None,
        profiler: StageProfiler | None = None,
    ) -> RegistrationResult:
        """Estimate the transform aligning ``source`` onto ``target``.

        ``initial``, if given, seeds the fine-tuning phase directly and
        the initial-estimation phase is skipped (as is also the case
        with ``config.skip_initial_estimation``).
        """
        config = self.config
        profiler = profiler or StageProfiler()
        stage_stats = {name: SearchStats() for name in STAGE_NAMES}

        if config.voxel_downsample is not None:
            source = source.voxel_downsample(config.voxel_downsample)
            target = target.voxel_downsample(config.voxel_downsample)
        if len(source) == 0 or len(target) == 0:
            raise ValueError("cannot register empty point clouds")

        # ------------------------------------------------------------------
        # Shared search structures.  One tree per cloud, built up front;
        # stage-specific wrappers share it but charge their own stats.
        # ------------------------------------------------------------------
        with profiler.stage("Normal Estimation"):
            source_base = build_searcher(
                source.points, config.search, profiler,
                stage_stats["Normal Estimation"],
            )
            target_base = build_searcher(
                target.points, config.search, profiler,
                stage_stats["Normal Estimation"],
            )

        approximate = config.search.backend == "approximate"

        def exact_index(base: NeighborSearcher):
            index = base.index
            return index.tree if isinstance(index, ApproximateSearch) else index

        def stage_searcher(base, stage, exact=False, fresh_approx=False):
            index = base.index
            if exact:
                index = exact_index(base)
            elif fresh_approx and isinstance(index, ApproximateSearch):
                index = ApproximateSearch(index.tree, config.search.approx)
            return NeighborSearcher(
                index,
                stage_stats[stage],
                0.0,
                profiler=profiler,
                injector=config.injectors.get(stage),
            )

        # ------------------------------------------------------------------
        # Stage 1: Normal Estimation (dense; approximate-eligible).
        # ------------------------------------------------------------------
        with profiler.stage("Normal Estimation"):
            source = estimate_normals(
                source,
                stage_searcher(source_base, "Normal Estimation", fresh_approx=True),
                config.normals,
            )
            target = estimate_normals(
                target,
                stage_searcher(target_base, "Normal Estimation", fresh_approx=True),
                config.normals,
            )

        initial_transform = np.eye(4)
        n_source_kp = n_target_kp = 0
        n_feature_corr = n_inliers = 0

        run_initial = initial is None and not config.skip_initial_estimation
        if initial is not None:
            initial_transform = np.array(initial, dtype=np.float64)

        if run_initial:
            # --------------------------------------------------------------
            # Stage 2: Key-point Detection (exact search).
            # --------------------------------------------------------------
            with profiler.stage("Key-point Detection"):
                source_kp = detect_keypoints(
                    source,
                    stage_searcher(source_base, "Key-point Detection", exact=True),
                    config.keypoints,
                )
                target_kp = detect_keypoints(
                    target,
                    stage_searcher(target_base, "Key-point Detection", exact=True),
                    config.keypoints,
                )
            n_source_kp, n_target_kp = len(source_kp), len(target_kp)

            # --------------------------------------------------------------
            # Stage 3: Descriptor Calculation (exact search).
            # --------------------------------------------------------------
            with profiler.stage("Descriptor Calculation"):
                source_features = compute_descriptors(
                    source,
                    stage_searcher(source_base, "Descriptor Calculation", exact=True),
                    source_kp,
                    config.descriptor,
                )
                target_features = compute_descriptors(
                    target,
                    stage_searcher(target_base, "Descriptor Calculation", exact=True),
                    target_kp,
                    config.descriptor,
                )

            # --------------------------------------------------------------
            # Stage 4: KPCE — feature-space matching (sparse, exact).
            # --------------------------------------------------------------
            with profiler.stage("KPCE"):
                kpce_config = config.kpce
                if (
                    config.rejection.ratio_threshold is not None
                    and not kpce_config.with_second
                ):
                    kpce_config = KPCEConfig(
                        reciprocal=kpce_config.reciprocal,
                        backend=kpce_config.backend,
                        with_second=True,
                    )
                feature_corr = estimate_feature_correspondences(
                    source_features,
                    target_features,
                    kpce_config,
                    profiler=profiler,
                    stats=stage_stats["KPCE"],
                    injector=config.injectors.get("KPCE"),
                )
            n_feature_corr = len(feature_corr)

            # --------------------------------------------------------------
            # Stage 5: Correspondence Rejection -> initial transform.
            # --------------------------------------------------------------
            with profiler.stage("Correspondence Rejection"):
                # Feature rows -> 3D keypoint positions.
                mapped = feature_corr.select(np.arange(len(feature_corr)))
                mapped.source_indices = source_kp[feature_corr.source_indices]
                mapped.target_indices = target_kp[feature_corr.target_indices]
                rejection = reject_correspondences(
                    mapped, source.points, target.points, config.rejection
                )
            n_inliers = len(rejection.correspondences)
            if n_inliers >= 3:
                initial_transform = rejection.transformation

        # ------------------------------------------------------------------
        # Fine-tuning: ICP (RPCE dense; approximate-eligible).
        # ------------------------------------------------------------------
        def rpce_searcher_factory():
            return stage_searcher(target_base, "RPCE", fresh_approx=True)

        icp_result = icp(
            source,
            target,
            rpce_searcher_factory(),
            config.icp,
            initial=initial_transform,
            profiler=profiler,
            searcher_factory=rpce_searcher_factory if approximate else None,
        )

        success = icp_result.n_correspondences >= 6 and np.all(
            np.isfinite(icp_result.transformation)
        )
        return RegistrationResult(
            transformation=icp_result.transformation,
            initial_transformation=initial_transform,
            icp=icp_result,
            profiler=profiler,
            stage_stats=stage_stats,
            n_source_keypoints=n_source_kp,
            n_target_keypoints=n_target_kp,
            n_feature_correspondences=n_feature_corr,
            n_inlier_correspondences=n_inliers,
            success=success,
        )


def register_pair(
    source: PointCloud,
    target: PointCloud,
    config: PipelineConfig | None = None,
    initial: np.ndarray | None = None,
) -> RegistrationResult:
    """One-shot convenience: configure, run, return the result."""
    return Pipeline(config).register(source, target, initial=initial)
