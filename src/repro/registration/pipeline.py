"""The configurable point cloud registration pipeline (paper Fig. 2).

Two phases: **initial estimation** (normal estimation -> key-point
detection -> descriptor calculation -> KPCE -> correspondence rejection)
produces a coarse transform from sparse salient points; **fine-tuning**
(ICP: RPCE <-> transformation estimation) iterates on all raw points
until convergence.  Every algorithmic and parametric knob of the paper's
Table 1 is a field of :class:`PipelineConfig`, which is what makes the
design-space exploration of Sec. 3.2 possible.

The pipeline is also the instrumentation harness: per-stage wall time
(Fig. 4a), KD-tree search/construction time (Fig. 4b), per-stage search
work counters (the accelerator workload), and per-stage error injectors
(Fig. 7) all hang off the same ``register`` call.

Per-frame / pairwise split
--------------------------
``register`` is a composition of two public phases.  ``preprocess``
performs every computation that depends on a *single* frame — search
structure construction, normal estimation, key-point detection,
descriptor calculation — and returns the artifacts as an immutable
:class:`FrameState`.
``match`` consumes two ``FrameState`` objects and runs the *pairwise*
stages: KPCE, correspondence rejection, and ICP fine-tuning.  Sequence
drivers exploit the split: pair ``k``'s source frame is exactly pair
``k + 1``'s target frame, so a streaming caller (see
:class:`~repro.registration.odometry.StreamingOdometry`) preprocesses
each frame once and halves the steady-state per-pair preprocessing
cost, with bit-identical results.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, fields, is_dataclass, replace

import numpy as np

from repro.core.approx import ApproximateSearch
from repro.io.pointcloud import PointCloud
from repro.kdtree.stats import SearchStats
from repro.profiling.timer import StageProfiler
from repro.registration.correspondence import (
    KPCEConfig,
    estimate_feature_correspondences,
)
from repro.registration.descriptors import DescriptorConfig, compute_descriptors
from repro.registration.icp import ICPConfig, ICPResult, icp
from repro.registration.keypoints import KeypointConfig, detect_keypoints
from repro.registration.keypoints.narf import RangeImage
from repro.registration.normals import NormalEstimationConfig, estimate_normals
from repro.registration.rejection import RejectionConfig, reject_correspondences
from repro.registration.search import (
    NeighborSearcher,
    RadiusReuseCache,
    SearchConfig,
    build_index,
    exact_index,
)
from repro.telemetry import tracer_of

__all__ = [
    "PipelineConfig",
    "RegistrationResult",
    "FrameState",
    "Pipeline",
    "STAGE_NAMES",
]

# The seven key stages of Fig. 4a, in pipeline order.
STAGE_NAMES = (
    "Normal Estimation",
    "Key-point Detection",
    "Descriptor Calculation",
    "KPCE",
    "Correspondence Rejection",
    "RPCE",
    "Error Minimization",
)


def _canonical(value):
    """Flatten a config value into a hashable, order-stable tuple.

    Dataclass configs become ``(ClassName, (field, value), ...)`` with
    nested dataclasses and dicts (e.g. ``KeypointConfig.params``)
    recursively flattened; dict items are sorted by key so insertion
    order never splits a fingerprint.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, _canonical(getattr(value, f.name)))
            for f in fields(value)
        )
    if isinstance(value, dict):
        return tuple((k, _canonical(value[k])) for k in sorted(value))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    return value


@dataclass
class PipelineConfig:
    """Every design knob of Table 1, plus engineering controls.

    ``search`` selects the neighbor-search backend for the 3D stages
    (NE, keypoints, descriptors, RPCE).  With ``backend="approximate"``
    the approximation applies only to the dense stages — NE and RPCE —
    as the paper prescribes (Sec. 4.2: sparse KPCE is error-sensitive);
    keypoint detection and descriptors fall back to exact search on the
    same two-stage tree.

    ``injectors`` maps stage names (``"Normal Estimation"``, ``"RPCE"``,
    ``"KPCE"``) to error injectors for the Fig. 7 study.

    ``voxel_downsample`` optionally reduces both clouds before any
    processing — an engineering control for test runtimes, not a paper
    knob.
    """

    normals: NormalEstimationConfig = field(default_factory=NormalEstimationConfig)
    keypoints: KeypointConfig = field(default_factory=KeypointConfig)
    descriptor: DescriptorConfig = field(default_factory=DescriptorConfig)
    kpce: KPCEConfig = field(default_factory=KPCEConfig)
    rejection: RejectionConfig = field(default_factory=RejectionConfig)
    icp: ICPConfig = field(default_factory=ICPConfig)
    search: SearchConfig = field(default_factory=SearchConfig)
    injectors: dict = field(default_factory=dict)
    voxel_downsample: float | None = None
    skip_initial_estimation: bool = False

    def frontend_fingerprint(self) -> tuple:
        """Canonical key over every knob that shapes :meth:`Pipeline.preprocess`.

        Two configs with equal fingerprints produce bit-identical
        :class:`FrameState` artifacts for the same input frame — the
        tree build, normal estimation, key-point detection, and
        descriptor calculation read nothing else of the config.  The
        design-space explorer keys its shared preprocess cache on this,
        so grid points that differ only in pairwise knobs (KPCE,
        rejection, ICP) reuse one front-end pass.

        Error injectors targeting front-end stages make preprocessing
        config-specific in ways this module cannot canonicalize, so any
        such injector is fingerprinted by object identity: sharing then
        happens only between configs holding the *same* injector object.
        """
        frontend_injectors = tuple(
            (stage, id(self.injectors[stage]))
            for stage in _FRAME_STAGES + _FEATURE_STAGES
            if self.injectors.get(stage) is not None
        )
        return (
            self.voxel_downsample,
            _canonical(self.normals),
            _canonical(self.keypoints),
            _canonical(self.descriptor),
            _canonical(self.search),
            frontend_injectors,
            # The nested-radius reuse plan shapes which searches
            # preprocess actually executes (and therefore its stats):
            # configs that differ only in e.g. skip_initial_estimation
            # plan differently and must not share front-end artifacts.
            _planned_reuse_radius(self),
        )


@dataclass
class RegistrationResult:
    """Everything a ``register`` call produced.

    ``transformation`` maps source-frame coordinates into the target
    frame (the matrix M of paper Eq. 1).
    """

    transformation: np.ndarray
    initial_transformation: np.ndarray
    icp: ICPResult
    profiler: StageProfiler
    stage_stats: dict[str, SearchStats]
    n_source_keypoints: int = 0
    n_target_keypoints: int = 0
    n_feature_correspondences: int = 0
    n_inlier_correspondences: int = 0
    success: bool = True

    @property
    def total_search_stats(self) -> SearchStats:
        """All search work across stages, merged."""
        total = SearchStats()
        for stats in self.stage_stats.values():
            total.merge(stats)
        return total

    def summary(self) -> str:
        """Human-readable account of the registration run."""
        work = self.total_search_stats
        fractions = self.profiler.kdtree_fractions()
        lines = [
            f"registration {'succeeded' if self.success else 'FAILED'} "
            f"in {self.profiler.total:.2f} s",
            f"  initial estimation: {self.n_source_keypoints}/"
            f"{self.n_target_keypoints} keypoints, "
            f"{self.n_feature_correspondences} matches, "
            f"{self.n_inlier_correspondences} inliers",
            f"  fine-tuning: {self.icp!r}",
            f"  search work: {work.nodes_visited:,} node visits over "
            f"{work.queries:,} queries "
            f"({100 * fractions['search']:.0f} % of runtime)",
        ]
        return "\n".join(lines)


# Stages whose work depends on one frame only — the ``preprocess`` half
# of the split.  The first is always run; the latter two only when the
# initial-estimation phase will need features.
_FRAME_STAGES = ("Normal Estimation",)
_FEATURE_STAGES = ("Key-point Detection", "Descriptor Calculation")


def _planned_reuse_radius(config: PipelineConfig) -> float | None:
    """The largest radius any preprocess stage will self-query, or None.

    Drives the nested-radius reuse cache: the first full-cloud radius
    search is inflated to this radius and every nested stage request is
    derived from it.  Computed from the *config* alone — never from
    ``with_features`` — so an eager preprocess and a lazy
    ``preprocess(with_features=False)`` + ``ensure_features`` charge
    identical stats (the two paths run identical searches).  Returns
    ``None`` when only one radius is ever planned
    (``skip_initial_estimation``), where caching could never pay.

    Each branch mirrors its stage's radius arithmetic expression for
    expression (e.g. SIFT's scale-ladder maximum), so the plan is never
    smaller than what the stage actually asks for; a stage asking for
    more than the plan simply falls back to a fresh search.
    """
    if config.skip_initial_estimation:
        return None
    radii = [config.normals.radius]
    params = config.keypoints.params
    if config.keypoints.method == "harris":
        radii.append(params.get("radius", 1.0))
    elif config.keypoints.method == "sift":
        min_scale = params.get("min_scale", 0.5)
        n_octaves = params.get("n_octaves", 3)
        per_octave = params.get("scales_per_octave", 2)
        max_scale = (
            min_scale
            * (2.0 ** (n_octaves - 1))
            * (2.0 ** (per_octave / per_octave))
        )
        radii.append(2.0 * max_scale)
    radii.append(config.descriptor.radius)
    return max(radii)


@dataclass(frozen=True)
class FrameState:
    """Immutable per-frame artifacts produced by :meth:`Pipeline.preprocess`.

    Everything here is a pure function of ``(frame, config)``: the
    (possibly downsampled) cloud with normals attached, the neighbor
    search structure over its points, and optionally the keypoints and
    descriptors for the initial-estimation phase.  ``range_image`` may
    be attached (via ``dataclasses.replace``) by callers that register
    many sources against one fixed target with projection RPCE;
    ``match`` builds it per call otherwise.  ``stats`` records the
    search work the preprocessing performed, keyed by stage name, so a
    pairwise ``match`` can account it to each pair that consumes the
    frame exactly as the monolithic ``register`` did.

    A ``FrameState`` is reusable across registrations — the whole point
    of the split — and must therefore never be mutated;
    :meth:`Pipeline.ensure_features` returns a *new* state when it has
    to extend one.
    """

    cloud: PointCloud
    index: object
    search_config: SearchConfig
    stats: dict[str, SearchStats]
    keypoints: np.ndarray | None = None
    descriptors: np.ndarray | None = None
    range_image: RangeImage | None = None
    # Nested-radius reuse cache over the exact index; immutable once
    # filled (so repeated preprocessing charges identical stats) and
    # dropped from the state ``ensure_features`` returns — the feature
    # stages are its last consumers, and featured states are what
    # streaming drivers retain.
    reuse: RadiusReuseCache | None = None

    def __len__(self) -> int:
        return len(self.cloud)

    @property
    def has_features(self) -> bool:
        """Whether keypoints and descriptors were computed."""
        return self.keypoints is not None and self.descriptors is not None

    def searcher(
        self,
        stats: SearchStats,
        exact: bool = False,
        fresh_approx: bool = False,
        profiler: StageProfiler | None = None,
        injector=None,
    ) -> NeighborSearcher:
        """A per-stage query view over this frame's search structure.

        ``exact`` strips the approximation layer (sparse stages);
        ``fresh_approx`` re-wraps the exact tree in a fresh
        :class:`~repro.core.approx.ApproximateSearch` so each dense
        stage starts with clean leader state, as in the hardware's
        per-pass leader buffers.
        """
        index = self.index
        if exact:
            index = exact_index(index)
        elif fresh_approx and isinstance(index, ApproximateSearch):
            index = ApproximateSearch(index.tree, self.search_config.approx)
        # The reuse cache only ever serves its own (exact) index with no
        # injector in the way; NeighborSearcher re-checks the identity.
        reuse = None if injector is not None else self.reuse
        return NeighborSearcher(
            index, stats, 0.0, profiler=profiler, injector=injector, reuse=reuse
        )


class Pipeline:
    """A configured registration pipeline; reusable across frame pairs."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()

    # ------------------------------------------------------------------
    # Phase A: per-frame preprocessing -> FrameState.
    # ------------------------------------------------------------------

    def runs_initial(self, initial: np.ndarray | None = None) -> bool:
        """Whether a pair seeded with ``initial`` runs initial estimation.

        The single source of truth for :meth:`register`, :meth:`match`,
        and streaming drivers predicting which frames need features.
        """
        return initial is None and not self.config.skip_initial_estimation

    def preprocess(
        self,
        cloud: PointCloud,
        profiler: StageProfiler | None = None,
        with_features: bool | None = None,
    ) -> FrameState:
        """Run every single-frame stage over ``cloud``.

        ``with_features`` controls whether the initial-estimation
        artifacts (keypoints, descriptors) are computed; it defaults to
        ``not config.skip_initial_estimation``.  A state built without
        features can be extended later via :meth:`ensure_features`.
        """
        config = self.config
        profiler = profiler or StageProfiler()
        tracer = tracer_of(profiler)
        if with_features is None:
            with_features = self.runs_initial()
        stats = {name: SearchStats() for name in _FRAME_STAGES + _FEATURE_STAGES}

        with tracer.span("preprocess", n_raw_points=len(cloud)):
            if config.voxel_downsample is not None:
                cloud = cloud.voxel_downsample(config.voxel_downsample)
            if len(cloud) == 0:
                raise ValueError("cannot register empty point clouds")
            tracer.annotate(n_points=len(cloud))

            # Stage 1: search structure + Normal Estimation (dense;
            # approximate-eligible).  One tree per frame, shared by every
            # stage view derived from this state.
            with profiler.stage("Normal Estimation"):
                index, _ = build_index(cloud.points, config.search, profiler)
                planned = _planned_reuse_radius(config)
                reuse = (
                    RadiusReuseCache(exact_index(index), planned)
                    if planned is not None
                    else None
                )
                state = FrameState(
                    cloud=cloud,
                    index=index,
                    search_config=config.search,
                    stats=stats,
                    reuse=reuse,
                )
                cloud = estimate_normals(
                    cloud,
                    state.searcher(
                        stats["Normal Estimation"],
                        fresh_approx=True,
                        profiler=profiler,
                        injector=config.injectors.get("Normal Estimation"),
                    ),
                    config.normals,
                )
                state = replace(state, cloud=cloud)
                tracer.count_stats(stats["Normal Estimation"])

            if with_features:
                state = self.ensure_features(state, profiler=profiler)
        return state

    def ensure_features(
        self,
        state: FrameState,
        profiler: StageProfiler | None = None,
    ) -> FrameState:
        """Return a state that has keypoints and descriptors.

        ``state`` itself is returned when it already carries features;
        otherwise a new ``FrameState`` is built (the input is never
        mutated — callers caching states across pairs keep whichever
        version they hold).
        """
        if state.has_features:
            return state
        config = self.config
        profiler = profiler or StageProfiler()
        tracer = tracer_of(profiler)
        stats = {name: copy.copy(s) for name, s in state.stats.items()}
        working = replace(state, stats=stats)

        # Stage 2: Key-point Detection (exact search).
        with profiler.stage("Key-point Detection"):
            keypoints = detect_keypoints(
                working.cloud,
                working.searcher(
                    stats["Key-point Detection"],
                    exact=True,
                    profiler=profiler,
                    injector=config.injectors.get("Key-point Detection"),
                ),
                config.keypoints,
            )
            tracer.count_stats(stats["Key-point Detection"])
            tracer.annotate(n_keypoints=len(keypoints))

        # Stage 3: Descriptor Calculation (exact search).
        with profiler.stage("Descriptor Calculation"):
            descriptors = compute_descriptors(
                working.cloud,
                working.searcher(
                    stats["Descriptor Calculation"],
                    exact=True,
                    profiler=profiler,
                    injector=config.injectors.get("Descriptor Calculation"),
                ),
                keypoints,
                config.descriptor,
            )
            tracer.count_stats(stats["Descriptor Calculation"])
        # The descriptor stage was the reuse cache's last consumer; the
        # featured state (what streaming drivers keep) drops it so the
        # cached CSR doesn't outlive its usefulness.  The bare input
        # state keeps its reference — a second ensure_features on it
        # reuses identically and charges identical stats.
        return replace(
            working, keypoints=keypoints, descriptors=descriptors, reuse=None
        )

    # ------------------------------------------------------------------
    # Phase B: pairwise matching over two FrameStates.
    # ------------------------------------------------------------------

    def match(
        self,
        source_state: FrameState,
        target_state: FrameState,
        initial: np.ndarray | None = None,
        profiler: StageProfiler | None = None,
    ) -> RegistrationResult:
        """Run the pairwise stages over two preprocessed frames.

        The result's ``stage_stats`` fold in both frames' preprocessing
        work (for the stages this pair actually consumed), so counters
        are identical to a monolithic ``register`` call on the raw
        frames — streaming reuse changes *when* work happens, never what
        a pair reports.
        """
        profiler = profiler or StageProfiler()
        tracer = tracer_of(profiler)
        with tracer.span("match"):
            return self._match(source_state, target_state, initial, profiler, tracer)

    def _match(
        self,
        source_state: FrameState,
        target_state: FrameState,
        initial: np.ndarray | None,
        profiler: StageProfiler,
        tracer,
    ) -> RegistrationResult:
        config = self.config

        initial_transform = np.eye(4)
        run_initial = self.runs_initial(initial)
        if initial is not None:
            initial_transform = np.array(initial, dtype=np.float64)

        if run_initial:
            source_state = self.ensure_features(source_state, profiler=profiler)
            target_state = self.ensure_features(target_state, profiler=profiler)

        stage_stats = {name: SearchStats() for name in STAGE_NAMES}
        consumed = _FRAME_STAGES + (_FEATURE_STAGES if run_initial else ())
        for stage in consumed:
            stage_stats[stage].merge(source_state.stats[stage])
            stage_stats[stage].merge(target_state.stats[stage])

        source = source_state.cloud
        target = target_state.cloud
        n_source_kp = n_target_kp = 0
        n_feature_corr = n_inliers = 0

        if run_initial:
            source_kp = source_state.keypoints
            target_kp = target_state.keypoints
            n_source_kp, n_target_kp = len(source_kp), len(target_kp)

            # --------------------------------------------------------------
            # Stage 4: KPCE — feature-space matching (sparse, exact).
            # --------------------------------------------------------------
            with profiler.stage("KPCE"):
                kpce_config = config.kpce
                if (
                    config.rejection.ratio_threshold is not None
                    and not kpce_config.with_second
                ):
                    kpce_config = KPCEConfig(
                        reciprocal=kpce_config.reciprocal,
                        backend=kpce_config.backend,
                        with_second=True,
                    )
                feature_corr = estimate_feature_correspondences(
                    source_state.descriptors,
                    target_state.descriptors,
                    kpce_config,
                    profiler=profiler,
                    stats=stage_stats["KPCE"],
                    injector=config.injectors.get("KPCE"),
                )
                tracer.count_stats(stage_stats["KPCE"])
            n_feature_corr = len(feature_corr)
            tracer.annotate(n_feature_correspondences=n_feature_corr)

            # --------------------------------------------------------------
            # Stage 5: Correspondence Rejection -> initial transform.
            # --------------------------------------------------------------
            with profiler.stage("Correspondence Rejection"):
                # Feature rows -> 3D keypoint positions.
                mapped = feature_corr.select(np.arange(len(feature_corr)))
                mapped.source_indices = source_kp[feature_corr.source_indices]
                mapped.target_indices = target_kp[feature_corr.target_indices]
                rejection = reject_correspondences(
                    mapped, source.points, target.points, config.rejection
                )
            n_inliers = len(rejection.correspondences)
            if n_inliers >= 3:
                initial_transform = rejection.transformation

        # ------------------------------------------------------------------
        # Fine-tuning: ICP (RPCE dense; approximate-eligible).  The
        # target range image (projection RPCE only) passes through from
        # the state — worthwhile to prebuild when one target serves many
        # sources (e.g. localization against a map); icp() builds its
        # own otherwise, and in sequence odometry each frame is a
        # target exactly once anyway.
        # ------------------------------------------------------------------
        # Derived from the state's actual index, not the (mutable)
        # config: a state preprocessed by an approximate pipeline keeps
        # its per-pass leader resets even if the config drifted since.
        approximate = isinstance(target_state.index, ApproximateSearch)

        def rpce_searcher_factory():
            return target_state.searcher(
                stage_stats["RPCE"],
                fresh_approx=True,
                profiler=profiler,
                injector=config.injectors.get("RPCE"),
            )

        with tracer.span("icp", approximate=approximate):
            icp_result = icp(
                source,
                target,
                rpce_searcher_factory(),
                config.icp,
                initial=initial_transform,
                profiler=profiler,
                searcher_factory=rpce_searcher_factory if approximate else None,
                range_image=target_state.range_image,
            )
            tracer.count_stats(stage_stats["RPCE"])
            tracer.annotate(
                iterations=icp_result.iterations,
                converged=icp_result.converged,
                n_correspondences=icp_result.n_correspondences,
            )

        success = icp_result.n_correspondences >= 6 and np.all(
            np.isfinite(icp_result.transformation)
        )
        return RegistrationResult(
            transformation=icp_result.transformation,
            initial_transformation=initial_transform,
            icp=icp_result,
            profiler=profiler,
            stage_stats=stage_stats,
            n_source_keypoints=n_source_kp,
            n_target_keypoints=n_target_kp,
            n_feature_correspondences=n_feature_corr,
            n_inlier_correspondences=n_inliers,
            success=success,
        )

    # ------------------------------------------------------------------
    # The classic one-call entry point: preprocess both, then match.
    # ------------------------------------------------------------------

    def register(
        self,
        source: PointCloud,
        target: PointCloud,
        initial: np.ndarray | None = None,
        profiler: StageProfiler | None = None,
    ) -> RegistrationResult:
        """Estimate the transform aligning ``source`` onto ``target``.

        ``initial``, if given, seeds the fine-tuning phase directly and
        the initial-estimation phase is skipped (as is also the case
        with ``config.skip_initial_estimation``).
        """
        # Reject empty inputs before any preprocessing work; voxel
        # downsampling cannot empty a non-empty cloud, so this is
        # equivalent to (but cheaper than) preprocess's own check.
        if len(source) == 0 or len(target) == 0:
            raise ValueError("cannot register empty point clouds")
        profiler = profiler or StageProfiler()
        run_initial = self.runs_initial(initial)
        source_state = self.preprocess(
            source, profiler=profiler, with_features=run_initial
        )
        target_state = self.preprocess(
            target, profiler=profiler, with_features=run_initial
        )
        return self.match(
            source_state, target_state, initial=initial, profiler=profiler
        )


def register_pair(
    source: PointCloud,
    target: PointCloud,
    config: PipelineConfig | None = None,
    initial: np.ndarray | None = None,
) -> RegistrationResult:
    """One-shot convenience: configure, run, return the result."""
    return Pipeline(config).register(source, target, initial=initial)
