"""Feature descriptor calculation (pipeline stage 3, paper Sec. 3.1).

Converts keypoints from 3D space into a high-dimensional feature space
that encodes neighborhood geometry.  Algorithm choices per Table 1:
FPFH (33-d), SHOT (352-d), 3DSC (96-d); the shared key parameter is the
descriptor search radius.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.io.pointcloud import PointCloud
from repro.registration.descriptors.fpfh import FPFH_DIMS, fpfh_descriptors
from repro.registration.descriptors.sc3d import SC3D_DIMS, sc3d_descriptors
from repro.registration.descriptors.shot import SHOT_DIMS, shot_descriptors
from repro.registration.search import NeighborSearcher

__all__ = [
    "DescriptorConfig",
    "compute_descriptors",
    "fpfh_descriptors",
    "shot_descriptors",
    "sc3d_descriptors",
    "FPFH_DIMS",
    "SHOT_DIMS",
    "SC3D_DIMS",
]

_METHODS = ("fpfh", "shot", "3dsc")


@dataclass(frozen=True)
class DescriptorConfig:
    """Descriptor choice + the Table-1 search-radius knob."""

    method: str = "fpfh"
    radius: float = 1.0

    def __post_init__(self):
        if self.method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}")
        if self.radius <= 0:
            raise ValueError("radius must be positive")

    @property
    def dims(self) -> int:
        """Dimensionality of the produced feature space."""
        return {"fpfh": FPFH_DIMS, "shot": SHOT_DIMS, "3dsc": SC3D_DIMS}[self.method]


def compute_descriptors(
    cloud: PointCloud,
    searcher: NeighborSearcher,
    keypoint_indices: np.ndarray,
    config: DescriptorConfig | None = None,
) -> np.ndarray:
    """Compute descriptors for the given keypoints of ``cloud``."""
    config = config or DescriptorConfig()
    if config.method == "fpfh":
        return fpfh_descriptors(cloud, searcher, keypoint_indices, config.radius)
    if config.method == "shot":
        return shot_descriptors(cloud, searcher, keypoint_indices, config.radius)
    return sc3d_descriptors(cloud, searcher, keypoint_indices, config.radius)
