"""Signature of Histograms of Orientations (paper Table 1: SHOT [64]).

Tombari et al.'s descriptor: a repeatable local reference frame (LRF) is
computed from a distance-weighted covariance of the support, with
eigenvector sign disambiguation; the support sphere is partitioned into
azimuth x elevation x radial volumes; each volume histograms the cosine
between neighbor normals and the LRF z-axis.  Our grid is 8 azimuth x 2
elevation x 2 radial x 11 cosine bins = 352 dimensions, matching PCL's
``SHOT352``.

Simplification (documented): hard binning instead of PCL's quadrilinear
soft binning.  The descriptor remains rotation-invariant and
discriminative; soft binning mainly smooths histogram boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.core.ragged import (
    RaggedNeighborhoods,
    batched_eigh,
    segment_histogram,
    segment_outer_sums,
    segment_sum,
)
from repro.io.pointcloud import PointCloud
from repro.registration.search import NeighborSearcher

__all__ = ["shot_descriptors", "SHOT_DIMS", "shot_lrf", "shot_lrf_batch"]

_AZIMUTH_SECTORS = 8
_ELEVATION_SECTORS = 2
_RADIAL_SECTORS = 2
_COSINE_BINS = 11
SHOT_DIMS = _AZIMUTH_SECTORS * _ELEVATION_SECTORS * _RADIAL_SECTORS * _COSINE_BINS


def shot_lrf(
    point: np.ndarray, neighborhood: np.ndarray, radius: float
) -> np.ndarray:
    """SHOT local reference frame: rows are the x, y, z axes.

    The covariance is weighted by ``radius - distance`` (closer points
    count more), and the x / z eigenvector signs are flipped so each
    majority of weighted offsets has a positive projection — Tombari's
    sign-disambiguation rule that makes the frame repeatable.
    """
    offsets = neighborhood - point
    dist = np.linalg.norm(offsets, axis=1)
    weights = np.maximum(radius - dist, 0.0)
    total = weights.sum()
    if total <= 1e-12 or len(neighborhood) < 3:
        return np.eye(3)
    covariance = (offsets * weights[:, None]).T @ offsets / total
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    # eigh returns ascending order: z-axis = smallest, x-axis = largest.
    z_axis = eigenvectors[:, 0]
    x_axis = eigenvectors[:, 2]
    if np.sum(weights * (offsets @ x_axis) >= 0) < np.sum(
        weights * (offsets @ x_axis) < 0
    ):
        x_axis = -x_axis
    if np.sum(weights * (offsets @ z_axis) >= 0) < np.sum(
        weights * (offsets @ z_axis) < 0
    ):
        z_axis = -z_axis
    y_axis = np.cross(z_axis, x_axis)
    norm = np.linalg.norm(y_axis)
    if norm < 1e-12:
        return np.eye(3)
    y_axis /= norm
    x_axis = np.cross(y_axis, z_axis)
    return np.vstack([x_axis, y_axis, z_axis])


def shot_lrf_batch(
    centers: np.ndarray, points: np.ndarray, ragged: RaggedNeighborhoods, radius: float
) -> np.ndarray:
    """SHOT LRFs for all neighborhoods at once: ``(Q, 3, 3)`` row frames.

    Batched form of :func:`shot_lrf`: distance-weighted covariances are
    assembled from segment sums, decomposed with one stacked ``eigh``,
    and Tombari's weighted-majority sign disambiguation is applied with
    per-segment counts.  Degenerate neighborhoods (fewer than 3 points,
    zero total weight, collapsed y-axis) get the identity frame.
    """
    offsets_flat = points[ragged.indices] - centers[ragged.segment_ids]
    dist = np.linalg.norm(offsets_flat, axis=1)
    weights = np.maximum(radius - dist, 0.0)
    totals = segment_sum(weights, ragged.offsets)
    well_posed = (totals > 1e-12) & (ragged.counts >= 3)

    covariances = segment_outer_sums(
        offsets_flat, ragged.offsets, weights=weights
    ) / np.where(well_posed, totals, 1.0).reshape(-1, 1, 1)
    _, eigenvectors = batched_eigh(covariances, well_posed)
    # eigh returns ascending order: z-axis = smallest, x-axis = largest.
    z_axis = eigenvectors[:, :, 0].copy()
    x_axis = eigenvectors[:, :, 2].copy()
    for axis in (x_axis, z_axis):
        projection = weights * np.einsum(
            "ij,ij->i", offsets_flat, axis[ragged.segment_ids]
        )
        positive = segment_sum((projection >= 0).astype(np.int64), ragged.offsets)
        flip = positive < ragged.counts - positive
        axis[flip] = -axis[flip]
    y_axis = np.cross(z_axis, x_axis)
    y_norm = np.linalg.norm(y_axis, axis=1)
    well_posed &= y_norm >= 1e-12
    y_axis /= np.where(y_norm, y_norm, 1.0)[:, None]
    x_axis = np.cross(y_axis, z_axis)

    frames = np.stack([x_axis, y_axis, z_axis], axis=1)
    frames[~well_posed] = np.eye(3)
    return frames


def shot_descriptors(
    cloud: PointCloud,
    searcher: NeighborSearcher,
    keypoint_indices: np.ndarray,
    radius: float = 1.0,
) -> np.ndarray:
    """Compute (len(keypoint_indices), 352) SHOT descriptors."""
    if not cloud.has_normals:
        raise ValueError("SHOT requires normals; run estimate_normals first")
    if radius <= 0:
        raise ValueError("radius must be positive")
    keypoint_indices = np.asarray(keypoint_indices, dtype=np.int64)
    points = cloud.points
    normals = cloud.normals

    # One batched radius search, delivered CSR-natively (self-matches
    # dropped); LRFs, binning, and histograms are batched kernels.
    ragged = searcher.radius_batch_csr(
        points[keypoint_indices], radius, self_indices=keypoint_indices
    )
    ragged = ragged.mask(ragged.indices != keypoint_indices[ragged.segment_ids])
    valid = ragged.counts >= 5

    centers = points[keypoint_indices]
    frames = shot_lrf_batch(centers, points, ragged, radius)
    segment_ids = ragged.segment_ids
    offsets_flat = points[ragged.indices] - centers[segment_ids]
    local = np.einsum("pij,pj->pi", frames[segment_ids], offsets_flat)

    # Partition: azimuth sector, elevation (sign of local z), radial
    # shell (inner half / outer half of the support sphere).
    azimuth = np.arctan2(local[:, 1], local[:, 0])
    az_bin = ((azimuth + np.pi) / (2 * np.pi) * _AZIMUTH_SECTORS).astype(int)
    az_bin = np.clip(az_bin, 0, _AZIMUTH_SECTORS - 1)
    el_bin = (local[:, 2] >= 0).astype(int)
    rad_bin = (ragged.distances >= radius / 2.0).astype(int)

    cosine = np.clip(
        np.einsum("ij,ij->i", normals[ragged.indices], frames[segment_ids, 2]),
        -1.0,
        1.0,
    )
    cos_bin = ((cosine + 1.0) / 2.0 * _COSINE_BINS).astype(int)
    cos_bin = np.clip(cos_bin, 0, _COSINE_BINS - 1)

    volume = (az_bin * _ELEVATION_SECTORS + el_bin) * _RADIAL_SECTORS + rad_bin
    flat = volume * _COSINE_BINS + cos_bin
    histograms = segment_histogram(
        segment_ids, flat, SHOT_DIMS, len(keypoint_indices)
    ).astype(np.float64)
    norms = np.linalg.norm(histograms, axis=1)
    histograms /= np.where(norms, norms, 1.0)[:, None]
    histograms[~valid] = 0.0
    return histograms
