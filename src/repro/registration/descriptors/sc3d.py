"""3D Shape Context (paper Table 1: 3DSC [20]).

Frome et al.'s descriptor: the support sphere around a keypoint, with
its north pole aligned to the surface normal, is divided into azimuth x
elevation x logarithmically-spaced radial shells; each bin accumulates a
density-normalized count of the neighbors falling inside it.  Log radial
spacing makes the descriptor robust to distant clutter; density
normalization compensates for non-uniform LiDAR sampling.

Simplification (documented): the original resolves the azimuth
ambiguity by emitting one rotated descriptor per azimuth bin; like
PCL's ``ShapeContext3DEstimation`` we instead fix the azimuth axis with
a local reference frame direction, keeping one descriptor per point.

The batched implementation issues one support search for all keypoints
and one deduplicated density search for all contributing neighbors.
It assumes a stateless (exact) searcher — what the pipeline always
supplies for descriptor stages; under the stateful approximate backend
the reordered queries would see different leader state than a
per-keypoint loop.
"""

from __future__ import annotations

import numpy as np

from repro.io.pointcloud import PointCloud
from repro.registration.descriptors.shot import shot_lrf
from repro.registration.search import NeighborSearcher

__all__ = ["sc3d_descriptors", "SC3D_DIMS"]

_AZIMUTH_BINS = 6
_ELEVATION_BINS = 4
_RADIAL_BINS = 4
SC3D_DIMS = _AZIMUTH_BINS * _ELEVATION_BINS * _RADIAL_BINS


def sc3d_descriptors(
    cloud: PointCloud,
    searcher: NeighborSearcher,
    keypoint_indices: np.ndarray,
    radius: float = 1.0,
    min_radius: float = 0.05,
) -> np.ndarray:
    """Compute (len(keypoint_indices), 96) 3D shape context descriptors."""
    if not cloud.has_normals:
        raise ValueError("3DSC requires normals; run estimate_normals first")
    if radius <= 0 or min_radius <= 0 or min_radius >= radius:
        raise ValueError("need 0 < min_radius < radius")
    keypoint_indices = np.asarray(keypoint_indices, dtype=np.int64)
    points = cloud.points
    normals = cloud.normals
    descriptors = np.zeros((len(keypoint_indices), SC3D_DIMS))

    # Log-spaced shell edges from min_radius to radius.
    shell_edges = np.exp(
        np.linspace(np.log(min_radius), np.log(radius), _RADIAL_BINS + 1)
    )

    all_neighbors, all_dists = searcher.radius_batch(
        points[keypoint_indices], radius
    )
    masked: list[tuple[np.ndarray, np.ndarray]] = []
    for row, idx in enumerate(keypoint_indices):
        nbr_idx, nbr_dist = all_neighbors[row], all_dists[row]
        mask = (nbr_idx != idx) & (nbr_dist >= min_radius)
        masked.append((nbr_idx[mask], nbr_dist[mask]))

    # Local densities for the normalization weights: one deduplicated
    # batched search over the neighbors that actually enter a histogram
    # (supports below the 5-neighbor floor contribute none).
    contributing = [nbr for nbr, _ in masked if len(nbr) >= 5]
    unique_neighbors = (
        np.unique(np.concatenate(contributing))
        if contributing
        else np.empty(0, dtype=np.int64)
    )
    density_of: dict[int, float] = {}
    if len(unique_neighbors):
        close_lists, _ = searcher.radius_batch(
            points[unique_neighbors], min_radius * 2
        )
        density_of = {
            int(nbr): float(max(len(close), 1))
            for nbr, close in zip(unique_neighbors, close_lists)
        }

    for row, idx in enumerate(keypoint_indices):
        center = points[idx]
        normal = normals[idx]
        nbr_idx, nbr_dist = masked[row]
        if len(nbr_idx) < 5:
            continue
        neighborhood = points[nbr_idx]

        # Align the frame's z-axis ("north pole") with the normal; fix
        # the azimuth reference with the SHOT LRF x-axis projected onto
        # the normal plane.
        frame = shot_lrf(center, neighborhood, radius)
        z_axis = normal / max(np.linalg.norm(normal), 1e-12)
        x_seed = frame[0] - (frame[0] @ z_axis) * z_axis
        if np.linalg.norm(x_seed) < 1e-9:
            x_seed = np.array([1.0, 0.0, 0.0])
            x_seed -= (x_seed @ z_axis) * z_axis
            if np.linalg.norm(x_seed) < 1e-9:
                x_seed = np.array([0.0, 1.0, 0.0])
                x_seed -= (x_seed @ z_axis) * z_axis
        x_axis = x_seed / np.linalg.norm(x_seed)
        y_axis = np.cross(z_axis, x_axis)
        local = (neighborhood - center) @ np.vstack([x_axis, y_axis, z_axis]).T

        azimuth = np.arctan2(local[:, 1], local[:, 0])
        az_bin = ((azimuth + np.pi) / (2 * np.pi) * _AZIMUTH_BINS).astype(int)
        az_bin = np.clip(az_bin, 0, _AZIMUTH_BINS - 1)
        elevation = np.arccos(
            np.clip(local[:, 2] / np.maximum(nbr_dist, 1e-12), -1.0, 1.0)
        )
        el_bin = (elevation / np.pi * _ELEVATION_BINS).astype(int)
        el_bin = np.clip(el_bin, 0, _ELEVATION_BINS - 1)
        rad_bin = np.clip(
            np.searchsorted(shell_edges, nbr_dist, side="right") - 1,
            0,
            _RADIAL_BINS - 1,
        )

        # Density normalization: each neighbor contributes inversely to
        # the cube root of its local point density (Frome Sec. 2).
        local_density = np.array([density_of[int(nbr)] for nbr in nbr_idx])
        weights = 1.0 / np.cbrt(local_density)

        flat = (az_bin * _ELEVATION_BINS + el_bin) * _RADIAL_BINS + rad_bin
        histogram = np.bincount(
            flat, weights=weights, minlength=SC3D_DIMS
        ).astype(np.float64)
        norm = np.linalg.norm(histogram)
        if norm > 0:
            histogram /= norm
        descriptors[row] = histogram
    return descriptors
