"""3D Shape Context (paper Table 1: 3DSC [20]).

Frome et al.'s descriptor: the support sphere around a keypoint, with
its north pole aligned to the surface normal, is divided into azimuth x
elevation x logarithmically-spaced radial shells; each bin accumulates a
density-normalized count of the neighbors falling inside it.  Log radial
spacing makes the descriptor robust to distant clutter; density
normalization compensates for non-uniform LiDAR sampling.

Simplification (documented): the original resolves the azimuth
ambiguity by emitting one rotated descriptor per azimuth bin; like
PCL's ``ShapeContext3DEstimation`` we instead fix the azimuth axis with
a local reference frame direction, keeping one descriptor per point.

The batched implementation issues one support search for all keypoints
and one deduplicated density search for all contributing neighbors.
It assumes a stateless (exact) searcher — what the pipeline always
supplies for descriptor stages; under the stateful approximate backend
the reordered queries would see different leader state than a
per-keypoint loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.ragged import segment_histogram
from repro.io.pointcloud import PointCloud
from repro.registration.descriptors.shot import shot_lrf_batch
from repro.registration.search import NeighborSearcher

__all__ = ["sc3d_descriptors", "SC3D_DIMS"]

_AZIMUTH_BINS = 6
_ELEVATION_BINS = 4
_RADIAL_BINS = 4
SC3D_DIMS = _AZIMUTH_BINS * _ELEVATION_BINS * _RADIAL_BINS


def sc3d_descriptors(
    cloud: PointCloud,
    searcher: NeighborSearcher,
    keypoint_indices: np.ndarray,
    radius: float = 1.0,
    min_radius: float = 0.05,
) -> np.ndarray:
    """Compute (len(keypoint_indices), 96) 3D shape context descriptors."""
    if not cloud.has_normals:
        raise ValueError("3DSC requires normals; run estimate_normals first")
    if radius <= 0 or min_radius <= 0 or min_radius >= radius:
        raise ValueError("need 0 < min_radius < radius")
    keypoint_indices = np.asarray(keypoint_indices, dtype=np.int64)
    points = cloud.points
    normals = cloud.normals
    n_keypoints = len(keypoint_indices)

    # Log-spaced shell edges from min_radius to radius.
    shell_edges = np.exp(
        np.linspace(np.log(min_radius), np.log(radius), _RADIAL_BINS + 1)
    )

    # One batched support search, delivered CSR-natively with
    # self-matches and sub-min_radius neighbors dropped.
    ragged = searcher.radius_batch_csr(
        points[keypoint_indices], radius, self_indices=keypoint_indices
    )
    ragged = ragged.mask(
        (ragged.indices != keypoint_indices[ragged.segment_ids])
        & (ragged.distances >= min_radius)
    )
    valid = ragged.counts >= 5

    # Local densities for the normalization weights: one deduplicated
    # batched search over the neighbors that actually enter a histogram
    # (supports below the 5-neighbor floor contribute none).
    contributing = valid[ragged.segment_ids]
    unique_neighbors = np.unique(ragged.indices[contributing])
    density = np.ones(len(points))
    if len(unique_neighbors):
        close = searcher.radius_batch_csr(
            points[unique_neighbors], min_radius * 2, self_indices=unique_neighbors
        )
        density[unique_neighbors] = np.maximum(
            close.counts.astype(np.float64), 1.0
        )

    # Align each frame's z-axis ("north pole") with the normal; fix the
    # azimuth reference with the SHOT LRF x-axis projected onto the
    # normal plane, falling back to the world x then y axes when the
    # projection collapses.
    centers = points[keypoint_indices]
    lrf = shot_lrf_batch(centers, points, ragged, radius)
    kp_normals = normals[keypoint_indices]
    z_axis = kp_normals / np.maximum(
        np.linalg.norm(kp_normals, axis=1, keepdims=True), 1e-12
    )
    x_seed = lrf[:, 0] - np.einsum("ij,ij->i", lrf[:, 0], z_axis)[:, None] * z_axis
    for fallback in ([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]):
        weak = np.linalg.norm(x_seed, axis=1) < 1e-9
        if not np.any(weak):
            break
        seed = np.broadcast_to(np.asarray(fallback), (int(weak.sum()), 3))
        z_weak = z_axis[weak]
        x_seed[weak] = seed - np.einsum("ij,ij->i", seed, z_weak)[:, None] * z_weak
    x_norm = np.linalg.norm(x_seed, axis=1)
    x_axis = x_seed / np.where(x_norm, x_norm, 1.0)[:, None]
    y_axis = np.cross(z_axis, x_axis)
    frames = np.stack([x_axis, y_axis, z_axis], axis=1)

    segment_ids = ragged.segment_ids
    offsets_flat = points[ragged.indices] - centers[segment_ids]
    local = np.einsum("pij,pj->pi", frames[segment_ids], offsets_flat)

    azimuth = np.arctan2(local[:, 1], local[:, 0])
    az_bin = ((azimuth + np.pi) / (2 * np.pi) * _AZIMUTH_BINS).astype(int)
    az_bin = np.clip(az_bin, 0, _AZIMUTH_BINS - 1)
    elevation = np.arccos(
        np.clip(local[:, 2] / np.maximum(ragged.distances, 1e-12), -1.0, 1.0)
    )
    el_bin = (elevation / np.pi * _ELEVATION_BINS).astype(int)
    el_bin = np.clip(el_bin, 0, _ELEVATION_BINS - 1)
    rad_bin = np.clip(
        np.searchsorted(shell_edges, ragged.distances, side="right") - 1,
        0,
        _RADIAL_BINS - 1,
    )

    # Density normalization: each neighbor contributes inversely to
    # the cube root of its local point density (Frome Sec. 2).
    weights = 1.0 / np.cbrt(density[ragged.indices])

    flat = (az_bin * _ELEVATION_BINS + el_bin) * _RADIAL_BINS + rad_bin
    histograms = segment_histogram(
        segment_ids, flat, SC3D_DIMS, n_keypoints, weights=weights
    )
    norms = np.linalg.norm(histograms, axis=1)
    histograms /= np.where(norms, norms, 1.0)[:, None]
    histograms[~valid] = 0.0
    return histograms
