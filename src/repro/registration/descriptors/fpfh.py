"""Fast Point Feature Histograms (paper Table 1: FPFH [56]).

Rusu et al.'s descriptor: for every point pair in a neighborhood, a
Darboux frame built from the source normal turns the pair's geometry
into three angles (alpha, phi, theta); histogramming each angle into 11
bins yields the 33-dimensional Simplified PFH (SPFH).  The final FPFH
of a point is its own SPFH plus the distance-weighted average of its
neighbors' SPFHs — the "fast" trick that reuses neighbor histograms
instead of re-pairing the whole neighborhood.

The ``radius`` parameter is the Descriptor Calculation search-radius
knob of the paper's Table 1, and makes this stage a heavy radius-search
(KD-tree) consumer.  The two batched passes (keypoints, then their
not-yet-covered neighbors) assume a stateless (exact) searcher — what
the pipeline always supplies for descriptor stages.
"""

from __future__ import annotations

import numpy as np

from repro.core.ragged import (
    RaggedNeighborhoods,
    gathered_weighted_segment_sums,
    segment_blocks,
)
from repro.io.pointcloud import PointCloud
from repro.registration.search import NeighborSearcher

__all__ = ["fpfh_descriptors", "FPFH_BINS", "FPFH_DIMS"]

FPFH_BINS = 11
FPFH_DIMS = 3 * FPFH_BINS  # 33

# Flat (center, neighbor) pairs per SPFH sweep chunk: small enough that
# the ~15 reused per-pair buffers stay allocation-free, large enough to
# amortize the per-chunk Python overhead.
_SPFH_BLOCK_PAIRS = 1 << 19


def fpfh_descriptors(
    cloud: PointCloud,
    searcher: NeighborSearcher,
    keypoint_indices: np.ndarray,
    radius: float = 1.0,
) -> np.ndarray:
    """Compute (len(keypoint_indices), 33) FPFH descriptors.

    Requires normals on ``cloud``.  SPFHs are computed lazily for
    keypoints and their neighbors only, then combined with the standard
    1/distance weighting.
    """
    if not cloud.has_normals:
        raise ValueError("FPFH requires normals; run estimate_normals first")
    if radius <= 0:
        raise ValueError("radius must be positive")
    keypoint_indices = np.asarray(keypoint_indices, dtype=np.int64)
    points = cloud.points
    normals = cloud.normals

    # Pass 1: one batched radius search over all keypoints, delivered
    # CSR-natively with the self-matches dropped.
    kp_ragged = searcher.radius_batch_csr(
        points[keypoint_indices], radius, self_indices=keypoint_indices
    )
    kp_ragged = kp_ragged.mask(
        kp_ragged.indices != keypoint_indices[kp_ragged.segment_ids]
    )

    # Pass 2: SPFH for every needed point (keypoints + their neighbors);
    # the neighbors not already covered get one more batched search.
    # ``needed`` and ``extra`` are sorted-unique set algebra over the
    # flat arrays (no Python set walk), preserving the ascending SPFH
    # evaluation order.
    needed = np.union1d(keypoint_indices, kp_ragged.indices)
    extra = np.setdiff1d(needed, keypoint_indices)
    extra_ragged = RaggedNeighborhoods.from_lists([], [])
    if len(extra):
        extra_ragged = searcher.radius_batch_csr(
            points[extra], radius, self_indices=extra
        )
        extra_ragged = extra_ragged.mask(
            extra_ragged.indices != extra[extra_ragged.segment_ids]
        )
    spfh, spfh_of = _spfh_batch(
        points, normals, needed, keypoint_indices, kp_ragged, extra, extra_ragged
    )

    # Pass 3: FPFH = own SPFH + weighted neighbor SPFHs.  The per-
    # keypoint weighted accumulation is a chunked strict-order gather +
    # segment sum over the flat (pair, 33) products — bit-identical to
    # a sequential per-neighbor accumulation loop.
    weights = 1.0 / np.maximum(kp_ragged.distances, 1e-6)
    weighted = gathered_weighted_segment_sums(
        spfh, spfh_of[kp_ragged.indices], weights, kp_ragged.offsets
    )
    descriptors = spfh[spfh_of[keypoint_indices]].copy()
    descriptors += weighted / np.maximum(kp_ragged.counts, 1)[:, None]
    totals = descriptors.sum(axis=1)
    positive = totals > 0
    # PCL normalizes to 100 (h / total * 100, in that order).
    descriptors[positive] = descriptors[positive] / totals[positive, None] * 100.0
    return descriptors


def _spfh_batch(
    points: np.ndarray,
    normals: np.ndarray,
    needed: np.ndarray,
    keypoint_indices: np.ndarray,
    kp_ragged: RaggedNeighborhoods,
    extra: np.ndarray,
    extra_ragged: RaggedNeighborhoods,
) -> tuple[np.ndarray, np.ndarray]:
    """SPFHs for all ``needed`` points in one flat pair sweep.

    Returns ``(spfh, spfh_of)``: the ``(len(needed), 33)`` histogram
    block in ``needed`` (ascending) order, plus a scatter table mapping
    a point index to its row (-1 elsewhere).
    """
    # Assemble the CSR of every needed point's (self-excluded) support
    # from the two search passes, in ``needed`` order: stack the two
    # CSRs and gather their rows through a point-index -> row table
    # (later rows win, like the seed's dict insertion order).
    combined = RaggedNeighborhoods(
        np.concatenate([kp_ragged.indices, extra_ragged.indices]),
        np.concatenate(
            [kp_ragged.offsets, kp_ragged.offsets[-1] + extra_ragged.offsets[1:]]
        ),
    )
    owners = np.concatenate([keypoint_indices, extra])
    row_of = np.full(int(owners.max()) + 1 if len(owners) else 1, -1, np.int64)
    row_of[owners] = np.arange(len(owners), dtype=np.int64)
    support = combined.select(row_of[needed])

    histograms = np.zeros((len(needed), FPFH_DIMS))
    if support.n_entries:
        _spfh_pair_sweep(points, normals, needed, support, histograms)

    spfh_of = np.full(
        int(needed[-1]) + 1 if len(needed) else 1, -1, dtype=np.int64
    )
    if len(needed):
        spfh_of[needed] = np.arange(len(needed), dtype=np.int64)
    return histograms, spfh_of


def _cross(a, b, out, t1, t2):
    """Row-wise cross product into ``out`` using scratch buffers.

    Component-wise ``a1*b2 - a2*b1`` etc. — the same multiplies and
    subtract as ``np.cross``, without its temporaries.
    """
    for k in range(3):
        i, j = (k + 1) % 3, (k + 2) % 3
        np.multiply(a[:, i], b[:, j], out=t1)
        np.multiply(a[:, j], b[:, i], out=t2)
        np.subtract(t1, t2, out=out[:, k])




def _spfh_pair_sweep(
    points: np.ndarray,
    normals: np.ndarray,
    needed: np.ndarray,
    support: RaggedNeighborhoods,
    histograms: np.ndarray,
) -> None:
    """Accumulate all SPFH pair features into ``histograms``, chunked.

    Processes the flat (center, neighbor) pairs in segment-aligned
    blocks through reused buffers: two gathers, the Darboux frame
    (u = n_p, v = d x u, w = u x v) via in-place cross products, the
    three angles, then one ``bincount`` per angle into the 3 x 11-bin
    histograms.  Per-pair arithmetic replays the per-point formulation
    operation for operation (``np.linalg.norm`` magnitudes, ``einsum``
    dots), so results are bit-identical; only allocation churn is
    removed.
    """
    segment_ids = support.segment_ids
    counts = support.counts
    capacity = int(
        min(support.n_entries, max(_SPFH_BLOCK_PAIRS, counts.max(initial=0)))
    )
    vec = np.empty((5, capacity, 3))  # d, u (=n_p), v, w, n_q
    col = np.empty((3, capacity))
    flat_keys = np.empty(capacity, dtype=np.int64)
    bins = np.empty(capacity, dtype=np.int64)

    for seg_lo, seg_hi, lo, hi in segment_blocks(
        support.offsets, _SPFH_BLOCK_PAIRS
    ):
        m = hi - lo
        if m == 0:
            continue
        d, u, v, w, n_q = (vec[k, :m] for k in range(5))
        scratch, scratch2, feature = (col[k, :m] for k in range(3))
        center = needed[segment_ids[lo:hi]]
        np.take(points, support.indices[lo:hi], axis=0, out=d)
        np.take(points, center, axis=0, out=u)  # scratch: p
        np.subtract(d, u, out=d)  # d = q - p
        np.take(normals, center, axis=0, out=u)  # u = n_p
        np.take(normals, support.indices[lo:hi], axis=0, out=n_q)

        dist = np.linalg.norm(d, axis=1)
        ok = dist > 1e-9
        np.maximum(dist, 1e-300, out=scratch)  # exact for every ok row
        np.divide(d, scratch[:, None], out=d)
        d[~ok] = 0.0

        _cross(d, u, v, scratch, scratch2)  # v = d x u
        v_norm = np.linalg.norm(v, axis=1)
        good = ok & (v_norm > 1e-9)
        np.maximum(v_norm, 1e-300, out=scratch)
        np.divide(v, scratch[:, None], out=v)
        v[~good] = 0.0
        _cross(u, v, w, scratch, scratch2)  # w = u x v

        local_ids = segment_ids[lo:hi] - seg_lo
        block_rows = slice(seg_lo, seg_hi)
        n_rows = seg_hi - seg_lo
        # alpha = v . n_q, phi = u . d, theta = atan2(w . n_q, u . n_q)
        for pass_no, (left, right, offset, low, span) in enumerate((
            (v, n_q, 0, -1.0, 2.0),
            (u, d, FPFH_BINS, -1.0, 2.0),
            (w, n_q, 2 * FPFH_BINS, -np.pi, 2.0 * np.pi),
        )):
            np.einsum("ij,ij->i", left, right, out=feature)
            if pass_no == 2:
                np.einsum("ij,ij->i", u, n_q, out=scratch)
                np.arctan2(feature, scratch, out=feature)
            # Replicates ``(feature - low) / span * FPFH_BINS`` exactly.
            np.subtract(feature, low, out=feature)
            np.divide(feature, span, out=feature)
            np.multiply(feature, FPFH_BINS, out=feature)
            np.floor(feature, out=feature)
            bin_view = bins[:m]
            np.clip(feature, 0, FPFH_BINS - 1, out=feature)
            bin_view[:] = feature
            keys = flat_keys[:m]
            np.multiply(local_ids, FPFH_BINS, out=keys)
            np.add(keys, bin_view, out=keys)
            histograms[block_rows, offset : offset + FPFH_BINS] += np.bincount(
                keys[good], minlength=n_rows * FPFH_BINS
            ).reshape(n_rows, FPFH_BINS)


