"""Fast Point Feature Histograms (paper Table 1: FPFH [56]).

Rusu et al.'s descriptor: for every point pair in a neighborhood, a
Darboux frame built from the source normal turns the pair's geometry
into three angles (alpha, phi, theta); histogramming each angle into 11
bins yields the 33-dimensional Simplified PFH (SPFH).  The final FPFH
of a point is its own SPFH plus the distance-weighted average of its
neighbors' SPFHs — the "fast" trick that reuses neighbor histograms
instead of re-pairing the whole neighborhood.

The ``radius`` parameter is the Descriptor Calculation search-radius
knob of the paper's Table 1, and makes this stage a heavy radius-search
(KD-tree) consumer.  The two batched passes (keypoints, then their
not-yet-covered neighbors) assume a stateless (exact) searcher — what
the pipeline always supplies for descriptor stages.
"""

from __future__ import annotations

import numpy as np

from repro.io.pointcloud import PointCloud
from repro.registration.search import NeighborSearcher

__all__ = ["fpfh_descriptors", "FPFH_BINS", "FPFH_DIMS"]

FPFH_BINS = 11
FPFH_DIMS = 3 * FPFH_BINS  # 33


def fpfh_descriptors(
    cloud: PointCloud,
    searcher: NeighborSearcher,
    keypoint_indices: np.ndarray,
    radius: float = 1.0,
) -> np.ndarray:
    """Compute (len(keypoint_indices), 33) FPFH descriptors.

    Requires normals on ``cloud``.  SPFHs are computed lazily for
    keypoints and their neighbors only, then combined with the standard
    1/distance weighting.
    """
    if not cloud.has_normals:
        raise ValueError("FPFH requires normals; run estimate_normals first")
    if radius <= 0:
        raise ValueError("radius must be positive")
    keypoint_indices = np.asarray(keypoint_indices, dtype=np.int64)
    points = cloud.points
    normals = cloud.normals

    # Pass 1: one batched radius search over all keypoints.
    neighbor_lists: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    kp_neighbors, kp_dists = searcher.radius_batch(points[keypoint_indices], radius)
    for idx, nbr_idx, nbr_dist in zip(keypoint_indices, kp_neighbors, kp_dists):
        mask = nbr_idx != idx
        neighbor_lists[int(idx)] = (nbr_idx[mask], nbr_dist[mask])

    # Pass 2: SPFH for every needed point (keypoints + their neighbors);
    # the neighbors not already covered get one more batched search.
    needed = np.unique(
        np.concatenate(
            [keypoint_indices] + [nbr for nbr, _ in neighbor_lists.values()]
        )
    )
    extra = np.array(
        [int(i) for i in needed if int(i) not in neighbor_lists], dtype=np.int64
    )
    if len(extra):
        extra_neighbors, extra_dists = searcher.radius_batch(points[extra], radius)
        for idx, nbr_idx, nbr_dist in zip(extra, extra_neighbors, extra_dists):
            mask = nbr_idx != idx
            neighbor_lists[int(idx)] = (nbr_idx[mask], nbr_dist[mask])
    spfh: dict[int, np.ndarray] = {}
    for idx in needed:
        idx = int(idx)
        spfh[idx] = _spfh(points, normals, idx, neighbor_lists[idx][0])

    # Pass 3: FPFH = own SPFH + weighted neighbor SPFHs.
    descriptors = np.zeros((len(keypoint_indices), FPFH_DIMS))
    for row, idx in enumerate(keypoint_indices):
        nbr_idx, nbr_dist = neighbor_lists[int(idx)]
        histogram = spfh[int(idx)].copy()
        if len(nbr_idx):
            weights = 1.0 / np.maximum(nbr_dist, 1e-6)
            weighted = np.zeros(FPFH_DIMS)
            for j, w in zip(nbr_idx, weights):
                weighted += w * spfh[int(j)]
            histogram += weighted / len(nbr_idx)
        total = histogram.sum()
        if total > 0:
            histogram = histogram / total * 100.0  # PCL normalizes to 100
        descriptors[row] = histogram
    return descriptors


def _spfh(
    points: np.ndarray,
    normals: np.ndarray,
    idx: int,
    neighbor_idx: np.ndarray,
) -> np.ndarray:
    """Simplified PFH of one point: 3 x 11-bin angle histograms."""
    histogram = np.zeros(FPFH_DIMS)
    if len(neighbor_idx) == 0:
        return histogram
    p = points[idx]
    n_p = normals[idx]
    q = points[neighbor_idx]
    n_q = normals[neighbor_idx]
    d = q - p
    dist = np.linalg.norm(d, axis=1)
    ok = dist > 1e-9
    if not np.any(ok):
        return histogram
    d = d[ok] / dist[ok, None]
    n_q = n_q[ok]

    # Darboux frame per pair: u = n_p, v = d x u, w = u x v.
    u = np.broadcast_to(n_p, d.shape)
    v = np.cross(d, u)
    v_norm = np.linalg.norm(v, axis=1, keepdims=True)
    good = v_norm[:, 0] > 1e-9
    if not np.any(good):
        return histogram
    v = v[good] / v_norm[good]
    u = u[good]
    d = d[good]
    n_q = n_q[good]
    w = np.cross(u, v)

    alpha = np.einsum("ij,ij->i", v, n_q)  # in [-1, 1]
    phi = np.einsum("ij,ij->i", u, d)  # in [-1, 1]
    theta = np.arctan2(
        np.einsum("ij,ij->i", w, n_q), np.einsum("ij,ij->i", u, n_q)
    )  # in [-pi, pi]

    for feature, lo, hi, offset in (
        (alpha, -1.0, 1.0, 0),
        (phi, -1.0, 1.0, FPFH_BINS),
        (theta, -np.pi, np.pi, 2 * FPFH_BINS),
    ):
        bins = ((feature - lo) / (hi - lo) * FPFH_BINS).astype(np.int64)
        bins = np.clip(bins, 0, FPFH_BINS - 1)
        counts = np.bincount(bins, minlength=FPFH_BINS)
        histogram[offset : offset + FPFH_BINS] += counts
    return histogram
