"""Command-line entry point: ``python -m repro <command>``.

Commands:

``info``
    Library version and the implemented paper/experiment inventory.
``demo``
    A 30-second end-to-end demonstration: synthesize a frame pair,
    register it, and replay the search workload on the accelerator
    model against the GPU baseline.
"""

from __future__ import annotations

import argparse
import sys


def cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__} — Tigris (MICRO-52, 2019) reproduction")
    print(
        "\npaper: Xu, Tian, Zhu — 'Tigris: Architecture and Algorithms for"
        "\n       3D Perception in Point Clouds'"
    )
    print("\npackages:")
    for name, what in (
        ("repro.io", "point clouds, PCD/KITTI I/O, synthetic LiDAR"),
        ("repro.geometry", "SE(3), KITTI odometry metrics"),
        ("repro.kdtree", "canonical KD-tree"),
        ("repro.core", "two-stage KD-tree + approximate search (Sec. 4)"),
        ("repro.registration", "the configurable pipeline (Fig. 2, Tbl. 1)"),
        ("repro.mapping", "streaming SLAM: loop closure, pose graph, map"),
        ("repro.accel", "Tigris accelerator model + baselines (Sec. 5/6)"),
        ("repro.dse", "design-space exploration (Sec. 3.2)"),
    ):
        print(f"  {name:<20} {what}")
    print("\nreproduce the evaluation:  pytest benchmarks/ --benchmark-only")
    return 0


def cmd_demo() -> int:
    import numpy as np

    from repro.accel import GPUModel, TigrisSimulator, registration_workload
    from repro.geometry import metrics
    from repro.io import make_sequence
    from repro.registration import (
        ICPConfig,
        KeypointConfig,
        Pipeline,
        PipelineConfig,
        RPCEConfig,
    )

    print("1/3 synthesizing a LiDAR frame pair...")
    sequence = make_sequence(n_frames=2, seed=1)
    source, target, ground_truth = sequence.pair(0)
    print(f"    {len(source)} / {len(target)} points")

    print("2/3 registering (point-to-plane ICP)...")
    pipeline = Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(method="uniform", params={"voxel_size": 3.0}),
            icp=ICPConfig(
                rpce=RPCEConfig(max_distance=2.0),
                error_metric="point_to_plane",
                max_iterations=20,
            ),
            skip_initial_estimation=True,
        )
    )
    result = pipeline.register(source, target)
    rot_err, trans_err = metrics.pair_errors(result.transformation, ground_truth)
    print(
        f"    estimated t = {np.round(result.transformation[:3, 3], 3)} "
        f"(error {trans_err:.3f} m / {rot_err:.3f} deg)"
    )

    print("3/3 replaying the search workload on the accelerator model...")
    workloads = registration_workload(
        source.points, target.points, icp_iterations=5, leaf_size=128
    )
    accel = TigrisSimulator().simulate_many(list(workloads.values()))
    gpu_time = sum(GPUModel().run(w).time_seconds for w in workloads.values())
    print(
        f"    Tigris {accel.time_seconds * 1e6:.1f} us @ "
        f"{accel.power_watts:.1f} W vs GPU {gpu_time * 1e3:.2f} ms: "
        f"{gpu_time / accel.time_seconds:.1f}x speedup"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument("command", choices=("info", "demo"), nargs="?",
                        default="info")
    args = parser.parse_args(argv)
    if args.command == "demo":
        return cmd_demo()
    return cmd_info()


if __name__ == "__main__":
    sys.exit(main())
