"""Ablation — decoupled bound vs event-coupled FE/BE simulation.

The main simulator assumes deep queues fully decouple the front-end
from the back-end (time = max(FE, BE) + drain).  The event-coupled
model releases back-end work only when the front-end actually issues
it.  This ablation quantifies the difference across top-tree heights:
where the design is balanced the bound is tight; in the front-end-bound
regime (tall trees / few RUs) the coupled model exposes back-end
starvation.
"""

import pytest

from benchmarks.conftest import write_report
from repro.accel import (
    AcceleratorConfig,
    TigrisSimulator,
    registration_workload,
    simulate_coupled,
)

HEIGHTS = (2, 4, 6, 8, 10)


@pytest.fixture(scope="module")
def coupling_data(frame_pair):
    source, target, _ = frame_pair
    config = AcceleratorConfig()
    simulator = TigrisSimulator(config)
    rows = {}
    for height in HEIGHTS:
        workloads = list(
            registration_workload(
                source.points,
                target.points,
                normal_radius=0.75,
                icp_iterations=2,
                leaf_size=None,
                top_height=height,
            ).values()
        )
        decoupled = sum(simulator.simulate(w).cycles for w in workloads)
        coupled = sum(
            simulate_coupled(w, config).total_cycles for w in workloads
        )
        idle = sum(
            simulate_coupled(w, config).backend_idle_cycles for w in workloads
        )
        rows[height] = (decoupled, coupled, idle)
    return rows


def test_ablation_coupling(benchmark, coupling_data, frame_pair):
    source, target, _ = frame_pair
    config = AcceleratorConfig()
    workload = list(
        registration_workload(
            source.points, target.points, icp_iterations=1,
            leaf_size=None, top_height=6,
        ).values()
    )[0]
    benchmark(lambda: simulate_coupled(workload, config))

    rows = coupling_data
    lines = [
        "Ablation — decoupled bound vs event-coupled simulation",
        "",
        f"{'height':>7}{'decoupled(cyc)':>16}{'coupled(cyc)':>14}"
        f"{'gap':>7}{'BE idle(cyc)':>14}",
    ]
    for height in HEIGHTS:
        decoupled, coupled, idle = rows[height]
        lines.append(
            f"{height:>7}{decoupled:>16,}{coupled:>14,}"
            f"{coupled / decoupled:>6.2f}x{idle:>14,}"
        )
    lines += [
        "",
        "(the decoupled bound is within a small factor of the coupled",
        " model everywhere, validating the main simulator's timing; the",
        " coupled model additionally exposes back-end starvation in the",
        " front-end-bound regime)",
    ]
    write_report("ablation_coupling", "\n".join(lines))

    for height, (decoupled, coupled, idle) in rows.items():
        # The event-coupled run is never faster than each half's bound...
        assert coupled >= 0.9 * decoupled or coupled >= decoupled - 100
        # ...and stays within a modest factor of the decoupled estimate.
        assert coupled <= 2.0 * decoupled, f"height {height}"
    # Starvation grows as the front-end becomes the bottleneck.
    assert rows[HEIGHTS[-1]][2] >= rows[HEIGHTS[0]][2] * 0.5
