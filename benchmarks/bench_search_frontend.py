"""The neighbor-search front end: per-backend timings and reuse wins.

PR 5 left batched neighbor *search* as the front end's critical path
(ROADMAP item 1, BENCH_frontend.json).  This bench records what the
search-layer rebuild buys, in three views:

* **search_only** — build + batched radius/nn throughput of every
  backend on the 53k-point bench frame's front-end cloud, including
  the canonical tree's pre-rebuild sequential (per-query Python loop)
  batch path next to its level-synchronous frontier sweep.  Radius at
  the feature radius is timed twice: the legacy list delivery
  (``radius_batch`` — fill plus per-query slicing) and the CSR-native
  delivery (``radius_batch_csr`` — fill only), with the CSR result
  asserted bit-identical to the list path before timing.
* **frontend** — the live ``Pipeline.preprocess`` front end (voxel
  downsample + normals + Harris + FPFH, the search-heavy stage set)
  per backend, with nested-radius reuse on versus forced off (the
  post-PR-5 behavior: every stage searches fresh).  The headline
  acceptance compares the canonical tree — the paper's baseline
  structure and ROADMAP's named bottleneck — before the rebuild
  (sequential batch traversal, fresh per-stage searches) and after
  (frontier sweep, one inflated search serving the nested stages).
* **streaming** — steady-state per-pair odometry cost with reuse on
  vs off: BENCH_frontend.json's small-frame workload (uniform and
  Harris keypoints; per-pair cost there is RPCE/ICP-bound, so the
  reuse saving sits inside the noise floor — recorded for
  continuity) and a dense-frame Harris workload where preprocess
  dominates and the saving is measurable.  Baselines are
  re-measured in the same run: stored absolute numbers (e.g.
  BENCH_frontend's 0.19 s/pair) do not transfer across machine
  states.

All "before" paths are produced by pinning the still-shipping code
paths (``sequential=True`` batch traversal, reuse plan forced off), so
both sides run in one process on identical inputs, and every exact
variant is asserted bit-identical before timing.

Acceptance: canonical-tree front end (search+aggregation) >= 3x over
its post-PR-5 path on the 53k-point bench frame; twostage CSR-native
radius@1.0 >= 1.2x over the recorded pre-CSR fill+convert baseline
and twostage front end <= 1.25 s (both against this bench's PR-6
numbers on the same frame); dense-frame streaming per-pair cost with
reuse within 5% of fresh or better (the reuse margin there sits
inside run noise now that fresh searches are CSR-delivered too — the
preprocess rows carry the measurable reuse win).

Run standalone to (re)record the baseline:

    PYTHONPATH=src python benchmarks/bench_search_frontend.py \
        [--out benchmarks/BENCH_search.json]

``--smoke`` runs a small-cloud parity + timing pass (the fast CI job
wires this in next to the DSE/mapping/frontend smokes).
``--check-floors PATH`` additionally guards the structural speedups —
the canonical frontier-sweep win and the twostage CSR-delivery win,
both within-run ratios and therefore machine-portable — against the
recorded ``BENCH_search.json``, failing on a >50% regression so
future PRs cannot silently give the wins back (the guarded wins carry
1.5-19x margins, so the wide slack still catches any real regression
while staying above run-to-run ratio noise).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import time

import numpy as np
from record import add_trace_argument, write_bench, write_trace_file

from repro.core.gridhash import GridHashConfig
from repro.core.ragged import RaggedNeighborhoods
from repro.io import make_sequence
from repro.io.dataset import default_test_model
from repro.io.synthetic import LidarModel
from repro.kdtree import KDTree
from repro.registration import (
    DescriptorConfig,
    ICPConfig,
    KeypointConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    SearchConfig,
    build_searcher,
)
from repro.registration.odometry import run_streaming_odometry
from repro.profiling import StageProfiler
from repro.telemetry import Tracer

ACCEPT_CANONICAL_SPEEDUP = 3.0
ACCEPT_CSR_SPEEDUP = 1.2
ACCEPT_TWOSTAGE_FRONTEND_S = 1.25
# Recorded pre-CSR (PR 6) twostage baselines from this bench's own
# JSON on the reference machine.  The CSR acceptance is measured
# against them: the paths they timed — per-leaf-hit Python list
# appends inside the traversal and a per-query concatenate/argsort/
# sqrt delivery loop — were removed by the CSR-native rebuild, so
# they cannot be re-measured in-process the way the canonical
# sequential loop can.
PR6_TWOSTAGE_RADIUS10_S = 0.7607
PR6_TWOSTAGE_FRONTEND_S = 1.481
# Regression-guard slack: a guarded speedup may lose 50% relative to
# its recorded baseline before the guard fails — above observed
# run-to-run ratio noise (~1.3x on a loaded host), far below the
# wins' margins.
FLOOR_SLACK = 1.5
NORMAL_RADIUS = 0.5
FEATURE_RADIUS = 1.0
# Same operating point as BENCH_frontend.json: dense frames enter the
# front end through a 0.2 m voxel downsample (~20k of the 53k points).
FRONTEND_VOXEL = 0.2
BACKENDS = ("canonical", "twostage", "approximate", "bruteforce", "gridhash")
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def timed(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@contextlib.contextmanager
def reuse_disabled():
    """Pin the post-PR-5 plan: every stage searches fresh."""
    import repro.registration.pipeline as pipeline_mod

    saved = pipeline_mod._planned_reuse_radius
    pipeline_mod._planned_reuse_radius = lambda config: None
    try:
        yield
    finally:
        pipeline_mod._planned_reuse_radius = saved


@contextlib.contextmanager
def canonical_sequential_patched():
    """Pin the canonical tree's pre-rebuild batch path (per-query loop).

    The CSR entry point is pinned too — to the sequential list loop
    plus a ``from_lists`` repack, the exact shape of the pre-rebuild
    data path — so the consumers' ``radius_batch_csr`` calls also hit
    the baseline schedule.
    """
    saved = (
        KDTree.nn_batch,
        KDTree.knn_batch,
        KDTree.radius_batch,
        KDTree.radius_batch_csr,
    )

    def nn_batch(self, queries, stats=None, sequential=False):
        return saved[0](self, queries, stats, sequential=True)

    def knn_batch(self, queries, k, stats=None, sequential=False):
        return saved[1](self, queries, k, stats, sequential=True)

    def radius_batch(self, queries, r, stats=None, sort=False, sequential=False):
        return saved[2](self, queries, r, stats, sort=sort, sequential=True)

    def radius_batch_csr(self, queries, r, stats=None, sort=False):
        return RaggedNeighborhoods.from_lists(
            *saved[2](self, queries, r, stats, sort=sort, sequential=True)
        )

    KDTree.nn_batch = nn_batch
    KDTree.knn_batch = knn_batch
    KDTree.radius_batch = radius_batch
    KDTree.radius_batch_csr = radius_batch_csr
    try:
        yield
    finally:
        (
            KDTree.nn_batch,
            KDTree.knn_batch,
            KDTree.radius_batch,
            KDTree.radius_batch_csr,
        ) = saved


# ----------------------------------------------------------------------
# Search-only per-backend table.
# ----------------------------------------------------------------------


def bench_search_only(points: np.ndarray, repeats: int) -> dict:
    rng = np.random.default_rng(0)
    nn_queries = points + rng.normal(scale=0.05, size=points.shape)
    rows: dict[str, dict] = {}

    def record(name, build_fn, searcher_of, seq_repeats=None, csr=True, exact=True):
        start = time.perf_counter()
        index = build_fn()
        build_s = time.perf_counter() - start
        searcher = searcher_of(index)
        reps = seq_repeats or repeats
        row = {
            "build_s": round(build_s, 4),
            "radius05_s": round(
                timed(lambda: searcher.radius_batch(points, NORMAL_RADIUS), reps), 4
            ),
            "radius10_s": round(
                timed(lambda: searcher.radius_batch(points, FEATURE_RADIUS), reps), 4
            ),
            "nn_s": round(timed(lambda: searcher.nn_batch(nn_queries), reps), 4),
        }
        if csr:
            if exact:
                # The zero-copy contract: CSR delivery must be
                # bit-identical to the list delivery it replaces.
                ref = RaggedNeighborhoods.from_lists(
                    *searcher.radius_batch(points, FEATURE_RADIUS)
                )
                got = searcher.radius_batch_csr(points, FEATURE_RADIUS)
                assert np.array_equal(got.indices, ref.indices), name
                assert np.array_equal(got.offsets, ref.offsets), name
                assert np.array_equal(got.distances, ref.distances), name
            row["radius10_csr_s"] = round(
                timed(
                    lambda: searcher.radius_batch_csr(points, FEATURE_RADIUS), reps
                ),
                4,
            )
            row["csr_speedup"] = round(row["radius10_s"] / row["radius10_csr_s"], 2)
        rows[name] = row

    class _Sequential:
        """The canonical tree's pre-rebuild batch entry points."""

        def __init__(self, tree):
            self._tree = tree

        def radius_batch(self, queries, r):
            return self._tree.radius_batch(queries, r, sequential=True)

        def nn_batch(self, queries):
            return self._tree.nn_batch(queries, sequential=True)

    for backend in BACKENDS:
        record(
            backend,
            lambda b=backend: build_searcher(points, SearchConfig(backend=b)),
            lambda s: s,
            # The approximate backend's leader state is order-dependent,
            # so cross-path bit-parity is not part of its contract.
            exact=(backend != "approximate"),
        )
    # The pre-rebuild canonical batch path, one repeat (it is the slow
    # baseline this PR removes; minutes-scale at higher repeat counts).
    record(
        "canonical-sequential",
        lambda: KDTree(points),
        _Sequential,
        seq_repeats=1,
        csr=False,
    )
    return rows


# ----------------------------------------------------------------------
# Front end: Pipeline.preprocess per backend, reuse on vs off.
# ----------------------------------------------------------------------


def frontend_pipeline(backend: str) -> Pipeline:
    return Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(
                method="harris", params={"radius": FEATURE_RADIUS}, min_keypoints=8
            ),
            descriptor=DescriptorConfig(method="fpfh", radius=FEATURE_RADIUS),
            icp=ICPConfig(rpce=RPCEConfig(max_distance=2.0), max_iterations=15),
            voxel_downsample=FRONTEND_VOXEL,
            search=SearchConfig(
                backend=backend, gridhash=GridHashConfig(cell_size=FEATURE_RADIUS)
            ),
        )
    )


def bench_frontend(cloud, repeats: int, include_sequential: bool) -> dict:
    def preprocess(backend):
        return frontend_pipeline(backend).preprocess(cloud, with_features=True)

    def check(state, reference, label):
        assert np.array_equal(
            state.cloud.get_attribute("normals"),
            reference.cloud.get_attribute("normals"),
        ), f"{label}: normals diverged"
        assert np.array_equal(state.keypoints, reference.keypoints), (
            f"{label}: keypoints diverged"
        )
        assert np.array_equal(state.descriptors, reference.descriptors), (
            f"{label}: descriptors diverged"
        )

    variants: dict[str, float] = {}
    canonical_fresh_state = None
    # Bit-identity is a per-backend contract (backends agree on index
    # order, but distances — hence FPFH bins — only to the last ulp):
    # each backend's reuse path is checked against its own fresh path
    # before anything is timed.  With the fill radius equal to the
    # gridhash cell size, that holds for gridhash too.
    for backend in ("canonical", "twostage", "gridhash"):
        with_reuse = preprocess(backend)
        with reuse_disabled():
            fresh = preprocess(backend)
            check(with_reuse, fresh, f"{backend}+reuse")
            variants[f"{backend}_fresh"] = round(
                timed(lambda b=backend: preprocess(b), repeats), 3
            )
        variants[f"{backend}_reuse"] = round(
            timed(lambda b=backend: preprocess(b), repeats), 3
        )
        if backend == "canonical":
            canonical_fresh_state = fresh
    if include_sequential:
        # The post-PR-5 canonical front end: per-query batch loop and
        # fresh per-stage searches.  One repeat — this is the slow
        # baseline the acceptance criterion is measured against.
        with canonical_sequential_patched(), reuse_disabled():
            check(
                preprocess("canonical"),
                canonical_fresh_state,
                "canonical sequential",
            )
            variants["canonical_sequential_fresh"] = round(
                timed(lambda: preprocess("canonical"), 1), 3
            )
    return variants


# ----------------------------------------------------------------------
# Streaming odometry: per-pair steady state, reuse on vs off.
# ----------------------------------------------------------------------


def streaming_config(keypoints: str) -> PipelineConfig:
    if keypoints == "uniform":
        keypoint_cfg = KeypointConfig(
            method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
        )
    else:
        keypoint_cfg = KeypointConfig(
            method="harris", params={"radius": FEATURE_RADIUS}, min_keypoints=8
        )
    return PipelineConfig(
        keypoints=keypoint_cfg,
        descriptor=DescriptorConfig(method="fpfh", radius=FEATURE_RADIUS),
        icp=ICPConfig(
            rpce=RPCEConfig(max_distance=2.0),
            error_metric="point_to_plane",
            max_iterations=15,
        ),
    )


def bench_streaming(repeats: int, n_frames: int = 5, dense: bool = True) -> dict:
    sequence = make_sequence(n_frames=n_frames, seed=7, step=1.0, yaw_rate=0.01)
    pairs = len(sequence) - 1
    out: dict[str, dict] = {"pairs": pairs}
    for keypoints in ("uniform", "harris"):
        def stream():
            run_streaming_odometry(sequence, Pipeline(streaming_config(keypoints)))

        reuse_s = timed(stream, repeats)
        with reuse_disabled():
            fresh_s = timed(stream, repeats)
        out[keypoints] = {
            "fresh_s_per_pair": round(fresh_s / pairs, 3),
            "reuse_s_per_pair": round(reuse_s / pairs, 3),
            "speedup": round(fresh_s / reuse_s, 2),
        }
    if dense:
        # Dense frames are the regime this PR targets: preprocess is the
        # dominant per-pair share, so the reuse saving survives the
        # RPCE/ICP noise floor that masks it on the small-frame rows.
        # Twostage only — gridhash is a radius-search specialist whose
        # nn ring fallback is pathological on ICP's far queries.
        dense_seq = make_sequence(
            n_frames=3, seed=7, model=LidarModel(), step=1.0, yaw_rate=0.01
        )
        dense_pairs = len(dense_seq) - 1
        config = streaming_config("harris")
        config.voxel_downsample = FRONTEND_VOXEL

        def stream_dense():
            run_streaming_odometry(dense_seq, Pipeline(config))

        reuse_s = timed(stream_dense, max(1, repeats - 1))
        with reuse_disabled():
            fresh_s = timed(stream_dense, max(1, repeats - 1))
        out["dense_harris"] = {
            "frame_points": len(dense_seq.frames[0]),
            "pairs": dense_pairs,
            "fresh_s_per_pair": round(fresh_s / dense_pairs, 3),
            "reuse_s_per_pair": round(reuse_s / dense_pairs, 3),
            "speedup": round(fresh_s / reuse_s, 2),
        }
    return out


# ----------------------------------------------------------------------
# Reporting.
# ----------------------------------------------------------------------


def format_table(search_only: dict, frontend: dict, streaming: dict) -> str:
    lines = [
        "Per-backend batched search on the front-end cloud",
        "",
        f"{'backend':<22}{'build':>9}{'r=0.5':>9}{'r=1.0':>9}{'r=1 csr':>9}{'nn':>9}",
    ]
    for name, row in search_only.items():
        csr = (
            f"{row['radius10_csr_s']:>8.3f}s" if "radius10_csr_s" in row else f"{'—':>9}"
        )
        lines.append(
            f"{name:<22}{row['build_s']:>8.3f}s{row['radius05_s']:>8.3f}s"
            f"{row['radius10_s']:>8.3f}s{csr}{row['nn_s']:>8.3f}s"
        )
    lines += ["", "Front end (preprocess: normals + Harris + FPFH), seconds"]
    for name, t in frontend.items():
        lines.append(f"  {name:<28}{t:>8.3f}s")
    if "canonical_sequential_fresh" in frontend:
        speedup = frontend["canonical_sequential_fresh"] / frontend["canonical_reuse"]
        lines.append(f"  canonical before/after: {speedup:.1f}x")
    lines += ["", "Streaming odometry, seconds per pair (fresh -> reuse)"]
    for name in ("uniform", "harris", "dense_harris"):
        if name not in streaming:
            continue
        row = streaming[name]
        lines.append(
            f"  {name:<14}{row['fresh_s_per_pair']:>8.3f}s ->"
            f"{row['reuse_s_per_pair']:>8.3f}s ({row['speedup']:.2f}x)"
        )
    return "\n".join(lines)


def write_results_table(text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "search_frontend.txt")
    with open(path, "w", encoding="utf-8") as f:
        f.write(text + "\n")
    print(f"\nwrote {path}")


def check_floors(search_only: dict, stored_path: str) -> list[str]:
    """Regression guard: the structural speedups this module records are
    within-run ratios (both sides measured on the same cloud in the
    same process), so they transfer across machines and cloud sizes
    where absolute seconds do not.  Each guarded ratio may lose 50%
    relative to the recorded baseline before the guard fails."""
    with open(stored_path, encoding="utf-8") as f:
        stored = json.load(f)["search_only"]

    def frontier_speedup(rows):
        return rows["canonical-sequential"]["radius10_s"] / rows["canonical"][
            "radius10_s"
        ]

    checks = {
        "canonical frontier sweep (sequential/frontier radius@1.0)": (
            frontier_speedup(search_only),
            frontier_speedup(stored),
        ),
        "twostage CSR delivery (list/CSR radius@1.0)": (
            search_only["twostage"]["csr_speedup"],
            stored["twostage"]["csr_speedup"],
        ),
    }
    failures = []
    for name, (measured, recorded) in checks.items():
        floor = recorded / FLOOR_SLACK
        if measured < floor:
            failures.append(
                f"{name}: measured {measured:.2f}x < floor {floor:.2f}x "
                f"(recorded {recorded:.2f}x with 50% slack)"
            )
    return failures


def trace_frontend(cloud, path: str) -> None:
    """Record one traced front-end preprocess and export it.

    A separate, untimed pass — the timed legs above always run
    untraced so the recorded numbers carry no tracing cost.  The
    StageProfiler totals ride along so ``tools/check_trace.py`` can
    cross-check the span tree against the stage table.
    """
    tracer = Tracer()
    profiler = StageProfiler(tracer=tracer)
    frontend_pipeline("twostage").preprocess(cloud, profiler=profiler)
    write_trace_file(
        tracer,
        path,
        profiler_totals=profiler.stage_totals(),
        meta={"bench": "search_frontend", "cloud_points": len(cloud)},
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="benchmarks/BENCH_search.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small-cloud parity + timing pass for CI (always asserts parity)",
    )
    parser.add_argument(
        "--check-floors",
        metavar="PATH",
        help="fail on >50%% regression against this recorded BENCH JSON",
    )
    add_trace_argument(parser)
    args = parser.parse_args()

    if args.smoke:
        sequence = make_sequence(
            n_frames=1, seed=7, model=default_test_model(azimuth_steps=160, channels=16)
        )
        cloud = sequence.frames[0]
        # 3 repeats (min-of): the guarded ratios divide ~20 ms timings,
        # which need the min-filter to be stable enough for the floors.
        search_only = bench_search_only(cloud.points, repeats=3)
        frontend = bench_frontend(cloud, repeats=1, include_sequential=True)
        streaming = bench_streaming(repeats=1, n_frames=3, dense=False)
        table = format_table(search_only, frontend, streaming)
        print(table)
        write_results_table(
            table + f"\n(smoke run: {len(cloud)}-point cloud, 3 repeats)"
        )
        if args.trace:
            trace_frontend(cloud, args.trace)
        if args.check_floors:
            failures = check_floors(search_only, args.check_floors)
            for failure in failures:
                print(f"FLOOR REGRESSION: {failure}")
            if failures:
                return 1
            print(f"floors OK against {args.check_floors}")
        print(f"\nsmoke OK: every exact variant bit-identical on {len(cloud)} points")
        return 0

    sequence = make_sequence(n_frames=1, seed=42, model=LidarModel())
    cloud = sequence.frames[0]
    frontend_points = cloud.voxel_downsample(FRONTEND_VOXEL).points
    print(
        f"benchmarking on a {len(cloud)}-point urban cloud "
        f"({len(frontend_points)} front-end points)"
    )
    if args.trace:
        trace_frontend(cloud, args.trace)
    search_only = bench_search_only(frontend_points, repeats=args.repeats)
    frontend = bench_frontend(cloud, repeats=args.repeats, include_sequential=True)
    streaming = bench_streaming(repeats=args.repeats)
    table = format_table(search_only, frontend, streaming)
    print(table)
    write_results_table(table)

    canonical_speedup = round(
        frontend["canonical_sequential_fresh"] / frontend["canonical_reuse"], 2
    )
    dense_stream = streaming["dense_harris"]
    payload = {
        "cloud_points": len(cloud),
        "frontend_points": len(frontend_points),
        "frontend_voxel": FRONTEND_VOXEL,
        "normal_radius": NORMAL_RADIUS,
        "feature_radius": FEATURE_RADIUS,
        "repeats": args.repeats,
        "note": (
            "search_only: batched search on the front-end cloud; "
            "canonical-sequential is the pre-rebuild per-query batch "
            "loop (1 repeat). frontend: live preprocess (voxel + "
            "normals + Harris + FPFH) per backend, nested-radius reuse "
            "on vs forced off; canonical_sequential_fresh is the "
            "post-PR-5 canonical path the acceptance compares against. "
            "streaming: per-pair odometry, reuse on vs off, baselines "
            "re-measured in this run (stored absolute numbers such as "
            "BENCH_frontend.json's 0.19 s/pair do not transfer across "
            "machine states). All exact variants asserted bit-identical "
            "before timing."
        ),
        "search_only": search_only,
        "frontend": frontend,
        "streaming": streaming,
    }
    csr_fill_convert_speedup = round(
        PR6_TWOSTAGE_RADIUS10_S / search_only["twostage"]["radius10_csr_s"], 2
    )
    payload["acceptance"] = {
        "criterion": (
            "canonical-tree front end (search+aggregation) >= "
            f"{ACCEPT_CANONICAL_SPEEDUP}x over its post-PR-5 sequential "
            "path on the 53k-point bench frame; twostage CSR-native "
            f"radius@1.0 >= {ACCEPT_CSR_SPEEDUP}x over the recorded "
            f"pre-CSR fill+convert baseline ({PR6_TWOSTAGE_RADIUS10_S}s) "
            "with bit-identity to the list path asserted before timing; "
            f"twostage front end <= {ACCEPT_TWOSTAGE_FRONTEND_S}s "
            f"(recorded pre-CSR: {PR6_TWOSTAGE_FRONTEND_S}s); dense-frame "
            "streaming per-pair cost with reuse within 5% of fresh or "
            "better (the reuse margin there sits inside run noise now "
            "that fresh searches are CSR-delivered too)"
        ),
        "canonical_frontend_speedup": canonical_speedup,
        "default_frontend_speedup": round(
            frontend["twostage_fresh"] / frontend["twostage_reuse"], 2
        ),
        "best_frontend_speedup": round(
            frontend["twostage_fresh"]
            / min(v for k, v in frontend.items() if k.endswith("_reuse")),
            2,
        ),
        "dense_streaming_speedup": dense_stream["speedup"],
        "csr_fill_convert_speedup": csr_fill_convert_speedup,
        "twostage_csr_delivery_speedup": search_only["twostage"]["csr_speedup"],
        "twostage_frontend_s": frontend["twostage_reuse"],
        "met": (
            canonical_speedup >= ACCEPT_CANONICAL_SPEEDUP
            and dense_stream["reuse_s_per_pair"]
            <= dense_stream["fresh_s_per_pair"] * 1.05
            and csr_fill_convert_speedup >= ACCEPT_CSR_SPEEDUP
            and frontend["twostage_reuse"] <= ACCEPT_TWOSTAGE_FRONTEND_S
        ),
    }
    write_bench(args.out, payload)
    print(f"wrote {args.out}; acceptance met: {payload['acceptance']['met']}")
    return 0 if payload["acceptance"]["met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
