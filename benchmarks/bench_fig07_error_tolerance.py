"""Fig. 7 — registration's tolerance to inexact KD-tree search.

Fig. 7a: translational error as NN search returns the k-th nearest
neighbor instead of the nearest, injected into the *dense* RPCE stage
and the *sparse* KPCE stage.
Fig. 7b: translational error as radius search returns the spherical
shell <r1, r2> instead of the ball r, injected into Normal Estimation.

Shape claims asserted: dense-stage errors (RPCE k-th NN, NE shell) are
statistically tolerated; sparse-stage errors (KPCE) hurt much more —
the asymmetry that licenses the approximate algorithm on NE/RPCE only.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_report
from repro.geometry import metrics
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    KthNeighborInjector,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    ShellRadiusInjector,
)

NE_RADIUS = 0.6
K_VALUES = (1, 2, 3, 5, 7, 9)
SHELLS = ((0.0, 0.6), (0.1, 0.75), (0.2, 0.75), (0.3, 0.75), (0.4, 0.9))


def dense_config(injectors=None) -> PipelineConfig:
    """ICP-only pipeline: isolates the dense NE/RPCE stages."""
    return PipelineConfig(
        icp=ICPConfig(
            rpce=RPCEConfig(max_distance=2.0),
            error_metric="point_to_plane",
            max_iterations=20,
        ),
        skip_initial_estimation=True,
        injectors=injectors or {},
    )


def frontend_config(injectors=None) -> PipelineConfig:
    """Full pipeline whose outcome hinges on KPCE (few ICP iterations)."""
    return PipelineConfig(
        keypoints=KeypointConfig(
            method="harris", params={"radius": 1.0, "threshold": 1e-5}
        ),
        icp=ICPConfig(rpce=RPCEConfig(max_distance=2.0), max_iterations=3),
        injectors=injectors or {},
    )


def trans_error(pair, config) -> float:
    source, target, gt = pair
    result = Pipeline(config).register(source, target)
    _, err = metrics.pair_errors(result.transformation, gt)
    return err


@pytest.fixture(scope="module")
def tolerance_data(medium_sequence):
    pair = medium_sequence.pair(0)
    rpce = {
        k: trans_error(
            pair, dense_config({"RPCE": KthNeighborInjector(k=k)})
        )
        for k in K_VALUES
    }
    kpce = {
        k: trans_error(
            pair, frontend_config({"KPCE": KthNeighborInjector(k=k)})
        )
        for k in K_VALUES
    }
    ne = {
        shell: trans_error(
            pair, dense_config({"Normal Estimation": ShellRadiusInjector(*shell)})
        )
        for shell in SHELLS
    }
    return rpce, kpce, ne


def test_fig07_error_tolerance(benchmark, tolerance_data, medium_sequence):
    pair = medium_sequence.pair(0)
    benchmark.pedantic(
        lambda: trans_error(pair, dense_config()), rounds=1, iterations=1
    )
    rpce, kpce, ne = tolerance_data

    lines = [
        "Fig. 7a — translational error (m) vs k-th NN substitution",
        "",
        f"{'k':>3}{'RPCE (dense)':>15}{'KPCE (sparse)':>16}",
    ]
    for k in K_VALUES:
        lines.append(f"{k:>3}{rpce[k]:>15.3f}{kpce[k]:>16.3f}")
    lines += [
        "",
        "Fig. 7b — translational error (m) vs shell radius search in NE",
        "",
        f"{'<r1, r2> (m)':>14}{'error':>10}",
    ]
    for shell in SHELLS:
        lines.append(f"{str(shell):>14}{ne[shell]:>10.3f}")
    lines += [
        "",
        "(paper: dense-stage injection is statistically tolerated;",
        " KPCE's 2nd-NN already costs ~40 % accuracy)",
    ]
    write_report("fig07_error_tolerance", "\n".join(lines))

    # Dense-stage tolerance: error grows slowly with k in RPCE.
    baseline = rpce[1]
    assert rpce[3] < baseline + 0.25
    assert rpce[5] < baseline + 0.5
    # NE shell searches are tolerated too.
    exact_shell = ne[SHELLS[0]]
    worst_shell = max(ne.values())
    assert worst_shell < exact_shell + 0.5
    # Sparse KPCE is the fragile one: its degradation from k=1 to the
    # worst k exceeds RPCE's.
    kpce_degradation = max(kpce[k] - kpce[1] for k in K_VALUES)
    rpce_degradation = max(rpce[k] - rpce[1] for k in K_VALUES)
    assert kpce_degradation > rpce_degradation
