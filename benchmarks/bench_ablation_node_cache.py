"""Ablation — node-cache capacity (paper: 128 KB, ~8 leaf sets).

The paper credits the node cache with redirecting 18 % of memory
traffic to a small structure, saving 5.9 % energy.  This bench sweeps
the cache capacity under realistic cache *pressure*: a leaf-size-8
workload gives each SU ~11 leaf sets to juggle, so small caches
actually miss (with the default leaf ~128 on a 2.8 k-point frame each
SU owns a single leaf set and any cache trivially hits).
"""

import pytest

from benchmarks.conftest import write_report
from repro.accel import (
    AcceleratorConfig,
    BackEndConfig,
    TigrisSimulator,
    registration_workload,
)

CACHE_SIZES = (0, 1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def cache_data(frame_pair):
    source, target, _ = frame_pair
    workloads = list(
        registration_workload(
            source.points,
            target.points,
            normal_radius=0.75,
            icp_iterations=2,
            leaf_size=8,
        ).values()
    )
    results = {}
    for entries in CACHE_SIZES:
        simulator = TigrisSimulator(
            AcceleratorConfig(backend=BackEndConfig(node_cache_entries=entries))
        )
        results[entries] = simulator.simulate_many(workloads)
    return results


def hit_rate(result) -> float:
    backend = result.backend
    total = backend.node_cache_hits + backend.node_cache_misses
    return backend.node_cache_hits / total if total else 0.0


def test_ablation_node_cache(benchmark, cache_data):
    results = cache_data
    benchmark(lambda: results[8].traffic.distribution())

    lines = [
        "Ablation — node-cache capacity (leaf size 8: ~11 leaf sets/SU)",
        "",
        f"{'entries':>8}{'hit rate':>10}{'PointsBuf share':>17}{'energy(uJ)':>12}",
    ]
    for entries in CACHE_SIZES:
        result = results[entries]
        share = result.traffic.distribution().get("Points Buf", 0.0)
        lines.append(
            f"{entries:>8}{100 * hit_rate(result):>9.1f}%{100 * share:>16.1f}%"
            f"{result.energy_joules * 1e6:>12.2f}"
        )
    lines += [
        "",
        "(paper: the 128 KB cache cuts Points Buffer traffic from 53 %",
        " to 35 % of total and saves 5.9 % energy)",
    ]
    write_report("ablation_node_cache", "\n".join(lines))

    # More cache -> monotonically no-worse Points Buffer traffic.
    points_traffic = [results[e].traffic.points_buffer for e in CACHE_SIZES]
    assert all(
        later <= earlier
        for earlier, later in zip(points_traffic, points_traffic[1:])
    )
    # Hit rate grows with capacity and the sweep exercises a real range.
    assert hit_rate(results[0]) == 0.0
    assert hit_rate(results[1]) < hit_rate(results[16])
    assert hit_rate(results[16]) > 0.2
    # Energy with a reasonable cache beats no cache.
    assert results[8].energy_joules < results[0].energy_joules
