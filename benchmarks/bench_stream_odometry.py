"""Streaming vs pair-by-pair odometry throughput (the artifact-reuse bench).

Runs the same full registration pipeline (normal estimation, Harris
keypoints, FPFH, KPCE, rejection, point-to-plane ICP) over synthetic
sequences through both sequence drivers:

``pairwise``
    :func:`~repro.registration.run_odometry` — every pair preprocesses
    both of its frames from scratch (two tree builds, two normal
    estimations, two keypoint/descriptor passes per pair).
``streaming``
    :class:`~repro.registration.StreamingOdometry` — each frame is
    preprocessed once into a FrameState and handed from "source of pair
    k" to "target of pair k+1", so the steady state does one preprocess
    plus one match per pair.

Both drivers run the identical computation in a different order, so the
bench also asserts the trajectories are bit-identical before recording
any timing.  The headline number is the urban scene's steady-state
ratio (pair 0 pays the one-off cost of preprocessing two frames and is
excluded from the streaming steady state); the acceptance bar is 0.6x.

Run standalone to (re)record the baseline:

    PYTHONPATH=src python benchmarks/bench_stream_odometry.py \
        [--frames 10] [--out benchmarks/BENCH_stream.json]
"""

from __future__ import annotations

import argparse

import numpy as np
from record import write_bench

from repro.io import (
    default_test_model,
    highway_scene,
    intersection_scene,
    make_sequence,
    room_scene,
    urban_scene,
)
from repro.registration import (
    DescriptorConfig,
    ICPConfig,
    KeypointConfig,
    NormalEstimationConfig,
    Pipeline,
    PipelineConfig,
    RejectionConfig,
    RPCEConfig,
    run_odometry,
    run_streaming_odometry,
)
from repro.telemetry import Tracer


def bench_pipeline() -> Pipeline:
    """The full two-phase pipeline, preprocessing-heavy as in DP7:
    wide NE radius (Sec. 6.3), Harris keypoints, FPFH descriptors,
    seeded RANSAC rejection (robust initials, deterministic)."""
    return Pipeline(
        PipelineConfig(
            normals=NormalEstimationConfig(radius=0.75),
            keypoints=KeypointConfig(method="harris", params={"radius": 1.0}),
            descriptor=DescriptorConfig(method="fpfh", radius=1.5),
            rejection=RejectionConfig(
                method="ransac", ransac_threshold=0.8, ransac_iterations=150
            ),
            icp=ICPConfig(
                rpce=RPCEConfig(max_distance=2.0),
                error_metric="point_to_plane",
                max_iterations=6,
            ),
        )
    )


def build_scenes(urban_frames: int) -> dict:
    """The four synthetic workloads.  Urban is the headline: >= 10
    frames, dense scan; the others are shorter runs covering the
    feature-poor, feature-rich and indoor regimes."""
    dense = default_test_model(azimuth_steps=270, channels=24)
    sparse = default_test_model()
    return {
        "urban": dict(
            scene=lambda rng: urban_scene(rng, length=120.0),
            n_frames=urban_frames,
            model=dense,
            step=1.0,
        ),
        "highway": dict(
            scene=lambda rng: highway_scene(rng, length=160.0),
            n_frames=6,
            model=sparse,
            step=1.0,
            # Deliberately feature-poor along the travel direction (see
            # repro.io.synthetic.highway_scene): per-pair accuracy is
            # dominated by the aperture degeneracy, for BOTH drivers
            # identically — recorded for transparency.
            note="feature-poor stress scene; accuracy is aperture-limited",
        ),
        "intersection": dict(
            scene=lambda rng: intersection_scene(rng),
            n_frames=6,
            model=sparse,
            step=1.0,
            seed=11,
        ),
        "room": dict(
            scene=lambda rng: room_scene(),
            n_frames=6,
            model=sparse,
            step=0.3,
        ),
    }


def bench_scene(name: str, spec: dict, repeats: int = 2) -> dict:
    seed = spec.get("seed", 7)
    rng = np.random.default_rng(seed)
    sequence = make_sequence(
        n_frames=spec["n_frames"],
        seed=seed,
        scene=spec["scene"](rng),
        model=spec["model"],
        step=spec["step"],
    )
    # Full front end on every pair: the representative workload for the
    # reuse claim (a seeded run would skip keypoints/descriptors and
    # shrink both sides of the comparison equally).  Each driver runs
    # ``repeats`` times; the best run counts (standard for wall-clock
    # benches — the minimum is the least noise-contaminated sample).
    pairwise_runs = [
        run_odometry(sequence, bench_pipeline(), seed_with_previous=False)
        for _ in range(repeats)
    ]
    streaming_runs = [
        run_streaming_odometry(
            sequence, bench_pipeline(), seed_with_previous=False
        )
        for _ in range(repeats)
    ]
    pairwise = pairwise_runs[0]

    identical = all(
        len(run.trajectory) == len(pairwise.trajectory)
        and all(
            np.array_equal(a, b)
            for a, b in zip(pairwise.trajectory, run.trajectory)
        )
        for run in streaming_runs
    )
    if not identical:
        raise AssertionError(f"{name}: streaming trajectory diverged")

    pairwise_mean = min(
        float(np.mean(run.pair_seconds)) for run in pairwise_runs
    )
    streaming_mean = min(
        float(np.mean(run.pair_seconds)) for run in streaming_runs
    )
    # Pair 0 amortizes the first frame's preprocess; steady state starts
    # at pair 1.
    steady_mean = min(
        float(np.mean(run.pair_seconds[1:] or run.pair_seconds))
        for run in streaming_runs
    )
    return {
        "seed": seed,
        **({"note": spec["note"]} if "note" in spec else {}),
        "n_frames": len(sequence),
        "n_pairs": pairwise.n_pairs,
        "points_per_frame": int(
            np.mean([len(frame) for frame in sequence.frames])
        ),
        "pairwise_mean_pair_s": round(pairwise_mean, 4),
        "streaming_mean_pair_s": round(streaming_mean, 4),
        "streaming_steady_state_mean_pair_s": round(steady_mean, 4),
        "steady_state_ratio": round(steady_mean / pairwise_mean, 3),
        "overall_ratio": round(streaming_mean / pairwise_mean, 3),
        "trajectory_bit_identical": identical,
        "translational_percent": round(
            pairwise.errors.translational_percent, 3
        ),
    }


def bench_telemetry_overhead(frames: int, repeats: int) -> dict:
    """Steady-state streaming cost untraced vs with a live tracer.

    Instrumentation points always run — they hit :data:`NULL_TRACER`
    no-ops when no tracer is attached — so the *untraced* leg measures
    the overhead the telemetry layer imposes on every ordinary run
    (budget: unmeasurable, <=1% enforced by the CI-facing criterion
    below), and the *traced* leg records what full span recording
    costs for transparency.  Tracing must never perturb results, so
    the two legs' trajectories are asserted bit-identical first.
    """
    seed = 7
    rng = np.random.default_rng(seed)
    sequence = make_sequence(
        n_frames=frames,
        seed=seed,
        scene=urban_scene(rng, length=120.0),
        model=default_test_model(azimuth_steps=270, channels=24),
        step=1.0,
    )

    def steady(tracer):
        runs = [
            run_streaming_odometry(
                sequence,
                bench_pipeline(),
                seed_with_previous=False,
                tracer=tracer() if tracer else None,
            )
            for _ in range(repeats)
        ]
        best = min(
            float(np.mean(run.pair_seconds[1:] or run.pair_seconds))
            for run in runs
        )
        return best, runs[0]

    untraced_s, untraced_run = steady(None)
    traced_s, traced_run = steady(Tracer)
    identical = all(
        np.array_equal(a, b)
        for a, b in zip(untraced_run.trajectory, traced_run.trajectory)
    )
    if not identical:
        raise AssertionError("tracing perturbed the streaming trajectory")
    return {
        "criterion": (
            "tracing-disabled instrumentation costs <=1% steady-state "
            "(the untraced leg IS the instrumented no-op path); traced "
            "leg recorded for transparency, results bit-identical"
        ),
        "n_frames": len(sequence),
        "untraced_steady_state_s": round(untraced_s, 4),
        "traced_steady_state_s": round(traced_s, 4),
        "traced_overhead_ratio": round(traced_s / untraced_s, 3),
        "trajectory_bit_identical": identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=10,
                        help="urban sequence length (headline scene)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed runs per driver; the best one counts")
    parser.add_argument("--out", default="benchmarks/BENCH_stream.json")
    args = parser.parse_args()

    results = {}
    for name, spec in build_scenes(args.frames).items():
        results[name] = bench_scene(name, spec, repeats=args.repeats)
        r = results[name]
        print(
            f"{name:<13} {r['n_pairs']:2d} pairs x {r['points_per_frame']:5d} pts: "
            f"pairwise {r['pairwise_mean_pair_s']:.3f} s/pair, "
            f"streaming steady {r['streaming_steady_state_mean_pair_s']:.3f} s/pair "
            f"(ratio {r['steady_state_ratio']:.2f})"
        )

    headline = results["urban"]
    telemetry = bench_telemetry_overhead(
        frames=min(args.frames, 6), repeats=args.repeats
    )
    print(
        f"telemetry: untraced steady {telemetry['untraced_steady_state_s']:.3f} "
        f"s/pair, traced {telemetry['traced_steady_state_s']:.3f} s/pair "
        f"(x{telemetry['traced_overhead_ratio']:.2f})"
    )
    payload = {
        "pipeline": (
            "NE plane_svd r=0.75, harris r=1.0, fpfh r=1.5, KPCE, "
            "seeded RANSAC rejection, point-to-plane ICP max_iter=6, "
            "twostage search, seed_with_previous=False "
            "(full front end per pair)"
        ),
        "acceptance": {
            "criterion": "urban steady-state streaming <= 0.6x pairwise",
            "steady_state_ratio": headline["steady_state_ratio"],
            "met": headline["steady_state_ratio"] <= 0.6,
        },
        "telemetry": telemetry,
        "scenes": results,
    }
    write_bench(args.out, payload)
    print(f"\nwrote {args.out}; acceptance met: {payload['acceptance']['met']}")
    return 0 if payload["acceptance"]["met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
