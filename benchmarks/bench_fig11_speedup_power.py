"""Fig. 11 — KD-tree search speedup and power reduction on the two
featured design points (accuracy-oriented DP7, performance-oriented DP4).

Four systems run the same registration search workload:
  Base-KD   — GPU, canonical KD-tree (the paper's baseline);
  Base-2SKD — GPU, two-stage KD-tree;
  Acc-KD    — Tigris accelerator, canonical tree (leaf size 1);
  Acc-2SKD  — Tigris accelerator, two-stage tree (leaf ~128).

Shape claims asserted: Acc-2SKD is fastest and its speedup over
Base-2SKD lands in the tens (paper: 77.2x for DP7, 21x over Base-2SKD
for DP4); Base-2SKD beats Base-KD on the GPU (~1.28x); power reduction
vs the GPU is several-fold (paper: ~7x DP7, ~10.5x DP4); Acc-KD's
energy exceeds Acc-2SKD's (paper: 2.5x).
"""

import pytest

from benchmarks.conftest import write_report
from repro.accel import CPUModel, GPUModel, TigrisSimulator


def platform_times(workloads):
    """(base_kd, base_2skd, acc_kd, acc_2skd, cpu) on one DP's workloads."""
    simulator = TigrisSimulator()
    gpu, cpu = GPUModel(), CPUModel()
    acc_2skd = simulator.simulate_many(list(workloads["2skd"].values()))
    acc_kd = simulator.simulate_many(list(workloads["kd"].values()))
    base_kd = sum(gpu.run(w).time_seconds for w in workloads["kd"].values())
    base_2skd = sum(gpu.run(w).time_seconds for w in workloads["2skd"].values())
    cpu_time = sum(cpu.run(w).time_seconds for w in workloads["kd"].values())
    return base_kd, base_2skd, acc_kd, acc_2skd, cpu_time


@pytest.fixture(scope="module")
def fig11_data(dp7_workloads, dp4_workloads):
    return {
        "DP7": platform_times(dp7_workloads),
        "DP4": platform_times(dp4_workloads),
    }


def test_fig11_speedup_power(benchmark, fig11_data, dp7_workloads, dp4_workloads):
    simulator = TigrisSimulator()
    benchmark(
        lambda: simulator.simulate_many(list(dp7_workloads["2skd"].values()))
    )
    gpu = GPUModel()

    lines = [
        "Fig. 11 — KD-tree search speedup (vs GPU Base-KD) and power",
        "",
    ]
    checks = {}
    for dp, (base_kd, base_2skd, acc_kd, acc_2skd, cpu_time) in fig11_data.items():
        lines.append(f"--- {dp} ---")
        lines.append(f"{'system':<12}{'time':>12}{'speedup':>10}{'power':>9}")
        rows = [
            ("CPU", cpu_time, CPUModel().power_watts),
            ("Base-KD", base_kd, gpu.power_watts),
            ("Base-2SKD", base_2skd, gpu.power_watts),
            ("Acc-KD", acc_kd.time_seconds, acc_kd.power_watts),
            ("Acc-2SKD", acc_2skd.time_seconds, acc_2skd.power_watts),
        ]
        for name, seconds, watts in rows:
            lines.append(
                f"{name:<12}{seconds * 1e3:>10.3f}ms"
                f"{base_kd / seconds:>9.1f}x{watts:>8.1f}W"
            )
        speedup_77 = base_2skd / acc_2skd.time_seconds
        power_red = gpu.power_watts / acc_2skd.power_watts
        lines.append(
            f"Acc-2SKD vs Base-2SKD: {speedup_77:.1f}x speedup, "
            f"{power_red:.1f}x power reduction"
        )
        lines.append("")
        checks[dp] = (base_kd, base_2skd, acc_kd, acc_2skd, speedup_77, power_red)
    lines.append(
        "(paper DP7: 77.2x / ~7x;  DP4: 21.0x / ~10.5x;  Base-2SKD 1.28x "
        "over Base-KD;  Acc-KD energy 2.5x Acc-2SKD)"
    )
    write_report("fig11_speedup_power", "\n".join(lines))

    for dp, (base_kd, base_2skd, acc_kd, acc_2skd, speedup, power_red) in checks.items():
        # Ordering: accelerator < GPU variants.
        assert acc_2skd.time_seconds < base_2skd < base_kd
        assert acc_kd.time_seconds < base_kd
        # Two-stage is what unlocks the accelerator.
        assert acc_2skd.time_seconds <= acc_kd.time_seconds
        # Headline bands (shape, not absolutes).
        assert 20 < speedup < 300, f"{dp}: {speedup}"
        assert 2 < power_red < 30, f"{dp}: {power_red}"
    # The paper's mechanism for DP7 > DP4 speedup (77.2x vs 21.0x): the
    # relaxed DP7 radii expose more exhaustive leaf search for the
    # back-end to exploit.  We assert the mechanism — DP7's workload has
    # a larger exhaustive-search share — rather than the speedup
    # ordering itself, which at our 2.8k-point scale is within noise.
    def leaf_share(workloads):
        leaf = sum(w.total_leaf_scanned for w in workloads["2skd"].values())
        total = sum(w.total_nodes_visited for w in workloads["2skd"].values())
        return leaf / total

    assert leaf_share(dp7_workloads) >= leaf_share(dp4_workloads) * 0.95
