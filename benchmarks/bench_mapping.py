"""Open-loop vs loop-closed mapping on the urban_loop circuit.

Runs the same registration pipeline over the ``urban_loop`` suite
sequence (two laps around a synthetic intersection) through three
drivers:

``open-loop``
    :func:`~repro.registration.run_streaming_odometry` — chained
    pairwise registrations, drift accumulates unbounded.
``mapper (no loop closure)``
    :class:`~repro.mapping.StreamingMapper` with closure disabled —
    measures the subsystem's bookkeeping overhead (keyframes + voxel
    map) over bare streaming odometry; its trajectory must be
    bit-identical to the open-loop driver's.
``mapper``
    The full SLAM engine: keyframes, pose-proximity loop closure,
    SE(3) pose-graph optimization, re-anchored voxel map.

The headline numbers are the absolute trajectory errors (ATE) and the
drift-reduction ratio; the acceptance bar is a mapped ATE at most 0.5x
the open-loop ATE with at least one verified closure.

Run standalone to (re)record the baseline:

    PYTHONPATH=src python benchmarks/bench_mapping.py \
        [--frames 48] [--out benchmarks/BENCH_mapping.json]

``--smoke`` runs the assertions without writing the JSON (the fast CI
sanity pass).  ``--check-floors PATH`` additionally guards against
perf/accuracy regressions relative to the recorded baseline: loop
closures and mapped ATE must match the stored run (the scenario is
deterministic), and the re-anchor / optimizer shares of mapper wall
time — within-run ratios, so portable across machines — may not
exceed their recorded shares by more than 50%.  Future PRs cannot
silently give back the PR-7 solver or PR-8 re-anchor wins.

``--trace PATH`` additionally records the full-mapper run through the
telemetry layer (frame -> pair -> stage spans, loop closure, pose-graph
solves) and writes a Chrome trace (or JSONL run record for ``.jsonl``
paths) with the StageProfiler totals embedded for
``tools/check_trace.py`` to cross-check.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np
from record import add_trace_argument, write_bench, write_trace_file

from repro.geometry import metrics
from repro.io import SceneSuite, default_test_model
from repro.mapping import (
    StreamingMapper,
    urban_loop_mapper_config,
    urban_loop_pipeline,
)
from repro.profiling import StageProfiler
from repro.registration import run_streaming_odometry
from repro.telemetry import Tracer

# The reference configuration lives in repro.mapping.presets so the
# example, the golden regression scenario, the acceptance tests, and
# this bench measure the same system.
ACCEPTANCE_RATIO = 0.5
# Regression-guard slack: a guarded timing ratio may drift 50% off its
# recorded baseline before the guard fails.  The protected wins carry
# 3-10x margins (re-anchor 1.29s -> 0.44s, solver 5.83s -> 0.6s), so a
# 1.5x ceiling still catches any real regression, while the share
# ratios' run-to-run noise (~1.3x observed on a loaded host) cannot
# flake CI.
FLOOR_SLACK = 1.5


def run_mapper(sequence, enable_loop_closure: bool, tracer=None):
    mapper = StreamingMapper(
        urban_loop_pipeline(),
        urban_loop_mapper_config(enable_loop_closure=enable_loop_closure),
        tracer=tracer,
    )
    start = time.perf_counter()
    for frame in sequence.frames:
        mapper.push(frame)
    return mapper, time.perf_counter() - start


def mapper_stage_totals(mapper) -> dict:
    """Stage name -> seconds across the mapper's two profilers.

    The odometry engine times the per-pair pipeline stages and the
    loop closer times verification registrations; the trace's stage
    spans cover both, so the embedded cross-check view must too.
    """
    combined = StageProfiler()
    combined.merge(mapper.odometry.profiler)
    combined.merge(mapper.loop_profiler)
    return combined.stage_totals()


def bench(frames: int, tracer=None) -> dict:
    suite = SceneSuite.default(n_frames=frames, model=default_test_model())
    sequence = suite.sequence("urban_loop")

    start = time.perf_counter()
    open_loop = run_streaming_odometry(sequence, urban_loop_pipeline())
    open_seconds = time.perf_counter() - start
    ate_open = metrics.absolute_trajectory_error(
        open_loop.trajectory, sequence.poses
    )

    mapper, mapper_seconds = run_mapper(
        sequence, enable_loop_closure=True, tracer=tracer
    )
    ate_mapped = metrics.absolute_trajectory_error(
        mapper.trajectory(), sequence.poses
    )

    passthrough, passthrough_seconds = run_mapper(
        sequence, enable_loop_closure=False
    )
    identical = all(
        np.array_equal(ours, reference)
        for ours, reference in zip(
            passthrough.trajectory(), open_loop.trajectory
        )
    )
    if not identical:
        raise AssertionError(
            "mapper without loop closure diverged from streaming odometry"
        )

    stats = mapper.stats
    ratio = ate_mapped / ate_open
    result = {
        "scene": "urban_loop (2 laps, radius 5 m, intersection seed 11)",
        "n_frames": len(sequence),
        "points_per_frame": int(
            np.mean([len(frame) for frame in sequence.frames])
        ),
        "ate_open_loop_m": round(ate_open, 4),
        "ate_mapped_m": round(ate_mapped, 4),
        "ate_ratio": round(ratio, 4),
        "n_keyframes": stats.n_keyframes,
        "n_loop_closures": stats.n_loop_closures,
        "n_optimizations": stats.n_optimizations,
        "map_voxels": stats.n_map_voxels,
        "map_points": stats.n_map_points,
        "open_loop_s": round(open_seconds, 2),
        "mapper_s": round(mapper_seconds, 2),
        "mapper_no_closure_s": round(passthrough_seconds, 2),
        # How much the mapping layers cost on top of bare odometry.
        "bookkeeping_overhead": round(passthrough_seconds / open_seconds, 3),
        "full_mapper_overhead": round(mapper_seconds / open_seconds, 3),
        "loop_closure_s": round(stats.loop_seconds, 2),
        # Solver time only; map re-binning after each solve is its own
        # line so back-end speedups are attributed honestly.
        "optimize_s": round(stats.optimize_seconds, 2),
        "reanchor_s": round(stats.reanchor_seconds, 2),
        "no_closure_trajectory_bit_identical": identical,
        "acceptance": {
            "criterion": (
                f"mapped ATE <= {ACCEPTANCE_RATIO}x open-loop ATE with >= 1 "
                "verified loop closure; closure-disabled trajectory "
                "bit-identical to streaming odometry"
            ),
            "met": bool(
                ratio <= ACCEPTANCE_RATIO
                and stats.n_loop_closures >= 1
                and identical
            ),
        },
    }
    print(
        f"urban_loop x {len(sequence)} frames: open ATE {ate_open:.3f} m "
        f"({open_seconds:.1f}s) -> mapped {ate_mapped:.3f} m "
        f"({mapper_seconds:.1f}s), ratio {ratio:.2f}x, "
        f"{stats.n_loop_closures} closures over {stats.n_keyframes} keyframes"
    )
    return result, mapper_stage_totals(mapper)


def check_floors(result: dict, stored_path: str) -> list[str]:
    """Regression guard against the recorded baseline run.

    Accuracy quantities are deterministic (fixed seeds), so they must
    *match* the baseline; timing quantities are guarded as shares of
    the same run's mapper wall time — within-run ratios transfer
    across machines where absolute seconds do not.
    """
    with open(stored_path, encoding="utf-8") as f:
        stored = json.load(f)
    failures = []
    if result["n_loop_closures"] != stored["n_loop_closures"]:
        failures.append(
            f"loop closures changed: {result['n_loop_closures']} "
            f"vs recorded {stored['n_loop_closures']}"
        )
    if not np.isclose(result["ate_mapped_m"], stored["ate_mapped_m"], rtol=0.01):
        failures.append(
            f"mapped ATE drifted: {result['ate_mapped_m']} m "
            f"vs recorded {stored['ate_mapped_m']} m"
        )
    for key in ("reanchor_s", "optimize_s"):
        share = result[key] / result["mapper_s"]
        recorded = stored[key] / stored["mapper_s"]
        if share > recorded * FLOOR_SLACK:
            failures.append(
                f"{key} share of mapper time regressed: {share:.3f} "
                f"vs recorded {recorded:.3f} (+50% ceiling "
                f"{recorded * FLOOR_SLACK:.3f})"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=48,
                        help="circuit length (2 laps; keep ~24 frames/lap)")
    parser.add_argument("--out", default="benchmarks/BENCH_mapping.json")
    parser.add_argument("--smoke", action="store_true",
                        help="assert acceptance without rewriting the JSON")
    parser.add_argument(
        "--check-floors",
        metavar="PATH",
        help="fail on >50%% regression against this recorded BENCH JSON",
    )
    add_trace_argument(parser)
    args = parser.parse_args()

    tracer = Tracer() if args.trace else None
    result, stage_totals = bench(args.frames, tracer=tracer)
    met = result["acceptance"]["met"]
    if args.trace:
        write_trace_file(
            tracer,
            args.trace,
            profiler_totals=stage_totals,
            meta={"bench": "mapping", "frames": args.frames},
        )
    if args.check_floors:
        failures = check_floors(result, args.check_floors)
        for failure in failures:
            print(f"FLOOR REGRESSION: {failure}")
        if failures:
            return 1
        print(f"floors OK against {args.check_floors}")
    if args.smoke:
        print(f"smoke OK: acceptance met: {met}")
        return 0 if met else 1

    write_bench(args.out, result)
    print(f"wrote {args.out}; acceptance met: {met}")
    return 0 if met else 1


if __name__ == "__main__":
    raise SystemExit(main())
