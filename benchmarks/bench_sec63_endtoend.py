"""Sec. 6.3 — end-to-end registration speedup and power reduction.

The paper's headline: accelerating only the KD-tree searches speeds up
end-to-end registration by 41.7 % (DP7) / 13.6 % (DP4) over the
CPU+GPU baseline, 86.6 % over CPU-only, and cuts system power 3.0x.

This bench couples the measured quantities end to end: the KD-tree
time fraction comes from the profiled pipeline run (the Fig. 4b
measurement), the search speedup from the Fig. 11 platform comparison,
and the Amdahl + time-weighted-power model in
:mod:`repro.accel.endtoend` produces the system-level numbers.
"""

import pytest

from benchmarks.conftest import write_report
from repro.accel import CPUModel, EndToEndModel, GPUModel, TigrisSimulator
from repro.profiling import StageProfiler
from repro.registration import Pipeline, dp7_accuracy


@pytest.fixture(scope="module")
def endtoend_data(medium_sequence, dp7_workloads):
    # 1. Measure the KD-tree search fraction on a real DP7 run (Fig. 4b).
    source, target, _ = medium_sequence.pair(0)
    profiler = StageProfiler()
    Pipeline(dp7_accuracy()).register(source, target, profiler=profiler)
    kdtree_fraction = profiler.kdtree_fractions()["search"]

    # 2. Measure the search speedup of the accelerator over the GPU and
    # CPU baselines (Fig. 11).
    gpu, cpu = GPUModel(), CPUModel()
    accel = TigrisSimulator().simulate_many(list(dp7_workloads["2skd"].values()))
    gpu_search = sum(gpu.run(w).time_seconds for w in dp7_workloads["2skd"].values())
    cpu_search = sum(cpu.run(w).time_seconds for w in dp7_workloads["kd"].values())
    search_speedup_vs_gpu = gpu_search / accel.time_seconds
    search_speedup_vs_cpu = cpu_search / accel.time_seconds
    return (
        kdtree_fraction,
        profiler.total,
        accel,
        search_speedup_vs_gpu,
        search_speedup_vs_cpu,
    )


def test_sec63_endtoend(benchmark, endtoend_data):
    (
        kdtree_fraction,
        baseline_total,
        accel,
        speedup_vs_gpu,
        speedup_vs_cpu,
    ) = endtoend_data
    gpu, cpu = GPUModel(), CPUModel()

    model = EndToEndModel(
        kdtree_fraction=kdtree_fraction,
        baseline_total_seconds=baseline_total,
        host_watts=cpu.power_watts,
    )
    e2e_speedup, e2e_power = benchmark(
        lambda: model.speedup_over_baseline(
            speedup_vs_gpu, gpu.power_watts, accel.power_watts
        )
    )
    cpu_speedup, _ = model.speedup_over_baseline(
        speedup_vs_cpu, cpu.power_watts, accel.power_watts
    )

    lines = [
        "Sec. 6.3 — end-to-end registration improvement (DP7)",
        "",
        f"measured KD-tree search fraction: {100 * kdtree_fraction:.1f} % "
        "(Fig. 4b)",
        f"search speedup vs GPU baseline:   {speedup_vs_gpu:.1f}x (Fig. 11)",
        "",
        f"end-to-end speedup vs CPU+GPU:    {e2e_speedup:.2f}x  "
        f"({100 * (1 - 1 / e2e_speedup):.1f} % time reduction; paper: 41.7 %)",
        f"end-to-end speedup vs CPU-only:   {cpu_speedup:.2f}x  "
        f"({100 * (1 - 1 / cpu_speedup):.1f} % time reduction; paper: 86.6 %)",
        f"end-to-end power reduction:       {e2e_power:.2f}x  (paper: 3.0x)",
        "",
        "(note: our Python host makes the measured KD-tree fraction",
        " higher than the paper's C++ host, so the Amdahl gains here",
        " bound the paper's from above)",
    ]
    write_report("sec63_endtoend", "\n".join(lines))

    # End-to-end gains are large but Amdahl-bounded.
    assert e2e_speedup > 1.3
    assert e2e_speedup < speedup_vs_gpu
    assert 1.0 / e2e_speedup > 1.0 / speedup_vs_gpu
    # The paper's 41.7 % reduction band: ours is at least that (higher
    # measured search fraction -> larger Amdahl gain).
    assert (1 - 1 / e2e_speedup) > 0.40
    # CPU-only comparison is even more favourable (paper: 86.6 %).
    assert cpu_speedup > e2e_speedup
    # System power reduction in the paper's band.
    assert 1.5 < e2e_power < 6.0
