"""Micro-benchmarks of the search structures themselves.

Not a paper figure — these are the library-health benchmarks an
open-source KD-tree package ships: build and query throughput of the
canonical tree, the two-stage tree, and the approximate search, on a
realistic LiDAR frame.  Regressions here would silently inflate every
workload-tracing bench above.
"""

import numpy as np
import pytest

from repro.core import ApproximateSearch, TwoStageKDTree
from repro.kdtree import KDTree


@pytest.fixture(scope="module")
def frame_points(frame_pair):
    source, _, _ = frame_pair
    return source.points


@pytest.fixture(scope="module")
def queries(frame_pair):
    _, target, _ = frame_pair
    return target.points[:200]


def test_build_canonical(benchmark, frame_points):
    benchmark(lambda: KDTree(frame_points))


def test_build_twostage(benchmark, frame_points):
    benchmark(lambda: TwoStageKDTree.from_leaf_size(frame_points, 64))


def test_nn_canonical(benchmark, frame_points, queries):
    tree = KDTree(frame_points)

    def run():
        for query in queries:
            tree.nn(query)

    benchmark(run)


def test_nn_twostage(benchmark, frame_points, queries):
    tree = TwoStageKDTree.from_leaf_size(frame_points, 64)
    benchmark(lambda: tree.nn_batch(queries))


def test_nn_approximate(benchmark, frame_points, queries):
    tree = TwoStageKDTree.from_leaf_size(frame_points, 64)

    def run():
        ApproximateSearch(tree).nn_batch(queries)

    benchmark(run)


def test_radius_twostage(benchmark, frame_points, queries):
    tree = TwoStageKDTree.from_leaf_size(frame_points, 64)
    benchmark(lambda: tree.radius_batch(queries, 0.75))


def test_knn_twostage(benchmark, frame_points, queries):
    tree = TwoStageKDTree.from_leaf_size(frame_points, 64)
    benchmark(lambda: tree.knn_batch(queries[:50], 8))
