"""Vectorized ragged-neighborhood kernels vs the seed per-point loops.

Measures, per front-end stage, the *aggregation* time — what the stage
does with its batched neighbor lists after the (shared, identical)
search returns — for the seed loop implementations pinned in
``tests/registration/test_frontend_parity.py`` versus the CSR segment
kernels of :mod:`repro.core.ragged`.  A replaying searcher hands both
paths the exact same prefetched neighbor lists, so the comparison
isolates the code this PR changed; the prefetch (search) cost is
recorded alongside for context.

The workload mirrors how ``Pipeline.preprocess`` consumes a dense
frame: the voxel kernels bin the raw 50k-point cloud, and the
search-consuming stages (normals, Harris, descriptors) run on its
voxel-downsampled result — dense frames always enter the front end
through ``voxel_downsample`` (see the mapping preset), and the
downsample voxel is chosen so neighborhood sizes match the pipeline's
operating point (~20 neighbors for normal estimation, ~60 for
descriptor supports, as in the quickstart/DSE workloads).

Also records two end-to-end views, obtained by monkeypatching the seed
loop implementations back into the live pipeline:

* the quickstart registration (uniform keypoints + FPFH + ICP);
* a short streaming-odometry run (per-pair steady-state cost).

Acceptance: combined normals+descriptor aggregation speedup >= 2.5x,
end-to-end quickstart speedup >= 1.3x.

Run standalone to (re)record the baseline:

    PYTHONPATH=src python benchmarks/bench_frontend_kernels.py \
        [--out benchmarks/BENCH_frontend.json]

``--smoke`` runs a small-cloud parity + timing pass (the fast CI job
wires this in and uploads the timing table as an artifact).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time

import numpy as np
from record import write_bench

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from tests.registration.test_frontend_parity import (  # noqa: E402
    assert_descriptors_match,
    ref_estimate_normals,
    ref_fpfh_descriptors,
    ref_harris_scores_and_keypoints,
    ref_sc3d_descriptors,
    ref_shot_descriptors,
    ref_sift_keypoints,
    ref_voxel_downsample_indices,
)

from repro.io import make_sequence  # noqa: E402
from repro.io.pointcloud import PointCloud  # noqa: E402
from repro.io.synthetic import LidarModel  # noqa: E402
from repro.io.dataset import default_test_model  # noqa: E402
from repro.mapping.voxel_map import VoxelMap, VoxelMapConfig  # noqa: E402
from repro.registration import (  # noqa: E402
    ICPConfig,
    KeypointConfig,
    NormalEstimationConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    SearchConfig,
    build_searcher,
)
from repro.registration.descriptors import DescriptorConfig  # noqa: E402
from repro.registration.descriptors.fpfh import fpfh_descriptors  # noqa: E402
from repro.registration.descriptors.sc3d import sc3d_descriptors  # noqa: E402
from repro.registration.descriptors.shot import shot_descriptors  # noqa: E402
from repro.registration.keypoints import uniform_keypoints  # noqa: E402
from repro.registration.keypoints.harris import (  # noqa: E402
    _non_max_suppress,
    harris_keypoints,
)
from repro.registration.normals import estimate_normals  # noqa: E402
from repro.registration.odometry import run_streaming_odometry  # noqa: E402

ACCEPT_STAGE_SPEEDUP = 2.5
ACCEPT_E2E_SPEEDUP = 1.3
NORMAL_RADIUS = 0.5
FEATURE_RADIUS = 1.0
# Dense frames enter the front end through voxel_downsample
# (Pipeline.preprocess; the mapping preset's dense-frame path): 0.2 m
# keeps ~20k of the 50k points and reproduces the pipeline's
# neighborhood sizes at the stage radii above.
FRONTEND_VOXEL = 0.2
# Descriptor keypoint set: ~8 % of the frame, matching the pipeline's
# operating density (quickstart: ~9 %).
KEYPOINT_VOXEL = 1.5
VOXEL_SIZE = 0.4
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


class ReplaySearcher:
    """Replays a recorded ``radius_batch`` call sequence.

    The first pass through a stage records real results (and their
    search cost); subsequent passes replay them in call order for
    free, so timing loops measure aggregation only.  Valid because the
    parity suite proves both paths issue identical query sequences.
    """

    def __init__(self, searcher):
        self._searcher = searcher
        self._recorded: list = []
        self._cursor: int | None = None
        self.search_s = 0.0

    @property
    def points(self):
        return self._searcher.points

    def radius_batch(self, queries, r, sort=False, self_indices=None):
        # ``self_indices`` (the reuse-cache hint) is accepted and
        # dropped: a replaying searcher must not fill or serve a cache.
        if self._cursor is None:
            start = time.perf_counter()
            result = self._searcher.radius_batch(queries, r, sort=sort)
            self.search_s += time.perf_counter() - start
            self._recorded.append(result)
            return result
        result = self._recorded[self._cursor]
        self._cursor += 1
        return result

    def replay(self):
        self._cursor = 0


def timed(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


# ----------------------------------------------------------------------
# Seed-loop adapters with stage signatures (for patching / timing).
# ----------------------------------------------------------------------


def seed_estimate_normals(cloud, searcher, config=None):
    config = config or NormalEstimationConfig()
    normals, curvature = ref_estimate_normals(cloud, searcher, config)
    result = cloud.copy()
    result.set_attribute("normals", normals)
    result.set_attribute("curvature", curvature)
    return result


def seed_harris_keypoints(cloud, searcher, radius=1.0, k=0.04, threshold=1e-4,
                          non_max_radius=None, response="eigen_product"):
    scores = ref_harris_scores_and_keypoints(
        cloud, searcher, radius, k=k, threshold=threshold, response=response
    )
    candidates = np.nonzero(scores > threshold)[0]
    if len(candidates) == 0:
        return candidates.astype(np.int64)
    return _non_max_suppress(
        cloud.points, scores, candidates, non_max_radius or radius
    )


def seed_voxel_downsample(self, voxel_size):
    if voxel_size <= 0:
        raise ValueError("voxel_size must be positive")
    if len(self) == 0:
        return self.copy()
    return self.select(ref_voxel_downsample_indices(self.points, voxel_size))


def seed_voxel_map_insert(points: np.ndarray, voxel_size: float) -> dict:
    """The seed ``VoxelMap._apply`` grouping loop, pinned."""
    keys = np.floor(points / voxel_size).astype(np.int64)
    order = np.lexsort((keys[:, 2], keys[:, 1], keys[:, 0]))
    sorted_keys = keys[order]
    sorted_points = points[order]
    boundaries = np.any(np.diff(sorted_keys, axis=0) != 0, axis=1)
    starts = np.concatenate(([0], np.nonzero(boundaries)[0] + 1))
    ends = np.concatenate((starts[1:], [len(order)]))
    voxels: dict = {}
    for start, end in zip(starts, ends):
        key = tuple(int(k) for k in sorted_keys[start])
        group_sum = sorted_points[start:end].sum(axis=0)
        count = end - start
        entry = voxels.get(key)
        if entry is None:
            voxels[key] = [group_sum, count]
        else:
            entry[0] = entry[0] + group_sum
            entry[1] = entry[1] + int(count)
    return voxels


@contextlib.contextmanager
def seed_frontend_patched():
    """Swap the seed loop implementations into the live pipeline."""
    import repro.registration.descriptors as descriptors_pkg
    import repro.registration.keypoints as keypoints_pkg
    import repro.registration.pipeline as pipeline_mod

    saved = (
        pipeline_mod.estimate_normals,
        keypoints_pkg.harris_keypoints,
        keypoints_pkg.sift_keypoints,
        descriptors_pkg.fpfh_descriptors,
        descriptors_pkg.shot_descriptors,
        descriptors_pkg.sc3d_descriptors,
        PointCloud.voxel_downsample,
    )
    try:
        pipeline_mod.estimate_normals = seed_estimate_normals
        keypoints_pkg.harris_keypoints = seed_harris_keypoints
        keypoints_pkg.sift_keypoints = ref_sift_keypoints
        descriptors_pkg.fpfh_descriptors = ref_fpfh_descriptors
        descriptors_pkg.shot_descriptors = ref_shot_descriptors
        descriptors_pkg.sc3d_descriptors = ref_sc3d_descriptors
        PointCloud.voxel_downsample = seed_voxel_downsample
        yield
    finally:
        (
            pipeline_mod.estimate_normals,
            keypoints_pkg.harris_keypoints,
            keypoints_pkg.sift_keypoints,
            descriptors_pkg.fpfh_descriptors,
            descriptors_pkg.shot_descriptors,
            descriptors_pkg.sc3d_descriptors,
            PointCloud.voxel_downsample,
        ) = saved


# ----------------------------------------------------------------------
# Per-stage aggregation timings.
# ----------------------------------------------------------------------


def bench_stages(cloud, repeats: int, assert_parity: bool,
                 frontend_voxel: float = FRONTEND_VOXEL) -> dict:
    raw_points = cloud.points
    frame = cloud.voxel_downsample(frontend_voxel)
    points = frame.points
    normal_cfg = NormalEstimationConfig(radius=NORMAL_RADIUS)

    def replaying():
        return ReplaySearcher(build_searcher(points, SearchConfig(backend="twostage")))

    stages: dict[str, dict] = {}

    def record(name, searcher, seed_fn, new_fn, check=None):
        seed_result = seed_fn()  # records the search results
        searcher.replay()
        new_result = new_fn()
        if assert_parity and check is not None:
            check(seed_result, new_result)
        searcher.replay()
        seed_s = timed(lambda: (searcher.replay(), seed_fn()), repeats)
        new_s = timed(lambda: (searcher.replay(), new_fn()), repeats)
        stages[name] = {
            "seed_s": round(seed_s, 4),
            "kernel_s": round(new_s, 4),
            "speedup": round(seed_s / new_s, 2),
            "search_s": round(searcher.search_s, 4),
        }
        return new_result

    searcher = replaying()
    normal_cloud = record(
        "normals",
        searcher,
        lambda: seed_estimate_normals(frame, searcher, normal_cfg),
        lambda: estimate_normals(frame, searcher, normal_cfg),
        check=lambda seed, new: _check_normals(seed, new),
    )

    searcher = replaying()
    record(
        "harris",
        searcher,
        lambda: seed_harris_keypoints(normal_cloud, searcher, radius=FEATURE_RADIUS),
        lambda: harris_keypoints(normal_cloud, searcher, radius=FEATURE_RADIUS),
        check=lambda seed, new: _check_equal_sets("harris", seed, new),
    )

    keypoints = uniform_keypoints(normal_cloud, voxel_size=KEYPOINT_VOXEL)
    for name, seed_fn, new_fn, exact in (
        ("fpfh", ref_fpfh_descriptors, fpfh_descriptors, True),
        ("shot", ref_shot_descriptors, shot_descriptors, False),
        ("sc3d", ref_sc3d_descriptors, sc3d_descriptors, False),
    ):
        searcher = replaying()
        record(
            name,
            searcher,
            lambda fn=seed_fn, s=searcher: fn(
                normal_cloud, s, keypoints, FEATURE_RADIUS
            ),
            lambda fn=new_fn, s=searcher: fn(
                normal_cloud, s, keypoints, FEATURE_RADIUS
            ),
            check=lambda seed, new, n=name, e=exact: _check_descriptors(
                n, seed, new, e
            ),
        )

    # Voxel ops have no search component; time them directly.
    seed_s = timed(lambda: seed_voxel_downsample(cloud, VOXEL_SIZE), repeats)
    new_s = timed(lambda: cloud.voxel_downsample(VOXEL_SIZE), repeats)
    if assert_parity:
        assert np.array_equal(
            seed_voxel_downsample(cloud, VOXEL_SIZE).points,
            cloud.voxel_downsample(VOXEL_SIZE).points,
        ), "voxel_downsample diverged"
    stages["voxel_downsample"] = {
        "seed_s": round(seed_s, 4),
        "kernel_s": round(new_s, 4),
        "speedup": round(seed_s / new_s, 2),
        "search_s": 0.0,
    }

    voxel_map_cfg = VoxelMapConfig(voxel_size=0.25)
    def insert_new():
        vmap = VoxelMap(voxel_map_cfg)
        vmap.insert(0, raw_points, np.eye(4))
        return vmap
    seed_s = timed(lambda: seed_voxel_map_insert(raw_points, 0.25), repeats)
    new_s = timed(insert_new, repeats)
    if assert_parity:
        reference = seed_voxel_map_insert(raw_points, 0.25)
        vmap = insert_new()
        assert vmap.n_voxels == len(reference), "voxel map binning diverged"
        assert vmap.n_points == len(raw_points)
    stages["voxel_map_insert"] = {
        "seed_s": round(seed_s, 4),
        "kernel_s": round(new_s, 4),
        "speedup": round(seed_s / new_s, 2),
        "search_s": 0.0,
    }
    return stages


def _check_normals(seed_cloud, new_cloud):
    np.testing.assert_allclose(
        new_cloud.get_attribute("curvature"),
        seed_cloud.get_attribute("curvature"),
        atol=1e-12,
    )
    difference = np.linalg.norm(new_cloud.normals - seed_cloud.normals, axis=1)
    flipped = np.linalg.norm(new_cloud.normals + seed_cloud.normals, axis=1)
    mismatched = int((np.minimum(difference, flipped) > 1e-6).sum())
    limit = max(1, len(difference) // 100)
    assert mismatched <= limit, (
        f"normals: {mismatched} rows beyond the degenerate tie rule"
    )


def _check_equal_sets(name, seed, new):
    assert np.array_equal(seed, new), f"{name}: keypoint sets diverged"


def _check_descriptors(name, seed, new, exact):
    assert_descriptors_match(name, new, seed, exact=exact)


# ----------------------------------------------------------------------
# End-to-end timings (seed via monkeypatched loops).
# ----------------------------------------------------------------------


def quickstart_pipeline() -> Pipeline:
    return Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(method="uniform", params={"voxel_size": 3.0}),
            icp=ICPConfig(
                rpce=RPCEConfig(max_distance=2.0),
                error_metric="point_to_plane",
                max_iterations=25,
            ),
        )
    )


def bench_end_to_end(repeats: int) -> dict:
    sequence = make_sequence(n_frames=2, seed=42, step=1.0)
    source, target, _ = sequence.pair(0)

    def register():
        quickstart_pipeline().register(source, target)

    with seed_frontend_patched():
        seed_s = timed(register, repeats)
    new_s = timed(register, repeats)

    streaming = make_sequence(n_frames=5, seed=7, step=1.0, yaw_rate=0.01)
    streaming_pipeline = PipelineConfig(
        keypoints=KeypointConfig(
            method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
        ),
        descriptor=DescriptorConfig(method="fpfh", radius=FEATURE_RADIUS),
        icp=ICPConfig(
            rpce=RPCEConfig(max_distance=2.0),
            error_metric="point_to_plane",
            max_iterations=15,
        ),
    )

    def stream():
        run_streaming_odometry(streaming, Pipeline(streaming_pipeline))

    with seed_frontend_patched():
        stream_seed_s = timed(stream, max(1, repeats - 1))
    stream_new_s = timed(stream, max(1, repeats - 1))
    pairs = len(streaming) - 1
    return {
        "quickstart_seed_s": round(seed_s, 3),
        "quickstart_kernel_s": round(new_s, 3),
        "quickstart_speedup": round(seed_s / new_s, 2),
        "streaming_pairs": pairs,
        "streaming_seed_s_per_pair": round(stream_seed_s / pairs, 3),
        "streaming_kernel_s_per_pair": round(stream_new_s / pairs, 3),
        "streaming_speedup": round(stream_seed_s / stream_new_s, 2),
    }


# ----------------------------------------------------------------------
# Reporting.
# ----------------------------------------------------------------------


def format_table(stages: dict, end_to_end: dict) -> str:
    lines = [
        "Front-end aggregation: seed per-point loops vs ragged CSR kernels",
        "(same prefetched neighbor lists on both sides; search cost shown",
        "for context — it is shared and unchanged)",
        "",
        f"{'stage':<18}{'seed':>10}{'kernels':>10}{'speedup':>9}{'search':>10}",
    ]
    for name, timing in stages.items():
        lines.append(
            f"{name:<18}{timing['seed_s']:>9.3f}s{timing['kernel_s']:>9.3f}s"
            f"{timing['speedup']:>8.1f}x{timing['search_s']:>9.3f}s"
        )
    combined = combined_speedup(stages)
    lines += [
        "",
        f"combined normals+descriptors: {combined:.1f}x",
        (
            "quickstart end-to-end: "
            f"{end_to_end['quickstart_seed_s']:.2f}s -> "
            f"{end_to_end['quickstart_kernel_s']:.2f}s "
            f"({end_to_end['quickstart_speedup']:.2f}x)"
        ),
        (
            "streaming odometry steady-state: "
            f"{end_to_end['streaming_seed_s_per_pair']:.3f}s/pair -> "
            f"{end_to_end['streaming_kernel_s_per_pair']:.3f}s/pair "
            f"({end_to_end['streaming_speedup']:.2f}x)"
        ),
    ]
    return "\n".join(lines)


def combined_speedup(stages: dict) -> float:
    names = ("normals", "fpfh", "shot", "sc3d")
    seed = sum(stages[n]["seed_s"] for n in names)
    new = sum(stages[n]["kernel_s"] for n in names)
    return seed / new


def write_results_table(text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "frontend_kernels.txt")
    with open(path, "w", encoding="utf-8") as f:
        f.write(text + "\n")
    print(f"\nwrote {path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="benchmarks/BENCH_frontend.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small-cloud parity + timing pass for CI (always asserts parity)",
    )
    args = parser.parse_args()

    if args.smoke:
        sequence = make_sequence(
            n_frames=1, seed=7, model=default_test_model(azimuth_steps=160, channels=16)
        )
        cloud = sequence.frames[0]
        stages = bench_stages(cloud, repeats=1, assert_parity=True)
        end_to_end = bench_end_to_end(repeats=1)
        table = format_table(stages, end_to_end)
        print(table)
        write_results_table(
            table + f"\n(smoke run: {len(cloud)}-point cloud, 1 repeat)"
        )
        print(f"\nsmoke OK: parity held on a {len(cloud)}-point cloud")
        return 0

    sequence = make_sequence(n_frames=1, seed=42, model=LidarModel())
    cloud = sequence.frames[0]
    print(f"benchmarking on a {len(cloud)}-point urban cloud")
    stages = bench_stages(cloud, repeats=args.repeats, assert_parity=True)
    end_to_end = bench_end_to_end(repeats=args.repeats)
    table = format_table(stages, end_to_end)
    print(table)
    write_results_table(table)

    combined = round(combined_speedup(stages), 2)
    payload = {
        "cloud_points": len(cloud),
        "frontend_points": len(cloud.voxel_downsample(FRONTEND_VOXEL)),
        "frontend_voxel": FRONTEND_VOXEL,
        "backend": "twostage",
        "normal_radius": NORMAL_RADIUS,
        "feature_radius": FEATURE_RADIUS,
        "keypoint_voxel": KEYPOINT_VOXEL,
        "repeats": args.repeats,
        "note": (
            "per-stage timings are aggregation-only (identical prefetched "
            "neighbor lists replayed to both paths); search_s is the shared "
            "batched search cost, unchanged by this PR; voxel kernels bin "
            "the raw cloud, search-consuming stages run on its "
            "voxel-downsampled result, mirroring Pipeline.preprocess on "
            "dense frames"
        ),
        "stages": stages,
        "end_to_end": end_to_end,
        "acceptance": {
            "criterion": (
                f"combined normals+descriptor aggregation >= {ACCEPT_STAGE_SPEEDUP}x "
                f"and quickstart end-to-end >= {ACCEPT_E2E_SPEEDUP}x"
            ),
            "combined_normals_descriptors": combined,
            "quickstart_end_to_end": end_to_end["quickstart_speedup"],
            "met": (
                combined >= ACCEPT_STAGE_SPEEDUP
                and end_to_end["quickstart_speedup"] >= ACCEPT_E2E_SPEEDUP
            ),
        },
    }
    write_bench(args.out, payload)
    print(f"wrote {args.out}; acceptance met: {payload['acceptance']['met']}")
    return 0 if payload["acceptance"]["met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
