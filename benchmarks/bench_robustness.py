"""Failure-aware streaming under injected degradation (robustness bench).

Two experiments, one payload:

**Adverse-scene recovery.**  Every scene of
:meth:`~repro.io.dataset.SceneSuite.adverse` runs three ways through the
full registration front end: its exact *clean twin*
(``replace(spec, degradation=None)``), the degraded sequence with the
legacy consume-everything driver (*baseline*), and the degraded sequence
with the health-gated recovery ladder (*ladder* — see
:class:`~repro.registration.odometry.RecoveryConfig`).  A scene counts
as *degraded* when the baseline ATE reaches 2x its clean twin's, and as
*recovered* when the ladder holds ATE within 1.3x clean there.  The
suite's two tripwire scenes are scored on their own criteria:
``urban_outage`` (a dropped frame the pipeline absorbs — the ladder
must not make it worse by bridging a healthy long-gap pair) and
``corridor`` (geometric degeneracy — every pair must carry the
``degenerate`` health flag; no recovery can conjure the missing
aperture, so it is excluded from the ATE criterion).

**False loop closure.**  The ``urban_loop`` circuit runs through the
full :class:`~repro.mapping.StreamingMapper` twice — stock quadratic
back end vs. DCS switchable loop constraints
(``PoseGraphConfig(loop_switch_phi=1.0)``) — then a deliberately wrong
closure (identity measurement between the two farthest-apart keyframes)
is injected into each pose graph and re-optimized.  The robust back end
must hold the ATE shift under 5%; the quadratic back end's shift is
recorded for contrast, along with the IRLS weight the robustification
assigned to the injected edge.

Run standalone to (re)record the baseline:

    PYTHONPATH=src python benchmarks/bench_robustness.py \
        [--frames 8] [--loop-frames 48] \
        [--out benchmarks/BENCH_robustness.json]

``--smoke`` runs the assertions without writing the JSON (the fast CI
sanity pass).  ``--check-floors PATH`` additionally guards the recorded
baseline: the scenario is fully deterministic (seeded scenes, seeded
degradation, seeded RANSAC), so ladder ATEs, the recovered-scene set,
the corridor flag count, and the false-closure shifts must match the
stored run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json

import numpy as np
from bench_stream_odometry import bench_pipeline
from record import write_bench

from repro.geometry import metrics
from repro.io import SceneSuite
from repro.mapping import (
    StreamingMapper,
    urban_loop_mapper_config,
    urban_loop_pipeline,
)
from repro.mapping.pose_graph import PoseGraphConfig
from repro.registration import run_streaming_odometry
from repro.registration.health import HealthConfig
from repro.registration.odometry import RecoveryConfig

# A scene is "degraded" when the baseline driver loses this much vs.
# the clean twin, and "recovered" when the ladder holds this bound.
DEGRADED_FACTOR = 2.0
RECOVERED_FACTOR = 1.3
MIN_RECOVERED_SCENES = 3
# The no-false-positive scene: the ladder may not cost more than this
# over the baseline where the baseline was already fine.
OUTAGE_MAX_OVERHEAD = 1.2
FALSE_CLOSURE_MAX_SHIFT = 0.05


def recovery_config() -> RecoveryConfig:
    """The bench's failure-aware configuration.

    Quality is gated on the *median* per-match ICP residual, not the
    RMSE: the RMSE is inflated by the reduced-overlap tail on pairs
    spanning a dropped frame (exactly the pairs that must NOT be
    bridged), while the median separates genuine corruption (noise
    bursts, clutter, blackout) from a healthy long-gap solve.  The
    motion-model tolerances flag surprises for a retry, but retries
    are re-judged on intrinsic quality only (see
    ``StreamingOdometry._recover``), so a verified genuine motion
    change is kept rather than bridged away.
    """
    return RecoveryConfig(
        health=HealthConfig(
            max_rmse=None,
            max_median_residual=0.25,
            prior_translation_tolerance=0.5,
            prior_rotation_tolerance_deg=10.0,
        )
    )


def run_adverse(n_frames: int) -> tuple[dict, dict]:
    """The per-scene clean/baseline/ladder comparison table."""
    suite = SceneSuite.adverse(n_frames=n_frames)
    recovery = recovery_config()
    scenes: dict[str, dict] = {}
    for name in suite.names:
        spec = suite.specs[name]
        sequence = suite.sequence(name)
        clean_sequence = (
            dataclasses.replace(spec, degradation=None).build(
                n_frames, suite.model
            )
            if spec.degradation
            else sequence
        )

        clean = run_streaming_odometry(clean_sequence, bench_pipeline())
        baseline = run_streaming_odometry(sequence, bench_pipeline())
        ladder = run_streaming_odometry(
            sequence, bench_pipeline(), recovery=recovery
        )

        ate_clean = metrics.absolute_trajectory_error(
            clean.trajectory, clean_sequence.poses
        )
        ate_baseline = metrics.absolute_trajectory_error(
            baseline.trajectory, sequence.poses
        )
        ate_ladder = metrics.absolute_trajectory_error(
            ladder.trajectory, sequence.poses
        )
        stats = ladder.stats
        degenerate_pairs = sum(
            1
            for health in stats.pair_health
            if health is not None and "degenerate" in health.reasons
        )
        scenes[name] = {
            "n_pairs": stats.n_pairs,
            "clean_ate_m": round(ate_clean, 4),
            "baseline_ate_m": round(ate_baseline, 4),
            "ladder_ate_m": round(ate_ladder, 4),
            "baseline_over_clean": round(ate_baseline / ate_clean, 3),
            "ladder_over_clean": round(ate_ladder / ate_clean, 3),
            "n_unhealthy": stats.n_unhealthy,
            "n_reseeded": stats.n_reseeded,
            "n_widened": stats.n_widened,
            "n_bridged": stats.n_bridged,
            "n_recovered_pairs": stats.n_recovered,
            "degenerate_pairs": degenerate_pairs,
            "failure_reasons": dict(sorted(stats.failure_counts.items())),
        }
        row = scenes[name]
        print(
            f"{name:<18} clean {row['clean_ate_m']:.3f} m, "
            f"baseline {row['baseline_over_clean']:.2f}x, "
            f"ladder {row['ladder_over_clean']:.2f}x "
            f"(unhealthy {row['n_unhealthy']}, bridged {row['n_bridged']}, "
            f"degenerate {row['degenerate_pairs']}/{row['n_pairs']})"
        )

    degraded = sorted(
        name
        for name, row in scenes.items()
        if name != "corridor"
        and row["baseline_over_clean"] >= DEGRADED_FACTOR
    )
    recovered = sorted(
        name
        for name in degraded
        if scenes[name]["ladder_over_clean"] <= RECOVERED_FACTOR
    )
    corridor = scenes["corridor"]
    outage = scenes["urban_outage"]
    summary = {
        "degraded_scenes": degraded,
        "recovered_scenes": recovered,
        "corridor_degenerate_rate": (
            f"{corridor['degenerate_pairs']}/{corridor['n_pairs']}"
        ),
        "outage_ladder_over_baseline": round(
            outage["ladder_ate_m"] / outage["baseline_ate_m"], 3
        ),
    }
    return scenes, summary


def run_false_closure(frames: int) -> dict:
    """Inject a wrong loop closure into quadratic vs. DCS back ends."""
    suite = SceneSuite.default(n_frames=frames)
    sequence = suite.sequence("urban_loop")
    backends = {
        "quadratic": PoseGraphConfig(),
        "dcs": PoseGraphConfig(loop_switch_phi=1.0),
    }
    out: dict[str, dict] = {}
    for backend_name, pose_graph in backends.items():
        mapper = StreamingMapper(
            urban_loop_pipeline(),
            urban_loop_mapper_config(pose_graph=pose_graph),
        )
        for frame in sequence.frames:
            mapper.push(frame)
        ate_honest = metrics.absolute_trajectory_error(
            mapper.trajectory(), sequence.poses
        )

        # The adversarial edge: an identity "closure" between the two
        # farthest-apart keyframes — the claim that opposite sides of
        # the circuit are the same place.
        poses = mapper.keyframe_poses()
        worst = (0.0, 0, 1)
        for a in range(len(poses)):
            for b in range(a + 5, len(poses)):
                gap = float(
                    np.linalg.norm(poses[b][:3, 3] - poses[a][:3, 3])
                )
                worst = max(worst, (gap, a, b))
        gap, a, b = worst
        false_index = len(mapper.graph.edges)
        mapper.graph.add_edge(
            a, b, np.eye(4),
            weight=mapper.config.loop_edge_weight, kind="loop",
        )
        # Re-optimize through the graph directly (rather than the
        # mapper's internal hook) to capture the PoseGraphResult — it
        # carries the IRLS weight the robustification assigned to the
        # injected edge — then publish the poses back the way the
        # mapper's own optimize step does.
        result = mapper.graph.optimize(
            mapper.config.pose_graph, new_edges=[false_index]
        )
        mapper._kf_poses = [np.array(pose) for pose in result.poses]
        ate_attacked = metrics.absolute_trajectory_error(
            mapper.trajectory(), sequence.poses
        )
        shift = abs(ate_attacked - ate_honest) / ate_honest
        out[backend_name] = {
            "ate_honest_m": round(ate_honest, 4),
            "ate_attacked_m": round(ate_attacked, 4),
            "ate_shift": round(shift, 4),
            "injected_edge": [a, b],
            "injected_edge_gap_m": round(gap, 2),
            "injected_edge_robust_weight": (
                round(result.edge_robust_weights[false_index], 6)
                if result.edge_robust_weights
                else None
            ),
            "n_true_closures": mapper.stats.n_loop_closures,
        }
        print(
            f"false closure [{backend_name:<9}] honest "
            f"{ate_honest:.3f} m -> attacked {ate_attacked:.3f} m "
            f"(shift {shift * 100:.1f}%)"
        )
    return out


def check_floors(result: dict, stored_path: str) -> list[str]:
    """Regression guard: the run is deterministic, so it must match."""
    with open(stored_path, encoding="utf-8") as f:
        stored = json.load(f)
    failures = []
    for name, row in stored["scenes"].items():
        current = result["scenes"].get(name)
        if current is None:
            failures.append(f"scene {name} missing from this run")
            continue
        if not np.isclose(
            current["ladder_ate_m"], row["ladder_ate_m"], rtol=0.01
        ):
            failures.append(
                f"{name} ladder ATE drifted: {current['ladder_ate_m']} m "
                f"vs recorded {row['ladder_ate_m']} m"
            )
    if result["summary"]["recovered_scenes"] != stored["summary"][
        "recovered_scenes"
    ]:
        failures.append(
            f"recovered scenes changed: "
            f"{result['summary']['recovered_scenes']} vs recorded "
            f"{stored['summary']['recovered_scenes']}"
        )
    if result["summary"]["corridor_degenerate_rate"] != stored["summary"][
        "corridor_degenerate_rate"
    ]:
        failures.append(
            f"corridor degeneracy rate changed: "
            f"{result['summary']['corridor_degenerate_rate']} vs recorded "
            f"{stored['summary']['corridor_degenerate_rate']}"
        )
    recorded_shift = stored["false_closure"]["dcs"]["ate_shift"]
    current_shift = result["false_closure"]["dcs"]["ate_shift"]
    if not np.isclose(current_shift, recorded_shift, rtol=0.05, atol=0.005):
        failures.append(
            f"DCS false-closure shift drifted: {current_shift} "
            f"vs recorded {recorded_shift}"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=8,
                        help="adverse-suite sequence length")
    parser.add_argument("--loop-frames", type=int, default=48,
                        help="urban_loop circuit length (2 laps)")
    parser.add_argument("--out", default="benchmarks/BENCH_robustness.json")
    parser.add_argument("--smoke", action="store_true",
                        help="assert acceptance without rewriting the JSON")
    parser.add_argument(
        "--check-floors",
        metavar="PATH",
        help="fail on drift against this recorded BENCH JSON",
    )
    args = parser.parse_args()

    scenes, summary = run_adverse(args.frames)
    false_closure = run_false_closure(args.loop_frames)

    corridor = scenes["corridor"]
    met = bool(
        len(summary["degraded_scenes"]) >= MIN_RECOVERED_SCENES
        and len(summary["recovered_scenes"]) >= MIN_RECOVERED_SCENES
        and summary["outage_ladder_over_baseline"] <= OUTAGE_MAX_OVERHEAD
        and corridor["degenerate_pairs"] == corridor["n_pairs"]
        and false_closure["dcs"]["ate_shift"] < FALSE_CLOSURE_MAX_SHIFT
    )
    result = {
        "pipeline": (
            "bench_stream_odometry front end; recovery health: median "
            "per-match residual <= 0.25 m, prior tolerance 0.5 m / 10 "
            "deg (retries re-judged without prior gates)"
        ),
        "acceptance": {
            "criterion": (
                f">= {MIN_RECOVERED_SCENES} scenes with baseline >= "
                f"{DEGRADED_FACTOR}x clean ATE recovered to <= "
                f"{RECOVERED_FACTOR}x by the ladder; outage ladder <= "
                f"{OUTAGE_MAX_OVERHEAD}x baseline (no false-positive "
                "bridging); corridor flagged degenerate on every pair; "
                f"DCS holds false-closure ATE shift < "
                f"{FALSE_CLOSURE_MAX_SHIFT:.0%}"
            ),
            "met": met,
        },
        "summary": summary,
        "scenes": scenes,
        "false_closure": false_closure,
    }

    if args.check_floors:
        failures = check_floors(result, args.check_floors)
        for failure in failures:
            print(f"FLOOR REGRESSION: {failure}")
        if failures:
            return 1
        print(f"floors OK against {args.check_floors}")
    if args.smoke:
        print(f"smoke OK: acceptance met: {met}")
        return 0 if met else 1

    write_bench(args.out, result)
    print(f"wrote {args.out}; acceptance met: {met}")
    return 0 if met else 1


if __name__ == "__main__":
    raise SystemExit(main())
