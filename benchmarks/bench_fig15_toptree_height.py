"""Fig. 15 — search time and energy as a function of top-tree height.

Short top-trees drown the back-end in redundant exhaustive search; tall
top-trees serialize everything in the front-end RUs.  The optimum sits
in between (the paper finds height 10 for 130 k-point KITTI frames —
i.e. leaf sets around n / 2^10 ~ 128).

Shape claims asserted: the time curve is U-shaped (both extremes are
slower than the interior optimum); the optimal height is interior; and
energy grows toward short top-trees (redundant work costs joules).
"""

import numpy as np
import pytest

from benchmarks.conftest import write_report
from repro.accel import registration_workload, sweep_top_height
from repro.profiling import line_plot

HEIGHTS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)


@pytest.fixture(scope="module")
def fig15_data(frame_pair):
    source, target, _ = frame_pair
    return sweep_top_height(
        source.points,
        target.points,
        heights=HEIGHTS,
        normal_radius=0.75,
        icp_iterations=2,
    ).results


def test_fig15_toptree_height(benchmark, fig15_data, frame_pair):
    source, target, _ = frame_pair
    benchmark.pedantic(
        lambda: registration_workload(
            source.points, target.points, icp_iterations=1,
            leaf_size=None, top_height=6,
        ),
        rounds=1, iterations=1,
    )
    results = fig15_data

    lines = [
        "Fig. 15 — search time and energy vs top-tree height "
        f"(~{len(source.points)}-point frames)",
        "",
        f"{'height':>7}{'leaf size':>11}{'time(us)':>11}{'energy(uJ)':>12}"
        f"{'bound':>10}",
    ]
    n = len(source.points)
    for height in HEIGHTS:
        result = results[height]
        lines.append(
            f"{height:>7}{n / 2**height:>11.0f}"
            f"{result.time_seconds * 1e6:>11.2f}"
            f"{result.energy_joules * 1e6:>12.2f}"
            f"{result.bound:>10}"
        )
    times = [results[h].time_seconds for h in HEIGHTS]
    optimum = HEIGHTS[int(np.argmin(times))]
    lines += [
        "",
        "search time vs height (log scale):",
        line_plot(
            list(HEIGHTS),
            [results[h].time_seconds * 1e6 for h in HEIGHTS],
            x_label="top-tree height",
            y_label="time (us)",
            log_y=True,
        ),
        "",
        f"optimal height here: {optimum} "
        f"(paper: 10 on 130k-point KITTI frames — i.e. leaf sets ~128;",
        f" at our {n}-point scale the equivalent knee sits lower)",
    ]
    write_report("fig15_toptree_height", "\n".join(lines))

    # U-shape: both extremes lose to the interior optimum.
    assert min(times) < times[0]
    assert min(times) < times[-1]
    # The optimum is interior, matching the paper's diminishing-returns
    # narrative.
    assert HEIGHTS[0] < optimum < HEIGHTS[-1]
    # Short top-trees are backend-bound, tall ones frontend-bound.
    assert results[HEIGHTS[0]].bound == "backend"
    assert results[HEIGHTS[-1]].bound == "frontend"
    # Energy rises toward very short top-trees (redundant node visits).
    assert results[1].energy_joules > results[optimum].energy_joules
