"""Fig. 13 — on-chip memory traffic distribution, Acc-2SKD vs Acc-KD.

The paper's points: with the two-stage tree, leaf-set streaming makes
the Points Buffer the dominant consumer, and the node cache absorbs a
meaningful share of it (53 % -> 35 % of traffic); with the canonical
tree there is almost no exhaustive search, so Points Buffer traffic is
proportionally smaller.

Shape claims asserted: the node cache redirects Points Buffer traffic
(never creates or destroys it); ACC-2SKD has a larger node-stream share
than ACC-KD; disabling the cache raises Points Buffer share and energy.
"""

import pytest

from benchmarks.conftest import write_report
from repro.accel import AcceleratorConfig, BackEndConfig, TigrisSimulator


@pytest.fixture(scope="module")
def fig13_data(dp7_workloads):
    simulator = TigrisSimulator()
    no_cache = TigrisSimulator(
        AcceleratorConfig(backend=BackEndConfig(node_cache_entries=0))
    )
    return {
        "ACC-2SKD": simulator.simulate_many(list(dp7_workloads["2skd"].values())),
        "ACC-KD": simulator.simulate_many(list(dp7_workloads["kd"].values())),
        "ACC-2SKD (no cache)": no_cache.simulate_many(
            list(dp7_workloads["2skd"].values())
        ),
    }


def test_fig13_memory_traffic(benchmark, fig13_data, dp7_workloads):
    simulator = TigrisSimulator()
    benchmark(
        lambda: simulator.simulate_many(list(dp7_workloads["2skd"].values())).traffic
    )

    lines = ["Fig. 13 — memory traffic distribution (%)", ""]
    distributions = {
        name: result.traffic.distribution() for name, result in fig13_data.items()
    }
    buffers = list(next(iter(distributions.values())).keys())
    header = f"{'buffer':<14}" + "".join(f"{name:>22}" for name in distributions)
    lines.append(header)
    for buffer_name in buffers:
        row = f"{buffer_name:<14}"
        for name in distributions:
            row += f"{100 * distributions[name].get(buffer_name, 0.0):>21.1f}%"
        lines.append(row)
    lines += [
        "",
        "(paper ACC-2SKD: Points Buf 53 % of traffic without the node",
        " cache, 35 % with it; ACC-KD has far less exhaustive-search",
        " traffic)",
    ]
    write_report("fig13_memory_traffic", "\n".join(lines))

    two_stage = distributions["ACC-2SKD"]
    canonical = distributions["ACC-KD"]
    uncached = distributions["ACC-2SKD (no cache)"]

    # The node cache absorbs part of the node-stream traffic.
    assert two_stage["Node Cache"] > 0
    assert uncached["Node Cache"] == 0.0
    assert uncached["Points Buf"] > two_stage["Points Buf"]
    # Node streams (points buffer + cache) are a bigger share of traffic
    # for the two-stage structure than for the canonical tree's
    # backend... measured on back-end stream traffic share.
    two_stage_stream = two_stage["Points Buf"] + two_stage["Node Cache"]
    canonical_stream = canonical["Points Buf"] + canonical["Node Cache"]
    assert two_stage_stream > canonical_stream
    # Cache conservation: stream totals match with and without cache.
    with_cache = fig13_data["ACC-2SKD"].traffic
    without_cache = fig13_data["ACC-2SKD (no cache)"].traffic
    assert (
        with_cache.points_buffer + with_cache.node_cache
        == without_cache.points_buffer + without_cache.node_cache
    )
    # Redirecting traffic to the small cache saves energy.
    assert (
        fig13_data["ACC-2SKD"].energy_joules
        < fig13_data["ACC-2SKD (no cache)"].energy_joules
    )
