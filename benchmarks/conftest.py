"""Shared fixtures for the figure-reproduction benchmarks.

Workload tracing is the expensive part (functional search over every
query), so traced workloads are session-scoped and shared across the
benchmark files.  Every bench writes its reproduced table/series to
``benchmarks/results/<name>.txt`` and prints it, so the paper-vs-measured
comparison in EXPERIMENTS.md can be regenerated from a single
``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_report(name: str, text: str) -> None:
    """Persist a figure reproduction and echo it to stdout."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as f:
        f.write(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")


@pytest.fixture(scope="session")
def frame_pair():
    """Sparse synthetic frame pair (fast; workload-shape benches)."""
    from repro.io import make_sequence

    sequence = make_sequence(n_frames=2, seed=3)
    return sequence.pair(0)


@pytest.fixture(scope="session")
def medium_sequence():
    """Medium-density sequence (~6.3k points/frame; accuracy benches)."""
    from repro.io import default_test_model, make_sequence

    model = default_test_model(azimuth_steps=270, channels=24)
    return make_sequence(n_frames=3, seed=3, model=model)


@pytest.fixture(scope="session")
def dse_report(medium_sequence):
    """DP1-DP8 evaluated over one medium-density pair (Fig. 3/4 input)."""
    from repro.dse import explore
    from repro.registration import DESIGN_POINT_NAMES, design_point

    configs = {name: design_point(name) for name in DESIGN_POINT_NAMES}
    return explore(configs, medium_sequence, max_pairs=1)


@pytest.fixture(scope="session")
def dp7_workloads(frame_pair):
    """DP7-flavoured search workloads (NE r=0.75) on all four structures.

    Keys: '2skd' (leaf ~128), 'kd' (leaf 1), 'approx' (leaf ~128 +
    leaders/followers at the paper's thresholds).
    """
    from repro.accel import registration_workload
    from repro.core import ApproximateSearchConfig

    source, target, _ = frame_pair
    kwargs = dict(normal_radius=0.75, icp_iterations=5)
    return {
        "2skd": registration_workload(
            source.points, target.points, leaf_size=128, **kwargs
        ),
        "kd": registration_workload(
            source.points, target.points, leaf_size=1, **kwargs
        ),
        "approx": registration_workload(
            source.points, target.points, leaf_size=128,
            approx=ApproximateSearchConfig(), **kwargs
        ),
    }


@pytest.fixture(scope="session")
def dp4_workloads(frame_pair):
    """DP4-flavoured workloads (tight NE r=0.30 — Sec. 6.3's contrast)."""
    from repro.accel import registration_workload
    from repro.core import ApproximateSearchConfig

    source, target, _ = frame_pair
    kwargs = dict(normal_radius=0.30, icp_iterations=5)
    return {
        "2skd": registration_workload(
            source.points, target.points, leaf_size=128, **kwargs
        ),
        "kd": registration_workload(
            source.points, target.points, leaf_size=1, **kwargs
        ),
        "approx": registration_workload(
            source.points, target.points, leaf_size=128,
            approx=ApproximateSearchConfig(), **kwargs
        ),
    }
