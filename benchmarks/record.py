"""Shared result/trace writing for the benchmark scripts.

Every standalone bench records its headline numbers as a
``benchmarks/BENCH_*.json`` file — a payload of measured quantities
plus an ``acceptance`` block with the criterion and whether this run
met it.  :func:`write_bench` is the single writer for those files, so
the on-disk format (two-space indent, trailing newline) is defined in
exactly one place and a future schema change touches one function, not
seven scripts.

Benches that support ``--trace out.json`` share the flag definition
(:func:`add_trace_argument`) and the export call
(:func:`write_trace_file`), which dispatches through
:func:`repro.telemetry.write_trace`: a ``.jsonl`` path gets the flat
run record, anything else the Chrome trace-event JSON (Perfetto /
``chrome://tracing`` loadable).  See ``benchmarks/README.md`` for both
schemas.

The benches run as scripts (``PYTHONPATH=src python
benchmarks/bench_x.py``), so they import this module as plain
``import record`` via the script directory.
"""

from __future__ import annotations

import json

__all__ = ["write_bench", "add_trace_argument", "write_trace_file"]


def write_bench(path: str, payload: dict) -> str:
    """Write a BENCH_*.json payload in the canonical on-disk format."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    return path


def add_trace_argument(parser) -> None:
    """Add the shared ``--trace PATH`` option to a bench's CLI."""
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "write a telemetry trace of the run: Chrome trace-event "
            "JSON (Perfetto-loadable), or the flat JSONL run record "
            "if PATH ends in .jsonl"
        ),
    )


def write_trace_file(
    tracer, path: str, profiler_totals: dict | None = None, meta: dict | None = None
) -> None:
    """Export a tracer through the extension-dispatching trace writer.

    ``profiler_totals`` (stage name -> seconds) embeds the
    StageProfiler view in Chrome traces so ``tools/check_trace.py``
    can cross-check the span tree against the legacy table.
    """
    from repro.telemetry import write_trace

    write_trace(tracer, path, profiler_totals=profiler_totals, meta=meta)
    print(f"wrote trace {path}")
