"""Fig. 12 — the architectural optimization ladder.

Acc-2SKD variants: no RU optimizations, +node bypassing, +node
forwarding, and the MQMN back-end alternative.

At the paper's 130 k-point scale the front-end contributes enough to
total time for the RU optimizations to show up end to end (+13.1 % and
+10.5 %); at our 2.8 k-point scale the two-stage workload is back-end
bound, so the ladder is reported twice: on the two-stage workload
(where MQSN/MQMN contrast lives) and on the front-end-bound canonical
workload (where the RU ladder is visible end to end).

Shape claims asserted: RU front-end cycles strictly improve down the
ladder, and end-to-end time improves on the FE-bound workload; MQMN is
at least as fast as the best MQSN variant but burns more node-stream
traffic and power (the paper's reason to adopt MQSN).
"""

import pytest

from benchmarks.conftest import write_report
from repro.accel import (
    AcceleratorConfig,
    BackEndConfig,
    FrontEndConfig,
    GPUModel,
    TigrisSimulator,
)

VARIANTS = {
    "No-Opt": AcceleratorConfig(
        frontend=FrontEndConfig(bypassing=False, forwarding=False)
    ),
    "Bypass": AcceleratorConfig(
        frontend=FrontEndConfig(bypassing=True, forwarding=False)
    ),
    "+Forward": AcceleratorConfig(
        frontend=FrontEndConfig(bypassing=True, forwarding=True)
    ),
    "MQMN": AcceleratorConfig(
        frontend=FrontEndConfig(bypassing=True, forwarding=True),
        backend=BackEndConfig(scheduling="mqmn"),
    ),
}


@pytest.fixture(scope="module")
def fig12_data(dp7_workloads):
    results = {}
    for structure in ("2skd", "kd"):
        workloads = list(dp7_workloads[structure].values())
        results[structure] = {
            name: TigrisSimulator(config).simulate_many(workloads)
            for name, config in VARIANTS.items()
        }
    base_kd_time = sum(
        GPUModel().run(w).time_seconds for w in dp7_workloads["kd"].values()
    )
    return base_kd_time, results


def test_fig12_optimizations(benchmark, fig12_data, dp7_workloads):
    workloads = list(dp7_workloads["2skd"].values())
    benchmark(lambda: TigrisSimulator(VARIANTS["No-Opt"]).simulate_many(workloads))

    base_kd_time, results = fig12_data
    lines = ["Fig. 12 — optimization ladder", ""]
    for structure, label in (("2skd", "Acc-2SKD workload"), ("kd", "Acc-KD workload (FE-bound)")):
        lines.append(f"--- {label} ---")
        lines.append(
            f"{'variant':<12}{'time':>12}{'FE cycles':>11}{'speedup':>10}"
            f"{'power':>9}{'energy':>11}"
        )
        for name, result in results[structure].items():
            lines.append(
                f"{name:<12}{result.time_seconds * 1e6:>10.1f}us"
                f"{result.frontend.cycles:>11,}"
                f"{base_kd_time / result.time_seconds:>9.1f}x"
                f"{result.power_watts:>8.1f}W"
                f"{result.energy_joules * 1e6:>9.1f}uJ"
            )
        lines.append("")
    lines += [
        "(paper on ACC-2SKD at 130k-point scale: bypassing +13.1 %,",
        " forwarding +10.5 % further; MQMN doubles MQSN's speed at ~4x",
        " the power / ~2x the energy.  At our scale the 2skd workload is",
        " backend-bound, so the RU ladder shows in FE cycles and on the",
        " FE-bound canonical workload.)",
    ]
    write_report("fig12_optimizations", "\n".join(lines))

    two_stage = results["2skd"]
    canonical = results["kd"]
    # RU ladder: front-end cycles strictly improve on both workloads.
    for variants in (two_stage, canonical):
        assert (
            variants["No-Opt"].frontend.cycles
            > variants["Bypass"].frontend.cycles
            > variants["+Forward"].frontend.cycles
        )
    # On the FE-bound workload the ladder shows up end to end.
    assert (
        canonical["No-Opt"].time_seconds
        > canonical["Bypass"].time_seconds
        > canonical["+Forward"].time_seconds
    )
    # MQMN: at least as fast as the best MQSN variant...
    assert two_stage["MQMN"].time_seconds <= two_stage["+Forward"].time_seconds
    # ...but more node-stream traffic, hence worse power and energy.
    mqmn_traffic = (
        two_stage["MQMN"].traffic.points_buffer
        + two_stage["MQMN"].traffic.node_cache
    )
    mqsn_traffic = (
        two_stage["+Forward"].traffic.points_buffer
        + two_stage["+Forward"].traffic.node_cache
    )
    assert mqmn_traffic > mqsn_traffic
    assert two_stage["MQMN"].power_watts > two_stage["+Forward"].power_watts
    assert two_stage["MQMN"].energy_joules > two_stage["+Forward"].energy_joules
