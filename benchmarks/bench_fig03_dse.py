"""Fig. 3 — design-space exploration: accuracy vs time scatter with the
Pareto frontiers annotated.

The paper sweeps algorithmic/parametric knobs over KITTI and plots
translational error (Fig. 3a) and rotational error (Fig. 3b) against
normalized execution time.  Here the eight named design points DP1-DP8
run over a medium-density synthetic pair.  The *shape* claims checked:
a real trade-off space exists (no single config dominates), the cheap
end is faster, and the accuracy-oriented points reach low errors.
"""

from benchmarks.conftest import write_report
from repro.profiling import scatter_plot
from repro.registration import design_point


def test_fig03_design_space(benchmark, dse_report, medium_sequence):
    # Benchmark one representative design point end to end.
    from repro.registration import Pipeline

    source, target, _ = medium_sequence.pair(0)
    pipeline = Pipeline(design_point("DP2"))
    benchmark.pedantic(
        lambda: pipeline.register(source, target), rounds=1, iterations=1
    )

    lines = [
        "Fig. 3 — accuracy vs time across DP1-DP8 (1 medium-density pair)",
        "(paper: trans 2.1-3.6 %, rot 0.02-0.05 deg/m, time normalized "
        "to 1500 ms on KITTI; shapes comparable, magnitudes scaled)",
        "",
        dse_report.summary(),
        "",
        f"translational frontier: "
        f"{[r.name for r in dse_report.translational_frontier]}",
        f"rotational frontier:    "
        f"{[r.name for r in dse_report.rotational_frontier]}",
        "",
        "Fig. 3a (translational error vs time; markers are DP digits):",
        scatter_plot(
            [
                (r.time, 100 * r.translational_error, r.name[2:])
                for r in dse_report.results
            ],
            x_label="time (s)",
            y_label="trans err (%)",
        ),
    ]
    write_report("fig03_dse", "\n".join(lines))

    results = {r.name: r for r in dse_report.results}
    # Shape claim 1: a genuine trade-off space — both frontiers have
    # more than one point (no universally dominant configuration).
    assert len(dse_report.translational_frontier) >= 2
    # Shape claim 2: the accuracy-oriented DP7 beats the cheap DP1 on
    # translational error.
    assert (
        results["DP7"].translational_error < results["DP1"].translational_error
    )
    # Shape claim 3: the cheap DP1 runs faster than the expensive DP8.
    assert results["DP1"].time < results["DP8"].time
