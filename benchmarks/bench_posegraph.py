"""Pose-graph solver scaling: per-call optimize cost vs graph size.

Streams synthetic multi-lap circle graphs (noisy odometry chain, one
loop closure per revisited station, plus a ring-closing edge at the end
of each lap) through :class:`~repro.mapping.PoseGraph` exactly the way
:class:`~repro.mapping.StreamingMapper` drives it: every closure
triggers ``optimize(new_edges=...)``.

The headline table is per-call optimize time as the keyframe count
grows across 1 / 2 / 4 / 8 laps.  The acceptance criterion is that the
incremental path keeps per-call cost **sublinear in keyframe count**:
on the 8-lap scene, the median incremental-mode call during the last
lap (8x the nodes) must stay under 2x the lap-4 median (4x the nodes)
— doubling the trajectory must not double the cost of a local update.
The periodic full-batch fallback (every ``relinearize_interval``
calls) is O(graph) by design; its amortized contribution is visible in
the table's ``mean_call_ms`` column rather than hidden from the
criterion's numerator.  A batch-only replay of the same schedule is
timed alongside for the speedup column (up to 4 laps; the batch-only
driver is exactly the dense-cost regime this PR retires, so the 8-lap
column would just be slow).

Run standalone to (re)record the baseline:

    PYTHONPATH=src python benchmarks/bench_posegraph.py \
        [--per-lap 30] [--out benchmarks/BENCH_posegraph.json]

``--smoke`` runs the assertions without writing the JSON (the fast CI
sanity pass).
"""

from __future__ import annotations

import argparse
import time

import numpy as np
from record import write_bench

from repro.geometry import se3
from repro.mapping import PoseGraph

SUBLINEAR_BOUND = 2.0  # lap-8 / lap-4 per-call time, at 2x the keyframes


def circle_truth(n: int, radius: float = 5.0) -> list[np.ndarray]:
    return [
        se3.make_transform(
            se3.rot_z(2 * np.pi * i / n),
            [
                radius * np.cos(2 * np.pi * i / n),
                radius * np.sin(2 * np.pi * i / n),
                0,
            ],
        )
        for i in range(n)
    ]


def build_schedule(laps: int, per_lap: int, scale: float = 0.02, seed: int = 7):
    """Noisy multi-lap circle as a streaming closure schedule.

    Returns ``(measurements, loops)``: ``measurements[i-1]`` is node
    ``i``'s odometry edge; ``loops[i]`` lists ``(a, i, relative)`` loop
    closures discovered when node ``i`` arrives — one against the same
    station a lap earlier for every revisit, plus a single ring-closing
    edge back to node 0 at the end of the first lap (so a single lap
    still closes its loop).  Only the first lap closes the ring: a
    ring edge per lap would turn node 0 into a hub of degree O(laps)
    and let every hop-radius neighborhood fan out across the whole
    graph, hiding exactly the locality this bench measures.
    """
    rng = np.random.default_rng(seed)
    one_lap = circle_truth(per_lap)
    truth = [one_lap[i % per_lap] for i in range(laps * per_lap)]
    measurements = [
        se3.compose(
            se3.compose(se3.invert(truth[i - 1]), truth[i]),
            se3.exp(rng.normal(scale=scale, size=6)),
        )
        for i in range(1, len(truth))
    ]
    loops: dict[int, list[tuple[int, int, np.ndarray]]] = {}
    for i in range(per_lap, len(truth)):
        loops.setdefault(i, []).append(
            (i - per_lap, i, se3.compose(se3.invert(truth[i - per_lap]), truth[i]))
        )
    last = per_lap - 1
    loops.setdefault(last, []).append(
        (last, 0, se3.compose(se3.invert(truth[last]), truth[0]))
    )
    return measurements, loops


def replay(measurements, loops, incremental: bool):
    """Stream the schedule, timing every optimize call.

    Returns ``(graph, calls)`` where each call record carries the node
    count at call time, the wall milliseconds, and the solver mode.
    """
    graph = PoseGraph()
    graph.add_node(se3.identity())
    n_seen_edges = 0
    calls = []
    for i in range(1, len(measurements) + 1):
        graph.add_node(se3.compose(graph.nodes[i - 1], measurements[i - 1]))
        graph.add_edge(i - 1, i, measurements[i - 1])
        if i not in loops:
            continue
        for a, b, relative in loops[i]:
            graph.add_edge(a, b, relative, kind="loop")
        new_edges = (
            list(range(n_seen_edges, len(graph.edges))) if incremental else None
        )
        start = time.perf_counter()
        result = graph.optimize(new_edges=new_edges)
        elapsed_ms = 1e3 * (time.perf_counter() - start)
        n_seen_edges = len(graph.edges)
        calls.append(
            {
                "n_nodes": len(graph.nodes),
                "ms": elapsed_ms,
                "mode": result.mode,
                "n_active": result.n_active_nodes,
            }
        )
    return graph, calls


def mean_ms(calls) -> float:
    return float(np.mean([call["ms"] for call in calls])) if calls else 0.0


def bench(per_lap: int) -> dict:
    table = []
    final_calls = []
    for laps in (1, 2, 4, 8):
        measurements, loops = build_schedule(laps, per_lap)
        _, inc_calls = replay(measurements, loops, incremental=True)
        if laps <= 4:
            start = time.perf_counter()
            replay(measurements, loops, incremental=False)
            batch_seconds = time.perf_counter() - start
        else:
            batch_seconds = None
        inc_seconds = sum(call["ms"] for call in inc_calls) / 1e3
        incremental_only = [
            call for call in inc_calls if call["mode"] == "incremental"
        ]
        row = {
            "laps": laps,
            "n_keyframes": laps * per_lap,
            "n_optimize_calls": len(inc_calls),
            "incremental_calls": len(incremental_only),
            "mean_call_ms": round(mean_ms(inc_calls), 2),
            "mean_incremental_call_ms": round(mean_ms(incremental_only), 2),
            "max_active_nodes": max(
                (call["n_active"] for call in incremental_only), default=0
            ),
            "total_optimize_s": round(inc_seconds, 3),
            "batch_only_total_s": (
                None if batch_seconds is None else round(batch_seconds, 3)
            ),
            "speedup_vs_batch": (
                None
                if batch_seconds is None or not inc_seconds
                else round(batch_seconds / inc_seconds, 2)
            ),
        }
        table.append(row)
        if laps == 8:
            final_calls = inc_calls
        batch_note = (
            "batch-only not timed"
            if batch_seconds is None
            else f"batch-only {batch_seconds:.2f}s"
        )
        print(
            f"{laps} lap(s) x {per_lap} keyframes/lap: "
            f"{row['n_optimize_calls']} calls, mean {row['mean_call_ms']:.1f} ms "
            f"({row['incremental_calls']} incremental), "
            f"total {row['total_optimize_s']:.2f}s vs {batch_note}"
        )

    # Sublinearity on the 8-lap scene: the incremental path's per-call
    # cost over the last lap (graph at ~8x nodes) vs during lap 4 (~4x
    # nodes).  Median over incremental-mode calls — the claim under
    # test is the locality of the hop-radius update.
    def lap_median(lo_lap: int, hi_lap: int) -> float:
        window = [
            c["ms"]
            for c in final_calls
            if c["mode"] == "incremental"
            and lo_lap * per_lap < c["n_nodes"] <= hi_lap * per_lap
        ]
        return float(np.median(window)) if window else 0.0

    early, late = lap_median(3, 4), lap_median(7, 8)
    growth = late / early if early else float("inf")
    met = growth < SUBLINEAR_BOUND
    print(
        f"incremental per-call growth lap 4 -> lap 8: "
        f"{early:.1f} ms -> {late:.1f} ms "
        f"({growth:.2f}x at 2x the keyframes); sublinear: {met}"
    )
    return {
        "scene": (
            f"synthetic circle, {per_lap} keyframes/lap, one closure per "
            "revisit + first-lap ring-closing edge, noise scale 0.02"
        ),
        "scaling": table,
        "per_call_growth_lap4_to_lap8": round(growth, 3),
        "acceptance": {
            "criterion": (
                "per-call optimize cost sublinear in keyframe count: "
                "median incremental-mode call ms over the 8th lap (8x "
                f"nodes) under {SUBLINEAR_BOUND}x the lap-4 median (4x "
                "nodes); periodic batch fallback reported in mean_call_ms"
            ),
            "met": bool(met),
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--per-lap", type=int, default=30,
                        help="keyframes per lap of the synthetic circle")
    parser.add_argument("--out", default="benchmarks/BENCH_posegraph.json")
    parser.add_argument("--smoke", action="store_true",
                        help="assert acceptance without rewriting the JSON")
    args = parser.parse_args()

    result = bench(args.per_lap)
    met = result["acceptance"]["met"]
    if args.smoke:
        print(f"smoke OK: acceptance met: {met}")
        return 0 if met else 1

    write_bench(args.out, result)
    print(f"wrote {args.out}; acceptance met: {met}")
    return 0 if met else 1


if __name__ == "__main__":
    raise SystemExit(main())
