"""Shared-artifact + parallel DSE vs the sequential seed explorer.

Runs the default sweep (8 configurations; 2 front-end fingerprint
groups of 4 — only ``normal_radius`` is a front-end knob) over the
four-scene :class:`~repro.io.dataset.SceneSuite` through three
exploration paths:

``seed``
    ``explore(cached=False)`` — every configuration registers every
    pair through the monolithic ``Pipeline.register``, re-preprocessing
    both frames each time: (configs x pairs x 2) preprocesses.
``cached``
    ``explore(cached=True)`` (the default) — per (fingerprint, scene,
    frame) preprocessing runs once and is shared across the group and
    across consecutive pairs: (groups x frames) preprocesses.
``parallel``
    ``cached`` plus ``workers=N`` process sharding of the
    (scene, group) tasks.

All three produce bit-identical errors/transforms/stats (asserted here
before any timing is recorded; ``tests/dse/test_parity.py`` enforces
the same bitwise).  The acceptance bar is the cached path's wall-clock
speedup: >= 1.5x over seed on the default sweep.

Run standalone to (re)record the baseline:

    PYTHONPATH=src python benchmarks/bench_dse_parallel.py \
        [--frames 3] [--workers N] [--out benchmarks/BENCH_dse.json]

``--smoke`` runs a 2-config, 1-scene parity+speed sanity pass (the
fast CI job wires this in).
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np
from record import write_bench

from repro.dse import explore, fingerprint_groups
from repro.dse.grid import default_sweep, parameter_grid
from repro.io import SceneSuite, default_test_model

ACCEPTANCE_SPEEDUP = 1.5


def assert_parity(seed_report, candidate_report, label: str) -> None:
    """Bitwise identity of everything except wall-clock."""
    assert seed_report.scenes == candidate_report.scenes
    for scene in seed_report.scenes:
        for a, b in zip(
            seed_report.scene_results[scene],
            candidate_report.scene_results[scene],
        ):
            if (
                a.name != b.name
                or a.translational_error != b.translational_error
                or a.rotational_error != b.rotational_error
                or a.detail["pair_stats"] != b.detail["pair_stats"]
                or any(
                    not np.array_equal(x, y)
                    for x, y in zip(
                        a.detail["relatives"], b.detail["relatives"]
                    )
                )
            ):
                raise AssertionError(
                    f"{label}: {scene}/{a.name} diverged from the seed path"
                )


def run_paths(configs, suite, workers: int) -> dict:
    """Time the three exploration paths and verify parity first."""
    for _ in suite.items():  # synthesize scenes outside the timings
        pass

    start = time.perf_counter()
    seed_report = explore(configs, suite, cached=False)
    seed_s = time.perf_counter() - start

    start = time.perf_counter()
    cached_report = explore(configs, suite, cached=True)
    cached_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel_report = explore(configs, suite, cached=True, workers=workers)
    parallel_s = time.perf_counter() - start

    assert_parity(seed_report, cached_report, "cached")
    assert_parity(seed_report, parallel_report, "parallel")

    return {
        "seed_s": round(seed_s, 2),
        "cached_s": round(cached_s, 2),
        "parallel_s": round(parallel_s, 2),
        "speedup_cached": round(seed_s / cached_s, 2),
        "speedup_parallel": round(seed_s / parallel_s, 2),
        "bit_identical": True,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=3,
                        help="frames per scene (pairs = frames - 1)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: cpu count)")
    parser.add_argument("--out", default="benchmarks/BENCH_dse.json")
    parser.add_argument("--smoke", action="store_true",
                        help="2 configs, 1 scene: CI parity/speed sanity pass")
    args = parser.parse_args()
    cpus = os.cpu_count() or 1
    # At least 2 so the parallel leg genuinely exercises the process
    # pool (on a single-CPU host that adds overhead, not speedup — the
    # recorded note says so).
    workers = args.workers or max(2, min(4, cpus))

    if args.smoke:
        # One fingerprint group of two configs over one small scene:
        # exercises cache sharing, process sharding, and parity.
        grid = dict(parameter_grid(default_sweep()))
        first_group = next(iter(fingerprint_groups(grid).values()))
        configs = dict(list(first_group.items())[:2])
        assert len(fingerprint_groups(configs)) == 1, "smoke wants one group"
        suite = SceneSuite.default(
            n_frames=2,
            model=default_test_model(azimuth_steps=120, channels=12),
            scenes=("urban",),
        )
        timings = run_paths(configs, suite, workers=2)
        print(f"smoke OK: {timings}")
        return 0

    configs = dict(parameter_grid(default_sweep()))
    groups = fingerprint_groups(configs)
    # The four classic odometry workloads; urban_loop belongs to the
    # mapping bench (closed circuits measure drift, not sweep cost).
    suite = SceneSuite.default(
        n_frames=args.frames,
        model=default_test_model(),
        scenes=("urban", "highway", "intersection", "room"),
    )
    timings = run_paths(configs, suite, workers=workers)
    print(
        f"{len(configs)} configs / {len(groups)} front-end groups x "
        f"{len(suite)} scenes x {args.frames - 1} pairs: "
        f"seed {timings['seed_s']:.1f}s, cached {timings['cached_s']:.1f}s "
        f"({timings['speedup_cached']:.2f}x), parallel x{workers} "
        f"{timings['parallel_s']:.1f}s ({timings['speedup_parallel']:.2f}x)"
    )

    payload = {
        "sweep": "default_sweep: normal_radius x icp_metric x icp_max_iterations",
        "configs": len(configs),
        "fingerprint_groups": len(groups),
        "scenes": list(suite.names),
        "frames_per_scene": args.frames,
        "workers": workers,
        "cpu_count": cpus,
        **({
            "note": (
                "single-CPU host: process sharding cannot add wall-clock "
                "gains here, recorded for transparency"
            )
        } if cpus == 1 else {}),
        **timings,
        "acceptance": {
            "criterion": (
                f"cached explore >= {ACCEPTANCE_SPEEDUP}x seed wall-clock "
                "on the default sweep (>= 2 configs per fingerprint group)"
            ),
            "speedup_cached": timings["speedup_cached"],
            "met": timings["speedup_cached"] >= ACCEPTANCE_SPEEDUP,
        },
    }
    write_bench(args.out, payload)
    print(f"wrote {args.out}; acceptance met: {payload['acceptance']['met']}")
    return 0 if payload["acceptance"]["met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
