"""Scalar vs batched stage times per backend (the batch-layer bench).

Measures, on a 50k-point synthetic cloud, the wall time of one
stage-sized query set issued three ways through
:class:`~repro.registration.search.NeighborSearcher`:

``seed_scalar``
    The per-query implementation the repository shipped before the batch
    query layer (reimplemented here as a pinned reference): einsum
    brute-force scans with fresh allocations per call, and per-query
    tree traversals, each through the scalar wrapper.
``scalar``
    The current scalar methods called in a Python loop (these now share
    the batch kernels, so they are already faster than the seed).
``batched``
    One ``nn_batch`` / ``radius_batch`` / ``knn_batch`` call.

The headline ``speedup`` is ``seed_scalar / batched`` — the stage-level
gain this refactor delivers — with ``speedup_vs_scalar`` (same-kernel
comparison, pure batching benefit) recorded alongside.

Run standalone to (re)record the baseline:

    PYTHONPATH=src python benchmarks/bench_batch_speedup.py \
        [--points 50000] [--queries 1000] [--out benchmarks/BENCH_batch.json]
"""

from __future__ import annotations

import argparse
import time

import numpy as np
from record import write_bench

from repro.registration.search import SearchConfig, build_searcher

BACKENDS = ("bruteforce", "twostage", "canonical", "approximate")
RADIUS = 1.0
K = 8


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return sorted(times)[len(times) // 2]


def _seed_scalar_ops(points: np.ndarray):
    """The pre-batch-layer per-query brute-force implementation, pinned
    so the bench keeps measuring against the same reference."""

    def nn(query):
        diff = points - query
        sq = np.einsum("ij,ij->i", diff, diff)
        best = int(np.argmin(sq))
        return best, float(np.sqrt(sq[best]))

    def radius(query, r):
        diff = points - query
        sq = np.einsum("ij,ij->i", diff, diff)
        mask = sq <= r * r
        return np.nonzero(mask)[0].astype(np.int64), np.sqrt(sq[mask])

    def knn(query, k):
        diff = points - query
        sq = np.einsum("ij,ij->i", diff, diff)
        k = min(k, len(sq))
        top = np.argpartition(sq, k - 1)[:k] if k < len(sq) else np.arange(len(sq))
        order = top[np.argsort(sq[top], kind="stable")]
        return order.astype(np.int64), np.sqrt(sq[order])

    return nn, radius, knn


def bench_backend(backend: str, points: np.ndarray, queries: np.ndarray, repeats: int):
    searcher = build_searcher(points, SearchConfig(backend=backend))
    results = {}

    if backend == "bruteforce":
        seed_nn, seed_radius, seed_knn = _seed_scalar_ops(points)
        seed_ops = {
            "nn": lambda: [seed_nn(q) for q in queries],
            "radius": lambda: [seed_radius(q, RADIUS) for q in queries],
            "knn": lambda: [seed_knn(q, K) for q in queries],
        }
    else:
        # Tree traversals are unchanged since the seed modulo the shared
        # tie-rule arithmetic; the scalar loop is the seed behavior.
        seed_ops = {
            "nn": lambda: [searcher.nn(q) for q in queries],
            "radius": lambda: [searcher.radius(q, RADIUS) for q in queries],
            "knn": lambda: [searcher.knn(q, K) for q in queries],
        }

    scalar_ops = {
        "nn": lambda: [searcher.nn(q) for q in queries],
        "radius": lambda: [searcher.radius(q, RADIUS) for q in queries],
        "knn": lambda: [searcher.knn(q, K) for q in queries],
    }
    batch_ops = {
        "nn": lambda: searcher.nn_batch(queries),
        "radius": lambda: searcher.radius_batch(queries, RADIUS),
        "knn": lambda: searcher.knn_batch(queries, K),
    }

    for op in ("nn", "radius", "knn"):
        seed_s = _median_time(seed_ops[op], repeats)
        scalar_s = _median_time(scalar_ops[op], repeats)
        batch_s = _median_time(batch_ops[op], repeats)
        results[op] = {
            "seed_scalar_s": round(seed_s, 4),
            "scalar_s": round(scalar_s, 4),
            "batched_s": round(batch_s, 4),
            "speedup": round(seed_s / batch_s, 2),
            "speedup_vs_scalar": round(scalar_s / batch_s, 2),
        }
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=50_000)
    parser.add_argument("--queries", type=int, default=2000)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", default=None)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    # A box roughly matching LiDAR frame extents at ~50k returns.
    points = rng.uniform(-60.0, 60.0, size=(args.points, 3))
    points[:, 2] = np.abs(points[:, 2]) * 0.05  # mostly-planar ground
    queries = points[rng.integers(0, len(points), size=args.queries)]
    queries = queries + rng.normal(size=queries.shape) * 0.2

    report = {
        "n_points": args.points,
        "n_queries": args.queries,
        "radius": RADIUS,
        "k": K,
        "backends": {},
    }
    for backend in BACKENDS:
        report["backends"][backend] = bench_backend(
            backend, points, queries, args.repeats
        )
        for op, row in report["backends"][backend].items():
            print(
                f"{backend:<12} {op:<7} seed {row['seed_scalar_s']:>8.3f}s  "
                f"scalar {row['scalar_s']:>8.3f}s  batched {row['batched_s']:>8.3f}s"
                f"  speedup {row['speedup']:>5.2f}x"
                f"  (vs scalar {row['speedup_vs_scalar']:>5.2f}x)"
            )

    if args.out:
        write_bench(args.out, report)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
