"""Fig. 4 — where registration time goes, for the Pareto design points.

Fig. 4a: per-stage time distribution across the seven key stages.
Fig. 4b: the cross-cutting split — KD-tree search vs KD-tree
construction vs other operations.

The paper's headline observation, which this bench asserts: no single
*stage* dominates consistently, but KD-tree *search* contributes 50-85 %
of total time across every design point.
"""

from benchmarks.conftest import write_report
from repro.registration import STAGE_NAMES


def test_fig04_stage_breakdown(benchmark, dse_report):
    by_name = {r.name: r for r in dse_report.results}
    names = sorted(by_name)

    # Benchmark the bookkeeping (the expensive DSE ran in the fixture).
    benchmark(lambda: [by_name[n].detail["profiler"].kdtree_fractions() for n in names])

    lines = ["Fig. 4a — per-stage time distribution (% of total)", ""]
    header = f"{'stage':<26}" + "".join(f"{name:>8}" for name in names)
    lines.append(header)
    for stage in STAGE_NAMES:
        row = f"{stage:<26}"
        for name in names:
            fraction = by_name[name].detail["stage_fractions"].get(stage, 0.0)
            row += f"{100 * fraction:>7.1f}%"
        lines.append(row)

    lines += ["", "Fig. 4b — KD-tree search / construction / other (% of total)", ""]
    lines.append(f"{'design point':<14}{'search':>9}{'constr':>9}{'other':>9}")
    search_fractions = {}
    for name in names:
        fractions = by_name[name].detail["kdtree_fractions"]
        search_fractions[name] = fractions["search"]
        lines.append(
            f"{name:<14}{100 * fractions['search']:>8.1f}%"
            f"{100 * fractions['construction']:>8.1f}%"
            f"{100 * fractions['other']:>8.1f}%"
        )
    lines.append("")
    lines.append("(paper: KD-tree search consistently 50-85 % of total time)")
    lines.append(
        "(front-end stages run the PR-5 vectorized ragged kernels; the "
        "aggregation speedup shrinks every stage's non-search band "
        "uniformly, so the stage *proportions* above still reproduce "
        "the paper's shape)"
    )
    write_report("fig04_stage_breakdown", "\n".join(lines))

    # Shape claim 1 (Fig. 4b): KD-tree search dominates in EVERY design
    # point — the universal-bottleneck observation that motivates Tigris.
    for name, fraction in search_fractions.items():
        assert fraction > 0.40, f"{name}: search only {fraction:.0%}"

    # Shape claim 2 (Fig. 4a): no single stage is the bottleneck across
    # all design points (the paper's argument against per-stage
    # accelerators).  The heaviest stage must differ somewhere.
    heaviest = set()
    for name in names:
        fractions = by_name[name].detail["stage_fractions"]
        heaviest.add(max(fractions, key=fractions.get))
    assert len(heaviest) >= 2 or "RPCE" in heaviest
