"""Fig. 6 — the redundancy the two-stage KD-tree trades for parallelism.

Fig. 6a: redundancy ratio (nodes visited by the two-stage structure over
the canonical structure) as the leaf-set size grows from 1 to 32, for
both radius search and NN search.
Fig. 6b: the absolute number of nodes visited.

Shape claims asserted: redundancy grows monotonically with leaf-set
size; NN redundancy grows faster than radius redundancy (the paper's
explanation: NN benefits more from pruning, so it suffers more from
exhaustive leaf scans); radius search visits more nodes in absolute
terms.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_report
from repro.accel import build_workload

LEAF_SIZES = (1, 2, 4, 8, 16, 32)
RADIUS = 0.75


@pytest.fixture(scope="module")
def redundancy_data(frame_pair):
    source, target, _ = frame_pair
    queries = source.points[::3]  # every 3rd point as query
    target_points = target.points

    visits = {"nn": {}, "radius": {}}
    for leaf_size in LEAF_SIZES:
        nn = build_workload(
            target_points, queries, kind="nn", leaf_size=leaf_size
        )
        radius = build_workload(
            target_points, queries, kind="radius", radius=RADIUS,
            leaf_size=leaf_size,
        )
        visits["nn"][leaf_size] = nn.total_nodes_visited
        visits["radius"][leaf_size] = radius.total_nodes_visited
    return visits


def test_fig06_redundancy(benchmark, redundancy_data, frame_pair):
    source, target, _ = frame_pair
    queries = source.points[::3]
    benchmark.pedantic(
        lambda: build_workload(target.points, queries[:200], kind="nn",
                               leaf_size=16),
        rounds=1, iterations=1,
    )

    visits = redundancy_data
    base_nn = visits["nn"][1]
    base_radius = visits["radius"][1]

    lines = [
        "Fig. 6a — redundancy ratio vs leaf-set size "
        "(two-stage visits / canonical visits)",
        "",
        f"{'leaf size':>10}{'NN search':>12}{'radius search':>15}",
    ]
    nn_ratio = {}
    radius_ratio = {}
    for leaf_size in LEAF_SIZES:
        nn_ratio[leaf_size] = visits["nn"][leaf_size] / base_nn
        radius_ratio[leaf_size] = visits["radius"][leaf_size] / base_radius
        lines.append(
            f"{leaf_size:>10}{nn_ratio[leaf_size]:>11.2f}x"
            f"{radius_ratio[leaf_size]:>14.2f}x"
        )
    lines += [
        "",
        "Fig. 6b — absolute nodes visited",
        "",
        f"{'leaf size':>10}{'NN search':>12}{'radius search':>15}",
    ]
    for leaf_size in LEAF_SIZES:
        lines.append(
            f"{leaf_size:>10}{visits['nn'][leaf_size]:>12,}"
            f"{visits['radius'][leaf_size]:>15,}"
        )
    lines += [
        "",
        "(paper at leaf 32: ~35x NN redundancy, ~3x radius redundancy;",
        " radius visits more nodes in absolute terms throughout)",
    ]
    write_report("fig06_redundancy", "\n".join(lines))

    # Monotone growth of redundancy with leaf-set size.
    nn_series = [nn_ratio[s] for s in LEAF_SIZES]
    radius_series = [radius_ratio[s] for s in LEAF_SIZES]
    assert all(np.diff(nn_series) > -1e-9)
    assert all(np.diff(radius_series) > -1e-9)
    # NN redundancy grows faster than radius redundancy.
    assert nn_ratio[32] > radius_ratio[32]
    # Radius search visits more nodes in absolute terms at every size.
    for leaf_size in LEAF_SIZES:
        assert visits["radius"][leaf_size] > visits["nn"][leaf_size]
