"""Sec. 6.3 — energy breakdown of Acc-2SKD on the DP4 workload.

The paper reports, for DP4: PE 53.7 %, SRAM read 34.8 %, SRAM write
8.0 %, leakage 3.3 %, DRAM 0.2 %.  Asserted shape: the same ordering —
PE largest, then SRAM read, then SRAM write, leakage small, DRAM
smallest — and Acc-KD costing more energy than Acc-2SKD (paper: 2.5x).
"""

import pytest

from benchmarks.conftest import write_report
from repro.accel import TigrisSimulator

PAPER = {
    "PE": 53.7,
    "SRAM read": 34.8,
    "SRAM write": 8.0,
    "Leakage": 3.3,
    "DRAM": 0.2,
}


@pytest.fixture(scope="module")
def breakdown_data(dp4_workloads):
    simulator = TigrisSimulator()
    return {
        "Acc-2SKD": simulator.simulate_many(list(dp4_workloads["2skd"].values())),
        "Acc-KD": simulator.simulate_many(list(dp4_workloads["kd"].values())),
    }


def test_sec63_energy_breakdown(benchmark, breakdown_data, dp4_workloads):
    simulator = TigrisSimulator()
    benchmark(
        lambda: simulator.simulate_many(
            list(dp4_workloads["2skd"].values())
        ).energy.fractions()
    )
    two_stage = breakdown_data["Acc-2SKD"]
    canonical = breakdown_data["Acc-KD"]
    fractions = two_stage.energy.fractions()

    lines = [
        "Sec. 6.3 — DP4 energy breakdown, Acc-2SKD",
        "",
        f"{'category':<12}{'measured':>10}{'paper':>8}",
    ]
    for category, paper_pct in PAPER.items():
        lines.append(
            f"{category:<12}{100 * fractions[category]:>9.1f}%"
            f"{paper_pct:>7.1f}%"
        )
    lines += [
        "",
        f"total energy Acc-2SKD: {two_stage.energy_joules * 1e6:.1f} uJ",
        f"total energy Acc-KD:   {canonical.energy_joules * 1e6:.1f} uJ "
        f"({canonical.energy_joules / two_stage.energy_joules:.2f}x; paper: 2.5x)",
    ]
    write_report("sec63_energy_breakdown", "\n".join(lines))

    # Ordering matches the paper's breakdown.
    assert (
        fractions["PE"]
        > fractions["SRAM read"]
        > fractions["SRAM write"]
        > fractions["DRAM"]
    )
    assert fractions["PE"] > 0.4
    assert fractions["Leakage"] < 0.15
    assert fractions["DRAM"] < 0.05
    # Acc-KD trades time for energy: slower front-end-bound execution
    # burns more total energy than Acc-2SKD (paper: 2.5x).
    assert canonical.energy_joules > two_stage.energy_joules
