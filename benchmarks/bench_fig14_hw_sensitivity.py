"""Fig. 14 — sensitivity to hardware resources: RU / SU / PE sweep.

The paper sweeps all three unit counts over {16, 32, 64, 128} (64
configurations), showing (a) the performance/power frontier and (b)
that with few RUs the front-end bottlenecks the design, so adding
back-end capacity barely helps — and that the chosen 64/32/32 point
sits at the knee.

Shape claims asserted: performance improves with resources while power
rises; the front-end-bound regime exists at low RU counts; the paper's
design point is within ~20 % of the best configuration's time while
using a fraction of the peak hardware.
"""

import pytest

from benchmarks.conftest import write_report
from repro.accel import AcceleratorConfig, TigrisSimulator, sweep_hardware
from repro.profiling import scatter_plot

SWEEP = (16, 32, 64, 128)


@pytest.fixture(scope="module")
def fig14_data(dp7_workloads):
    workloads = list(dp7_workloads["2skd"].values())
    return sweep_hardware(
        workloads, ru_values=SWEEP, su_values=SWEEP, pe_values=SWEEP
    ).results


def test_fig14_hw_sensitivity(benchmark, fig14_data, dp7_workloads):
    workloads = list(dp7_workloads["2skd"].values())
    benchmark.pedantic(
        lambda: TigrisSimulator(
            AcceleratorConfig(n_recursion_units=16, n_search_units=16, pes_per_su=16)
        ).simulate_many(workloads),
        rounds=1,
        iterations=1,
    )
    results = fig14_data

    lines = [
        "Fig. 14 — search time (us) and power (W) across RU/SU/PE configs",
        "",
        f"{'RU':>4}{'SU':>5}{'PE':>5}{'time(us)':>11}{'power(W)':>10}",
    ]
    for key in sorted(results):
        result = results[key]
        marker = "  <- paper design point" if key == (64, 32, 32) else ""
        lines.append(
            f"{key[0]:>4}{key[1]:>5}{key[2]:>5}"
            f"{result.time_seconds * 1e6:>11.2f}{result.power_watts:>10.2f}"
            + marker
        )
    lines += [
        "",
        "Fig. 14a (power vs time; marker = RU count's first digit):",
        scatter_plot(
            [
                (result.time_seconds * 1e6, result.power_watts, str(key[0]))
                for key, result in results.items()
            ],
            x_label="time (us)",
            y_label="power (W)",
        ),
    ]
    write_report("fig14_hw_sensitivity", "\n".join(lines))

    # Performance scales with resources; power rises with them.
    smallest = results[(16, 16, 16)]
    largest = results[(128, 128, 128)]
    assert largest.time_seconds < smallest.time_seconds
    assert largest.power_watts > smallest.power_watts

    # Front-end-bound regime: with 16 RUs, growing the back-end from
    # (32, 32) to (128, 128) helps performance only marginally.
    low_ru_small_be = results[(16, 32, 32)].time_seconds
    low_ru_big_be = results[(16, 128, 128)].time_seconds
    assert low_ru_big_be > 0.7 * low_ru_small_be

    # The paper's design point sits at the knee: close to the best time
    # at a fraction of the peak resources.
    best_time = min(r.time_seconds for r in results.values())
    design = results[(64, 32, 32)]
    assert design.time_seconds < 2.0 * best_time
