"""Sec. 6.3 — the approximate search's compute reduction and accuracy.

The paper, at thd = 1.2 m (NN) / 40 % of radius, reports: 72.8 % fewer
node visits (41.6 points from NN + 31.2 from radius search), ~11.1x
KD-tree-search speedup over exact Acc-2SKD on DP7, and essentially no
accuracy impact (rotational error +0.05 deg/m on DP4, +0.0006 on DP7).

Our frames are sparser than KITTI, so the radius-stage reduction is
density-limited (followers need a leader within thd); the NN stage cuts
deeply.  Asserted: substantial overall node reduction, accelerator
speedup from the approximation, and bounded end-to-end accuracy change.
"""

import pytest

from benchmarks.conftest import write_report
from repro.accel import TigrisSimulator
from repro.geometry import metrics
from repro.registration import (
    ICPConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    SearchConfig,
)


def total_nodes(workloads):
    return sum(
        w.total_nodes_visited + w.total_leader_checks for w in workloads.values()
    )


@pytest.fixture(scope="module")
def accuracy_data(medium_sequence):
    """Exact vs approximate end-to-end registration accuracy."""
    source, target, gt = medium_sequence.pair(0)

    def run(backend):
        config = PipelineConfig(
            icp=ICPConfig(
                rpce=RPCEConfig(max_distance=2.0),
                error_metric="point_to_plane",
                max_iterations=20,
            ),
            search=SearchConfig(backend=backend, leaf_size=128),
            skip_initial_estimation=True,
        )
        result = Pipeline(config).register(source, target)
        return metrics.pair_errors(result.transformation, gt)

    return run("twostage"), run("approximate")


def test_sec63_approximate(benchmark, dp7_workloads, accuracy_data):
    simulator = TigrisSimulator()
    approx_result = benchmark(
        lambda: simulator.simulate_many(list(dp7_workloads["approx"].values()))
    )
    exact_result = simulator.simulate_many(list(dp7_workloads["2skd"].values()))

    exact_nodes = total_nodes(dp7_workloads["2skd"])
    approx_nodes = total_nodes(dp7_workloads["approx"])
    reduction = 1.0 - approx_nodes / exact_nodes

    rpce_exact = dp7_workloads["2skd"]["RPCE"].total_nodes_visited
    rpce_approx = (
        dp7_workloads["approx"]["RPCE"].total_nodes_visited
        + dp7_workloads["approx"]["RPCE"].total_leader_checks
    )
    (exact_rot, exact_trans), (approx_rot, approx_trans) = accuracy_data

    lines = [
        "Sec. 6.3 — approximate KD-tree search (thd = 1.2 m NN, 40 % radius)",
        "",
        f"node visits, exact Acc-2SKD:   {exact_nodes:>12,}",
        f"node visits, approximate:      {approx_nodes:>12,}",
        f"compute reduction:             {100 * reduction:>11.1f} %"
        "   (paper: 72.8 % at KITTI density)",
        f"  NN (RPCE) stage reduction:   "
        f"{100 * (1 - rpce_approx / rpce_exact):>11.1f} %",
        "",
        f"search time, exact:            {exact_result.time_seconds * 1e6:>10.1f} us",
        f"search time, approximate:      {approx_result.time_seconds * 1e6:>10.1f} us",
        f"speedup from approximation:    "
        f"{exact_result.time_seconds / approx_result.time_seconds:>11.2f}x"
        "   (paper: 11.1x at KITTI scale, where the",
        "                                            back-end dominates far more)",
        f"energy, exact / approx:        "
        f"{exact_result.energy_joules * 1e6:.1f} / "
        f"{approx_result.energy_joules * 1e6:.1f} uJ",
        "",
        "end-to-end accuracy (medium-density pair, ICP-only pipeline):",
        f"  exact:       {exact_trans:.3f} m / {exact_rot:.3f} deg",
        f"  approximate: {approx_trans:.3f} m / {approx_rot:.3f} deg",
        "(paper: approximation has no translational impact and adds",
        " <= 0.05 deg/m rotational error)",
    ]
    write_report("sec63_approximate", "\n".join(lines))

    # Substantial compute reduction, dominated by the NN stage.
    assert reduction > 0.15
    assert rpce_approx < 0.6 * rpce_exact
    # The reduction translates into accelerator time and energy.
    assert approx_result.time_seconds <= exact_result.time_seconds
    assert approx_result.energy_joules < exact_result.energy_joules
    # End-to-end accuracy is preserved within a small margin.
    assert approx_trans < exact_trans + 0.2
    assert approx_rot < exact_rot + 1.0
