"""Sec. 6.2 — area analysis of the Tigris accelerator.

The paper reports, for 64 RUs / 32 SUs / 32 PEs per SU at 16 nm:
8.38 mm^2 of SRAM (53.8 %) and 7.19 mm^2 of combinational logic
(46.2 %), the latter dominated by FP32 euclidean-distance datapaths.

This bench reproduces the split and sweeps the area model across the
Fig. 14 hardware configurations.
"""

import pytest

from benchmarks.conftest import write_report
from repro.accel import AcceleratorConfig, estimate_area


def test_sec62_area(benchmark):
    config = AcceleratorConfig()
    report = benchmark(lambda: estimate_area(config))

    lines = [
        "Sec. 6.2 — area analysis (64 RU / 32 SU / 32 PE, 16 nm)",
        "",
        f"{'component':<12}{'mm^2':>8}{'share':>9}",
        f"{'SRAM':<12}{report.sram_mm2:>8.2f}{100 * report.sram_fraction:>8.1f}%",
        f"{'logic':<12}{report.logic_mm2:>8.2f}{100 * report.logic_fraction:>8.1f}%",
        f"{'total':<12}{report.total_mm2:>8.2f}",
        "",
        "(paper: 8.38 mm^2 SRAM / 7.19 mm^2 logic = 53.8 % / 46.2 %)",
        "",
        "area across hardware configurations (RU, SU, PE -> mm^2):",
    ]
    for units in ((16, 16, 16), (64, 32, 32), (128, 128, 128)):
        swept = estimate_area(
            AcceleratorConfig(
                n_recursion_units=units[0],
                n_search_units=units[1],
                pes_per_su=units[2],
            )
        )
        lines.append(
            f"  {units}: {swept.total_mm2:.2f} "
            f"(SRAM {swept.sram_mm2:.2f} + logic {swept.logic_mm2:.2f})"
        )
    write_report("sec62_area", "\n".join(lines))

    assert report.sram_mm2 == pytest.approx(8.38, rel=0.01)
    assert report.logic_mm2 == pytest.approx(7.19, rel=0.01)
    assert report.sram_fraction == pytest.approx(0.538, abs=0.01)
