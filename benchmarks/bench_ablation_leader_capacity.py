"""Ablation — leader-buffer capacity (paper Sec. 5.3 caps it at 16).

The paper notes that capping the Leader Buffer *improves accuracy*
(overflow queries are searched exactly) at a modest work cost.  This
bench sweeps the capacity and measures both effects: distance-compute
work and NN accuracy versus the exact search.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_report
from repro.core import ApproximateSearch, ApproximateSearchConfig, TwoStageKDTree
from repro.kdtree import SearchStats, bruteforce

CAPACITIES = (1, 4, 16, 64, 256)


@pytest.fixture(scope="module")
def capacity_data(frame_pair):
    source, target, _ = frame_pair
    tree = TwoStageKDTree.from_leaf_size(target.points, 128)
    queries = source.points[::2]
    exact_nn = bruteforce.nn_batch(target.points, queries)[0]

    results = {}
    for capacity in CAPACITIES:
        stats = SearchStats()
        search = ApproximateSearch(
            tree, ApproximateSearchConfig(leader_capacity=capacity)
        )
        indices, _ = search.nn_batch(queries, stats)
        accuracy = float(np.mean(indices == exact_nn))
        results[capacity] = (stats.total_work, accuracy, search.total_leaders)
    return results, len(queries)


def test_ablation_leader_capacity(benchmark, capacity_data, frame_pair):
    source, target, _ = frame_pair
    tree = TwoStageKDTree.from_leaf_size(target.points, 128)
    benchmark.pedantic(
        lambda: ApproximateSearch(tree).nn_batch(source.points[::8]),
        rounds=1, iterations=1,
    )
    results, n_queries = capacity_data

    lines = [
        "Ablation — leader-buffer capacity (NN search, leaf sets ~128)",
        "",
        f"{'capacity':>9}{'work/query':>12}{'exact-NN rate':>15}{'leaders':>9}",
    ]
    for capacity in CAPACITIES:
        work, accuracy, leaders = results[capacity]
        lines.append(
            f"{capacity:>9}{work / n_queries:>12.1f}{100 * accuracy:>14.1f}%"
            f"{leaders:>9}"
        )
    lines += [
        "",
        "(paper caps at 16: larger buffers add leader-check work;",
        " smaller buffers force more exact searches — better accuracy,",
        " more work)",
    ]
    write_report("ablation_leader_capacity", "\n".join(lines))

    # Smaller buffers are more accurate (more exact fallbacks)...
    assert results[1][1] >= results[256][1]
    # ...but cost more work per query.
    assert results[1][0] > results[256][0] * 0.9
    # Leader counts respect the cap (per leaf set).
    for capacity in CAPACITIES:
        assert results[capacity][2] <= capacity * tree.n_leaf_sets
