"""Design-space exploration across the DP1-DP8 design points
(paper Sec. 3.2, Fig. 3/4, scaled to laptop runtimes).

Evaluates a subset of the Pareto design points over one or more
synthetic scenes through the shared-artifact explorer (configurations
with equal front-end fingerprints reuse each frame's preprocessing;
``--workers`` shards (scene, fingerprint-group) tasks over processes).
Prints the accuracy/time scatter with the Pareto frontier annotated
(Fig. 3), the per-scene frontier table when several scenes run, the
per-stage time distribution (Fig. 4a), and the KD-tree vs
everything-else split (Fig. 4b).

Run:  python examples/design_space_exploration.py \
          [--points DP1,DP2,DP4,DP7] [--scene urban|...|all] \
          [--workers N] [--max-pairs 1]
"""

import argparse

from repro.dse import explore
from repro.io import SceneSuite, default_test_model
from repro.registration import DESIGN_POINT_NAMES, design_point


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--points",
        default="DP1,DP2,DP4,DP7",
        help="comma-separated design point names (default: a fast subset)",
    )
    parser.add_argument(
        "--scene",
        default="urban",
        help="scene name(s), comma-separated, or 'all' for the full suite "
        "(urban, highway, intersection, room, urban_loop)",
    )
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width for the exploration")
    parser.add_argument("--max-pairs", type=int, default=1,
                        help="frame pairs evaluated per scene")
    args = parser.parse_args()

    names = [name.strip() for name in args.points.split(",")]
    for name in names:
        if name not in DESIGN_POINT_NAMES:
            raise SystemExit(f"unknown design point {name!r}")

    suite = SceneSuite.default(
        n_frames=args.max_pairs + 1,
        model=default_test_model(),
        scenes=None if args.scene == "all" else tuple(
            scene.strip() for scene in args.scene.split(",")
        ),
    )
    print(
        f"evaluating {names} over {args.max_pairs} pair(s) of "
        f"{', '.join(suite.names)} (workers={args.workers})\n"
    )

    configs = {name: design_point(name) for name in names}
    report = explore(
        configs, suite, max_pairs=args.max_pairs, workers=args.workers
    )

    print("Fig. 3 — accuracy vs time (T/R mark the Pareto frontiers):")
    print(report.summary())

    if len(report.scenes) > 1:
        print("\nPer-scene frontier table (time/trans err, T/R per scene):")
        print(report.scene_summary())

    # Stage breakdowns come from per-scene points (aggregates carry no
    # profiler); use the first scene as the Fig. 4 exhibit.
    exhibit_scene = report.scenes[0]
    exhibit = {r.name: r for r in report.scene_results[exhibit_scene]}
    print(f"\nFig. 4a — per-stage time distribution ({exhibit_scene}):")
    header = f"{'stage':<26}" + "".join(f"{name:>8}" for name in names)
    print(header)
    stage_names = list(exhibit[names[0]].detail["stage_fractions"].keys())
    for stage in stage_names:
        row = f"{stage:<26}"
        for name in names:
            fraction = exhibit[name].detail["stage_fractions"].get(stage, 0.0)
            row += f"{100 * fraction:>7.1f}%"
        print(row)

    print(f"\nFig. 4b — KD-tree search vs construction vs other ({exhibit_scene}):")
    print(f"{'design point':<14}{'search':>9}{'constr':>9}{'other':>9}")
    for name in names:
        fractions = exhibit[name].detail["kdtree_fractions"]
        print(
            f"{name:<14}{100 * fractions['search']:>8.1f}%"
            f"{100 * fractions['construction']:>8.1f}%"
            f"{100 * fractions['other']:>8.1f}%"
        )
    print(
        "\n(The paper's observation: KD-tree search stays the dominant "
        "kernel across very different design points.)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
