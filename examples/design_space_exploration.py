"""Design-space exploration across the DP1-DP8 design points
(paper Sec. 3.2, Fig. 3/4, scaled to laptop runtimes).

Evaluates a subset of the Pareto design points over a short synthetic
sequence, prints the accuracy/time scatter with the Pareto frontier
annotated (Fig. 3), the per-stage time distribution (Fig. 4a), and the
KD-tree vs everything-else split (Fig. 4b).

Run:  python examples/design_space_exploration.py [--points DP1,DP2,DP4,DP7]
"""

import argparse

from repro.dse import explore
from repro.io import make_sequence
from repro.registration import DESIGN_POINT_NAMES, design_point


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--points",
        default="DP1,DP2,DP4,DP7",
        help="comma-separated design point names (default: a fast subset)",
    )
    parser.add_argument("--pairs", type=int, default=1)
    args = parser.parse_args()

    names = [name.strip() for name in args.points.split(",")]
    for name in names:
        if name not in DESIGN_POINT_NAMES:
            raise SystemExit(f"unknown design point {name!r}")

    sequence = make_sequence(n_frames=args.pairs + 1, seed=3)
    print(
        f"evaluating {names} over {args.pairs} frame pair(s) "
        f"of ~{len(sequence.frames[0])} points\n"
    )

    configs = {name: design_point(name) for name in names}
    report = explore(configs, sequence, max_pairs=args.pairs)

    print("Fig. 3 — accuracy vs time (T/R mark the Pareto frontiers):")
    print(report.summary())

    print("\nFig. 4a — per-stage time distribution:")
    header = f"{'stage':<26}" + "".join(f"{name:>8}" for name in names)
    print(header)
    stage_names = list(
        report.results[0].detail["stage_fractions"].keys()
    )
    by_name = {r.name: r for r in report.results}
    for stage in stage_names:
        row = f"{stage:<26}"
        for name in names:
            fraction = by_name[name].detail["stage_fractions"].get(stage, 0.0)
            row += f"{100 * fraction:>7.1f}%"
        print(row)

    print("\nFig. 4b — KD-tree search vs construction vs other:")
    print(f"{'design point':<14}{'search':>9}{'constr':>9}{'other':>9}")
    for name in names:
        fractions = by_name[name].detail["kdtree_fractions"]
        print(
            f"{name:<14}{100 * fractions['search']:>8.1f}%"
            f"{100 * fractions['construction']:>8.1f}%"
            f"{100 * fractions['other']:>8.1f}%"
        )
    print(
        "\n(The paper's observation: KD-tree search stays the dominant "
        "kernel across very different design points.)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
