"""3D reconstruction: fuse a scanned sequence into one global map
(paper Sec. 2.2: "registration is key to 3D reconstruction, where a set
of frames are aligned against one another and merged together").

An indoor room is scanned from several poses; frames are registered
pairwise, poses chained, and all frames merged into a single global
cloud, which is voxel-compacted and written out as a PCD file.

Run:  python examples/mapping.py [--out map.pcd]
"""

import argparse

import numpy as np

from repro.geometry import metrics, se3
from repro.io import LidarModel, PointCloud, room_scene, scan, write_pcd
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
)


def scan_room(n_frames: int = 4):
    """Scan a room while rotating in place at its center."""
    scene = room_scene(size=10.0, height=3.0)
    model = LidarModel(
        channels=24,
        azimuth_steps=240,
        vertical_fov_deg=(-30.0, 25.0),
        max_range=30.0,
        range_noise_std=0.01,
        dropout_rate=0.0,
    )
    rng = np.random.default_rng(1)
    poses = [
        se3.make_transform(se3.rot_z(i * np.radians(12.0)), [0.3 * i, 0.1 * i, 1.4])
        for i in range(n_frames)
    ]
    frames = [scan(scene, pose, model, rng) for pose in poses]
    return frames, poses


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="room_map.pcd")
    parser.add_argument("--frames", type=int, default=4)
    args = parser.parse_args()

    frames, gt_poses = scan_room(args.frames)
    print(f"scanned {len(frames)} frames, ~{len(frames[0])} points each")

    pipeline = Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(method="uniform", params={"voxel_size": 1.5}),
            icp=ICPConfig(
                rpce=RPCEConfig(max_distance=0.8),
                error_metric="point_to_plane",
                max_iterations=40,
                transformation_epsilon=1e-7,
            ),
            skip_initial_estimation=True,
        )
    )

    # Register each frame against its predecessor; chain into map poses.
    relatives = []
    for index in range(len(frames) - 1):
        result = pipeline.register(frames[index + 1], frames[index])
        relatives.append(result.transformation)
        gt_rel = se3.compose(se3.invert(gt_poses[index]), gt_poses[index + 1])
        rot_err, trans_err = metrics.pair_errors(result.transformation, gt_rel)
        print(
            f"frame {index + 1} -> {index}: {result.icp}  "
            f"(err {rot_err:.2f} deg / {trans_err * 100:.1f} cm)"
        )

    estimated_poses = metrics.trajectory_from_relative(relatives)

    # Merge everything into frame 0's coordinate system.
    global_map = PointCloud(frames[0].points.copy())
    for frame, pose in zip(frames[1:], estimated_poses[1:]):
        global_map = global_map.concatenate(frame.transformed(pose))
    compact = global_map.voxel_downsample(0.05)
    print(
        f"\nglobal map: {len(global_map)} raw points -> "
        f"{len(compact)} after 5 cm voxel compaction"
    )
    print(f"map extent: {np.round(compact.extent(), 2)} m (room is 10x10x3)")

    write_pcd(args.out, compact)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
