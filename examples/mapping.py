"""Streaming SLAM: loop-closed 3D reconstruction of a scanned circuit
(paper Sec. 2.2: "registration is key to 3D reconstruction, where a set
of frames are aligned against one another and merged together").

A LiDAR drives laps around a synthetic urban intersection while a
:class:`~repro.mapping.StreamingMapper` ingests the frames one at a
time: streaming odometry registers each frame against its predecessor,
keyframes retain the preprocessed artifacts, revisits are detected by
pose proximity and verified through the registration pipeline, the
SE(3) pose graph redistributes the accumulated drift, and an
incremental voxel map fuses everything into one global cloud, which is
written out as a PCD file.

The printed drift table compares the open-loop odometry trajectory
(chained pairwise registrations — what ``--no-loop-closure`` leaves you
with) against the loop-closed one.

Run:  python examples/mapping.py [--out map.pcd] [--no-loop-closure]
                                 [--trace out.json]

``--trace out.json`` records the run through the telemetry layer and
writes a Chrome trace (Perfetto / ``chrome://tracing``; a ``.jsonl``
path gets the flat run record): one span per frame with odometry
pairs, loop-closure verifications, pose-graph solves and map
re-anchoring nested inside.
"""

import argparse

import numpy as np

from repro.geometry import metrics
from repro.io import (
    default_test_model,
    intersection_scene,
    loop_trajectory,
    make_sequence,
    write_pcd,
)
from repro.mapping import (
    StreamingMapper,
    urban_loop_mapper_config,
    urban_loop_pipeline,
)
from repro.profiling import StageProfiler
from repro.telemetry import Tracer, write_trace


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="urban_loop_map.pcd")
    parser.add_argument("--frames", type=int, default=48,
                        help="frames over the whole circuit")
    parser.add_argument("--laps", type=int, default=2,
                        help="laps around the circuit (keep ~24 frames/lap)")
    parser.add_argument("--no-loop-closure", action="store_true",
                        help="open-loop mapping: show the uncorrected drift")
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace (or .jsonl run record) of the run",
    )
    args = parser.parse_args()

    # The SceneSuite's urban_loop workload (intersection scene, seed 11,
    # 2 laps of a radius-5 circuit), with the lap count adjustable.
    rng = np.random.default_rng(11)
    sequence = make_sequence(
        n_frames=args.frames,
        seed=11,
        scene=intersection_scene(rng),
        model=default_test_model(),
        poses=loop_trajectory(args.frames, radius=5.0, laps=args.laps),
    )
    print(
        f"scanned {len(sequence)} frames over {args.laps} lap(s) of the "
        f"urban_loop circuit, ~{len(sequence.frames[0])} points each"
    )

    tracer = Tracer() if args.trace else None
    mapper = StreamingMapper(
        urban_loop_pipeline(),
        urban_loop_mapper_config(
            enable_loop_closure=not args.no_loop_closure
        ),
        tracer=tracer,
    )
    for index, frame in enumerate(sequence.frames):
        result = mapper.push(frame)
        if result is not None and not result.success:
            print(f"  warning: pair {index - 1} -> {index} failed to register")
    print(mapper.stats.summary())

    # The mapper's own odometry chain is the open-loop trajectory — the
    # drift comparison costs nothing extra.
    open_loop = metrics.trajectory_from_relative(mapper.odometry.relatives)
    ate_open = metrics.absolute_trajectory_error(open_loop, sequence.poses)
    ate_map = metrics.absolute_trajectory_error(
        mapper.trajectory(), sequence.poses
    )
    print(f"\nabsolute trajectory error (ATE, RMSE over {len(sequence)} poses):")
    print(f"  open-loop odometry : {ate_open:.3f} m")
    print(f"  loop-closed mapping: {ate_map:.3f} m", end="")
    if ate_open > 0:
        print(f"  ({ate_map / ate_open:.2f}x)")
    else:
        print()

    global_map = mapper.global_map()
    print(
        f"\nglobal map: {mapper.stats.n_map_points} fused points in "
        f"{mapper.stats.n_map_voxels} voxels"
    )
    print(f"map extent: {np.round(global_map.extent(), 2)} m")

    write_pcd(args.out, global_map)
    print(f"wrote {args.out}")
    if args.trace:
        combined = StageProfiler()
        combined.merge(mapper.odometry.profiler)
        combined.merge(mapper.loop_profiler)
        write_trace(
            tracer, args.trace, profiler_totals=combined.stage_totals()
        )
        print(f"wrote trace {args.trace}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
