"""Quickstart: register two synthetic LiDAR frames.

Generates a short synthetic drive (the library's stand-in for a KITTI
sequence), registers consecutive frames with the default pipeline, and
prints the estimated transform against ground truth — the minimal
end-to-end use of the public API.

Run:  python examples/quickstart.py [--profile] [--search-backend gridhash]
                                    [--trace out.json]

``--profile`` prints the extended per-stage Profiler breakdown (total /
KD-tree search / KD-tree build / aggregation / share), so you can see
where registration time goes without running the figure benches.
``--search-backend`` swaps the neighbor-search backend (see README
"Neighbor-search backends") so the same table shows search vs kernel
time per backend — e.g. ``gridhash`` trades tree traversal for flat
27-cell voxel probes.
``--trace out.json`` records the run through the telemetry layer and
writes a Chrome trace (load it in Perfetto / ``chrome://tracing``;
use a ``.jsonl`` path for the flat run record instead) — see README
"Observability & tracing".
"""

import argparse

from repro.core.gridhash import GridHashConfig
from repro.geometry import metrics
from repro.io import make_sequence
from repro.profiling import StageProfiler
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    SearchConfig,
)
from repro.registration.search import _BACKENDS
from repro.telemetry import Tracer, write_trace


def main(
    profile: bool = False,
    search_backend: str = "twostage",
    gridhash_cell: float = 1.0,
    trace: str | None = None,
):
    # 1. Data: two consecutive frames of a synthetic urban drive, with
    # exact ground truth for the relative motion.
    sequence = make_sequence(n_frames=2, seed=42, step=1.0)
    source, target, ground_truth = sequence.pair(0)
    print(f"source frame: {source}")
    print(f"target frame: {target}")
    print(f"ground-truth translation: {ground_truth[:3, 3].round(3)}")

    # 2. Pipeline: initial estimation from uniform keypoints + FPFH, then
    # point-to-plane ICP fine-tuning (paper Fig. 2's two phases).
    config = PipelineConfig(
        keypoints=KeypointConfig(method="uniform", params={"voxel_size": 3.0}),
        icp=ICPConfig(
            rpce=RPCEConfig(max_distance=2.0),
            error_metric="point_to_plane",
            max_iterations=25,
        ),
        search=SearchConfig(
            backend=search_backend,
            gridhash=GridHashConfig(cell_size=gridhash_cell),
        ),
    )
    pipeline = Pipeline(config)
    print(f"search backend: {search_backend}")

    # 3. Register, with per-stage profiling (paper Fig. 4's view).
    # ``pipeline.register(source, target)`` does exactly this; spelling
    # out the two phases shows the streaming API: ``preprocess`` runs the
    # per-frame stages once into an immutable FrameState, and ``match``
    # runs the pairwise stages.  Sequence drivers reuse a FrameState
    # across consecutive pairs (see examples/odometry.py).
    tracer = Tracer() if trace else None
    profiler = StageProfiler(tracer=tracer)
    source_state = pipeline.preprocess(source, profiler=profiler)
    target_state = pipeline.preprocess(target, profiler=profiler)
    result = pipeline.match(source_state, target_state, profiler=profiler)

    print(f"\nestimated translation:    {result.transformation[:3, 3].round(3)}")
    rot_err, trans_err = metrics.pair_errors(result.transformation, ground_truth)
    print(f"rotation error:  {rot_err:.3f} deg")
    print(f"translation error: {trans_err:.3f} m")
    print(f"ICP: {result.icp}")

    print("\nper-stage timing (KD-tree search dominates — paper Fig. 4):")
    print(
        profiler.report(
            extended=profile,
            search_stats=result.total_search_stats if profile else None,
        )
    )
    fractions = profiler.kdtree_fractions()
    print(
        f"\nKD-tree search share of runtime: {100 * fractions['search']:.1f}% "
        f"(construction {100 * fractions['construction']:.1f}%)"
    )

    print()
    print(result.summary())
    if trace:
        write_trace(tracer, trace, profiler_totals=profiler.stage_totals())
        print(f"wrote trace {trace}")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the extended per-stage breakdown (adds aggregation + share)",
    )
    parser.add_argument(
        "--search-backend",
        choices=_BACKENDS,
        default="twostage",
        help="neighbor-search backend for every pipeline stage",
    )
    parser.add_argument(
        "--gridhash-cell",
        type=float,
        default=1.0,
        help="gridhash voxel cell size (exact for radii <= cell size)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace (or .jsonl run record) of the run",
    )
    args = parser.parse_args()
    raise SystemExit(
        main(
            profile=args.profile,
            search_backend=args.search_backend,
            gridhash_cell=args.gridhash_cell,
            trace=args.trace,
        )
    )
